file(REMOVE_RECURSE
  "CMakeFiles/bvt_demo.dir/bvt_demo.cpp.o"
  "CMakeFiles/bvt_demo.dir/bvt_demo.cpp.o.d"
  "bvt_demo"
  "bvt_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvt_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
