# Empty compiler generated dependencies file for bvt_demo.
# This may be replaced when dependencies are built.
