file(REMOVE_RECURSE
  "CMakeFiles/wan_simulation.dir/wan_simulation.cpp.o"
  "CMakeFiles/wan_simulation.dir/wan_simulation.cpp.o.d"
  "wan_simulation"
  "wan_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
