# Empty dependencies file for fig4_root_causes.
# This may be replaced when dependencies are built.
