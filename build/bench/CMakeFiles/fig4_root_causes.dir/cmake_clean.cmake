file(REMOVE_RECURSE
  "CMakeFiles/fig4_root_causes.dir/fig4_root_causes.cpp.o"
  "CMakeFiles/fig4_root_causes.dir/fig4_root_causes.cpp.o.d"
  "fig4_root_causes"
  "fig4_root_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_root_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
