file(REMOVE_RECURSE
  "CMakeFiles/fig7_augmentation_example.dir/fig7_augmentation_example.cpp.o"
  "CMakeFiles/fig7_augmentation_example.dir/fig7_augmentation_example.cpp.o.d"
  "fig7_augmentation_example"
  "fig7_augmentation_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_augmentation_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
