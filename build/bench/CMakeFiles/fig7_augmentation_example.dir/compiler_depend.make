# Empty compiler generated dependencies file for fig7_augmentation_example.
# This may be replaced when dependencies are built.
