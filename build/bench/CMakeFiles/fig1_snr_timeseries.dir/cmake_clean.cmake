file(REMOVE_RECURSE
  "CMakeFiles/fig1_snr_timeseries.dir/fig1_snr_timeseries.cpp.o"
  "CMakeFiles/fig1_snr_timeseries.dir/fig1_snr_timeseries.cpp.o.d"
  "fig1_snr_timeseries"
  "fig1_snr_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_snr_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
