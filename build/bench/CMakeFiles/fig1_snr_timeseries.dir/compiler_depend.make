# Empty compiler generated dependencies file for fig1_snr_timeseries.
# This may be replaced when dependencies are built.
