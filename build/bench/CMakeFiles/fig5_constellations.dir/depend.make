# Empty dependencies file for fig5_constellations.
# This may be replaced when dependencies are built.
