
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_constellations.cpp" "bench/CMakeFiles/fig5_constellations.dir/fig5_constellations.cpp.o" "gcc" "bench/CMakeFiles/fig5_constellations.dir/fig5_constellations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rwc_mgmt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_tickets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_bvt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_te.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
