file(REMOVE_RECURSE
  "CMakeFiles/fig5_constellations.dir/fig5_constellations.cpp.o"
  "CMakeFiles/fig5_constellations.dir/fig5_constellations.cpp.o.d"
  "fig5_constellations"
  "fig5_constellations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_constellations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
