# Empty compiler generated dependencies file for fig3b_failure_durations.
# This may be replaced when dependencies are built.
