file(REMOVE_RECURSE
  "CMakeFiles/fig3b_failure_durations.dir/fig3b_failure_durations.cpp.o"
  "CMakeFiles/fig3b_failure_durations.dir/fig3b_failure_durations.cpp.o.d"
  "fig3b_failure_durations"
  "fig3b_failure_durations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_failure_durations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
