# Empty dependencies file for sim_availability_gain.
# This may be replaced when dependencies are built.
