file(REMOVE_RECURSE
  "CMakeFiles/sim_availability_gain.dir/sim_availability_gain.cpp.o"
  "CMakeFiles/sim_availability_gain.dir/sim_availability_gain.cpp.o.d"
  "sim_availability_gain"
  "sim_availability_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_availability_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
