file(REMOVE_RECURSE
  "CMakeFiles/fig3a_failures_vs_capacity.dir/fig3a_failures_vs_capacity.cpp.o"
  "CMakeFiles/fig3a_failures_vs_capacity.dir/fig3a_failures_vs_capacity.cpp.o.d"
  "fig3a_failures_vs_capacity"
  "fig3a_failures_vs_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_failures_vs_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
