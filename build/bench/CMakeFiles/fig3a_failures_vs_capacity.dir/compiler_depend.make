# Empty compiler generated dependencies file for fig3a_failures_vs_capacity.
# This may be replaced when dependencies are built.
