file(REMOVE_RECURSE
  "CMakeFiles/fig2b_feasible_capacity.dir/fig2b_feasible_capacity.cpp.o"
  "CMakeFiles/fig2b_feasible_capacity.dir/fig2b_feasible_capacity.cpp.o.d"
  "fig2b_feasible_capacity"
  "fig2b_feasible_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_feasible_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
