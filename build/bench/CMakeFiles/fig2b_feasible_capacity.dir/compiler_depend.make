# Empty compiler generated dependencies file for fig2b_feasible_capacity.
# This may be replaced when dependencies are built.
