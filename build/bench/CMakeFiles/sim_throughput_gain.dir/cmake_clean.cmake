file(REMOVE_RECURSE
  "CMakeFiles/sim_throughput_gain.dir/sim_throughput_gain.cpp.o"
  "CMakeFiles/sim_throughput_gain.dir/sim_throughput_gain.cpp.o.d"
  "sim_throughput_gain"
  "sim_throughput_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_throughput_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
