# Empty compiler generated dependencies file for sim_throughput_gain.
# This may be replaced when dependencies are built.
