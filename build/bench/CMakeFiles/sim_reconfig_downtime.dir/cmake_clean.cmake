file(REMOVE_RECURSE
  "CMakeFiles/sim_reconfig_downtime.dir/sim_reconfig_downtime.cpp.o"
  "CMakeFiles/sim_reconfig_downtime.dir/sim_reconfig_downtime.cpp.o.d"
  "sim_reconfig_downtime"
  "sim_reconfig_downtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_reconfig_downtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
