# Empty dependencies file for sim_reconfig_downtime.
# This may be replaced when dependencies are built.
