file(REMOVE_RECURSE
  "CMakeFiles/fig2a_snr_variation.dir/fig2a_snr_variation.cpp.o"
  "CMakeFiles/fig2a_snr_variation.dir/fig2a_snr_variation.cpp.o.d"
  "fig2a_snr_variation"
  "fig2a_snr_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_snr_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
