# Empty compiler generated dependencies file for fig2a_snr_variation.
# This may be replaced when dependencies are built.
