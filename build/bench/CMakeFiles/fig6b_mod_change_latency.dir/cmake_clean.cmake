file(REMOVE_RECURSE
  "CMakeFiles/fig6b_mod_change_latency.dir/fig6b_mod_change_latency.cpp.o"
  "CMakeFiles/fig6b_mod_change_latency.dir/fig6b_mod_change_latency.cpp.o.d"
  "fig6b_mod_change_latency"
  "fig6b_mod_change_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_mod_change_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
