# Empty compiler generated dependencies file for fig6b_mod_change_latency.
# This may be replaced when dependencies are built.
