# Empty dependencies file for fig8_unsplittable_gadget.
# This may be replaced when dependencies are built.
