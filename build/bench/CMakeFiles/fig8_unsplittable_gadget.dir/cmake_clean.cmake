file(REMOVE_RECURSE
  "CMakeFiles/fig8_unsplittable_gadget.dir/fig8_unsplittable_gadget.cpp.o"
  "CMakeFiles/fig8_unsplittable_gadget.dir/fig8_unsplittable_gadget.cpp.o.d"
  "fig8_unsplittable_gadget"
  "fig8_unsplittable_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_unsplittable_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
