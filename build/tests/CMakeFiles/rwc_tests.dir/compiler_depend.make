# Empty compiler generated dependencies file for rwc_tests.
# This may be replaced when dependencies are built.
