
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bvt_constellation.cpp" "tests/CMakeFiles/rwc_tests.dir/test_bvt_constellation.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_bvt_constellation.cpp.o.d"
  "/root/repo/tests/test_bvt_device.cpp" "tests/CMakeFiles/rwc_tests.dir/test_bvt_device.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_bvt_device.cpp.o.d"
  "/root/repo/tests/test_bvt_latency.cpp" "tests/CMakeFiles/rwc_tests.dir/test_bvt_latency.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_bvt_latency.cpp.o.d"
  "/root/repo/tests/test_core_augment.cpp" "tests/CMakeFiles/rwc_tests.dir/test_core_augment.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_core_augment.cpp.o.d"
  "/root/repo/tests/test_core_combined_options.cpp" "tests/CMakeFiles/rwc_tests.dir/test_core_combined_options.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_core_combined_options.cpp.o.d"
  "/root/repo/tests/test_core_controller.cpp" "tests/CMakeFiles/rwc_tests.dir/test_core_controller.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_core_controller.cpp.o.d"
  "/root/repo/tests/test_core_fixed_charge.cpp" "tests/CMakeFiles/rwc_tests.dir/test_core_fixed_charge.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_core_fixed_charge.cpp.o.d"
  "/root/repo/tests/test_core_hysteresis.cpp" "tests/CMakeFiles/rwc_tests.dir/test_core_hysteresis.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_core_hysteresis.cpp.o.d"
  "/root/repo/tests/test_core_orchestrator.cpp" "tests/CMakeFiles/rwc_tests.dir/test_core_orchestrator.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_core_orchestrator.cpp.o.d"
  "/root/repo/tests/test_core_protected_flows.cpp" "tests/CMakeFiles/rwc_tests.dir/test_core_protected_flows.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_core_protected_flows.cpp.o.d"
  "/root/repo/tests/test_core_theorem.cpp" "tests/CMakeFiles/rwc_tests.dir/test_core_theorem.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_core_theorem.cpp.o.d"
  "/root/repo/tests/test_core_translate.cpp" "tests/CMakeFiles/rwc_tests.dir/test_core_translate.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_core_translate.cpp.o.d"
  "/root/repo/tests/test_flow_edge_cases.cpp" "tests/CMakeFiles/rwc_tests.dir/test_flow_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_flow_edge_cases.cpp.o.d"
  "/root/repo/tests/test_flow_maxflow.cpp" "tests/CMakeFiles/rwc_tests.dir/test_flow_maxflow.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_flow_maxflow.cpp.o.d"
  "/root/repo/tests/test_flow_mincost.cpp" "tests/CMakeFiles/rwc_tests.dir/test_flow_mincost.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_flow_mincost.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/rwc_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/rwc_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ksp.cpp" "tests/CMakeFiles/rwc_tests.dir/test_ksp.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_ksp.cpp.o.d"
  "/root/repo/tests/test_lp.cpp" "tests/CMakeFiles/rwc_tests.dir/test_lp.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_lp.cpp.o.d"
  "/root/repo/tests/test_mgmt.cpp" "tests/CMakeFiles/rwc_tests.dir/test_mgmt.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_mgmt.cpp.o.d"
  "/root/repo/tests/test_optical.cpp" "tests/CMakeFiles/rwc_tests.dir/test_optical.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_optical.cpp.o.d"
  "/root/repo/tests/test_optical_link_budget.cpp" "tests/CMakeFiles/rwc_tests.dir/test_optical_link_budget.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_optical_link_budget.cpp.o.d"
  "/root/repo/tests/test_protection.cpp" "tests/CMakeFiles/rwc_tests.dir/test_protection.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_protection.cpp.o.d"
  "/root/repo/tests/test_sim_device_backed.cpp" "tests/CMakeFiles/rwc_tests.dir/test_sim_device_backed.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_sim_device_backed.cpp.o.d"
  "/root/repo/tests/test_sim_event.cpp" "tests/CMakeFiles/rwc_tests.dir/test_sim_event.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_sim_event.cpp.o.d"
  "/root/repo/tests/test_sim_simulator.cpp" "tests/CMakeFiles/rwc_tests.dir/test_sim_simulator.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_sim_simulator.cpp.o.d"
  "/root/repo/tests/test_sim_topology_workload.cpp" "tests/CMakeFiles/rwc_tests.dir/test_sim_topology_workload.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_sim_topology_workload.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/rwc_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_streaming_io.cpp" "tests/CMakeFiles/rwc_tests.dir/test_streaming_io.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_streaming_io.cpp.o.d"
  "/root/repo/tests/test_te_consistent_update.cpp" "tests/CMakeFiles/rwc_tests.dir/test_te_consistent_update.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_te_consistent_update.cpp.o.d"
  "/root/repo/tests/test_te_demand.cpp" "tests/CMakeFiles/rwc_tests.dir/test_te_demand.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_te_demand.cpp.o.d"
  "/root/repo/tests/test_te_engines.cpp" "tests/CMakeFiles/rwc_tests.dir/test_te_engines.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_te_engines.cpp.o.d"
  "/root/repo/tests/test_te_mcf_lp_ecmp.cpp" "tests/CMakeFiles/rwc_tests.dir/test_te_mcf_lp_ecmp.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_te_mcf_lp_ecmp.cpp.o.d"
  "/root/repo/tests/test_telemetry.cpp" "tests/CMakeFiles/rwc_tests.dir/test_telemetry.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_telemetry.cpp.o.d"
  "/root/repo/tests/test_telemetry_calibration.cpp" "tests/CMakeFiles/rwc_tests.dir/test_telemetry_calibration.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_telemetry_calibration.cpp.o.d"
  "/root/repo/tests/test_telemetry_detect.cpp" "tests/CMakeFiles/rwc_tests.dir/test_telemetry_detect.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_telemetry_detect.cpp.o.d"
  "/root/repo/tests/test_tickets.cpp" "tests/CMakeFiles/rwc_tests.dir/test_tickets.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_tickets.cpp.o.d"
  "/root/repo/tests/test_umbrella_topologies.cpp" "tests/CMakeFiles/rwc_tests.dir/test_umbrella_topologies.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_umbrella_topologies.cpp.o.d"
  "/root/repo/tests/test_util_misc.cpp" "tests/CMakeFiles/rwc_tests.dir/test_util_misc.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_util_misc.cpp.o.d"
  "/root/repo/tests/test_util_p2.cpp" "tests/CMakeFiles/rwc_tests.dir/test_util_p2.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_util_p2.cpp.o.d"
  "/root/repo/tests/test_util_rng.cpp" "tests/CMakeFiles/rwc_tests.dir/test_util_rng.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_util_rng.cpp.o.d"
  "/root/repo/tests/test_util_stats.cpp" "tests/CMakeFiles/rwc_tests.dir/test_util_stats.cpp.o" "gcc" "tests/CMakeFiles/rwc_tests.dir/test_util_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rwc_mgmt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_tickets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_bvt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_te.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
