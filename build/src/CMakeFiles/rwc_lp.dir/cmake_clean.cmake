file(REMOVE_RECURSE
  "CMakeFiles/rwc_lp.dir/lp/simplex.cpp.o"
  "CMakeFiles/rwc_lp.dir/lp/simplex.cpp.o.d"
  "librwc_lp.a"
  "librwc_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwc_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
