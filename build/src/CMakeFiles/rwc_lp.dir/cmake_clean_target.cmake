file(REMOVE_RECURSE
  "librwc_lp.a"
)
