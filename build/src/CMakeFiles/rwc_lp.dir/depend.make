# Empty dependencies file for rwc_lp.
# This may be replaced when dependencies are built.
