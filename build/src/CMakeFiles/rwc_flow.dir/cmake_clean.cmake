file(REMOVE_RECURSE
  "CMakeFiles/rwc_flow.dir/flow/cycle_cancel.cpp.o"
  "CMakeFiles/rwc_flow.dir/flow/cycle_cancel.cpp.o.d"
  "CMakeFiles/rwc_flow.dir/flow/decompose.cpp.o"
  "CMakeFiles/rwc_flow.dir/flow/decompose.cpp.o.d"
  "CMakeFiles/rwc_flow.dir/flow/disjoint.cpp.o"
  "CMakeFiles/rwc_flow.dir/flow/disjoint.cpp.o.d"
  "CMakeFiles/rwc_flow.dir/flow/graph_adapter.cpp.o"
  "CMakeFiles/rwc_flow.dir/flow/graph_adapter.cpp.o.d"
  "CMakeFiles/rwc_flow.dir/flow/maxflow.cpp.o"
  "CMakeFiles/rwc_flow.dir/flow/maxflow.cpp.o.d"
  "CMakeFiles/rwc_flow.dir/flow/mincost.cpp.o"
  "CMakeFiles/rwc_flow.dir/flow/mincost.cpp.o.d"
  "CMakeFiles/rwc_flow.dir/flow/network.cpp.o"
  "CMakeFiles/rwc_flow.dir/flow/network.cpp.o.d"
  "librwc_flow.a"
  "librwc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
