# Empty compiler generated dependencies file for rwc_flow.
# This may be replaced when dependencies are built.
