
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/cycle_cancel.cpp" "src/CMakeFiles/rwc_flow.dir/flow/cycle_cancel.cpp.o" "gcc" "src/CMakeFiles/rwc_flow.dir/flow/cycle_cancel.cpp.o.d"
  "/root/repo/src/flow/decompose.cpp" "src/CMakeFiles/rwc_flow.dir/flow/decompose.cpp.o" "gcc" "src/CMakeFiles/rwc_flow.dir/flow/decompose.cpp.o.d"
  "/root/repo/src/flow/disjoint.cpp" "src/CMakeFiles/rwc_flow.dir/flow/disjoint.cpp.o" "gcc" "src/CMakeFiles/rwc_flow.dir/flow/disjoint.cpp.o.d"
  "/root/repo/src/flow/graph_adapter.cpp" "src/CMakeFiles/rwc_flow.dir/flow/graph_adapter.cpp.o" "gcc" "src/CMakeFiles/rwc_flow.dir/flow/graph_adapter.cpp.o.d"
  "/root/repo/src/flow/maxflow.cpp" "src/CMakeFiles/rwc_flow.dir/flow/maxflow.cpp.o" "gcc" "src/CMakeFiles/rwc_flow.dir/flow/maxflow.cpp.o.d"
  "/root/repo/src/flow/mincost.cpp" "src/CMakeFiles/rwc_flow.dir/flow/mincost.cpp.o" "gcc" "src/CMakeFiles/rwc_flow.dir/flow/mincost.cpp.o.d"
  "/root/repo/src/flow/network.cpp" "src/CMakeFiles/rwc_flow.dir/flow/network.cpp.o" "gcc" "src/CMakeFiles/rwc_flow.dir/flow/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
