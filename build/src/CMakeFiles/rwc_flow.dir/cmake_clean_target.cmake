file(REMOVE_RECURSE
  "librwc_flow.a"
)
