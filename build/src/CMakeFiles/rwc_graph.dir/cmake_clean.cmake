file(REMOVE_RECURSE
  "CMakeFiles/rwc_graph.dir/graph/connectivity.cpp.o"
  "CMakeFiles/rwc_graph.dir/graph/connectivity.cpp.o.d"
  "CMakeFiles/rwc_graph.dir/graph/dijkstra.cpp.o"
  "CMakeFiles/rwc_graph.dir/graph/dijkstra.cpp.o.d"
  "CMakeFiles/rwc_graph.dir/graph/dot.cpp.o"
  "CMakeFiles/rwc_graph.dir/graph/dot.cpp.o.d"
  "CMakeFiles/rwc_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/rwc_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/rwc_graph.dir/graph/ksp.cpp.o"
  "CMakeFiles/rwc_graph.dir/graph/ksp.cpp.o.d"
  "librwc_graph.a"
  "librwc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
