# Empty dependencies file for rwc_graph.
# This may be replaced when dependencies are built.
