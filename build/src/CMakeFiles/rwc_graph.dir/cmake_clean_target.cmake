file(REMOVE_RECURSE
  "librwc_graph.a"
)
