# Empty compiler generated dependencies file for rwc_graph.
# This may be replaced when dependencies are built.
