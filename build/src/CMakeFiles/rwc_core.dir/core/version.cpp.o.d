src/CMakeFiles/rwc_core.dir/core/version.cpp.o: \
 /root/repo/src/core/version.cpp /usr/include/stdc-predef.h
