file(REMOVE_RECURSE
  "librwc_core.a"
)
