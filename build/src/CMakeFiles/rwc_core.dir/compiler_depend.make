# Empty compiler generated dependencies file for rwc_core.
# This may be replaced when dependencies are built.
