
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/augment.cpp" "src/CMakeFiles/rwc_core.dir/core/augment.cpp.o" "gcc" "src/CMakeFiles/rwc_core.dir/core/augment.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/CMakeFiles/rwc_core.dir/core/controller.cpp.o" "gcc" "src/CMakeFiles/rwc_core.dir/core/controller.cpp.o.d"
  "/root/repo/src/core/fixed_charge.cpp" "src/CMakeFiles/rwc_core.dir/core/fixed_charge.cpp.o" "gcc" "src/CMakeFiles/rwc_core.dir/core/fixed_charge.cpp.o.d"
  "/root/repo/src/core/hysteresis.cpp" "src/CMakeFiles/rwc_core.dir/core/hysteresis.cpp.o" "gcc" "src/CMakeFiles/rwc_core.dir/core/hysteresis.cpp.o.d"
  "/root/repo/src/core/orchestrator.cpp" "src/CMakeFiles/rwc_core.dir/core/orchestrator.cpp.o" "gcc" "src/CMakeFiles/rwc_core.dir/core/orchestrator.cpp.o.d"
  "/root/repo/src/core/penalty.cpp" "src/CMakeFiles/rwc_core.dir/core/penalty.cpp.o" "gcc" "src/CMakeFiles/rwc_core.dir/core/penalty.cpp.o.d"
  "/root/repo/src/core/translate.cpp" "src/CMakeFiles/rwc_core.dir/core/translate.cpp.o" "gcc" "src/CMakeFiles/rwc_core.dir/core/translate.cpp.o.d"
  "/root/repo/src/core/version.cpp" "src/CMakeFiles/rwc_core.dir/core/version.cpp.o" "gcc" "src/CMakeFiles/rwc_core.dir/core/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rwc_te.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_bvt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
