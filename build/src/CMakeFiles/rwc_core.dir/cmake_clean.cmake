file(REMOVE_RECURSE
  "CMakeFiles/rwc_core.dir/core/augment.cpp.o"
  "CMakeFiles/rwc_core.dir/core/augment.cpp.o.d"
  "CMakeFiles/rwc_core.dir/core/controller.cpp.o"
  "CMakeFiles/rwc_core.dir/core/controller.cpp.o.d"
  "CMakeFiles/rwc_core.dir/core/fixed_charge.cpp.o"
  "CMakeFiles/rwc_core.dir/core/fixed_charge.cpp.o.d"
  "CMakeFiles/rwc_core.dir/core/hysteresis.cpp.o"
  "CMakeFiles/rwc_core.dir/core/hysteresis.cpp.o.d"
  "CMakeFiles/rwc_core.dir/core/orchestrator.cpp.o"
  "CMakeFiles/rwc_core.dir/core/orchestrator.cpp.o.d"
  "CMakeFiles/rwc_core.dir/core/penalty.cpp.o"
  "CMakeFiles/rwc_core.dir/core/penalty.cpp.o.d"
  "CMakeFiles/rwc_core.dir/core/translate.cpp.o"
  "CMakeFiles/rwc_core.dir/core/translate.cpp.o.d"
  "CMakeFiles/rwc_core.dir/core/version.cpp.o"
  "CMakeFiles/rwc_core.dir/core/version.cpp.o.d"
  "librwc_core.a"
  "librwc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
