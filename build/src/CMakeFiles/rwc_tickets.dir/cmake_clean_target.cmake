file(REMOVE_RECURSE
  "librwc_tickets.a"
)
