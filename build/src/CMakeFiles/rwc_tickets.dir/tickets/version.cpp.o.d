src/CMakeFiles/rwc_tickets.dir/tickets/version.cpp.o: \
 /root/repo/src/tickets/version.cpp /usr/include/stdc-predef.h
