
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tickets/analysis.cpp" "src/CMakeFiles/rwc_tickets.dir/tickets/analysis.cpp.o" "gcc" "src/CMakeFiles/rwc_tickets.dir/tickets/analysis.cpp.o.d"
  "/root/repo/src/tickets/generator.cpp" "src/CMakeFiles/rwc_tickets.dir/tickets/generator.cpp.o" "gcc" "src/CMakeFiles/rwc_tickets.dir/tickets/generator.cpp.o.d"
  "/root/repo/src/tickets/io.cpp" "src/CMakeFiles/rwc_tickets.dir/tickets/io.cpp.o" "gcc" "src/CMakeFiles/rwc_tickets.dir/tickets/io.cpp.o.d"
  "/root/repo/src/tickets/ticket.cpp" "src/CMakeFiles/rwc_tickets.dir/tickets/ticket.cpp.o" "gcc" "src/CMakeFiles/rwc_tickets.dir/tickets/ticket.cpp.o.d"
  "/root/repo/src/tickets/version.cpp" "src/CMakeFiles/rwc_tickets.dir/tickets/version.cpp.o" "gcc" "src/CMakeFiles/rwc_tickets.dir/tickets/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rwc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
