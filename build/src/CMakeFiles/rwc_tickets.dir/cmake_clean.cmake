file(REMOVE_RECURSE
  "CMakeFiles/rwc_tickets.dir/tickets/analysis.cpp.o"
  "CMakeFiles/rwc_tickets.dir/tickets/analysis.cpp.o.d"
  "CMakeFiles/rwc_tickets.dir/tickets/generator.cpp.o"
  "CMakeFiles/rwc_tickets.dir/tickets/generator.cpp.o.d"
  "CMakeFiles/rwc_tickets.dir/tickets/io.cpp.o"
  "CMakeFiles/rwc_tickets.dir/tickets/io.cpp.o.d"
  "CMakeFiles/rwc_tickets.dir/tickets/ticket.cpp.o"
  "CMakeFiles/rwc_tickets.dir/tickets/ticket.cpp.o.d"
  "CMakeFiles/rwc_tickets.dir/tickets/version.cpp.o"
  "CMakeFiles/rwc_tickets.dir/tickets/version.cpp.o.d"
  "librwc_tickets.a"
  "librwc_tickets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwc_tickets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
