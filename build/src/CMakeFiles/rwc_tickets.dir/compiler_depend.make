# Empty compiler generated dependencies file for rwc_tickets.
# This may be replaced when dependencies are built.
