# Empty compiler generated dependencies file for rwc_bvt.
# This may be replaced when dependencies are built.
