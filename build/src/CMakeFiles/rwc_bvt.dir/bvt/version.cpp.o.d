src/CMakeFiles/rwc_bvt.dir/bvt/version.cpp.o: \
 /root/repo/src/bvt/version.cpp /usr/include/stdc-predef.h
