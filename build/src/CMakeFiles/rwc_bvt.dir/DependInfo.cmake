
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bvt/constellation.cpp" "src/CMakeFiles/rwc_bvt.dir/bvt/constellation.cpp.o" "gcc" "src/CMakeFiles/rwc_bvt.dir/bvt/constellation.cpp.o.d"
  "/root/repo/src/bvt/device.cpp" "src/CMakeFiles/rwc_bvt.dir/bvt/device.cpp.o" "gcc" "src/CMakeFiles/rwc_bvt.dir/bvt/device.cpp.o.d"
  "/root/repo/src/bvt/latency.cpp" "src/CMakeFiles/rwc_bvt.dir/bvt/latency.cpp.o" "gcc" "src/CMakeFiles/rwc_bvt.dir/bvt/latency.cpp.o.d"
  "/root/repo/src/bvt/version.cpp" "src/CMakeFiles/rwc_bvt.dir/bvt/version.cpp.o" "gcc" "src/CMakeFiles/rwc_bvt.dir/bvt/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rwc_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
