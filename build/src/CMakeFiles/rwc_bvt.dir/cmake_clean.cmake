file(REMOVE_RECURSE
  "CMakeFiles/rwc_bvt.dir/bvt/constellation.cpp.o"
  "CMakeFiles/rwc_bvt.dir/bvt/constellation.cpp.o.d"
  "CMakeFiles/rwc_bvt.dir/bvt/device.cpp.o"
  "CMakeFiles/rwc_bvt.dir/bvt/device.cpp.o.d"
  "CMakeFiles/rwc_bvt.dir/bvt/latency.cpp.o"
  "CMakeFiles/rwc_bvt.dir/bvt/latency.cpp.o.d"
  "CMakeFiles/rwc_bvt.dir/bvt/version.cpp.o"
  "CMakeFiles/rwc_bvt.dir/bvt/version.cpp.o.d"
  "librwc_bvt.a"
  "librwc_bvt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwc_bvt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
