file(REMOVE_RECURSE
  "librwc_bvt.a"
)
