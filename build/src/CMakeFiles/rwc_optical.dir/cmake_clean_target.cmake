file(REMOVE_RECURSE
  "librwc_optical.a"
)
