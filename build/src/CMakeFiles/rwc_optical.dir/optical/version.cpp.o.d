src/CMakeFiles/rwc_optical.dir/optical/version.cpp.o: \
 /root/repo/src/optical/version.cpp /usr/include/stdc-predef.h
