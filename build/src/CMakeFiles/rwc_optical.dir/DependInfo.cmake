
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optical/ber.cpp" "src/CMakeFiles/rwc_optical.dir/optical/ber.cpp.o" "gcc" "src/CMakeFiles/rwc_optical.dir/optical/ber.cpp.o.d"
  "/root/repo/src/optical/link_budget.cpp" "src/CMakeFiles/rwc_optical.dir/optical/link_budget.cpp.o" "gcc" "src/CMakeFiles/rwc_optical.dir/optical/link_budget.cpp.o.d"
  "/root/repo/src/optical/modulation.cpp" "src/CMakeFiles/rwc_optical.dir/optical/modulation.cpp.o" "gcc" "src/CMakeFiles/rwc_optical.dir/optical/modulation.cpp.o.d"
  "/root/repo/src/optical/q_factor.cpp" "src/CMakeFiles/rwc_optical.dir/optical/q_factor.cpp.o" "gcc" "src/CMakeFiles/rwc_optical.dir/optical/q_factor.cpp.o.d"
  "/root/repo/src/optical/version.cpp" "src/CMakeFiles/rwc_optical.dir/optical/version.cpp.o" "gcc" "src/CMakeFiles/rwc_optical.dir/optical/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
