# Empty compiler generated dependencies file for rwc_optical.
# This may be replaced when dependencies are built.
