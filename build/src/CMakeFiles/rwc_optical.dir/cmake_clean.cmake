file(REMOVE_RECURSE
  "CMakeFiles/rwc_optical.dir/optical/ber.cpp.o"
  "CMakeFiles/rwc_optical.dir/optical/ber.cpp.o.d"
  "CMakeFiles/rwc_optical.dir/optical/link_budget.cpp.o"
  "CMakeFiles/rwc_optical.dir/optical/link_budget.cpp.o.d"
  "CMakeFiles/rwc_optical.dir/optical/modulation.cpp.o"
  "CMakeFiles/rwc_optical.dir/optical/modulation.cpp.o.d"
  "CMakeFiles/rwc_optical.dir/optical/q_factor.cpp.o"
  "CMakeFiles/rwc_optical.dir/optical/q_factor.cpp.o.d"
  "CMakeFiles/rwc_optical.dir/optical/version.cpp.o"
  "CMakeFiles/rwc_optical.dir/optical/version.cpp.o.d"
  "librwc_optical.a"
  "librwc_optical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwc_optical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
