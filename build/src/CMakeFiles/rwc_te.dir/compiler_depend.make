# Empty compiler generated dependencies file for rwc_te.
# This may be replaced when dependencies are built.
