file(REMOVE_RECURSE
  "CMakeFiles/rwc_te.dir/te/b4.cpp.o"
  "CMakeFiles/rwc_te.dir/te/b4.cpp.o.d"
  "CMakeFiles/rwc_te.dir/te/consistent_update.cpp.o"
  "CMakeFiles/rwc_te.dir/te/consistent_update.cpp.o.d"
  "CMakeFiles/rwc_te.dir/te/cspf.cpp.o"
  "CMakeFiles/rwc_te.dir/te/cspf.cpp.o.d"
  "CMakeFiles/rwc_te.dir/te/demand.cpp.o"
  "CMakeFiles/rwc_te.dir/te/demand.cpp.o.d"
  "CMakeFiles/rwc_te.dir/te/ecmp.cpp.o"
  "CMakeFiles/rwc_te.dir/te/ecmp.cpp.o.d"
  "CMakeFiles/rwc_te.dir/te/mcf_lp.cpp.o"
  "CMakeFiles/rwc_te.dir/te/mcf_lp.cpp.o.d"
  "CMakeFiles/rwc_te.dir/te/mcf_te.cpp.o"
  "CMakeFiles/rwc_te.dir/te/mcf_te.cpp.o.d"
  "CMakeFiles/rwc_te.dir/te/protection.cpp.o"
  "CMakeFiles/rwc_te.dir/te/protection.cpp.o.d"
  "CMakeFiles/rwc_te.dir/te/swan.cpp.o"
  "CMakeFiles/rwc_te.dir/te/swan.cpp.o.d"
  "CMakeFiles/rwc_te.dir/te/version.cpp.o"
  "CMakeFiles/rwc_te.dir/te/version.cpp.o.d"
  "librwc_te.a"
  "librwc_te.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwc_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
