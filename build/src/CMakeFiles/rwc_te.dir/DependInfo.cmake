
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/te/b4.cpp" "src/CMakeFiles/rwc_te.dir/te/b4.cpp.o" "gcc" "src/CMakeFiles/rwc_te.dir/te/b4.cpp.o.d"
  "/root/repo/src/te/consistent_update.cpp" "src/CMakeFiles/rwc_te.dir/te/consistent_update.cpp.o" "gcc" "src/CMakeFiles/rwc_te.dir/te/consistent_update.cpp.o.d"
  "/root/repo/src/te/cspf.cpp" "src/CMakeFiles/rwc_te.dir/te/cspf.cpp.o" "gcc" "src/CMakeFiles/rwc_te.dir/te/cspf.cpp.o.d"
  "/root/repo/src/te/demand.cpp" "src/CMakeFiles/rwc_te.dir/te/demand.cpp.o" "gcc" "src/CMakeFiles/rwc_te.dir/te/demand.cpp.o.d"
  "/root/repo/src/te/ecmp.cpp" "src/CMakeFiles/rwc_te.dir/te/ecmp.cpp.o" "gcc" "src/CMakeFiles/rwc_te.dir/te/ecmp.cpp.o.d"
  "/root/repo/src/te/mcf_lp.cpp" "src/CMakeFiles/rwc_te.dir/te/mcf_lp.cpp.o" "gcc" "src/CMakeFiles/rwc_te.dir/te/mcf_lp.cpp.o.d"
  "/root/repo/src/te/mcf_te.cpp" "src/CMakeFiles/rwc_te.dir/te/mcf_te.cpp.o" "gcc" "src/CMakeFiles/rwc_te.dir/te/mcf_te.cpp.o.d"
  "/root/repo/src/te/protection.cpp" "src/CMakeFiles/rwc_te.dir/te/protection.cpp.o" "gcc" "src/CMakeFiles/rwc_te.dir/te/protection.cpp.o.d"
  "/root/repo/src/te/swan.cpp" "src/CMakeFiles/rwc_te.dir/te/swan.cpp.o" "gcc" "src/CMakeFiles/rwc_te.dir/te/swan.cpp.o.d"
  "/root/repo/src/te/version.cpp" "src/CMakeFiles/rwc_te.dir/te/version.cpp.o" "gcc" "src/CMakeFiles/rwc_te.dir/te/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rwc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
