file(REMOVE_RECURSE
  "librwc_te.a"
)
