src/CMakeFiles/rwc_te.dir/te/version.cpp.o: /root/repo/src/te/version.cpp \
 /usr/include/stdc-predef.h
