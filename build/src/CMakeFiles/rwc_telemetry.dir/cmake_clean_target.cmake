file(REMOVE_RECURSE
  "librwc_telemetry.a"
)
