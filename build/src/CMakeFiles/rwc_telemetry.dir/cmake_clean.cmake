file(REMOVE_RECURSE
  "CMakeFiles/rwc_telemetry.dir/telemetry/analysis.cpp.o"
  "CMakeFiles/rwc_telemetry.dir/telemetry/analysis.cpp.o.d"
  "CMakeFiles/rwc_telemetry.dir/telemetry/detect.cpp.o"
  "CMakeFiles/rwc_telemetry.dir/telemetry/detect.cpp.o.d"
  "CMakeFiles/rwc_telemetry.dir/telemetry/io.cpp.o"
  "CMakeFiles/rwc_telemetry.dir/telemetry/io.cpp.o.d"
  "CMakeFiles/rwc_telemetry.dir/telemetry/snr_model.cpp.o"
  "CMakeFiles/rwc_telemetry.dir/telemetry/snr_model.cpp.o.d"
  "CMakeFiles/rwc_telemetry.dir/telemetry/streaming.cpp.o"
  "CMakeFiles/rwc_telemetry.dir/telemetry/streaming.cpp.o.d"
  "CMakeFiles/rwc_telemetry.dir/telemetry/version.cpp.o"
  "CMakeFiles/rwc_telemetry.dir/telemetry/version.cpp.o.d"
  "librwc_telemetry.a"
  "librwc_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwc_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
