
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/analysis.cpp" "src/CMakeFiles/rwc_telemetry.dir/telemetry/analysis.cpp.o" "gcc" "src/CMakeFiles/rwc_telemetry.dir/telemetry/analysis.cpp.o.d"
  "/root/repo/src/telemetry/detect.cpp" "src/CMakeFiles/rwc_telemetry.dir/telemetry/detect.cpp.o" "gcc" "src/CMakeFiles/rwc_telemetry.dir/telemetry/detect.cpp.o.d"
  "/root/repo/src/telemetry/io.cpp" "src/CMakeFiles/rwc_telemetry.dir/telemetry/io.cpp.o" "gcc" "src/CMakeFiles/rwc_telemetry.dir/telemetry/io.cpp.o.d"
  "/root/repo/src/telemetry/snr_model.cpp" "src/CMakeFiles/rwc_telemetry.dir/telemetry/snr_model.cpp.o" "gcc" "src/CMakeFiles/rwc_telemetry.dir/telemetry/snr_model.cpp.o.d"
  "/root/repo/src/telemetry/streaming.cpp" "src/CMakeFiles/rwc_telemetry.dir/telemetry/streaming.cpp.o" "gcc" "src/CMakeFiles/rwc_telemetry.dir/telemetry/streaming.cpp.o.d"
  "/root/repo/src/telemetry/version.cpp" "src/CMakeFiles/rwc_telemetry.dir/telemetry/version.cpp.o" "gcc" "src/CMakeFiles/rwc_telemetry.dir/telemetry/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rwc_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
