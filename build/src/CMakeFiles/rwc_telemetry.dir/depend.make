# Empty dependencies file for rwc_telemetry.
# This may be replaced when dependencies are built.
