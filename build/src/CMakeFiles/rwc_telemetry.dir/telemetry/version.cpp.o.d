src/CMakeFiles/rwc_telemetry.dir/telemetry/version.cpp.o: \
 /root/repo/src/telemetry/version.cpp /usr/include/stdc-predef.h
