file(REMOVE_RECURSE
  "librwc_sim.a"
)
