src/CMakeFiles/rwc_sim.dir/sim/version.cpp.o: \
 /root/repo/src/sim/version.cpp /usr/include/stdc-predef.h
