# Empty compiler generated dependencies file for rwc_sim.
# This may be replaced when dependencies are built.
