file(REMOVE_RECURSE
  "CMakeFiles/rwc_sim.dir/sim/event.cpp.o"
  "CMakeFiles/rwc_sim.dir/sim/event.cpp.o.d"
  "CMakeFiles/rwc_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/rwc_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/rwc_sim.dir/sim/topology.cpp.o"
  "CMakeFiles/rwc_sim.dir/sim/topology.cpp.o.d"
  "CMakeFiles/rwc_sim.dir/sim/version.cpp.o"
  "CMakeFiles/rwc_sim.dir/sim/version.cpp.o.d"
  "CMakeFiles/rwc_sim.dir/sim/workload.cpp.o"
  "CMakeFiles/rwc_sim.dir/sim/workload.cpp.o.d"
  "librwc_sim.a"
  "librwc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
