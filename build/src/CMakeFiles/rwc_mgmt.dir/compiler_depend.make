# Empty compiler generated dependencies file for rwc_mgmt.
# This may be replaced when dependencies are built.
