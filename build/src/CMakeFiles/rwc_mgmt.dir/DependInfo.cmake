
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mgmt/config_model.cpp" "src/CMakeFiles/rwc_mgmt.dir/mgmt/config_model.cpp.o" "gcc" "src/CMakeFiles/rwc_mgmt.dir/mgmt/config_model.cpp.o.d"
  "/root/repo/src/mgmt/mib.cpp" "src/CMakeFiles/rwc_mgmt.dir/mgmt/mib.cpp.o" "gcc" "src/CMakeFiles/rwc_mgmt.dir/mgmt/mib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rwc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_te.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_bvt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
