file(REMOVE_RECURSE
  "CMakeFiles/rwc_mgmt.dir/mgmt/config_model.cpp.o"
  "CMakeFiles/rwc_mgmt.dir/mgmt/config_model.cpp.o.d"
  "CMakeFiles/rwc_mgmt.dir/mgmt/mib.cpp.o"
  "CMakeFiles/rwc_mgmt.dir/mgmt/mib.cpp.o.d"
  "librwc_mgmt.a"
  "librwc_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwc_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
