file(REMOVE_RECURSE
  "librwc_mgmt.a"
)
