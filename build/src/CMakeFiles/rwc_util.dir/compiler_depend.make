# Empty compiler generated dependencies file for rwc_util.
# This may be replaced when dependencies are built.
