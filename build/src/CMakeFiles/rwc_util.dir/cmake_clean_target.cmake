file(REMOVE_RECURSE
  "librwc_util.a"
)
