file(REMOVE_RECURSE
  "CMakeFiles/rwc_util.dir/util/ascii_plot.cpp.o"
  "CMakeFiles/rwc_util.dir/util/ascii_plot.cpp.o.d"
  "CMakeFiles/rwc_util.dir/util/check.cpp.o"
  "CMakeFiles/rwc_util.dir/util/check.cpp.o.d"
  "CMakeFiles/rwc_util.dir/util/p2_quantile.cpp.o"
  "CMakeFiles/rwc_util.dir/util/p2_quantile.cpp.o.d"
  "CMakeFiles/rwc_util.dir/util/rng.cpp.o"
  "CMakeFiles/rwc_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/rwc_util.dir/util/stats.cpp.o"
  "CMakeFiles/rwc_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/rwc_util.dir/util/table.cpp.o"
  "CMakeFiles/rwc_util.dir/util/table.cpp.o.d"
  "CMakeFiles/rwc_util.dir/util/units.cpp.o"
  "CMakeFiles/rwc_util.dir/util/units.cpp.o.d"
  "librwc_util.a"
  "librwc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
