// Figure 2a: CDFs of two SNR-variation metrics over the full fleet — the
// width of the 95% highest-density region and the max-min range.
// Paper anchors: HDR < 2 dB for 83% of links; ranges are much wider
// (dramatic but infrequent changes).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "telemetry/analysis.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  const int fibers = bench::fibers_from_args(argc, argv);
  bench::print_header("Figure 2a: CDF of SNR variation (" +
                      std::to_string(fibers * 40) + " links, 2.5 years)");

  const auto fleet = bench::make_fleet(fibers);
  const auto report = telemetry::analyze_fleet(
      fleet, optical::ModulationTable::standard(), util::Gbps{100.0});

  const util::EmpiricalCdf hdr_cdf(report.hdr_width_db);
  const util::EmpiricalCdf range_cdf(report.range_db);
  const std::vector<std::pair<std::string, const util::EmpiricalCdf*>>
      series = {{"HDR (95%)", &hdr_cdf}, {"Range (max-min)", &range_cdf}};
  std::cout << util::plot_cdfs(series, 84, 18, "SNR variation (dB)");

  util::TextTable rows({"metric", "p50", "p83", "p95", "mean"});
  auto add = [&](const std::string& name, const util::EmpiricalCdf& cdf,
                 const std::vector<double>& raw) {
    rows.add_row({name, util::format_double(cdf.value_at(0.50), 2),
                  util::format_double(cdf.value_at(0.83), 2),
                  util::format_double(cdf.value_at(0.95), 2),
                  util::format_double(util::summarize(raw).mean, 2)});
  };
  add("HDR width (dB)", hdr_cdf, report.hdr_width_db);
  add("Range (dB)", range_cdf, report.range_db);
  rows.print(std::cout);

  const double narrow = hdr_cdf.fraction_at_or_below(2.0);
  std::cout << "\nHDR(95%) below 2 dB:  " << util::format_percent(narrow)
            << "   (paper: 83%)\n";
  std::cout << "Mean SNR range:       "
            << util::format_double(util::summarize(report.range_db).mean, 1)
            << " dB (paper: ~12 dB)\n";
  return 0;
}
