// Figure 1: SNR over time of 40 optical wavelengths on one WAN fiber cable,
// with the feasible-capacity thresholds as horizontal reference lines.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "optical/modulation.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  bench::print_header(
      "Figure 1: SNR of 40 wavelengths on one WAN fiber (2.5 years)");

  const auto fleet = bench::make_fleet(bench::fibers_from_args(argc, argv, 1));
  const auto table = optical::ModulationTable::standard();
  const int kFiber = 0;
  const int lambdas = fleet.wavelengths_per_fiber();

  // Downsample one representative wavelength to daily minima for the plot
  // (the paper's plot shows dips; minima preserve them).
  const auto trace = fleet.generate_trace(kFiber, 0);
  const auto per_day = static_cast<std::size_t>(util::kDay / trace.interval);
  std::vector<double> daily_min;
  for (std::size_t i = 0; i + per_day <= trace.size(); i += per_day) {
    double lowest = trace.at(i).value;
    for (std::size_t j = i; j < i + per_day; ++j)
      lowest = std::min(lowest, trace.at(j).value);
    daily_min.push_back(lowest);
  }
  std::cout << "Wavelength 0, daily minimum SNR (dB):\n"
            << util::plot_series(daily_min, 96, 16, "day", "SNR dB");

  std::cout << "\nCapacity thresholds (dashed lines in the paper):\n";
  util::TextTable thresholds({"capacity", "required SNR"});
  for (const auto& format : table.formats())
    thresholds.add_row(
        {util::format_double(format.capacity.value, 0) + " Gbps",
         util::format_double(format.min_snr.value, 1) + " dB"});
  thresholds.print(std::cout);

  std::cout << "\nPer-wavelength summary on this fiber:\n";
  util::TextTable summary(
      {"lambda", "mean dB", "min dB", "max dB", "range dB", "dips<6.5dB"});
  for (int lambda = 0; lambda < lambdas; ++lambda) {
    const auto t = fleet.generate_trace(kFiber, lambda);
    std::vector<double> samples(t.samples_db.begin(), t.samples_db.end());
    const auto s = util::summarize(samples);
    std::size_t dips = 0;
    bool below = false;
    for (double v : samples) {
      const bool now_below = v < 6.5;
      if (now_below && !below) ++dips;
      below = now_below;
    }
    summary.add_row({std::to_string(lambda), util::format_double(s.mean, 2),
                     util::format_double(s.min, 2),
                     util::format_double(s.max, 2),
                     util::format_double(s.max - s.min, 2),
                     std::to_string(dips)});
  }
  summary.print(std::cout);
  std::cout << "\nObservation (paper): SNR is mostly stable with occasional"
               " correlated dips;\nall wavelengths sit well above the 6.5 dB"
               " threshold required for 100 Gbps.\n";
  return 0;
}
