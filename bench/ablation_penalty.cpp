// Ablation of the design choices DESIGN.md calls out:
//   1. penalty policy (zero / fixed / traffic-proportional),
//   2. unit weights (Fig. 7c) vs native metrics,
//   3. consolidation pass on/off,
//   4. plain vs gadget augmentation.
// Metric: upgrades (churn), disrupted traffic, penalty paid, throughput,
// over repeated TE rounds with shifting demands on Abilene.
#include <iostream>

#include "bench_common.hpp"
#include "core/controller.hpp"
#include "core/fixed_charge.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  (void)argc;
  (void)argv;
  bench::print_header("Ablation: penalty policy / weights / consolidation");

  const graph::Graph topology = sim::abilene();
  te::McfTe engine;
  const std::vector<util::Db> snr(topology.edge_count(), util::Db{14.0});

  struct Variant {
    std::string name;
    core::ControllerOptions options;
  };
  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "zero penalty";
    v.options.penalty = std::make_shared<core::ZeroPenalty>();
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "fixed penalty 10";
    v.options.penalty = std::make_shared<core::FixedPenalty>(10.0);
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "traffic-proportional";
    v.options.penalty = std::make_shared<core::TrafficProportionalPenalty>();
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "traffic-prop + unit weights";
    v.options.penalty = std::make_shared<core::TrafficProportionalPenalty>();
    v.options.augment.unit_weights = true;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "traffic-prop, no consolidation";
    v.options.penalty = std::make_shared<core::TrafficProportionalPenalty>();
    v.options.consolidate = false;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "traffic-prop + gadget";
    v.options.penalty = std::make_shared<core::TrafficProportionalPenalty>();
    v.options.augment.unsplittable_gadget = true;
    variants.push_back(v);
  }

  util::TextTable rows({"variant", "routed (mean)", "upgrades", "disrupted G",
                        "penalty paid"});
  for (const Variant& variant : variants) {
    core::DynamicCapacityController controller(
        topology, optical::ModulationTable::standard(), engine,
        variant.options);
    double routed = 0.0;
    std::size_t upgrades = 0;
    double disrupted = 0.0;
    double penalty = 0.0;
    const int kRounds = 8;
    for (int round = 0; round < kRounds; ++round) {
      util::Rng rng(static_cast<std::uint64_t>(round) * 31 + 5);
      sim::GravityParams gravity;
      gravity.total = util::Gbps{1200.0 + 300.0 * (round % 3)};
      const auto demands = sim::gravity_matrix(topology, gravity, rng);
      const auto report = controller.run_round(snr, demands);
      routed += report.total_routed.value;
      upgrades += report.plan.upgrades.size();
      for (const auto& change : report.plan.upgrades)
        disrupted += change.upgrade_traffic.value;
      penalty += report.total_penalty;
    }
    rows.add_row({variant.name, util::format_double(routed / kRounds, 0),
                  std::to_string(upgrades), util::format_double(disrupted, 0),
                  util::format_double(penalty, 0)});
  }
  rows.print(std::cout);
  // Per-unit-flow vs per-activation cost semantics on the Fig. 7 scenario.
  std::cout << "\nPer-unit (min-cost flow) vs fixed-charge (activation)"
               " semantics, Fig. 7 scenario:\n";
  {
    graph::Graph square = sim::fig7_square();
    const auto a = *square.find_node("A");
    const auto b = *square.find_node("B");
    const auto c = *square.find_node("C");
    const auto d = *square.find_node("D");
    const std::vector<core::VariableLink> variable = {
        {*square.find_edge(a, b), util::Gbps{200.0}},
        {*square.find_edge(c, d), util::Gbps{200.0}}};
    const te::TrafficMatrix demands = {{a, b, util::Gbps{125.0}, 0},
                                       {c, d, util::Gbps{125.0}, 0}};
    // Per-unit: the controller pipeline (consolidated).
    core::ControllerOptions options;
    options.snr_margin = util::Db{0.0};
    options.penalty = std::make_shared<core::FixedPenalty>(100.0);
    core::DynamicCapacityController controller(
        square, optical::ModulationTable::standard(), engine, options);
    std::vector<util::Db> square_snr(square.edge_count(), util::Db{7.5});
    for (const auto& link : variable) {
      square_snr[static_cast<std::size_t>(link.edge.value)] = util::Db{20.0};
      // Opposite direction of the same fiber.
      const auto& e = square.edge(link.edge);
      square_snr[static_cast<std::size_t>(
          square.find_edge(e.dst, e.src)->value)] = util::Db{20.0};
    }
    const auto report = controller.run_round(square_snr, demands);
    // Fixed-charge: 100 per activation, regardless of traffic.
    const std::vector<double> activation_costs = {100.0, 100.0};
    const auto fixed = core::solve_fixed_charge(
        square, variable, activation_costs, engine, demands);
    util::TextTable cmp({"semantics", "routed", "activations", "cost"});
    cmp.add_row({"per-unit flow (Theorem 1)",
                 util::format_double(report.total_routed.value, 0),
                 std::to_string(report.plan.upgrades.size()),
                 util::format_double(report.total_penalty, 0)});
    cmp.add_row({"fixed-charge (exact)",
                 util::format_double(fixed.routed.value, 0),
                 std::to_string(fixed.activated.size()),
                 util::format_double(fixed.activation_cost, 0)});
    cmp.print(std::cout);
  }

  std::cout << "\nReading: zero penalty maximizes disrupted traffic; the"
               " penalized policies\n(the paper suggests traffic-proportional)"
               " keep throughput while steering\nupgrades to less-loaded"
               " links; the consolidation pass removes gratuitous\n"
               "activations; the gadget trades a little splittable"
               " throughput for\nunsplittable-flow support.\n";
  return 0;
}
