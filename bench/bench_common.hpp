// Shared helpers for the figure-reproduction benches: the full-scale fleet
// (2000 links / 2.5 years, as in the paper) and output helpers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "telemetry/snr_model.hpp"
#include "util/ascii_plot.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rwc::bench {

inline constexpr std::uint64_t kFleetSeed = 20170701;

/// The paper-scale fleet: 50 fibers x 40 wavelengths = 2000 links, 2.5
/// years at 15-minute samples. Pass `fibers` (e.g. from argv) to scale the
/// run down for quick iterations.
inline telemetry::SnrFleetGenerator make_fleet(int fibers = 50) {
  telemetry::SnrFleetGenerator::FleetParams params;
  params.fiber_count = fibers;
  params.wavelengths_per_fiber = 40;
  return telemetry::SnrFleetGenerator(params, kFleetSeed);
}

/// Parses an optional first CLI argument as the fiber count.
inline int fibers_from_args(int argc, char** argv, int fallback = 50) {
  if (argc > 1) {
    const int parsed = std::atoi(argv[1]);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace rwc::bench
