// Shared helpers for the figure-reproduction benches: the full-scale fleet
// (2000 links / 2.5 years, as in the paper) and output helpers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "telemetry/snr_model.hpp"
#include "util/ascii_plot.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rwc::bench {

inline constexpr std::uint64_t kFleetSeed = 20170701;

/// The paper-scale fleet: 50 fibers x 40 wavelengths = 2000 links, 2.5
/// years at 15-minute samples. Pass `fibers` (e.g. from argv) to scale the
/// run down for quick iterations.
inline telemetry::SnrFleetGenerator make_fleet(int fibers = 50) {
  telemetry::SnrFleetGenerator::FleetParams params;
  params.fiber_count = fibers;
  params.wavelengths_per_fiber = 40;
  return telemetry::SnrFleetGenerator(params, kFleetSeed);
}

/// Parses an optional first CLI argument as the fiber count.
inline int fibers_from_args(int argc, char** argv, int fallback = 50) {
  if (argc > 1) {
    const int parsed = std::atoi(argv[1]);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Removes "--json <path>" from (argc, argv) and returns the path ("" when
/// the flag is absent), so positional arguments like the fiber count keep
/// working regardless of flag position.
inline std::string strip_json_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int in = 1; in < argc; ++in) {
    if (std::string(argv[in]) == "--json" && in + 1 < argc) {
      path = argv[++in];
      continue;
    }
    argv[out++] = argv[in];
  }
  argc = out;
  return path;
}

/// RAII `--json <path>` support for bench binaries: strips the flag on
/// construction, and on scope exit dumps the global obs::Registry (every
/// metric the bench touched, per the docs/OBSERVABILITY.md contract) as
/// JSON to the requested path. Declare first in main():
///
///   int main(int argc, char** argv) {
///     rwc::bench::JsonExportGuard json_guard(argc, argv);
///     ...
///   }
class JsonExportGuard {
 public:
  JsonExportGuard(int& argc, char** argv)
      : path_(strip_json_flag(argc, argv)) {}
  JsonExportGuard(const JsonExportGuard&) = delete;
  JsonExportGuard& operator=(const JsonExportGuard&) = delete;

  ~JsonExportGuard() {
    if (path_.empty()) return;
    try {
      obs::write_json_file(obs::Registry::global(), path_);
    } catch (const std::exception& e) {
      // Never throw from a destructor: a bad path (typo, missing directory)
      // must not abort the bench after it already ran.
      std::fprintf(stderr, "--json: %s\n", e.what());
    }
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace rwc::bench
