// Figure 6b: CDF of the time taken to change a fiber link's modulation in
// the testbed — 200 reconfigurations per procedure. Paper anchors: ~68 s
// average with today's laser power-cycling firmware ("Mod Change") vs
// ~35 ms when the laser stays on ("Efficient Mod Change").
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bvt/device.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  (void)argc;
  (void)argv;
  bench::print_header(
      "Figure 6b: modulation-change latency (200 trials per procedure)");

  const auto table = optical::ModulationTable::standard();
  const util::Gbps rates[] = {util::Gbps{100.0}, util::Gbps{150.0},
                              util::Gbps{200.0}};

  auto run_trials = [&](bvt::Procedure procedure) {
    bvt::BvtDevice device(table, 0xF16B);
    device.mdio_write(bvt::Register::kControl,
                      bvt::control::kLaserEnable | bvt::control::kTxEnable);
    device.set_link_snr(util::Db{16.0});
    std::vector<double> seconds;
    for (int trial = 0; trial < 200; ++trial) {
      const auto report = device.change_modulation(
          rates[static_cast<std::size_t>(trial % 3)], procedure);
      seconds.push_back(report.downtime);
    }
    return seconds;
  };

  const auto standard = run_trials(bvt::Procedure::kStandard);
  const auto efficient = run_trials(bvt::Procedure::kEfficient);

  // The paper plots the CDF on a log-time axis; do the same.
  std::vector<double> standard_log, efficient_log;
  for (double s : standard) standard_log.push_back(std::log10(s));
  for (double s : efficient) efficient_log.push_back(std::log10(s));
  const util::EmpiricalCdf standard_cdf(standard_log);
  const util::EmpiricalCdf efficient_cdf(efficient_log);
  const std::vector<std::pair<std::string, const util::EmpiricalCdf*>>
      series = {{"Mod Change (laser cycled)", &standard_cdf},
                {"Efficient Mod Change (laser on)", &efficient_cdf}};
  std::cout << util::plot_cdfs(series, 84, 16,
                               "log10(seconds)  [-2 = 10 ms, 2 = 100 s]");

  util::TextTable rows({"procedure", "mean", "median", "p95", "min", "max"});
  auto add = [&](const std::string& name, const std::vector<double>& raw) {
    const util::EmpiricalCdf cdf(raw);
    const auto summary = util::summarize(raw);
    auto fmt = [](double v) {
      return v >= 1.0 ? util::format_double(v, 1) + " s"
                      : util::format_double(v * 1000.0, 1) + " ms";
    };
    rows.add_row({name, fmt(summary.mean), fmt(cdf.value_at(0.5)),
                  fmt(cdf.value_at(0.95)), fmt(summary.min),
                  fmt(summary.max)});
  };
  add("standard (laser power-cycled)", standard);
  add("efficient (laser stays on)", efficient);
  rows.print(std::cout);

  std::cout << "\nPaper: 68 s average today vs 35 ms with the efficient"
               " procedure -> hitless\ncapacity changes are within reach of"
               " current hardware.\n";
  return 0;
}
