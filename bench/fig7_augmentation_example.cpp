// Figure 7: the graph-abstraction walk-through. Square topology A,B,C,D;
// demands A->B and C->D grow from 100 to 125 Gbps; links (A,B) and (C,D)
// have SNR headroom to double. With <capacity, cost> fake links and a
// penalty of 100, the penalty-minimizing solution increases the capacity of
// only ONE link (7b). With unit weights, flows stay on one-hop paths at the
// price of more upgrades (7c).
#include <iostream>

#include "bench_common.hpp"
#include "core/controller.hpp"
#include "graph/dot.hpp"
#include "sim/topology.hpp"
#include "te/cspf.hpp"
#include "te/mcf_te.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  using namespace util::literals;
  (void)argc;
  (void)argv;
  bench::print_header("Figure 7: augmentation on the square topology");

  graph::Graph base = sim::fig7_square();
  const auto a = *base.find_node("A");
  const auto b = *base.find_node("B");
  const auto c = *base.find_node("C");
  const auto d = *base.find_node("D");

  const te::TrafficMatrix demands = {{a, b, 125_Gbps, 0},
                                     {c, d, 125_Gbps, 0}};
  // Only the A-B and C-D fibers have the SNR for 200 G.
  std::vector<util::Db> snr(base.edge_count(), util::Db{7.5});
  for (graph::EdgeId e :
       {*base.find_edge(a, b), *base.find_edge(b, a), *base.find_edge(c, d),
        *base.find_edge(d, c)})
    snr[static_cast<std::size_t>(e.value)] = util::Db{20.0};

  te::McfTe mcf;
  te::CspfTe cspf;

  auto run_case = [&](const std::string& label, const te::TeAlgorithm& engine,
                      core::ControllerOptions options) {
    options.snr_margin = 0_dB;
    core::DynamicCapacityController controller(
        base, optical::ModulationTable::standard(), engine, options);
    const auto report = controller.run_round(snr, demands);
    std::cout << label << ":\n";
    util::TextTable rows({"metric", "value"});
    rows.add_row({"routed",
                  util::format_double(report.total_routed.value, 0) +
                      " / 250 Gbps"});
    rows.add_row({"links upgraded",
                  std::to_string(report.plan.upgrades.size())});
    rows.add_row({"penalty paid",
                  util::format_double(report.total_penalty, 0)});
    for (const auto& change : report.plan.upgrades)
      rows.add_row(
          {"  upgrade",
           base.node_name(base.edge(change.edge).src) + "->" +
               base.node_name(base.edge(change.edge).dst) + "  " +
               util::format_double(change.from.value, 0) + "G -> " +
               util::format_double(change.to.value, 0) + "G (carries " +
               util::format_double(change.upgrade_traffic.value, 0) + "G)"});
    for (const auto& routing : report.plan.physical_assignment.routings)
      for (const auto& [path, volume] : routing.paths)
        rows.add_row({"  flow " + base.node_name(routing.demand.src) + "->" +
                          base.node_name(routing.demand.dst),
                      util::format_double(volume.value, 0) + "G via " +
                          graph::path_to_string(base, path)});
    rows.print(std::cout);
    std::cout << '\n';
  };

  // 7b: penalty 100 on capacity changes, min-cost engine, consolidation on.
  core::ControllerOptions penalized;
  penalized.penalty = std::make_shared<core::FixedPenalty>(100.0);
  run_case("Fig. 7b  (penalty 100, few increases)", mcf, penalized);

  // 7c: unit weights with a shortest-path engine — short paths at all
  // costs, even if more links change capacity.
  core::ControllerOptions short_paths;
  short_paths.penalty = std::make_shared<core::FixedPenalty>(1.0);
  short_paths.augment.unit_weights = true;
  short_paths.consolidate = false;
  run_case("Fig. 7c  (unit weights, short paths, CSPF engine)", cspf,
           short_paths);

  std::cout << "Augmented topology of Fig. 7b in DOT (fake links carry the"
               " penalty label):\n";
  std::vector<core::VariableLink> variable = {
      {*base.find_edge(a, b), 200_Gbps}, {*base.find_edge(c, d), 200_Gbps}};
  const auto augmented = core::augment_topology(
      base, variable, core::FixedPenalty{100.0});
  std::cout << graph::to_dot(augmented.graph, "fig7b") << '\n';
  return 0;
}
