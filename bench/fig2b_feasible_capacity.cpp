// Figure 2b: CDF of feasible link capacity when links are modulated
// according to their signal quality (HDR lower bound). Paper anchors: 80%
// of links feasible at >= 175 Gbps; aggregate gain ~145 Tbps over ~2000
// links at 100 Gbps static.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "telemetry/analysis.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  const int fibers = bench::fibers_from_args(argc, argv);
  const int links = fibers * 40;
  bench::print_header("Figure 2b: feasible capacity CDF (" +
                      std::to_string(links) + " links)");

  const auto table = optical::ModulationTable::standard();
  const auto fleet = bench::make_fleet(fibers);
  const auto report =
      telemetry::analyze_fleet(fleet, table, util::Gbps{100.0});

  const util::EmpiricalCdf cdf(report.feasible_gbps);
  const std::vector<std::pair<std::string, const util::EmpiricalCdf*>>
      series = {{"Feasible capacity", &cdf}};
  std::cout << util::plot_cdfs(series, 84, 16, "Capacity (Gbps)");

  util::TextTable rows({"capacity", "links at this rate", "share",
                        "cumulative >= rate"});
  for (const auto& format : table.formats()) {
    const auto exact = std::count(report.feasible_gbps.begin(),
                                  report.feasible_gbps.end(),
                                  format.capacity.value);
    const auto at_least =
        std::count_if(report.feasible_gbps.begin(), report.feasible_gbps.end(),
                      [&](double f) { return f >= format.capacity.value; });
    rows.add_row(
        {util::format_double(format.capacity.value, 0) + " Gbps",
         std::to_string(exact),
         util::format_percent(static_cast<double>(exact) / links),
         util::format_percent(static_cast<double>(at_least) / links)});
  }
  rows.print(std::cout);

  const double frac175 = 1.0 - cdf.fraction_at_or_below(174.9);
  const double projected_tbps =
      report.total_gain.value / links * 2000.0 / 1000.0;
  std::cout << "\nLinks feasible at >= 175 Gbps: "
            << util::format_percent(frac175) << "  (paper: 80%)\n";
  std::cout << "Aggregate capacity gain:       "
            << util::format_double(report.total_gain.value / 1000.0, 1)
            << " Tbps over " << links << " links; scaled to 2000 links: "
            << util::format_double(projected_tbps, 0)
            << " Tbps (paper: 145 Tbps)\n";
  return 0;
}
