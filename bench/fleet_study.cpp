// Fleet-scale deployment study (docs/FLEET.md, EXPERIMENTS.md §2 table).
//
// Runs a sharded fleet of sampled WAN instances through the full
// replay/controller pipeline and prints the paper-shaped deployment
// numbers: the per-link capability CDF over the modulation ladder (§2.1),
// the fraction of failure events retaining crawl capacity (§2.2), and the
// incremental re-solve hot-path economics (hit rate, rounds/sec, median
// stable-round speedup).
//
// Flags:
//   --instances N    fleet size (default 1000)
//   --shards N       shard count (default 8; results are invariant)
//   --rounds N       TE rounds per instance (default 96)
//   --seed N         fleet seed (default 20170701, the repo's pinned seed)
//   --engine mcf|swan
//   --faults SPEC    arm a fault plan (RWC_FAULTS grammar) around the run;
//                    parallel-keyed sites only (docs/FLEET.md)
//   --full           disable the incremental hot path
//   --json PATH      dump the obs registry (fleet.*, solver.incremental_*)
//   --study-json PATH  dump the DeploymentStudy JSON (EXPERIMENTS.md table)
//   --selfcheck      differential + speedup gate (exits non-zero on any
//                    divergence between incremental and full re-solve, on
//                    shard-count variance, or when the median stable-round
//                    speedup falls below 2x); used by the tier2 ctest
//
// The --selfcheck fixture is deliberately small so the registered ctest
// stays in seconds; the full study is the default invocation.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/registry.hpp"
#include "fleet/fleet.hpp"
#include "fleet/study.hpp"
#include "obs/timer.hpp"
#include "replay/driver.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace {

using rwc::fleet::DeploymentStudy;
using rwc::fleet::FleetConfig;
using rwc::fleet::FleetResult;

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Round-resolved probe of the incremental hot path: one instance-shaped
/// replay run twice over identical inputs — full re-solve, then
/// incremental — comparing every round's wall time and result. Returns
/// the median speedup over the rounds the incremental arm served from the
/// memo (the "stable-SNR rounds"); `identical` reports whether every
/// round's signature content matched bitwise.
struct ProbeResult {
  double stable_round_speedup = 0.0;
  std::uint64_t stable_rounds = 0;
  std::uint64_t rounds = 0;
  bool identical = true;
};

ProbeResult probe_speedup(std::uint64_t seed, std::uint64_t rounds) {
  rwc::util::Rng rng = rwc::util::Rng::stream(seed, 1);
  rwc::graph::Graph topology = rwc::sim::waxman(10, rng);
  rwc::sim::GravityParams gravity;
  gravity.total =
      rwc::util::Gbps{topology.total_capacity().value * 0.5};
  const rwc::te::TrafficMatrix demands =
      rwc::sim::gravity_matrix(topology, gravity, rng);

  rwc::replay::ReplayConfig config;
  config.rounds = rounds;
  config.diurnal = false;  // stable demands: the hot path's home turf
  config.hysteresis = rwc::core::HysteresisParams{};  // see FleetConfig
  config.seed = rwc::util::Rng::stream(seed, 2).next_u64();

  struct Round {
    double seconds = 0.0;
    std::uint64_t chain = 0.0;
    bool hit = false;
  };
  const auto run_arm = [&](bool incremental) {
    rwc::replay::ReplayConfig arm_config = config;
    arm_config.incremental = incremental;
    rwc::te::McfTe engine;
    rwc::replay::ReplayDriver driver(topology, engine, demands, arm_config);
    std::vector<Round> out;
    out.reserve(rounds);
    while (!driver.done()) {
      const auto report = driver.step();
      out.push_back(Round{report.stats.total_seconds,
                          driver.signature_chain(),
                          report.stats.incremental_hit});
    }
    return out;
  };

  const std::vector<Round> full = run_arm(false);
  const std::vector<Round> incremental = run_arm(true);

  ProbeResult result;
  result.rounds = rounds;
  std::vector<double> full_stable;
  std::vector<double> incremental_stable;
  for (std::size_t r = 0; r < full.size(); ++r) {
    if (full[r].chain != incremental[r].chain) result.identical = false;
    if (!incremental[r].hit) continue;
    full_stable.push_back(full[r].seconds);
    incremental_stable.push_back(incremental[r].seconds);
  }
  result.stable_rounds = full_stable.size();
  const double incremental_median = median(incremental_stable);
  if (incremental_median > 0.0)
    result.stable_round_speedup = median(full_stable) / incremental_median;
  return result;
}

std::optional<std::string> arg_value(int argc, char** argv,
                                     const char* flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::string(argv[i + 1]);
  return std::nullopt;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

void print_study(const DeploymentStudy& study, double rounds_per_sec) {
  std::printf("instances          %llu\n",
              static_cast<unsigned long long>(study.instances));
  std::printf("links              %llu\n",
              static_cast<unsigned long long>(study.links));
  std::printf("capability CDF (fraction of links at or above):\n");
  for (const auto& point : study.capability_cdf)
    std::printf("  >= %5.0f Gbps    %6.1f%%\n", point.rate_gbps,
                100.0 * point.fraction);
  std::printf("potential gain     %.1f Tbps total, %.1f Gbps/link mean\n",
              study.total_gain_gbps / 1000.0, study.mean_gain_gbps);
  std::printf("failure events     %llu (%llu retained crawl: %.1f%%)\n",
              static_cast<unsigned long long>(study.failure_events),
              static_cast<unsigned long long>(study.crawl_retained_events),
              100.0 * study.crawl_retention_fraction);
  std::printf("availability       %.4f\n", study.availability);
  std::printf("delivered fraction %.4f\n", study.delivered_fraction);
  std::printf("rounds             %llu (%.1f rounds/sec)\n",
              static_cast<unsigned long long>(study.total_rounds),
              rounds_per_sec);
  std::printf("incremental hits   %llu (%.1f%% of rounds)\n",
              static_cast<unsigned long long>(study.incremental_hits),
              100.0 * study.incremental_hit_rate);
}

}  // namespace

int main(int argc, char** argv) {
  rwc::bench::JsonExportGuard json_guard(argc, argv);

  FleetConfig config;
  config.instances = 1000;
  config.shards = 8;
  config.rounds = 96;
  config.seed = rwc::bench::kFleetSeed;
  const bool selfcheck = has_flag(argc, argv, "--selfcheck");
  if (selfcheck) {
    // Small fixture: the gate must run in seconds under ctest.
    config.instances = 8;
    config.rounds = 12;
    config.shards = 2;
  }
  if (const auto v = arg_value(argc, argv, "--instances"))
    config.instances = static_cast<std::size_t>(std::stoull(*v));
  if (const auto v = arg_value(argc, argv, "--shards"))
    config.shards = static_cast<std::size_t>(std::stoull(*v));
  if (const auto v = arg_value(argc, argv, "--rounds"))
    config.rounds = std::stoull(*v);
  if (const auto v = arg_value(argc, argv, "--seed"))
    config.seed = std::stoull(*v);
  if (const auto v = arg_value(argc, argv, "--engine"))
    config.engine = (*v == "swan") ? rwc::fleet::EngineKind::kSwan
                                   : rwc::fleet::EngineKind::kMcf;
  config.incremental = !has_flag(argc, argv, "--full");

  std::optional<rwc::fault::ScopedPlan> fault_plan;
  if (const auto v = arg_value(argc, argv, "--faults"))
    fault_plan.emplace(rwc::fault::FaultPlan::parse(*v));

  rwc::bench::print_header("Fleet deployment study (Run, Walk, Crawl §2)");

  // Hot-path probe: round-resolved differential + speedup measurement.
  const ProbeResult probe = probe_speedup(config.seed, 48);
  std::printf("hot-path probe     %llu/%llu stable rounds, median speedup "
              "%.2fx, results %s\n",
              static_cast<unsigned long long>(probe.stable_rounds),
              static_cast<unsigned long long>(probe.rounds),
              probe.stable_round_speedup,
              probe.identical ? "bit-identical" : "DIVERGED");

  const rwc::obs::StopWatch watch;
  const FleetResult fleet = rwc::fleet::run_fleet(config);
  const double seconds = watch.seconds();
  const double rounds_per_sec =
      seconds > 0.0 ? static_cast<double>(fleet.total_rounds) / seconds : 0.0;
  const DeploymentStudy study = rwc::fleet::build_study(fleet);

  std::printf("fleet chain        %016llx\n",
              static_cast<unsigned long long>(fleet.fleet_chain));
  print_study(study, rounds_per_sec);

  // Snapshot gauges for the BENCH_fleet.json CI artifact (--json).
  auto& registry = rwc::obs::Registry::global();
  registry.gauge("fleet.study.rounds_per_sec").set(rounds_per_sec);
  registry.gauge("fleet.study.stable_round_speedup")
      .set(probe.stable_round_speedup);

  if (const auto v = arg_value(argc, argv, "--study-json")) {
    std::ofstream out(*v);
    out << rwc::fleet::to_json(study);
  }

  if (!selfcheck) return 0;

  // --selfcheck: the acceptance gates, exercised on the small fixture.
  int failures = 0;
  const auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "selfcheck FAILED: %s\n", what);
      ++failures;
    }
  };
  expect(probe.identical,
         "incremental rounds bit-identical to full re-solve");
  expect(probe.stable_rounds > 0, "probe saw stable rounds");
  expect(probe.stable_round_speedup >= 2.0,
         "median stable-round speedup >= 2x");

  // Shard-count and hot-path invariance of the whole fleet.
  FleetConfig reshard = config;
  reshard.shards = config.shards == 1 ? 4 : 1;
  expect(rwc::fleet::run_fleet(reshard).fleet_chain == fleet.fleet_chain,
         "fleet chain invariant to shard count");
  FleetConfig full_config = config;
  full_config.incremental = !config.incremental;
  expect(rwc::fleet::run_fleet(full_config).fleet_chain == fleet.fleet_chain,
         "fleet chain invariant to incremental flag");
  return failures == 0 ? 0 : 1;
}
