// Fleet-scale deployment study (docs/FLEET.md, EXPERIMENTS.md §2 table).
//
// Runs a sharded fleet of sampled WAN instances through the full
// replay/controller pipeline and prints the paper-shaped deployment
// numbers: the per-link capability CDF over the modulation ladder (§2.1),
// the fraction of failure events retaining crawl capacity (§2.2), and the
// incremental re-solve hot-path economics (hit rate, rounds/sec, median
// stable-round speedup).
//
// Flags:
//   --instances N    fleet size (default 1000)
//   --shards N       shard count (default 8; results are invariant)
//   --rounds N       TE rounds per instance (default 96)
//   --seed N         fleet seed (default 20170701, the repo's pinned seed)
//   --engine mcf|swan
//   --demand oracle|estimated
//                    demand source for every instance (docs/DEMAND.md):
//                    oracle feeds the true matrix, estimated closes the
//                    loop through link counters and the OD estimator
//   --demand-noise F relative counter noise for --demand estimated
//                    (default 0; the zero-noise fleet numbers match the
//                    oracle fleet numbers bit-for-bit)
//   --faults SPEC    arm a fault plan (RWC_FAULTS grammar) around the run;
//                    parallel-keyed sites only (docs/FLEET.md)
//   --full           disable the incremental hot path
//   --json PATH      dump the obs registry (fleet.*, solver.incremental_*)
//   --study-json PATH  dump the DeploymentStudy JSON (EXPERIMENTS.md table)
//   --selfcheck      differential + speedup gate (exits non-zero on any
//                    divergence between incremental and full re-solve, on
//                    shard-count variance, when the median stable-round
//                    speedup falls below 2x, or when the partial tier
//                    leaves perturbed rounds more than 2x slower than
//                    stable memo rounds); used by the tier2 ctest
//
// The --selfcheck fixture is deliberately small so the registered ctest
// stays in seconds; the full study is the default invocation.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/registry.hpp"
#include "fleet/fleet.hpp"
#include "fleet/study.hpp"
#include "obs/timer.hpp"
#include "replay/driver.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace {

using rwc::fleet::DeploymentStudy;
using rwc::fleet::FleetConfig;
using rwc::fleet::FleetResult;

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Round-resolved probe of the re-solve ladder (docs/SOLVERS.md): one
/// instance-shaped replay run twice over identical inputs — full re-solve,
/// then incremental with the partial tier — comparing every round's wall
/// time and result. Rounds split three ways in the warm arm: stable
/// (memo-served), perturbed (missed the memo with few dirty links — the
/// partial tier's case, classified at <= 5% dirty), and reconfigured
/// (everything else). `identical` reports whether every round's signature
/// content matched bitwise.
struct ProbeResult {
  double stable_round_speedup = 0.0;
  std::uint64_t stable_rounds = 0;
  /// Median full-arm / warm-arm wall time over the perturbed rounds: what
  /// the dirty-subgraph re-solve saves versus solving those rounds cold.
  double perturbed_round_speedup = 0.0;
  /// Median perturbed-round latency over median stable-round latency in
  /// the warm arm: how close "little changed" comes to "nothing changed".
  double perturbed_vs_stable_ratio = 0.0;
  std::uint64_t perturbed_rounds = 0;
  /// Perturbed rounds whose solve engaged the partial tier.
  std::uint64_t partial_rounds = 0;
  std::uint64_t rounds = 0;
  bool identical = true;
};

ProbeResult probe_speedup(std::uint64_t seed, std::uint64_t rounds) {
  rwc::util::Rng rng = rwc::util::Rng::stream(seed, 1);
  rwc::graph::Graph topology = rwc::sim::waxman(24, rng);
  rwc::sim::GravityParams gravity;
  gravity.total =
      rwc::util::Gbps{topology.total_capacity().value * 0.5};
  const rwc::te::TrafficMatrix demands =
      rwc::sim::gravity_matrix(topology, gravity, rng);

  rwc::replay::ReplayConfig config;
  config.rounds = rounds;
  config.diurnal = false;  // stable demands: the hot path's home turf
  config.hysteresis = rwc::core::HysteresisParams{};  // see FleetConfig
  config.seed = rwc::util::Rng::stream(seed, 2).next_u64();

  struct Round {
    double seconds = 0.0;
    std::uint64_t chain = 0.0;
    bool hit = false;
    bool partial = false;
    double dirty_fraction = 0.0;
  };
  const auto run_arm = [&](bool incremental) {
    rwc::replay::ReplayConfig arm_config = config;
    arm_config.incremental = incremental;
    rwc::te::McfTe::Options options;
    options.partial_repair = incremental;  // the warm arm carries the tier
    rwc::te::McfTe engine(options);
    rwc::replay::ReplayDriver driver(topology, engine, demands, arm_config);
    std::vector<Round> out;
    out.reserve(rounds);
    while (!driver.done()) {
      const auto report = driver.step();
      out.push_back(Round{report.stats.total_seconds,
                          driver.signature_chain(),
                          report.stats.incremental_hit,
                          report.stats.partial_resolve,
                          report.stats.dirty_fraction});
    }
    return out;
  };

  const std::vector<Round> full = run_arm(false);
  const std::vector<Round> incremental = run_arm(true);

  ProbeResult result;
  result.rounds = rounds;
  std::vector<double> full_stable;
  std::vector<double> incremental_stable;
  std::vector<double> full_perturbed;
  std::vector<double> incremental_perturbed;
  for (std::size_t r = 0; r < full.size(); ++r) {
    if (full[r].chain != incremental[r].chain) result.identical = false;
    if (incremental[r].hit) {
      full_stable.push_back(full[r].seconds);
      incremental_stable.push_back(incremental[r].seconds);
    } else if (incremental[r].dirty_fraction > 0.0 &&
               incremental[r].dirty_fraction <= 0.05) {
      full_perturbed.push_back(full[r].seconds);
      incremental_perturbed.push_back(incremental[r].seconds);
      if (incremental[r].partial) ++result.partial_rounds;
    }
  }
  result.stable_rounds = full_stable.size();
  result.perturbed_rounds = full_perturbed.size();
  const double incremental_median = median(incremental_stable);
  if (incremental_median > 0.0)
    result.stable_round_speedup = median(full_stable) / incremental_median;
  const double perturbed_median = median(incremental_perturbed);
  if (perturbed_median > 0.0)
    result.perturbed_round_speedup = median(full_perturbed) / perturbed_median;
  if (incremental_median > 0.0)
    result.perturbed_vs_stable_ratio = perturbed_median / incremental_median;
  return result;
}

/// Solver-level ladder probe (docs/SOLVERS.md): the same TE round solved
/// three ways — exact memo replay (nothing changed), dirty-solve through
/// the partial tier (one link's capacity moved, <5% of links dirty), and
/// fully cold. The acceptance bar lives here: a perturbed round's solve
/// must land within 2x of the memo replay, because the partial tier
/// replays the recorded augmenting paths and only pays a verification
/// overlay on the dirty arcs.
struct SolverProbe {
  double memo_seconds = 0.0;
  double perturbed_seconds = 0.0;
  double cold_seconds = 0.0;
  double dirty_fraction = 0.0;
  std::uint64_t repairs = 0;
  std::uint64_t rollbacks = 0;

  double perturbed_vs_memo() const {
    return memo_seconds > 0.0 ? perturbed_seconds / memo_seconds : 0.0;
  }
  double perturbed_speedup() const {
    return perturbed_seconds > 0.0 ? cold_seconds / perturbed_seconds : 0.0;
  }
};

SolverProbe probe_solver_ladder(std::uint64_t seed) {
  rwc::util::Rng rng = rwc::util::Rng::stream(seed, 3);
  rwc::graph::Graph topology = rwc::sim::waxman(48, rng);
  rwc::sim::GravityParams gravity;
  gravity.total = rwc::util::Gbps{topology.total_capacity().value * 0.5};
  const rwc::te::TrafficMatrix demands =
      rwc::sim::gravity_matrix(topology, gravity, rng);

  // One link's capacity steps UP 25% — the walk->run upgrade a capacity
  // flip produces, and well under the 5% dirty bar. A step up is
  // support-preserving on arcs the recorded paths left slack, so the
  // repair path verifies without rollbacks; step-downs exercise the
  // divergent-bottleneck and rollback branches instead
  // (tests/test_flow_partial.cpp covers those).
  rwc::graph::Graph perturbed = topology;
  rwc::graph::Edge& edge = perturbed.edge(rwc::graph::EdgeId{0});
  edge.capacity = rwc::util::Gbps{edge.capacity.value * 1.25};

  const rwc::te::McfTe engine;
  engine.solve(topology, demands);  // cold: records every demand's paths
  const auto recordings = engine.warm_cache().snapshot();

  constexpr int kReps = 9;
  const auto timed_median = [&](auto&& body) {
    std::vector<double> seconds;
    seconds.reserve(kReps);
    for (int rep = 0; rep < kReps; ++rep) {
      const rwc::obs::StopWatch watch;
      body();
      seconds.push_back(watch.seconds());
    }
    return median(std::move(seconds));
  };

  SolverProbe result;
  result.dirty_fraction =
      1.0 / static_cast<double>(topology.edge_count());
  result.memo_seconds =
      timed_median([&] { engine.solve(topology, demands); });

  auto& registry = rwc::obs::Registry::global();
  const std::uint64_t repairs0 =
      registry.counter("solver.partial_repairs").value();
  const std::uint64_t rollbacks0 =
      registry.counter("solver.partial_rollbacks").value();
  // Restoring the recordings before each rep keeps every solve on the
  // repair path (a repair rewrites its recording for the perturbed
  // network; without the restore, later reps would be exact replays).
  // The restore itself is harness bookkeeping, so it stays outside the
  // watch.
  {
    std::vector<double> seconds;
    seconds.reserve(kReps);
    for (int rep = 0; rep < kReps; ++rep) {
      engine.warm_cache().restore(recordings);
      const rwc::obs::StopWatch watch;
      engine.solve(perturbed, demands);
      seconds.push_back(watch.seconds());
    }
    result.perturbed_seconds = median(std::move(seconds));
  }
  result.repairs = registry.counter("solver.partial_repairs").value() -
                   repairs0;
  result.rollbacks = registry.counter("solver.partial_rollbacks").value() -
                     rollbacks0;

  rwc::te::McfTe::Options cold_options;
  cold_options.warm_start = false;
  const rwc::te::McfTe cold_engine(cold_options);
  result.cold_seconds =
      timed_median([&] { cold_engine.solve(perturbed, demands); });
  return result;
}

std::optional<std::string> arg_value(int argc, char** argv,
                                     const char* flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::string(argv[i + 1]);
  return std::nullopt;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

void print_study(const DeploymentStudy& study, double rounds_per_sec) {
  std::printf("instances          %llu\n",
              static_cast<unsigned long long>(study.instances));
  std::printf("links              %llu\n",
              static_cast<unsigned long long>(study.links));
  std::printf("capability CDF (fraction of links at or above):\n");
  for (const auto& point : study.capability_cdf)
    std::printf("  >= %5.0f Gbps    %6.1f%%\n", point.rate_gbps,
                100.0 * point.fraction);
  std::printf("potential gain     %.1f Tbps total, %.1f Gbps/link mean\n",
              study.total_gain_gbps / 1000.0, study.mean_gain_gbps);
  std::printf("failure events     %llu (%llu retained crawl: %.1f%%)\n",
              static_cast<unsigned long long>(study.failure_events),
              static_cast<unsigned long long>(study.crawl_retained_events),
              100.0 * study.crawl_retention_fraction);
  std::printf("availability       %.4f\n", study.availability);
  std::printf("delivered fraction %.4f\n", study.delivered_fraction);
  std::printf("rounds             %llu (%.1f rounds/sec)\n",
              static_cast<unsigned long long>(study.total_rounds),
              rounds_per_sec);
  std::printf("incremental hits   %llu (%.1f%% of rounds)\n",
              static_cast<unsigned long long>(study.incremental_hits),
              100.0 * study.incremental_hit_rate);
  std::printf("partial re-solves  %llu (%.1f%% of memo misses)\n",
              static_cast<unsigned long long>(study.partial_rounds),
              100.0 * study.partial_hit_rate);
}

}  // namespace

int main(int argc, char** argv) {
  rwc::bench::JsonExportGuard json_guard(argc, argv);

  FleetConfig config;
  config.instances = 1000;
  config.shards = 8;
  config.rounds = 96;
  config.seed = rwc::bench::kFleetSeed;
  const bool selfcheck = has_flag(argc, argv, "--selfcheck");
  if (selfcheck) {
    // Small fixture: the gate must run in seconds under ctest.
    config.instances = 8;
    config.rounds = 12;
    config.shards = 2;
  }
  if (const auto v = arg_value(argc, argv, "--instances"))
    config.instances = static_cast<std::size_t>(std::stoull(*v));
  if (const auto v = arg_value(argc, argv, "--shards"))
    config.shards = static_cast<std::size_t>(std::stoull(*v));
  if (const auto v = arg_value(argc, argv, "--rounds"))
    config.rounds = std::stoull(*v);
  if (const auto v = arg_value(argc, argv, "--seed"))
    config.seed = std::stoull(*v);
  if (const auto v = arg_value(argc, argv, "--engine"))
    config.engine = (*v == "swan") ? rwc::fleet::EngineKind::kSwan
                                   : rwc::fleet::EngineKind::kMcf;
  if (const auto v = arg_value(argc, argv, "--demand"))
    config.demand.source = (*v == "estimated")
                               ? rwc::demand::DemandSource::kEstimated
                               : rwc::demand::DemandSource::kOracle;
  if (const auto v = arg_value(argc, argv, "--demand-noise"))
    config.demand.noise = std::stod(*v);
  config.incremental = !has_flag(argc, argv, "--full");

  std::optional<rwc::fault::ScopedPlan> fault_plan;
  if (const auto v = arg_value(argc, argv, "--faults"))
    fault_plan.emplace(rwc::fault::FaultPlan::parse(*v));

  rwc::bench::print_header("Fleet deployment study (Run, Walk, Crawl §2)");

  // Hot-path probe: round-resolved differential + speedup measurement.
  const ProbeResult probe = probe_speedup(config.seed, 48);
  std::printf("hot-path probe     %llu/%llu stable rounds, median speedup "
              "%.2fx, results %s\n",
              static_cast<unsigned long long>(probe.stable_rounds),
              static_cast<unsigned long long>(probe.rounds),
              probe.stable_round_speedup,
              probe.identical ? "bit-identical" : "DIVERGED");
  std::printf("perturbed rounds   %llu (<=5%% dirty; %llu partial-tier), "
              "median speedup %.2fx vs full, %.2fx stable-round latency\n",
              static_cast<unsigned long long>(probe.perturbed_rounds),
              static_cast<unsigned long long>(probe.partial_rounds),
              probe.perturbed_round_speedup,
              probe.perturbed_vs_stable_ratio);

  // Solver-level ladder: where the 2x perturbed-vs-memo contract is
  // provable (controller rounds add consolidation trials on top, which
  // dominate any memo-miss round regardless of how the solve was served).
  const SolverProbe ladder = probe_solver_ladder(config.seed);
  std::printf("solver ladder      memo %.0fus, perturbed %.0fus (%.2fx memo, "
              "%.1f%% dirty), cold %.0fus (%.2fx speedup), %llu repairs / "
              "%llu rollbacks\n",
              ladder.memo_seconds * 1e6, ladder.perturbed_seconds * 1e6,
              ladder.perturbed_vs_memo(), 100.0 * ladder.dirty_fraction,
              ladder.cold_seconds * 1e6, ladder.perturbed_speedup(),
              static_cast<unsigned long long>(ladder.repairs),
              static_cast<unsigned long long>(ladder.rollbacks));

  const rwc::obs::StopWatch watch;
  const FleetResult fleet = rwc::fleet::run_fleet(config);
  const double seconds = watch.seconds();
  const double rounds_per_sec =
      seconds > 0.0 ? static_cast<double>(fleet.total_rounds) / seconds : 0.0;
  const DeploymentStudy study = rwc::fleet::build_study(fleet);

  std::printf("fleet chain        %016llx\n",
              static_cast<unsigned long long>(fleet.fleet_chain));
  print_study(study, rounds_per_sec);

  // Snapshot gauges for the BENCH_fleet.json CI artifact (--json).
  auto& registry = rwc::obs::Registry::global();
  registry.gauge("fleet.study.rounds_per_sec").set(rounds_per_sec);
  registry.gauge("fleet.study.stable_round_speedup")
      .set(probe.stable_round_speedup);
  registry.gauge("fleet.study.partial_hit_rate").set(fleet.partial_hit_rate());
  registry.gauge("fleet.study.perturbed_round_speedup")
      .set(ladder.perturbed_speedup());
  registry.gauge("fleet.study.perturbed_vs_memo_ratio")
      .set(ladder.perturbed_vs_memo());

  if (const auto v = arg_value(argc, argv, "--study-json")) {
    std::ofstream out(*v);
    out << rwc::fleet::to_json(study);
  }

  if (!selfcheck) return 0;

  // --selfcheck: the acceptance gates, exercised on the small fixture.
  int failures = 0;
  const auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "selfcheck FAILED: %s\n", what);
      ++failures;
    }
  };
  expect(probe.identical,
         "incremental rounds bit-identical to full re-solve");
  expect(probe.stable_rounds > 0, "probe saw stable rounds");
  expect(probe.stable_round_speedup >= 2.0,
         "median stable-round speedup >= 2x");
  expect(probe.perturbed_rounds > 0, "probe saw perturbed rounds");
  // The ladder's latency gate is part of the partial tier's contract, so
  // it only applies while the tier is on; with RWC_PARTIAL_RESOLVE=0 the
  // perturbed arm deliberately solves cold (docs/SOLVERS.md §4) and the
  // selfcheck must still pass — the flag changes timing, never verdicts.
  if (rwc::util::env_flag("RWC_PARTIAL_RESOLVE", true)) {
    expect(ladder.repairs > 0,
           "solver ladder probe exercised the repair path");
    expect(ladder.perturbed_vs_memo() <= 2.0,
           "perturbed solves (<=5% dirty) within 2x of memo replay latency");
  }

  // The partial flag must be invisible to results, like the incremental
  // flag below.
  FleetConfig no_partial = config;
  no_partial.partial = !config.partial;
  expect(rwc::fleet::run_fleet(no_partial).fleet_chain == fleet.fleet_chain,
         "fleet chain invariant to partial flag");

  // Shard-count and hot-path invariance of the whole fleet.
  FleetConfig reshard = config;
  reshard.shards = config.shards == 1 ? 4 : 1;
  expect(rwc::fleet::run_fleet(reshard).fleet_chain == fleet.fleet_chain,
         "fleet chain invariant to shard count");
  FleetConfig full_config = config;
  full_config.incremental = !config.incremental;
  expect(rwc::fleet::run_fleet(full_config).fleet_chain == fleet.fleet_chain,
         "fleet chain invariant to incremental flag");
  return failures == 0 ? 0 : 1;
}
