// google-benchmark microbenchmarks: solver and abstraction scaling on
// Waxman random WANs (25..200 nodes). Establishes that the augmentation
// layer adds negligible cost on top of the TE solve itself.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "obs/registry.hpp"
#include "core/augment.hpp"
#include "core/controller.hpp"
#include "core/translate.hpp"
#include "exec/thread_pool.hpp"
#include "flow/graph_adapter.hpp"
#include "flow/maxflow.hpp"
#include "flow/mincost.hpp"
#include "graph/ksp.hpp"
#include "lp/simplex.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"
#include "telemetry/analysis.hpp"
#include "telemetry/streaming.hpp"
#include "util/rng.hpp"

namespace {

using namespace rwc;

graph::Graph make_topology(int nodes, std::uint64_t seed) {
  // Stream 0 of a seed is bit-identical to Rng(seed), so the topologies
  // match the pre-split benchmarks exactly.
  util::Rng rng = util::Rng::stream(seed, 0);
  return sim::waxman(nodes, rng);
}

std::vector<core::VariableLink> every_other_link(const graph::Graph& g) {
  std::vector<core::VariableLink> variable;
  for (graph::EdgeId e : g.edge_ids())
    if (e.value % 2 == 0)
      variable.push_back({e, g.edge(e).capacity + util::Gbps{100.0}});
  return variable;
}

void BM_MaxFlowDinic(benchmark::State& state) {
  const auto g = make_topology(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    auto view = flow::make_network(g);
    benchmark::DoNotOptimize(
        flow::max_flow_dinic(view.net, 0, static_cast<int>(g.node_count()) - 1));
  }
  state.SetLabel(std::to_string(g.edge_count()) + " edges");
}
BENCHMARK(BM_MaxFlowDinic)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_MinCostMaxFlow(benchmark::State& state) {
  auto g = make_topology(static_cast<int>(state.range(0)), 2);
  util::Rng rng(3);
  for (graph::EdgeId e : g.edge_ids()) g.edge(e).cost = rng.uniform(0.0, 5.0);
  for (auto _ : state) {
    auto view = flow::make_network(g);
    benchmark::DoNotOptimize(flow::min_cost_max_flow(
        view.net, 0, static_cast<int>(g.node_count()) - 1));
  }
}
BENCHMARK(BM_MinCostMaxFlow)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_KShortestPaths(benchmark::State& state) {
  const auto g = make_topology(static_cast<int>(state.range(0)), 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::k_shortest_paths(
        g, graph::NodeId{0},
        graph::NodeId{static_cast<std::int32_t>(g.node_count()) - 1}, 4));
}
BENCHMARK(BM_KShortestPaths)->Arg(25)->Arg(50)->Arg(100);

void BM_Augmentation(benchmark::State& state) {
  const auto g = make_topology(static_cast<int>(state.range(0)), 5);
  const auto variable = every_other_link(g);
  const core::TrafficProportionalPenalty penalty;
  const std::vector<double> traffic(g.edge_count(), 20.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::augment_topology(g, variable, penalty, traffic));
  state.SetLabel(std::to_string(variable.size()) + " variable links");
}
BENCHMARK(BM_Augmentation)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_McfTeRound(benchmark::State& state) {
  const auto g = make_topology(static_cast<int>(state.range(0)), 6);
  util::Rng rng(7);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{g.total_capacity().value / 3.0};
  gravity.sparsity = 0.9;  // a few dozen demands
  const auto demands = sim::gravity_matrix(g, gravity, rng);
  const te::McfTe engine;
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.solve(g, demands));
  state.SetLabel(std::to_string(demands.size()) + " demands");
}
BENCHMARK(BM_McfTeRound)->Arg(25)->Arg(50)->Arg(100);

void BM_AugmentSolveTranslate(benchmark::State& state) {
  const auto g = make_topology(static_cast<int>(state.range(0)), 8);
  const auto variable = every_other_link(g);
  const core::TrafficProportionalPenalty penalty;
  util::Rng rng(9);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{g.total_capacity().value / 2.0};
  gravity.sparsity = 0.9;
  const auto demands = sim::gravity_matrix(g, gravity, rng);
  const te::McfTe engine;
  for (auto _ : state) {
    const auto augmented = core::augment_topology(g, variable, penalty);
    const auto assignment = engine.solve(augmented.graph, demands);
    benchmark::DoNotOptimize(
        core::translate_assignment(g, augmented, variable, assignment));
  }
}
BENCHMARK(BM_AugmentSolveTranslate)->Arg(25)->Arg(50)->Arg(100);

void BM_SwanLpRound(benchmark::State& state) {
  const auto g = make_topology(static_cast<int>(state.range(0)), 10);
  util::Rng rng(11);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{g.total_capacity().value / 3.0};
  gravity.sparsity = 0.93;
  const auto demands = sim::gravity_matrix(g, gravity, rng);
  const te::SwanTe engine;
  for (auto _ : state) benchmark::DoNotOptimize(engine.solve(g, demands));
  state.SetLabel(std::to_string(demands.size()) + " demands");
}
BENCHMARK(BM_SwanLpRound)->Arg(25)->Arg(50);

// Exact (sort-based HDR) vs streaming (P-square) per-link analysis.
telemetry::SnrTrace perf_trace(int days) {
  telemetry::SnrFleetGenerator::FleetParams params;
  params.fiber_count = 1;
  params.wavelengths_per_fiber = 1;
  params.duration = days * util::kDay;
  return telemetry::SnrFleetGenerator(params, 42).generate_trace(0, 0);
}

void BM_AnalyzeLinkExact(benchmark::State& state) {
  const auto trace = perf_trace(static_cast<int>(state.range(0)));
  const auto table = optical::ModulationTable::standard();
  for (auto _ : state)
    benchmark::DoNotOptimize(telemetry::analyze_link(trace, table));
  state.SetLabel(std::to_string(trace.size()) + " samples");
}
BENCHMARK(BM_AnalyzeLinkExact)->Arg(30)->Arg(180)->Arg(912);

void BM_AnalyzeLinkStreaming(benchmark::State& state) {
  const auto trace = perf_trace(static_cast<int>(state.range(0)));
  const auto table = optical::ModulationTable::standard();
  for (auto _ : state) {
    telemetry::StreamingLinkAnalyzer analyzer;
    analyzer.add(trace);
    benchmark::DoNotOptimize(analyzer.stats(table));
  }
  state.SetLabel(std::to_string(trace.size()) + " samples");
}
BENCHMARK(BM_AnalyzeLinkStreaming)->Arg(30)->Arg(180)->Arg(912);

// Controller-round setup shared by the pool-sweep and warm-start variants:
// a loaded Waxman WAN with SNR headroom everywhere, so every round has
// variable links, upgrades and a real consolidation pass.
struct ControllerRoundFixture {
  graph::Graph g;
  te::TrafficMatrix demands;
  std::vector<util::Db> snr;

  explicit ControllerRoundFixture(int nodes) : g(make_topology(nodes, 6)) {
    util::Rng rng = util::Rng::stream(7, 0);
    sim::GravityParams gravity;
    gravity.total = util::Gbps{g.total_capacity().value / 2.0};
    gravity.sparsity = 0.9;
    demands = sim::gravity_matrix(g, gravity, rng);
    snr.assign(g.edge_count(), util::Db{20.0});
  }
};

// Full controller round (augment -> solve -> translate -> consolidate) at
// pool sizes 1..8. Warm starts off so the timing isolates the speculative-
// wave consolidation scaling; the chosen plan is identical at every size.
void BM_ControllerRound(benchmark::State& state) {
  const ControllerRoundFixture fixture(static_cast<int>(state.range(0)));
  te::McfTe::Options engine_options;
  engine_options.warm_start = false;
  const te::McfTe engine(engine_options);
  exec::ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  core::ControllerOptions options;
  options.pool = &pool;
  std::uint64_t evaluations = 0;
  for (auto _ : state) {
    core::DynamicCapacityController controller(
        fixture.g, optical::ModulationTable::standard(), engine, options);
    const auto report = controller.run_round(fixture.snr, fixture.demands);
    evaluations = report.stats.evaluations;
    benchmark::DoNotOptimize(report.total_routed.value);
  }
  state.SetLabel(std::to_string(state.range(1)) + " threads, " +
                 std::to_string(evaluations) + " evals");
}
BENCHMARK(BM_ControllerRound)
    ->Args({50, 1})
    ->Args({50, 2})
    ->Args({50, 4})
    ->Args({50, 8})
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Args({100, 8});

// Warm-started vs cold min-cost solves across repeated controller rounds at
// pool size 1: the engine (and its replay cache) persists across
// iterations, so every round after the first hits recorded augmenting-path
// sequences. Identical plans either way; only the time differs.
// Consolidation is off so the rounds exercise the steady-state re-solve
// path the warm start targets (recurring per-demand networks); trial
// evaluations during consolidation each build one-shot networks that no
// bounded cache can usefully retain (docs/CONCURRENCY.md, "Warm starts").
void BM_ControllerRoundWarm(benchmark::State& state) {
  const ControllerRoundFixture fixture(static_cast<int>(state.range(0)));
  te::McfTe::Options engine_options;
  engine_options.warm_start = state.range(1) != 0;
  const te::McfTe engine(engine_options);
  exec::ThreadPool pool(1);
  core::ControllerOptions options;
  options.pool = &pool;
  options.consolidate = false;
  {
    // Untimed warm-up round: populates the engine's replay cache with this
    // round's augmenting-path recordings (steady-state controller rounds
    // re-solve recurring networks). A no-op for the cold arm.
    core::DynamicCapacityController controller(
        fixture.g, optical::ModulationTable::standard(), engine, options);
    benchmark::DoNotOptimize(
        controller.run_round(fixture.snr, fixture.demands).total_routed);
  }
  for (auto _ : state) {
    core::DynamicCapacityController controller(
        fixture.g, optical::ModulationTable::standard(), engine, options);
    benchmark::DoNotOptimize(
        controller.run_round(fixture.snr, fixture.demands).total_routed);
  }
  state.SetLabel(state.range(1) != 0 ? "warm" : "cold");
}
BENCHMARK(BM_ControllerRoundWarm)
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({100, 0})
    ->Args({100, 1});

// Four-policy simulator sweep through sim::run_scenarios at pool sizes
// 1..8. Scenario results are positionally ordered and identical at every
// pool size.
void BM_ScenarioSweep(benchmark::State& state) {
  const graph::Graph topology = sim::abilene();
  util::Rng rng = util::Rng::stream(42, 1);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{topology.total_capacity().value / 2.0};
  const auto demands = sim::gravity_matrix(topology, gravity, rng);
  const te::McfTe engine;
  std::vector<sim::Scenario> scenarios;
  for (sim::CapacityPolicy policy :
       {sim::CapacityPolicy::kStatic, sim::CapacityPolicy::kStaticAggressive,
        sim::CapacityPolicy::kDynamic,
        sim::CapacityPolicy::kDynamicHitless}) {
    sim::SimulationConfig config;
    config.horizon = 6.0 * util::kHour;
    config.te_interval = 30.0 * util::kMinute;
    config.policy = policy;
    config.seed = 1701;
    scenarios.push_back({sim::to_string(policy), config});
  }
  exec::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto results =
        sim::run_scenarios(topology, engine, demands, scenarios, &pool);
    benchmark::DoNotOptimize(results.front().metrics.delivered_gbps_hours);
  }
  state.SetLabel(std::to_string(scenarios.size()) + " scenarios, " +
                 std::to_string(state.range(0)) + " threads");
}
BENCHMARK(BM_ScenarioSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Solver-ladder microbenchmark (docs/SOLVERS.md): one recorded mincost
/// solve, re-served three ways. kReplay replays it exactly on the pristine
/// network (the memo rung). kRepair steps `dirty` forward arcs OFF the
/// recorded augmenting paths up 25% — support-preserving, so every
/// iteration verifies on the repair rung with zero rollbacks — and solves
/// the perturbed network warm. kCold solves the same perturbed network
/// with the warm path disabled (the full rung).
enum class RepairArm { kReplay, kRepair, kCold };

void partial_repair_bench(benchmark::State& state, std::size_t dirty,
                          RepairArm arm) {
  auto g = make_topology(100, 17);
  util::Rng rng(18);
  for (graph::EdgeId e : g.edge_ids()) g.edge(e).cost = rng.uniform(0.0, 5.0);
  const int sink = static_cast<int>(g.node_count()) - 1;

  auto view = flow::make_network(g);
  const std::vector<double> pristine = view.net.residuals();
  flow::MinCostWarmStart recorded;
  flow::min_cost_max_flow(view.net, 0, sink,
                          std::numeric_limits<double>::infinity(), &recorded);

  std::vector<bool> on_path(view.net.arc_count(), false);
  for (const auto& aug : recorded.augmentations)
    for (const int arc : aug.arcs) {
      on_path[static_cast<std::size_t>(arc)] = true;
      on_path[static_cast<std::size_t>(arc ^ 1)] = true;
    }
  std::vector<double> perturbed = pristine;
  std::size_t dirtied = 0;
  for (std::size_t arc = 0; arc + 1 < perturbed.size() && dirtied < dirty;
       arc += 2) {
    if (on_path[arc] || on_path[arc + 1] || perturbed[arc] <= 0.0) continue;
    perturbed[arc] *= 1.25;
    ++dirtied;
  }

  const std::vector<double>& start =
      arm == RepairArm::kReplay ? pristine : perturbed;
  auto& registry = obs::Registry::global();
  const std::uint64_t repairs0 =
      registry.counter("solver.partial_repairs").value();
  const std::uint64_t rollbacks0 =
      registry.counter("solver.partial_rollbacks").value();

  flow::MinCostWarmStart warm;
  for (auto _ : state) {
    // A successful repair rewrites the recording for the perturbed
    // network, so the pre-iteration reset (untimed) is what keeps every
    // iteration on the same ladder rung.
    state.PauseTiming();
    view.net.restore_residuals(start);
    if (arm != RepairArm::kCold) warm = recorded;
    state.ResumeTiming();
    benchmark::DoNotOptimize(flow::min_cost_max_flow(
        view.net, 0, sink, std::numeric_limits<double>::infinity(),
        arm == RepairArm::kCold ? nullptr : &warm));
  }

  const auto per_iter = [&](std::uint64_t delta) {
    return static_cast<double>(delta) /
           static_cast<double>(state.iterations());
  };
  state.counters["dirty_arcs"] = static_cast<double>(dirtied);
  state.counters["repairs/iter"] =
      per_iter(registry.counter("solver.partial_repairs").value() - repairs0);
  state.counters["rollbacks/iter"] = per_iter(
      registry.counter("solver.partial_rollbacks").value() - rollbacks0);
  state.SetLabel(std::to_string(view.net.arc_count()) + " arcs");
}

void BM_MinCostExactReplay(benchmark::State& state) {
  partial_repair_bench(state, 0, RepairArm::kReplay);
}
BENCHMARK(BM_MinCostExactReplay);

void BM_MinCostPartialRepair(benchmark::State& state) {
  partial_repair_bench(state, static_cast<std::size_t>(state.range(0)),
                       RepairArm::kRepair);
}
BENCHMARK(BM_MinCostPartialRepair)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_MinCostPerturbedCold(benchmark::State& state) {
  partial_repair_bench(state, static_cast<std::size_t>(state.range(0)),
                       RepairArm::kCold);
}
BENCHMARK(BM_MinCostPerturbedCold)->Arg(4);

void BM_SimplexDense(benchmark::State& state) {
  // Random feasible LP: n variables, n/2 constraints.
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(13);
  lp::LpProblem problem(lp::Sense::kMaximize);
  for (int v = 0; v < n; ++v)
    problem.add_variable(rng.uniform(0.5, 2.0), rng.uniform(5.0, 20.0));
  for (int r = 0; r < n / 2; ++r) {
    std::vector<lp::Term> terms;
    for (int v = 0; v < n; ++v)
      if (rng.bernoulli(0.3)) terms.push_back({v, rng.uniform(0.1, 1.0)});
    if (!terms.empty())
      problem.add_constraint(std::move(terms), lp::Relation::kLessEqual,
                             rng.uniform(10.0, 50.0));
  }
  for (auto _ : state) benchmark::DoNotOptimize(problem.solve());
}
BENCHMARK(BM_SimplexDense)->Arg(50)->Arg(100)->Arg(200);

}  // namespace

// Expanded BENCHMARK_MAIN with `--json <path>` support: after the benchmark
// run, the solver/TE metrics the runs accumulated in the global
// obs::Registry (flow.*, lp.*, te.* — see docs/OBSERVABILITY.md) are dumped
// as machine-readable JSON for perf-trajectory tracking.
int main(int argc, char** argv) {
  rwc::bench::JsonExportGuard json_guard(argc, argv);
  // `--perturb k`: register an extra BM_MinCostPartialRepair instance at
  // exactly k dirty links, alongside the built-in 1/2/4/8 sweep. Stripped
  // before google-benchmark sees the argument list.
  int perturb = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--perturb") != 0) continue;
    perturb = std::atoi(argv[i + 1]);
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    break;
  }
  static std::string perturb_name;
  if (perturb > 0) {
    perturb_name = "BM_MinCostPartialRepair/perturb:" + std::to_string(perturb);
    benchmark::RegisterBenchmark(
        perturb_name.c_str(),
        [perturb](benchmark::State& state) {
          partial_repair_bench(state, static_cast<std::size_t>(perturb),
                               RepairArm::kRepair);
        });
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
