// google-benchmark microbenchmarks: solver and abstraction scaling on
// Waxman random WANs (25..200 nodes). Establishes that the augmentation
// layer adds negligible cost on top of the TE solve itself.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/augment.hpp"
#include "core/translate.hpp"
#include "flow/graph_adapter.hpp"
#include "flow/maxflow.hpp"
#include "flow/mincost.hpp"
#include "graph/ksp.hpp"
#include "lp/simplex.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"
#include "telemetry/analysis.hpp"
#include "telemetry/streaming.hpp"
#include "util/rng.hpp"

namespace {

using namespace rwc;

graph::Graph make_topology(int nodes, std::uint64_t seed) {
  util::Rng rng(seed);
  return sim::waxman(nodes, rng);
}

std::vector<core::VariableLink> every_other_link(const graph::Graph& g) {
  std::vector<core::VariableLink> variable;
  for (graph::EdgeId e : g.edge_ids())
    if (e.value % 2 == 0)
      variable.push_back({e, g.edge(e).capacity + util::Gbps{100.0}});
  return variable;
}

void BM_MaxFlowDinic(benchmark::State& state) {
  const auto g = make_topology(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    auto view = flow::make_network(g);
    benchmark::DoNotOptimize(
        flow::max_flow_dinic(view.net, 0, static_cast<int>(g.node_count()) - 1));
  }
  state.SetLabel(std::to_string(g.edge_count()) + " edges");
}
BENCHMARK(BM_MaxFlowDinic)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_MinCostMaxFlow(benchmark::State& state) {
  auto g = make_topology(static_cast<int>(state.range(0)), 2);
  util::Rng rng(3);
  for (graph::EdgeId e : g.edge_ids()) g.edge(e).cost = rng.uniform(0.0, 5.0);
  for (auto _ : state) {
    auto view = flow::make_network(g);
    benchmark::DoNotOptimize(flow::min_cost_max_flow(
        view.net, 0, static_cast<int>(g.node_count()) - 1));
  }
}
BENCHMARK(BM_MinCostMaxFlow)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_KShortestPaths(benchmark::State& state) {
  const auto g = make_topology(static_cast<int>(state.range(0)), 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::k_shortest_paths(
        g, graph::NodeId{0},
        graph::NodeId{static_cast<std::int32_t>(g.node_count()) - 1}, 4));
}
BENCHMARK(BM_KShortestPaths)->Arg(25)->Arg(50)->Arg(100);

void BM_Augmentation(benchmark::State& state) {
  const auto g = make_topology(static_cast<int>(state.range(0)), 5);
  const auto variable = every_other_link(g);
  const core::TrafficProportionalPenalty penalty;
  const std::vector<double> traffic(g.edge_count(), 20.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::augment_topology(g, variable, penalty, traffic));
  state.SetLabel(std::to_string(variable.size()) + " variable links");
}
BENCHMARK(BM_Augmentation)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_McfTeRound(benchmark::State& state) {
  const auto g = make_topology(static_cast<int>(state.range(0)), 6);
  util::Rng rng(7);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{g.total_capacity().value / 3.0};
  gravity.sparsity = 0.9;  // a few dozen demands
  const auto demands = sim::gravity_matrix(g, gravity, rng);
  const te::McfTe engine;
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.solve(g, demands));
  state.SetLabel(std::to_string(demands.size()) + " demands");
}
BENCHMARK(BM_McfTeRound)->Arg(25)->Arg(50)->Arg(100);

void BM_AugmentSolveTranslate(benchmark::State& state) {
  const auto g = make_topology(static_cast<int>(state.range(0)), 8);
  const auto variable = every_other_link(g);
  const core::TrafficProportionalPenalty penalty;
  util::Rng rng(9);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{g.total_capacity().value / 2.0};
  gravity.sparsity = 0.9;
  const auto demands = sim::gravity_matrix(g, gravity, rng);
  const te::McfTe engine;
  for (auto _ : state) {
    const auto augmented = core::augment_topology(g, variable, penalty);
    const auto assignment = engine.solve(augmented.graph, demands);
    benchmark::DoNotOptimize(
        core::translate_assignment(g, augmented, variable, assignment));
  }
}
BENCHMARK(BM_AugmentSolveTranslate)->Arg(25)->Arg(50)->Arg(100);

void BM_SwanLpRound(benchmark::State& state) {
  const auto g = make_topology(static_cast<int>(state.range(0)), 10);
  util::Rng rng(11);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{g.total_capacity().value / 3.0};
  gravity.sparsity = 0.93;
  const auto demands = sim::gravity_matrix(g, gravity, rng);
  const te::SwanTe engine;
  for (auto _ : state) benchmark::DoNotOptimize(engine.solve(g, demands));
  state.SetLabel(std::to_string(demands.size()) + " demands");
}
BENCHMARK(BM_SwanLpRound)->Arg(25)->Arg(50);

// Exact (sort-based HDR) vs streaming (P-square) per-link analysis.
telemetry::SnrTrace perf_trace(int days) {
  telemetry::SnrFleetGenerator::FleetParams params;
  params.fiber_count = 1;
  params.wavelengths_per_fiber = 1;
  params.duration = days * util::kDay;
  return telemetry::SnrFleetGenerator(params, 42).generate_trace(0, 0);
}

void BM_AnalyzeLinkExact(benchmark::State& state) {
  const auto trace = perf_trace(static_cast<int>(state.range(0)));
  const auto table = optical::ModulationTable::standard();
  for (auto _ : state)
    benchmark::DoNotOptimize(telemetry::analyze_link(trace, table));
  state.SetLabel(std::to_string(trace.size()) + " samples");
}
BENCHMARK(BM_AnalyzeLinkExact)->Arg(30)->Arg(180)->Arg(912);

void BM_AnalyzeLinkStreaming(benchmark::State& state) {
  const auto trace = perf_trace(static_cast<int>(state.range(0)));
  const auto table = optical::ModulationTable::standard();
  for (auto _ : state) {
    telemetry::StreamingLinkAnalyzer analyzer;
    analyzer.add(trace);
    benchmark::DoNotOptimize(analyzer.stats(table));
  }
  state.SetLabel(std::to_string(trace.size()) + " samples");
}
BENCHMARK(BM_AnalyzeLinkStreaming)->Arg(30)->Arg(180)->Arg(912);

void BM_SimplexDense(benchmark::State& state) {
  // Random feasible LP: n variables, n/2 constraints.
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(13);
  lp::LpProblem problem(lp::Sense::kMaximize);
  for (int v = 0; v < n; ++v)
    problem.add_variable(rng.uniform(0.5, 2.0), rng.uniform(5.0, 20.0));
  for (int r = 0; r < n / 2; ++r) {
    std::vector<lp::Term> terms;
    for (int v = 0; v < n; ++v)
      if (rng.bernoulli(0.3)) terms.push_back({v, rng.uniform(0.1, 1.0)});
    if (!terms.empty())
      problem.add_constraint(std::move(terms), lp::Relation::kLessEqual,
                             rng.uniform(10.0, 50.0));
  }
  for (auto _ : state) benchmark::DoNotOptimize(problem.solve());
}
BENCHMARK(BM_SimplexDense)->Arg(50)->Arg(100)->Arg(200);

}  // namespace

// Expanded BENCHMARK_MAIN with `--json <path>` support: after the benchmark
// run, the solver/TE metrics the runs accumulated in the global
// obs::Registry (flow.*, lp.*, te.* — see docs/OBSERVABILITY.md) are dumped
// as machine-readable JSON for perf-trajectory tracking.
int main(int argc, char** argv) {
  rwc::bench::JsonExportGuard json_guard(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
