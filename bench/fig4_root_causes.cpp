// Figure 4: root-cause analysis of 250 unplanned failure tickets over seven
// months — (a) share of outage duration, (b) share of events, (c) CDF of the
// lowest SNR at failure. Paper anchors: maintenance-coincident 25% of
// events / 20% of duration; fiber cuts 5% / 10%; >90% of events are not
// cuts; ~25% of failures keep SNR >= 3 dB (=> 50 Gbps viable).
#include <iostream>

#include "bench_common.hpp"
#include "tickets/analysis.hpp"
#include "tickets/generator.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  (void)argc;
  (void)argv;
  bench::print_header(
      "Figure 4: failure-ticket root causes (250 events / 7 months)");

  const auto tickets =
      tickets::generate_tickets(tickets::TicketModelParams{}, 20171130);
  const auto breakdown = tickets::breakdown_by_cause(tickets);
  const auto table = optical::ModulationTable::standard();
  const auto opportunity = tickets::opportunity_report(tickets, table);

  util::TextTable rows(
      {"root cause", "events", "event share", "duration h", "duration share"});
  for (tickets::RootCause cause : tickets::kAllRootCauses) {
    std::size_t index = 0;
    for (std::size_t i = 0; i < 5; ++i)
      if (tickets::kAllRootCauses[i] == cause) index = i;
    rows.add_row({tickets::to_string(cause),
                  std::to_string(breakdown.event_count[index]),
                  util::format_percent(breakdown.event_share(cause)),
                  util::format_double(breakdown.total_duration_hours[index], 0),
                  util::format_percent(breakdown.duration_share(cause))});
  }
  rows.print(std::cout);

  std::cout << "\nFigure 4c: CDF of lowest SNR at link failure\n";
  const util::EmpiricalCdf snr_cdf(opportunity.lowest_snr_db);
  const std::vector<std::pair<std::string, const util::EmpiricalCdf*>>
      series = {{"lowest SNR at failure", &snr_cdf}};
  std::cout << util::plot_cdfs(series, 72, 14, "SNR (dB)");

  std::cout << "\nOpportunity area (paper Section 2.2):\n";
  std::cout << "  Non-fiber-cut events:            "
            << util::format_percent(opportunity.non_cut_event_fraction)
            << "  (paper: >90%)\n";
  std::cout << "  Failures with SNR >= 3.0 dB:     "
            << util::format_percent(opportunity.recoverable_event_fraction)
            << "  (paper: ~25% -> avoidable at 50 Gbps)\n";
  std::cout << "  Outage hours convertible to 50G: "
            << util::format_double(opportunity.recoverable_outage_hours, 0)
            << " h\n";
  return 0;
}
