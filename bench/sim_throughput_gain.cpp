// Section 1/4 simulation: "simulate the throughput gains from deploying our
// approach". Sweeps offered load on Abilene and the 24-node US WAN and
// compares delivered traffic under the four capacity policies, plus an
// engine cross-check at one operating point (Theorem 1: any unmodified TE
// engine benefits).
#include <iostream>

#include "bench_common.hpp"
#include "core/controller.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/b4.hpp"
#include "te/cspf.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  (void)argc;
  (void)argv;
  bench::print_header("Throughput gain of dynamic link capacities");

  te::McfTe mcf;

  const auto make_config = [](sim::CapacityPolicy policy) {
    sim::SimulationConfig config;
    config.horizon = 1.0 * util::kDay;
    config.te_interval = 30.0 * util::kMinute;
    config.policy = policy;
    config.seed = 1701;
    return config;
  };

  for (const auto& [name, topology] :
       {std::pair<std::string, graph::Graph>{"Abilene (11 nodes)",
                                             sim::abilene()},
        std::pair<std::string, graph::Graph>{"US-WAN (24 nodes)",
                                             sim::us_wan24()}}) {
    std::cout << "--- " << name << " ---\n";
    util::TextTable rows({"offered (x fabric)", "policy", "delivered",
                          "gain vs static", "upgrades", "availability"});
    const double fabric =
        topology.total_capacity().value / 2.0;  // one direction
    for (double scale : {0.5, 1.0, 1.5, 2.0}) {
      // Stream 0 is bit-identical to Rng(42): same demands as before the
      // splittable-stream migration.
      util::Rng rng = util::Rng::stream(42, 0);
      sim::GravityParams gravity;
      gravity.total = util::Gbps{fabric * scale};
      const auto demands = sim::gravity_matrix(topology, gravity, rng);
      // The three policy arms are independent simulations; run_scenarios
      // distributes them over the global pool with results in policy order
      // (identical at every pool size). The static arm doubles as the
      // baseline.
      std::vector<sim::Scenario> scenarios;
      for (sim::CapacityPolicy policy :
           {sim::CapacityPolicy::kStatic, sim::CapacityPolicy::kDynamic,
            sim::CapacityPolicy::kDynamicHitless})
        scenarios.push_back({sim::to_string(policy), make_config(policy)});
      const auto results =
          sim::run_scenarios(topology, mcf, demands, scenarios);
      const auto& baseline = results.front().metrics;
      for (const auto& [name, metrics] : results) {
        const double gain = baseline.delivered_gbps_hours > 0.0
                                ? metrics.delivered_gbps_hours /
                                          baseline.delivered_gbps_hours -
                                      1.0
                                : 0.0;
        rows.add_row({util::format_double(scale, 1) + "x", name,
                      util::format_percent(metrics.delivered_fraction()),
                      util::format_percent(gain),
                      std::to_string(metrics.upgrades),
                      util::format_percent(metrics.availability)});
      }
    }
    rows.print(std::cout);
    std::cout << '\n';
  }

  // Engine cross-check at 2x load on Abilene.
  std::cout << "--- Engine cross-check (Abilene, 2x load, one TE round,"
               " 20 dB SNR) ---\n";
  const graph::Graph abilene = sim::abilene();
  util::Rng rng = util::Rng::stream(42, 0);
  sim::GravityParams gravity;
  gravity.total = util::Gbps{abilene.total_capacity().value};
  const auto demands = sim::gravity_matrix(abilene, gravity, rng);
  const std::vector<util::Db> snr(abilene.edge_count(), util::Db{20.0});

  te::CspfTe cspf;
  te::SwanTe swan;
  te::B4Te b4;
  const std::vector<std::pair<std::string, te::TeAlgorithm*>> engines = {
      {"mcf", &mcf}, {"cspf", &cspf}, {"swan", &swan}, {"b4", &b4}};
  util::TextTable engine_rows(
      {"engine", "static routed", "dynamic routed", "gain", "upgrades"});
  for (const auto& [name, engine] : engines) {
    const auto static_assignment = engine->solve(abilene, demands);
    core::DynamicCapacityController controller(
        abilene, optical::ModulationTable::standard(), *engine,
        core::ControllerOptions{});
    const auto report = controller.run_round(snr, demands);
    engine_rows.add_row(
        {name,
         util::format_double(static_assignment.total_routed.value, 0) + " G",
         util::format_double(report.total_routed.value, 0) + " G",
         util::format_percent(report.total_routed.value /
                                  static_assignment.total_routed.value -
                              1.0),
         std::to_string(report.plan.upgrades.size())});
  }
  engine_rows.print(std::cout);
  std::cout << "\nShape to match the paper: dynamic wins under load, every"
               " unmodified engine\ngains, hitless reconfiguration removes"
               " the churn cost.\n";
  return 0;
}
