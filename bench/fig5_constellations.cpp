// Figure 5: constellation diagrams of the testbed link at its three
// modulations — QPSK (100 G), 8QAM (150 G), 16QAM (200 G) — with measured
// EVM and estimated pre-FEC BER at the link SNR.
#include <iostream>

#include "bench_common.hpp"
#include "bvt/constellation.hpp"
#include "optical/ber.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  (void)argc;
  (void)argv;
  bench::print_header(
      "Figure 5: testbed constellations (QPSK / 8QAM / 16QAM)");

  const auto table = optical::ModulationTable::standard();
  const util::Db link_snr{16.0};  // a healthy testbed link
  util::Rng rng(5);

  struct Row {
    const char* label;
    double rate;
    int points;
  };
  const Row rows[] = {{"(a) 100 Gbps DP-QPSK", 100.0, 4},
                      {"(b) 150 Gbps DP-8QAM", 150.0, 8},
                      {"(c) 200 Gbps DP-16QAM", 200.0, 16}};

  for (const Row& row : rows) {
    const auto& format = table.format_for(util::Gbps{row.rate});
    const auto ideal = bvt::ideal_constellation(row.points);
    const auto received =
        bvt::sample_constellation(row.points, link_snr, 6000, rng);
    std::cout << row.label << "  @ " << link_snr << "\n"
              << bvt::render_constellation(received, 33);
    std::cout << "  measured EVM: "
              << util::format_percent(bvt::measure_evm(received, ideal))
              << "   expected EVM: "
              << util::format_percent(optical::expected_evm(link_snr))
              << "   approx pre-FEC BER: "
              << optical::approx_ber(format, link_snr) << "\n\n";
  }
  std::cout << "All three formats lock at this SNR (FEC limit "
            << optical::kFecBerLimit << "); at lower SNR the denser"
            << " constellations blur first.\n";
  return 0;
}
