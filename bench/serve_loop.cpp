// Always-on control-plane serving loop (rwc::serve): concurrent
// snapshot-read throughput against a live round cadence (docs/SERVE.md;
// EXPERIMENTS.md "Always-on serving").
//
//   serve_loop [rounds] [--selfcheck] [--soak] [--json <path>]
//
// Default mode drives a ServeService with producer threads streaming
// telemetry and reader threads snapshotting the current PlanEpoch
// wait-free, and reports epoch-read QPS, read-latency quantiles and
// rounds/sec under churn.
//
// --selfcheck turns the bench into the PR's proof obligation:
//   A. determinism over the ingest log — a live concurrent run's recorded
//      log, replayed on fresh services at pool sizes {1, 2, 8}, must
//      reproduce the live signature chain bit-for-bit;
//   B. no torn epochs — every snapshot taken while publications race must
//      satisfy PlanEpoch::consistent() and observe monotone epoch numbers;
//   C. wait-free readers — with a `serve.publish` stall fault arming a
//      300 ms writer-side delay, readers must keep completing snapshots
//      throughout the stall with p99 far below the stall duration.
//
// --soak is the kill/restore self-check drill (nightly `ctest -L soak`):
// reference run, then kill + restore-from-checkpoint, then restore with
// the newest checkpoint corrupted (replay.restore fault) so the store
// falls back one file. Any chain divergence exits non-zero.
// RWC_SOAK_ROUNDS overrides the horizon for quick local drills.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "exec/rcu.hpp"
#include "exec/thread_pool.hpp"
#include "fault/registry.hpp"
#include "obs/timer.hpp"
#include "replay/checkpoint.hpp"
#include "serve/service.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace {

using rwc::serve::IngestEvent;
using rwc::serve::IngestType;
using rwc::serve::PlanEpoch;
using rwc::serve::ServeConfig;
using rwc::serve::ServeService;

struct Fleet {
  rwc::graph::Graph topology;
  rwc::te::TrafficMatrix demands;
};

Fleet make_fleet() {
  rwc::util::Rng topo_rng = rwc::util::Rng::stream(rwc::bench::kFleetSeed, 0);
  Fleet fleet{rwc::sim::waxman(12, topo_rng), {}};
  rwc::util::Rng demand_rng =
      rwc::util::Rng::stream(rwc::bench::kFleetSeed, 1);
  rwc::sim::GravityParams gravity;
  gravity.total =
      rwc::util::Gbps{fleet.topology.total_capacity().value * 0.4};
  fleet.demands = rwc::sim::gravity_matrix(fleet.topology, gravity, demand_rng);
  return fleet;
}

ServeConfig make_config() {
  ServeConfig config;
  config.seed = rwc::bench::kFleetSeed;
  config.hysteresis = rwc::core::HysteresisParams{};
  return config;
}

/// Deterministic synthetic telemetry for round `round`: a pure function of
/// (seed, round), so the soak drills can re-feed the exact schedule to a
/// reference, a doomed and a resumed service.
std::vector<IngestEvent> schedule_batch(std::uint64_t seed,
                                        std::uint64_t round,
                                        std::size_t edges,
                                        std::size_t demands) {
  rwc::util::Rng rng = rwc::util::Rng::stream(seed, 0x1000 + round);
  std::vector<IngestEvent> batch;
  const int snr_samples = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i < snr_samples; ++i) {
    IngestEvent event;
    event.type = IngestType::kSnr;
    event.index = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(edges) - 1));
    event.value = rng.uniform(4.0, 20.0);  // walks links across the ladder
    batch.push_back(event);
  }
  if (demands > 0 && rng.bernoulli(0.3)) {
    IngestEvent event;
    event.type = IngestType::kDemand;
    event.index = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(demands) - 1));
    event.value = rng.uniform(0.0, 60.0);
    batch.push_back(event);
  }
  return batch;
}

/// One concurrent reader: snapshots epochs in a tight loop until `stop`,
/// asserting consistency + monotonicity, timing each read.
struct ReaderStats {
  std::uint64_t reads = 0;
  std::uint64_t torn = 0;
  std::uint64_t went_backwards = 0;
  double max_seconds = 0.0;
};

void reader_loop(ServeService& service, std::atomic<bool>& stop,
                 rwc::obs::Histogram& latency, ReaderStats& stats) {
  rwc::exec::RcuReader reader(service.rcu_domain());
  std::uint64_t last_epoch = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const rwc::obs::StopWatch watch;
    rwc::exec::RcuGuard<PlanEpoch> epoch(service.epoch_cell(), reader);
    if (epoch) {
      if (!epoch->consistent()) ++stats.torn;
      if (epoch->epoch < last_epoch) ++stats.went_backwards;
      last_epoch = epoch->epoch;
    }
    const double seconds = watch.seconds();
    latency.observe(seconds);
    stats.max_seconds = std::max(stats.max_seconds, seconds);
    ++stats.reads;
  }
}

/// One concurrent producer: streams jittered SNR samples as fast as the
/// queue accepts them (arrival order deliberately racy).
void producer_loop(ServeService& service, std::atomic<bool>& stop,
                   std::uint64_t stream) {
  rwc::util::Rng rng =
      rwc::util::Rng::stream(rwc::bench::kFleetSeed, 0x2000 + stream);
  const std::size_t edges = service.link_snr().size();
  while (!stop.load(std::memory_order_relaxed)) {
    IngestEvent event;
    event.type = IngestType::kSnr;
    event.index = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(edges) - 1));
    event.value = rng.uniform(4.0, 20.0);
    service.queue().offer(event);
    std::this_thread::yield();
  }
}

/// Runs `rounds` live rounds with `readers` reader threads and `producers`
/// producer threads; returns aggregated reader stats. The service outlives
/// the threads; `latency` collects per-read seconds.
ReaderStats run_concurrent(ServeService& service, std::uint64_t rounds,
                           std::size_t readers, std::size_t producers,
                           rwc::obs::Histogram& latency,
                           double* rounds_seconds = nullptr) {
  std::atomic<bool> stop{false};
  std::vector<ReaderStats> stats(readers);
  std::vector<std::thread> threads;
  threads.reserve(readers + producers);
  for (std::size_t r = 0; r < readers; ++r)
    threads.emplace_back(reader_loop, std::ref(service), std::ref(stop),
                         std::ref(latency), std::ref(stats[r]));
  for (std::size_t p = 0; p < producers; ++p)
    threads.emplace_back(producer_loop, std::ref(service), std::ref(stop),
                         static_cast<std::uint64_t>(p));

  const rwc::obs::StopWatch watch;
  for (std::uint64_t round = 0; round < rounds; ++round) service.step();
  if (rounds_seconds != nullptr) *rounds_seconds = watch.seconds();

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) thread.join();

  ReaderStats total;
  for (const ReaderStats& s : stats) {
    total.reads += s.reads;
    total.torn += s.torn;
    total.went_backwards += s.went_backwards;
    total.max_seconds = std::max(total.max_seconds, s.max_seconds);
  }
  return total;
}

int run_perf(std::uint64_t rounds) {
  const Fleet fleet = make_fleet();
  const rwc::te::McfTe engine;
  ServeService service(fleet.topology, engine, fleet.demands, make_config());

  auto& registry = rwc::obs::Registry::global();
  rwc::obs::Histogram& latency = registry.histogram("serve.read.seconds");

  double rounds_seconds = 0.0;
  const ReaderStats stats = run_concurrent(
      service, rounds, /*readers=*/4, /*producers=*/2, latency,
      &rounds_seconds);

  rwc::bench::print_header("Serve loop: wait-free reads under churn");
  std::printf("%-28s %llu\n", "rounds",
              static_cast<unsigned long long>(rounds));
  std::printf("%-28s %.1f\n", "rounds/sec",
              rounds_seconds > 0.0
                  ? static_cast<double>(rounds) / rounds_seconds
                  : 0.0);
  std::printf("%-28s %llu\n", "epoch reads",
              static_cast<unsigned long long>(stats.reads));
  std::printf("%-28s %.0f\n", "read QPS",
              rounds_seconds > 0.0
                  ? static_cast<double>(stats.reads) / rounds_seconds
                  : 0.0);
  std::printf("%-28s %.2f us\n", "read p50", latency.quantile(0.5) * 1e6);
  std::printf("%-28s %.2f us\n", "read p99", latency.quantile(0.99) * 1e6);
  std::printf("%-28s %.2f us\n", "read max", stats.max_seconds * 1e6);
  std::printf("%-28s %llu\n", "torn epochs",
              static_cast<unsigned long long>(stats.torn));
  std::printf("%-28s %llu\n", "ingest offered",
              static_cast<unsigned long long>(service.queue().offered()));
  std::printf("%-28s %llu\n", "ingest dropped",
              static_cast<unsigned long long>(service.queue().dropped()));
  std::printf("%-28s %llu\n", "epochs published",
              static_cast<unsigned long long>(service.epochs_published()));
  std::printf("%-28s %llu\n", "rcu deferred frees",
              static_cast<unsigned long long>(
                  registry.counter("exec.rcu.retired").value() -
                  registry.counter("exec.rcu.reclaimed").value()));
  return stats.torn == 0 ? 0 : 1;
}

/// Selfcheck legs A+B: live concurrent run, then log replay at pool sizes
/// {1, 2, 8}.
bool selfcheck_determinism(const Fleet& fleet,
                           const rwc::te::TeAlgorithm& engine,
                           std::uint64_t rounds) {
  auto& registry = rwc::obs::Registry::global();
  rwc::obs::Histogram& latency =
      registry.histogram("serve.selfcheck.read.seconds");

  ServeService live(fleet.topology, engine, fleet.demands, make_config());
  const ReaderStats stats =
      run_concurrent(live, rounds, /*readers=*/4, /*producers=*/2, latency);

  bool ok = true;
  std::printf("%-28s reads %llu torn %llu backwards %llu\n", "live run",
              static_cast<unsigned long long>(stats.reads),
              static_cast<unsigned long long>(stats.torn),
              static_cast<unsigned long long>(stats.went_backwards));
  if (stats.torn != 0 || stats.went_backwards != 0) {
    std::fprintf(stderr, "selfcheck: torn/regressing epochs observed\n");
    ok = false;
  }
  if (live.log().rounds() != rounds) {
    std::fprintf(stderr, "selfcheck: log holds %zu rounds, expected %llu\n",
                 live.log().rounds(),
                 static_cast<unsigned long long>(rounds));
    ok = false;
  }

  for (const std::size_t pool_size : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
    rwc::exec::ThreadPool pool(pool_size);
    ServeConfig config = make_config();
    config.pool = &pool;
    ServeService replayed(fleet.topology, engine, fleet.demands, config);
    for (std::size_t round = 0; round < live.log().rounds(); ++round)
      replayed.step(live.log().batch(round));
    const bool match = replayed.signature_chain() == live.signature_chain();
    std::printf("%-28s pool=%zu chain %s\n", "log replay",
                pool_size, match ? "MATCH" : "MISMATCH");
    if (!match) {
      std::fprintf(stderr,
                   "selfcheck: replay pool=%zu chain %016llx != live "
                   "%016llx\n",
                   pool_size,
                   static_cast<unsigned long long>(
                       replayed.signature_chain()),
                   static_cast<unsigned long long>(live.signature_chain()));
      ok = false;
    }
  }
  return ok;
}

/// Selfcheck leg C: a writer-side publication stall must be invisible to
/// the read path — readers keep snapshotting the previous epoch wait-free.
bool selfcheck_stalled_publish(const Fleet& fleet,
                               const rwc::te::TeAlgorithm& engine) {
  constexpr double kStallSeconds = 0.3;
  auto& registry = rwc::obs::Registry::global();
  rwc::obs::Histogram& latency =
      registry.histogram("serve.stall.read.seconds");

  ServeService service(fleet.topology, engine, fleet.demands, make_config());
  service.step();  // publish epoch 1 so readers have something to hold

  // Stall every publication from here on (round 2 onward: hit 1+).
  rwc::fault::ScopedPlan plan(rwc::fault::FaultPlan::parse(
      "serve.publish%1@0:stall=" + std::to_string(kStallSeconds)));

  std::atomic<bool> stop{false};
  ReaderStats stats;
  std::thread reader(reader_loop, std::ref(service), std::ref(stop),
                     std::ref(latency), std::ref(stats));
  for (int round = 0; round < 3; ++round) service.step();  // ~0.9 s stalled
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const double p99 = latency.quantile(0.99);
  // Readers must have made continuous progress across ~3 stalled
  // publications, and no single read may come anywhere near the stall.
  const bool progressed = stats.reads > 1000;
  const bool unaffected = p99 < kStallSeconds / 2.0 &&
                          stats.max_seconds < kStallSeconds / 2.0;
  std::printf("%-28s reads %llu p99 %.2f us max %.2f us (stall %.0f ms)\n",
              "stalled publish", static_cast<unsigned long long>(stats.reads),
              p99 * 1e6, stats.max_seconds * 1e6, kStallSeconds * 1e3);
  if (!progressed)
    std::fprintf(stderr,
                 "selfcheck: readers starved during stalled publish\n");
  if (!unaffected)
    std::fprintf(stderr,
                 "selfcheck: read latency tracked the writer stall\n");
  return progressed && unaffected && stats.torn == 0;
}

int run_selfcheck(std::uint64_t rounds) {
  const Fleet fleet = make_fleet();
  const rwc::te::McfTe engine;
  rwc::bench::print_header("Serve loop selfcheck");
  bool ok = selfcheck_determinism(fleet, engine, rounds);
  ok &= selfcheck_stalled_publish(fleet, engine);
  std::printf("\nselfcheck: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

/// Scratch checkpoint directory, removed on destruction.
struct ScratchStore {
  std::filesystem::path dir;
  rwc::replay::CheckpointStore store;
  explicit ScratchStore(const std::string& tag)
      : dir(std::filesystem::temp_directory_path() /
            ("rwc-serve-loop-" + tag + "-" +
             std::to_string(static_cast<unsigned>(::getpid())))),
        store((std::filesystem::remove_all(dir), dir), /*keep=*/3) {}
  ~ScratchStore() { std::filesystem::remove_all(dir); }
};

/// Feeds the deterministic schedule for rounds [service.round(), rounds).
void run_schedule(ServeService& service, std::uint64_t rounds) {
  const std::size_t edges = service.link_snr().size();
  const std::size_t demands = service.demands().size();
  while (service.round() < rounds)
    service.step(schedule_batch(rwc::bench::kFleetSeed, service.round(),
                                edges, demands));
}

/// One recovery drill: kill at `kill_round`, restore from the store
/// (optionally corrupting the newest checkpoint first), finish on the same
/// deterministic schedule, compare chains.
bool drill(const Fleet& fleet, const rwc::te::TeAlgorithm& engine,
           const ServeConfig& config, std::uint64_t rounds,
           std::uint64_t reference_chain, std::uint64_t kill_round,
           bool corrupt_newest, const char* label) {
  ScratchStore scratch(label);
  {
    ServeService doomed(fleet.topology, engine, fleet.demands, config);
    doomed.set_checkpoint_store(&scratch.store);
    run_schedule(doomed, kill_round);  // "crash": destroyed mid-horizon
  }
  ServeService resumed(fleet.topology, engine, fleet.demands, config);
  rwc::replay::Error error;
  if (corrupt_newest) {
    // The newest file arrives truncated exactly once; restore_latest must
    // reject it and fall back to the previous checkpoint.
    rwc::fault::ScopedPlan plan(
        rwc::fault::FaultPlan::parse("replay.restore@0:drop"));
    error = resumed.restore_latest(scratch.store);
  } else {
    error = resumed.restore_latest(scratch.store);
  }
  if (error != rwc::replay::Error::kNone) {
    std::fprintf(stderr, "%s: restore_latest failed: %s\n", label,
                 rwc::replay::to_string(error));
    return false;
  }
  const std::uint64_t resumed_from = resumed.round();
  run_schedule(resumed, rounds);
  const bool ok = resumed.signature_chain() == reference_chain;
  std::printf("%-28s killed@%llu resumed@%llu chain %s\n", label,
              static_cast<unsigned long long>(kill_round),
              static_cast<unsigned long long>(resumed_from),
              ok ? "MATCH" : "MISMATCH");
  if (!ok)
    std::fprintf(stderr, "%s: resumed chain %016llx != reference %016llx\n",
                 label,
                 static_cast<unsigned long long>(resumed.signature_chain()),
                 static_cast<unsigned long long>(reference_chain));
  return ok;
}

int run_soak(std::uint64_t rounds) {
  if (const char* env = std::getenv("RWC_SOAK_ROUNDS")) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) rounds = static_cast<std::uint64_t>(parsed);
  }
  const Fleet fleet = make_fleet();
  const rwc::te::McfTe engine;
  ServeConfig config = make_config();
  // Several snapshots per horizon however short the run, so both drills
  // always have an older file to fall back to.
  config.checkpoint_every = std::max<std::uint64_t>(1, rounds / 6);

  rwc::bench::print_header("Serve soak: kill / restore / verify");
  ServeService reference(fleet.topology, engine, fleet.demands, config);
  run_schedule(reference, rounds);
  std::printf("%-28s %llu rounds, chain %016llx\n", "reference",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(reference.signature_chain()));

  const std::uint64_t kill_round =
      std::min(rounds - 1, config.checkpoint_every * 2 + 17);
  bool ok = drill(fleet, engine, config, rounds,
                  reference.signature_chain(), kill_round,
                  /*corrupt_newest=*/false, "kill-restore");
  ok &= drill(fleet, engine, config, rounds, reference.signature_chain(),
              kill_round, /*corrupt_newest=*/true, "corrupt-fallback");
  std::printf("\nsoak: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  rwc::bench::JsonExportGuard json_guard(argc, argv);
  bool selfcheck = false;
  bool soak = false;
  std::uint64_t rounds = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selfcheck") {
      selfcheck = true;
    } else if (arg == "--soak") {
      soak = true;
    } else if (const long long parsed = std::atoll(arg.c_str());
               parsed > 0) {
      rounds = static_cast<std::uint64_t>(parsed);
    }
  }
  if (soak) return run_soak(std::max<std::uint64_t>(rounds, 48));
  if (selfcheck) return run_selfcheck(std::min<std::uint64_t>(rounds, 24));
  return run_perf(rounds);
}
