// Long-horizon streaming fleet replay (rwc::replay) with periodic
// checkpoints: drives the dynamic-capacity control loop over a multi-day
// horizon in bounded memory, rotating checkpoints into a scratch store,
// and reports throughput plus checkpoint cost (docs/REPLAY.md).
//
//   replay_fleet [rounds] [--soak] [--json <path>]
//
// --soak turns the bench into a self-checking crash-recovery drill (the
// nightly `ctest -L soak` job): it runs an uninterrupted reference, then
// kills the run mid-horizon and resumes from the newest checkpoint, then
// repeats the recovery with the newest checkpoint corrupted (via the
// `replay.restore` fault site) so restore must fall back one file. Any
// divergence from the reference signature chain exits non-zero.
// RWC_SOAK_ROUNDS overrides the horizon for quick local drills.
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "fault/registry.hpp"
#include "obs/timer.hpp"
#include "replay/checkpoint.hpp"
#include "replay/driver.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace {

using rwc::replay::CheckpointStore;
using rwc::replay::Error;
using rwc::replay::ReplayConfig;
using rwc::replay::ReplayDriver;

struct Fleet {
  rwc::graph::Graph topology;
  rwc::te::TrafficMatrix demands;
};

Fleet make_fleet() {
  rwc::util::Rng topo_rng =
      rwc::util::Rng::stream(rwc::bench::kFleetSeed, 0);
  Fleet fleet{rwc::sim::waxman(12, topo_rng), {}};
  rwc::util::Rng demand_rng =
      rwc::util::Rng::stream(rwc::bench::kFleetSeed, 1);
  rwc::sim::GravityParams gravity;
  gravity.total =
      rwc::util::Gbps{fleet.topology.total_capacity().value * 0.4};
  fleet.demands =
      rwc::sim::gravity_matrix(fleet.topology, gravity, demand_rng);
  return fleet;
}

ReplayConfig make_config(std::uint64_t rounds) {
  ReplayConfig config;
  config.rounds = rounds;
  config.seed = rwc::bench::kFleetSeed;
  config.chunk_rounds = 96;  // one day per refill
  // Several snapshots per horizon however short the run, so the soak
  // drills always have an older file to fall back to (64 rounds = 16 h at
  // the default 384-round horizon).
  config.checkpoint_every = std::max<std::uint64_t>(1, rounds / 6);
  return config;
}

/// Scratch checkpoint directory, removed on destruction.
struct ScratchStore {
  std::filesystem::path dir;
  CheckpointStore store;
  explicit ScratchStore(const std::string& tag)
      : dir(std::filesystem::temp_directory_path() /
            ("rwc-replay-fleet-" + tag + "-" +
             std::to_string(static_cast<unsigned>(::getpid())))),
        store((std::filesystem::remove_all(dir), dir), /*keep=*/3) {}
  ~ScratchStore() { std::filesystem::remove_all(dir); }
};

int run_stream(std::uint64_t rounds) {
  const Fleet fleet = make_fleet();
  const rwc::te::McfTe engine;
  const ReplayConfig config = make_config(rounds);
  ScratchStore scratch("stream");

  ReplayDriver driver(fleet.topology, engine, fleet.demands, config);
  driver.attach_store(&scratch.store);

  rwc::obs::StopWatch watch;
  const rwc::sim::SimulationMetrics metrics = driver.run();
  const double seconds = watch.seconds();

  auto& registry = rwc::obs::Registry::global();
  rwc::bench::print_header("Streaming fleet replay");
  std::printf("%-28s %llu\n", "rounds",
              static_cast<unsigned long long>(config.rounds));
  std::printf("%-28s %.1f\n", "rounds/sec",
              seconds > 0.0 ? static_cast<double>(config.rounds) / seconds
                            : 0.0);
  std::printf("%-28s %llu\n", "chunk refills",
              static_cast<unsigned long long>(
                  registry.counter("replay.chunk.refills").value()));
  std::printf("%-28s %llu\n", "checkpoint writes",
              static_cast<unsigned long long>(
                  registry.counter("replay.checkpoint.writes").value()));
  std::printf("%-28s %.1f\n", "checkpoint KiB total",
              static_cast<double>(
                  registry.counter("replay.checkpoint.bytes").value()) /
                  1024.0);
  std::printf("%-28s %.4f\n", "delivered fraction",
              metrics.delivered_fraction());
  std::printf("%-28s %.4f\n", "availability", metrics.availability);
  std::printf("%-28s %.2f\n", "reconfig downtime (h)",
              metrics.reconfig_downtime_hours);
  return 0;
}

/// One recovery drill: kill at `kill_round`, restore from the store
/// (optionally with the newest checkpoint corrupted first), finish, and
/// compare against the reference chain.
bool drill(const Fleet& fleet, const rwc::te::TeAlgorithm& engine,
           const ReplayConfig& config, std::uint64_t reference_chain,
           std::uint64_t kill_round, bool corrupt_newest,
           const char* label) {
  ScratchStore scratch(label);
  {
    ReplayDriver doomed(fleet.topology, engine, fleet.demands, config);
    doomed.attach_store(&scratch.store);
    doomed.run(kill_round);  // "crash": driver destroyed mid-horizon
  }
  ReplayDriver resumed(fleet.topology, engine, fleet.demands, config);
  resumed.attach_store(&scratch.store);
  Error error;
  if (corrupt_newest) {
    // The newest file arrives truncated exactly once; restore_latest must
    // reject it and fall back to the previous checkpoint.
    rwc::fault::ScopedPlan plan(
        rwc::fault::FaultPlan::parse("replay.restore@0:drop"));
    error = resumed.restore_latest(scratch.store);
  } else {
    error = resumed.restore_latest(scratch.store);
  }
  if (error != Error::kNone) {
    std::fprintf(stderr, "%s: restore_latest failed: %s\n", label,
                 rwc::replay::to_string(error));
    return false;
  }
  const std::uint64_t resumed_from = resumed.round();
  resumed.run();
  const bool ok = resumed.signature_chain() == reference_chain;
  std::printf("%-28s killed@%llu resumed@%llu chain %s\n", label,
              static_cast<unsigned long long>(kill_round),
              static_cast<unsigned long long>(resumed_from),
              ok ? "MATCH" : "MISMATCH");
  if (!ok)
    std::fprintf(stderr,
                 "%s: resumed chain %016llx != reference %016llx\n", label,
                 static_cast<unsigned long long>(resumed.signature_chain()),
                 static_cast<unsigned long long>(reference_chain));
  return ok;
}

int run_soak(std::uint64_t rounds) {
  if (const char* env = std::getenv("RWC_SOAK_ROUNDS")) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) rounds = static_cast<std::uint64_t>(parsed);
  }
  const Fleet fleet = make_fleet();
  const rwc::te::McfTe engine;
  const ReplayConfig config = make_config(rounds);

  rwc::bench::print_header("Replay soak: kill / restore / verify");
  ReplayDriver reference(fleet.topology, engine, fleet.demands, config);
  const rwc::sim::SimulationMetrics metrics = reference.run();
  std::printf("%-28s %llu rounds, chain %016llx\n", "reference",
              static_cast<unsigned long long>(config.rounds),
              static_cast<unsigned long long>(reference.signature_chain()));

  // Kill after the second checkpoint so both drills have a file to fall
  // back to; the corrupt leg then proves the fallback is still exact.
  const std::uint64_t kill_round =
      std::min(config.rounds - 1, config.checkpoint_every * 2 + 17);
  bool ok = drill(fleet, engine, config, reference.signature_chain(),
                  kill_round, /*corrupt_newest=*/false, "kill-restore");
  ok &= drill(fleet, engine, config, reference.signature_chain(),
              kill_round, /*corrupt_newest=*/true, "corrupt-fallback");
  std::printf("%-28s %.4f\n", "delivered fraction",
              metrics.delivered_fraction());
  std::printf("\nsoak: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  rwc::bench::JsonExportGuard json_guard(argc, argv);
  bool soak = false;
  std::uint64_t rounds = 384;  // four days at 15-minute rounds
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--soak") {
      soak = true;
    } else if (const long long parsed = std::atoll(arg.c_str());
               parsed > 0) {
      rounds = static_cast<std::uint64_t>(parsed);
    }
  }
  return soak ? run_soak(rounds) : run_stream(rounds);
}
