// Figure 8: the node-splitting gadget that lets an UNSPLITTABLE flow of the
// full upgraded rate (200 Gbps) cross a variable link on a single path,
// while the abstracted link still never exceeds 200 Gbps.
#include <iostream>

#include "bench_common.hpp"
#include "core/augment.hpp"
#include "core/translate.hpp"
#include "graph/dijkstra.hpp"
#include "graph/dot.hpp"
#include "graph/ksp.hpp"
#include "te/demand.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  using namespace util::literals;
  (void)argc;
  (void)argv;
  bench::print_header("Figure 8: unsplittable 200 Gbps via the gadget");

  graph::Graph base;
  const auto a = base.add_node("A");
  const auto b = base.add_node("B");
  const auto ab = base.add_edge(a, b, 100_Gbps);
  const std::vector<core::VariableLink> variable = {{ab, 200_Gbps}};

  auto widest_single_path = [&](const graph::Graph& g) {
    // Maximum bottleneck over single paths A -> B (widest path).
    const auto paths = graph::k_shortest_paths(g, a, b, 16);
    graph::Path best;
    util::Gbps widest{0.0};
    for (const auto& path : paths) {
      const util::Gbps bottleneck = graph::path_bottleneck(g, path);
      if (bottleneck > widest) {
        widest = bottleneck;
        best = path;
      }
    }
    return std::pair{widest, best};
  };

  // Plain augmentation: two parallel 100 G edges; no single path fits 200 G.
  const auto plain =
      core::augment_topology(base, variable, core::FixedPenalty{100.0});
  std::cout << "Plain augmentation (Fig. 7b style):\n";
  std::cout << "  widest single A->B path: "
            << widest_single_path(plain.graph).first << "  -> a 200 Gbps"
            << " unsplittable flow CANNOT be routed\n\n";

  // Gadget augmentation: the fake entry at the full 200 G admits it.
  core::AugmentOptions options;
  options.unsplittable_gadget = true;
  const auto gadget = core::augment_topology(
      base, variable, core::FixedPenalty{100.0}, {}, options);
  const auto [widest, widest_path] = widest_single_path(gadget.graph);
  std::cout << "Gadget augmentation (Fig. 8):\n";
  std::cout << "  widest single A->B path: " << widest
            << "  -> the flow fits on ONE path\n";

  // Place the unsplittable 200 G flow on that single augmented path and
  // translate it back onto the physical topology.
  te::FlowAssignment assignment;
  te::FlowAssignment::DemandRouting routing;
  routing.demand = te::Demand{a, b, 200_Gbps, 0};
  routing.paths.emplace_back(widest_path, 200_Gbps);
  assignment.routings.push_back(std::move(routing));
  te::finalize_assignment(gadget.graph, assignment);
  te::validate_assignment(gadget.graph, assignment);

  const auto plan =
      core::translate_assignment(base, gadget, variable, assignment);
  std::cout << "  unsplittable flow placed: "
            << plan.physical_assignment.total_routed
            << " on a single path; upgrades: " << plan.upgrades.size()
            << "\n";
  for (const auto& r : plan.physical_assignment.routings)
    for (const auto& [path, volume] : r.paths)
      std::cout << "  flow: " << volume << " via "
                << graph::path_to_string(base, path) << "\n";

  // Capacity safety: the abstracted link never exceeds 200 G.
  auto view_max = base;
  core::apply_plan(view_max, plan);
  std::cout << "  abstracted link capacity after upgrade: "
            << view_max.edge(ab).capacity << " (never exceeded)\n\n";

  std::cout << "Gadget topology in DOT:\n"
            << graph::to_dot(gadget.graph, "fig8") << '\n';
  return 0;
}
