// Augmentation-speed curve for the consistent-update scheduler
// (docs/UPDATE.md; PAPERS.md "The Augmentation-Speed Tradeoff for
// Consistent Network Updates"): on seeded random WAN transitions, sweep
// the headroom knob and measure how much spare capacity shortens the
// congestion-free schedule — rounds and makespan vs augmentation.
//
//   update_schedule [instances] [--selfcheck] [--json <path>]
//
// --selfcheck turns the bench into the PR's proof obligation
// (tests/CMakeLists.txt registers it as the tier-2 `update_selfcheck`
// ctest): every feasible schedule must pass validate_schedule, execute to
// completion with the planned makespan, stay monotone in headroom per
// instance (more augmentation never lengthens a schedule), and added
// headroom must STRICTLY shorten the schedule on a solid share of the
// instances — otherwise the knob is dead and the curve meaningless.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/graph.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/demand.hpp"
#include "te/mcf_te.hpp"
#include "update/executor.hpp"
#include "update/schedule.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace rwc;

const std::vector<double> kHeadrooms = {0.0, 0.05, 0.1, 0.2, 0.35, 0.5};

/// One seeded transition instance: a loaded Waxman WAN whose capacities
/// shift (upgrades + a flap) between two TE solves, so the schedule must
/// interleave route moves with BVT reconfigs.
struct Instance {
  graph::Graph topology;
  std::vector<util::Gbps> before_caps;
  std::vector<util::Gbps> after_caps;
  te::FlowAssignment before;
  te::FlowAssignment after;
};

Instance make_instance(const te::TeAlgorithm& engine, std::uint64_t seed) {
  Instance instance;
  util::Rng topo_rng = util::Rng::stream(seed, 800);
  instance.topology = sim::waxman(
      10 + static_cast<int>(topo_rng.uniform_int(0, 4)), topo_rng);
  // High utilization on the before side: the transition's route moves
  // must contend for link capacity, or the headroom knob has nothing to
  // trade against.
  util::Rng demand_rng = util::Rng::stream(seed, 801);
  sim::GravityParams gravity;
  gravity.total =
      util::Gbps{instance.topology.total_capacity().value * 0.9};
  const te::TrafficMatrix before_demands =
      sim::gravity_matrix(instance.topology, gravity, demand_rng);
  // The after side re-solves the same endpoints with jittered volumes —
  // the demand drift one controller interval brings.
  util::Rng jitter_rng = util::Rng::stream(seed, 803);
  te::TrafficMatrix after_demands = before_demands;
  for (te::Demand& demand : after_demands)
    demand.volume =
        util::Gbps{demand.volume.value * jitter_rng.uniform(0.6, 1.4)};

  const std::size_t edges = instance.topology.edge_count();
  for (std::size_t e = 0; e < edges; ++e)
    instance.before_caps.push_back(
        instance.topology.edge(graph::EdgeId{static_cast<std::int32_t>(e)})
            .capacity);
  // Route-only transitions: capacity changes pin the schedule to the
  // removals / reconfigs / adds skeleton no headroom can legally bypass
  // (a route move may never share a round with a reconfig on its edge),
  // so the augmentation curve is measured where it lives — contended
  // route updates. The reconfig interleaving is covered by
  // tests/test_update_schedule.cpp and the differential suite.
  instance.after_caps = instance.before_caps;
  instance.before = engine.solve(instance.topology, before_demands);
  instance.after = engine.solve(instance.topology, after_demands);
  (void)edges;
  return instance;
}

struct CurvePoint {
  std::size_t feasible = 0;
  std::size_t strictly_shorter = 0;  // vs the same instance at h = 0
  std::vector<double> rounds;
  std::vector<double> makespans;
};

struct SweepResult {
  std::vector<CurvePoint> points;  // one per kHeadrooms entry
  bool monotone = true;
  bool validated = true;
  bool executed = true;
  std::string first_failure;
};

SweepResult sweep(int instances) {
  const te::McfTe engine;
  SweepResult result;
  result.points.resize(kHeadrooms.size());
  // Infeasible schedules count as infinitely long: gaining feasibility
  // with augmentation is the strongest form of shortening, and LOSING it
  // as headroom grows would be a monotonicity bug.
  constexpr double kInfeasible = 1e18;
  for (int i = 0; i < instances; ++i) {
    const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(i);
    const Instance instance = make_instance(engine, seed);
    std::vector<double> rounds_at(kHeadrooms.size(), kInfeasible);
    for (std::size_t h = 0; h < kHeadrooms.size(); ++h) {
      update::SchedulerConfig config;
      config.headroom = kHeadrooms[h];
      config.procedure = bvt::Procedure::kEfficient;
      config.seed = seed;
      const update::UpdateSchedule schedule = update::plan_schedule(
          instance.topology, instance.before_caps, instance.after_caps,
          instance.before, instance.after, config);
      if (!schedule.feasible) continue;
      rounds_at[h] = static_cast<double>(schedule.rounds.size());
      CurvePoint& point = result.points[h];
      ++point.feasible;
      point.rounds.push_back(rounds_at[h]);
      point.makespans.push_back(schedule.makespan_seconds);

      std::string violation;
      if (!update::validate_schedule(instance.topology, schedule,
                                     instance.after_caps, instance.after,
                                     &violation)) {
        result.validated = false;
        if (result.first_failure.empty())
          result.first_failure = "instance " + std::to_string(i) +
                                 " h=" + std::to_string(kHeadrooms[h]) +
                                 ": " + violation;
      }
      update::ScheduleExecutor executor(instance.topology, schedule);
      executor.run();
      if (!executor.result().completed ||
          executor.result().makespan_seconds != schedule.makespan_seconds) {
        result.executed = false;
        if (result.first_failure.empty())
          result.first_failure =
              "instance " + std::to_string(i) +
              " h=" + std::to_string(kHeadrooms[h]) +
              ": execution diverged from the planned makespan";
      }
    }
    for (std::size_t h = 1; h < kHeadrooms.size(); ++h) {
      if (rounds_at[h] < rounds_at[0])
        ++result.points[h].strictly_shorter;
      if (rounds_at[h] > rounds_at[h - 1] + 0.5) {
        result.monotone = false;
        if (result.first_failure.empty())
          result.first_failure =
              "instance " + std::to_string(i) + ": schedule grew between "
              "h=" + util::format_double(kHeadrooms[h - 1], 2) + " and h=" +
              util::format_double(kHeadrooms[h], 2);
      }
    }
  }
  return result;
}

void print_curve(const SweepResult& result, int instances) {
  util::TextTable table({"headroom", "feasible", "mean rounds",
                         "mean makespan", "p90 makespan",
                         "shorter than h=0"});
  for (std::size_t h = 0; h < kHeadrooms.size(); ++h) {
    const CurvePoint& point = result.points[h];
    if (point.rounds.empty()) {
      table.add_row({util::format_double(kHeadrooms[h], 2), "0", "-", "-",
                     "-", "-"});
      continue;
    }
    const util::EmpiricalCdf cdf(point.makespans);
    table.add_row(
        {util::format_double(kHeadrooms[h], 2),
         std::to_string(point.feasible) + "/" + std::to_string(instances),
         util::format_double(util::summarize(point.rounds).mean, 2),
         util::format_double(util::summarize(point.makespans).mean, 4) +
             " s",
         util::format_double(cdf.value_at(0.90), 4) + " s",
         std::to_string(point.strictly_shorter)});
  }
  table.print(std::cout);
}

int selfcheck(const SweepResult& result, int instances) {
  const auto fail = [](const std::string& what) {
    std::fprintf(stderr, "selfcheck FAILED: %s\n", what.c_str());
    return 1;
  };
  if (!result.validated)
    return fail("a planned schedule failed validate_schedule (" +
                result.first_failure + ")");
  if (!result.executed)
    return fail("a schedule did not execute to its planned makespan (" +
                result.first_failure + ")");
  if (!result.monotone)
    return fail("headroom lengthened a schedule (" + result.first_failure +
                ")");
  if (result.points.front().feasible == 0)
    return fail("no instance produced a feasible schedule at h=0");
  // The knob must actually bite: at the top of the sweep, a solid share
  // of the instances must finish in strictly fewer rounds than at h=0.
  const CurvePoint& top = result.points.back();
  const std::size_t needed =
      static_cast<std::size_t>(instances) / 3 + 1;
  if (top.strictly_shorter < needed)
    return fail("headroom " +
                util::format_double(kHeadrooms.back(), 2) +
                " strictly shortened only " +
                std::to_string(top.strictly_shorter) + "/" +
                std::to_string(instances) +
                " instances (need >= " + std::to_string(needed) + ")");
  const double mean_h0 =
      util::summarize(result.points.front().rounds).mean;
  const double mean_top = util::summarize(top.rounds).mean;
  if (!(mean_top < mean_h0))
    return fail("mean rounds did not drop from h=0 (" +
                util::format_double(mean_h0, 2) + ") to h=" +
                util::format_double(kHeadrooms.back(), 2) + " (" +
                util::format_double(mean_top, 2) + ")");
  std::printf("selfcheck OK: %zu/%d instances strictly shorter at h=%s, "
              "mean rounds %s -> %s, all schedules valid and executed\n",
              top.strictly_shorter, instances,
              util::format_double(kHeadrooms.back(), 2).c_str(),
              util::format_double(mean_h0, 2).c_str(),
              util::format_double(mean_top, 2).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  rwc::bench::JsonExportGuard json_guard(argc, argv);
  bool run_selfcheck = false;
  int instances = 24;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selfcheck") == 0)
      run_selfcheck = true;
    else if (std::atoi(argv[i]) > 0)
      instances = std::atoi(argv[i]);
  }
  rwc::bench::print_header(
      "Consistent-update schedules: augmentation (headroom) vs speed");
  std::printf("%d seeded transition instances, efficient (hitless) BVT "
              "procedure\n\n", instances);
  const SweepResult result = sweep(instances);
  print_curve(result, instances);
  std::printf("\nMore augmentation admits route additions (and reconfig "
              "drains) into earlier\nrounds, so schedules shorten as "
              "headroom grows — the Henzinger tradeoff.\n");
  if (run_selfcheck) return selfcheck(result, instances);
  return 0;
}
