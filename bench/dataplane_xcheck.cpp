// Solver-vs-dataplane differential oracle (rwc::dataplane) —
// docs/DATAPLANE.md; EXPERIMENTS.md "Dataplane cross-check".
//
//   dataplane_xcheck [rounds] [--selfcheck] [--json <path>]
//
// Default mode drives one seeded instance through the controller +
// dataplane pipeline and reports rounds/sec plus the oracle's gap and
// violation summary.
//
// --selfcheck turns the bench into the PR's proof obligation:
//   A. gap oracle — four instances (two seeds x {Mcf, Swan}, one
//      demand-aware) must pass every oracle clause: per-OD goodput within
//      the declared gap of the solver allocation, no overshoot beyond the
//      hash-imbalance tolerance, zero capacity-safety violations outside
//      scheduled update windows, byte conservation;
//   B. determinism — the xcheck chain must be bit-identical at pool sizes
//      {1, 2, 8}, and a mid-run checkpoint restore-then-continue of BOTH
//      the controller and the dataplane must reproduce the uninterrupted
//      chain bit-for-bit;
//   C. reaction — a forced unscheduled mid-round downshift of the busiest
//      link must trigger HPCC rate cuts with capacity safety intact.
// Summary rows are exported as dataplane.bench.* gauges so `--json`
// snapshots them into BENCH_dataplane.json for CI drift tracking.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "dataplane/xcheck.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "util/rng.hpp"

namespace {

using rwc::dataplane::XcheckConfig;
using rwc::dataplane::XcheckEngine;
using rwc::dataplane::XcheckOutcome;
using rwc::dataplane::run_xcheck;

XcheckConfig make_config(std::uint64_t seed_stream, std::size_t rounds) {
  XcheckConfig config;
  config.seed =
      rwc::util::Rng::stream(rwc::bench::kFleetSeed, seed_stream).next_u64();
  config.rounds = rounds;
  return config;
}

int run_perf(std::uint64_t rounds) {
  XcheckConfig config = make_config(70, rounds);
  const rwc::obs::StopWatch watch;
  const XcheckOutcome outcome = run_xcheck(config);
  const double seconds = watch.seconds();

  double delivered = 0.0;
  std::uint64_t migrations = 0;
  for (const rwc::dataplane::XcheckRound& round : outcome.rounds) {
    delivered += round.delivered_bytes;
    migrations += round.migrations;
  }
  rwc::bench::print_header("Dataplane cross-check: controller + flowlet sim");
  std::printf("%-28s %llu\n", "rounds",
              static_cast<unsigned long long>(rounds));
  std::printf("%-28s %.1f\n", "rounds/sec",
              seconds > 0.0 ? static_cast<double>(rounds) / seconds : 0.0);
  std::printf("%-28s %.4f\n", "max shortfall", outcome.max_shortfall);
  std::printf("%-28s %.4f\n", "max overshoot", outcome.max_overshoot);
  std::printf("%-28s %llu\n", "flowlet migrations",
              static_cast<unsigned long long>(migrations));
  std::printf("%-28s %.3e\n", "delivered bytes", delivered);
  std::printf("%-28s %s\n", "oracle", outcome.pass ? "PASS" : "FAIL");
  if (!outcome.pass)
    std::fprintf(stderr, "oracle: %s\n", outcome.failure.c_str());
  return outcome.pass ? 0 : 1;
}

/// Selfcheck leg A: the gap oracle across engines, seeds and workloads.
bool selfcheck_gap_oracle(std::size_t rounds) {
  struct Arm {
    const char* name;
    std::uint64_t stream;
    XcheckEngine engine;
    bool demand_aware;
  };
  const Arm arms[] = {
      {"mcf", 71, XcheckEngine::kMcf, false},
      {"mcf-hanauer", 72, XcheckEngine::kMcf, true},
      {"swan", 73, XcheckEngine::kSwan, false},
      {"swan-seed2", 74, XcheckEngine::kSwan, false},
  };
  auto& registry = rwc::obs::Registry::global();
  bool ok = true;
  std::printf("%-28s %10s %10s %8s %6s\n", "gap oracle", "shortfall",
              "overshoot", "capviol", "pass");
  for (const Arm& arm : arms) {
    XcheckConfig config = make_config(arm.stream, rounds);
    config.engine = arm.engine;
    config.demand_aware = arm.demand_aware;
    const XcheckOutcome outcome = run_xcheck(config);
    std::printf("%-28s %10.4f %10.4f %8llu %6s\n", arm.name,
                outcome.max_shortfall, outcome.max_overshoot,
                static_cast<unsigned long long>(outcome.capacity_violations),
                outcome.pass ? "yes" : "NO");
    registry.gauge(std::string("dataplane.bench.") + arm.name + ".shortfall")
        .set(outcome.max_shortfall);
    registry.gauge(std::string("dataplane.bench.") + arm.name + ".overshoot")
        .set(outcome.max_overshoot);
    if (!outcome.pass) {
      std::fprintf(stderr, "selfcheck: arm %s failed: %s\n", arm.name,
                   outcome.failure.c_str());
      ok = false;
    }
  }
  return ok;
}

/// Selfcheck leg B: bit-identity across pool sizes {1, 2, 8} and across a
/// mid-run checkpoint restore-then-continue of controller + dataplane.
bool selfcheck_determinism(std::size_t rounds) {
  const XcheckConfig config = make_config(75, rounds);
  const XcheckOutcome reference = run_xcheck(config);

  bool ok = true;
  for (const std::size_t pool_size : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
    rwc::exec::ThreadPool pool(pool_size);
    XcheckConfig pooled = config;
    pooled.pool = &pool;
    const XcheckOutcome outcome = run_xcheck(pooled);
    const bool match = outcome.chain == reference.chain;
    std::printf("%-28s pool=%zu chain %s\n", "pool determinism", pool_size,
                match ? "MATCH" : "MISMATCH");
    if (!match) {
      std::fprintf(stderr,
                   "selfcheck: pool=%zu chain %016llx != reference %016llx\n",
                   pool_size,
                   static_cast<unsigned long long>(outcome.chain),
                   static_cast<unsigned long long>(reference.chain));
      ok = false;
    }
  }

  XcheckConfig restored = config;
  restored.checkpoint_round = rounds / 2;
  const XcheckOutcome outcome = run_xcheck(restored);
  const bool match = outcome.chain == reference.chain;
  std::printf("%-28s chain %s\n", "checkpoint restore",
              match ? "MATCH" : "MISMATCH");
  if (!match) {
    std::fprintf(stderr,
                 "selfcheck: restored chain %016llx != reference %016llx\n",
                 static_cast<unsigned long long>(outcome.chain),
                 static_cast<unsigned long long>(reference.chain));
    ok = false;
  }
  return ok;
}

/// Selfcheck leg C: a forced unscheduled downshift must provoke the HPCC
/// reaction (rate cuts) while capacity safety holds.
bool selfcheck_downshift(std::size_t rounds) {
  XcheckConfig config = make_config(76, rounds);
  config.downshift_round = rounds - 1;
  const XcheckOutcome outcome = run_xcheck(config);
  const rwc::dataplane::XcheckRound& round = outcome.rounds.back();
  std::printf("%-28s %llu rate cuts, %llu capviol, %s\n", "downshift",
              static_cast<unsigned long long>(round.rate_cuts),
              static_cast<unsigned long long>(round.capacity_violations),
              outcome.pass ? "PASS" : "FAIL");
  if (!outcome.pass)
    std::fprintf(stderr, "selfcheck: downshift arm failed: %s\n",
                 outcome.failure.c_str());
  rwc::obs::Registry::global()
      .gauge("dataplane.bench.downshift.rate_cuts")
      .set(static_cast<double>(round.rate_cuts));
  return outcome.pass;
}

int run_selfcheck(std::uint64_t rounds) {
  const std::size_t r = static_cast<std::size_t>(std::min<std::uint64_t>(
      std::max<std::uint64_t>(rounds, 2), 6));
  rwc::bench::print_header("Dataplane cross-check selfcheck");
  bool ok = selfcheck_gap_oracle(r);
  ok &= selfcheck_determinism(r);
  ok &= selfcheck_downshift(r);
  std::printf("\nselfcheck: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  rwc::bench::JsonExportGuard json_guard(argc, argv);
  bool selfcheck = false;
  std::uint64_t rounds = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selfcheck") {
      selfcheck = true;
    } else if (const long long parsed = std::atoll(arg.c_str());
               parsed > 0) {
      rounds = static_cast<std::uint64_t>(parsed);
    }
  }
  if (selfcheck) return run_selfcheck(rounds);
  return run_perf(rounds);
}
