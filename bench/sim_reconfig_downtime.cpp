// Section 3.1 simulation: what the 68 s vs 35 ms reconfiguration latency
// costs at the network level. Sweeps the TE churn rate (via demand
// volatility) and reports lost traffic under both procedures.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "bvt/latency.hpp"
#include "core/controller.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "update/executor.hpp"
#include "update/schedule.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  (void)argc;
  (void)argv;
  bench::print_header(
      "Reconfiguration downtime: laser-cycling (68 s) vs hitless (35 ms)");

  // Per-change downtime distribution, directly.
  const bvt::LatencyModel latency;
  util::Rng rng = util::Rng::stream(3, 0);  // == Rng(3)
  util::TextTable per_change({"procedure", "mean", "p99"});
  for (bvt::Procedure procedure :
       {bvt::Procedure::kStandard, bvt::Procedure::kEfficient}) {
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i)
      samples.push_back(latency.sample_downtime(procedure, rng));
    const util::EmpiricalCdf cdf(samples);
    auto fmt = [](double v) {
      return v >= 1.0 ? util::format_double(v, 1) + " s"
                      : util::format_double(v * 1000.0, 1) + " ms";
    };
    per_change.add_row({bvt::to_string(procedure),
                        fmt(util::summarize(samples).mean),
                        fmt(cdf.value_at(0.99))});
  }
  per_change.print(std::cout);

  // Network-level cost under increasing churn (diurnal demands force
  // capacity changes every few rounds).
  std::cout << "\nNetwork-level cost on Abilene (1 day, diurnal load):\n";
  const graph::Graph topology = sim::abilene();
  te::McfTe engine;
  util::TextTable rows({"load (x fabric)", "procedure", "changes",
                        "downtime h", "delivered", "lost vs hitless"});
  const double fabric = topology.total_capacity().value / 2.0;
  for (double scale : {1.0, 1.5, 2.0}) {
    util::Rng demand_rng = util::Rng::stream(11, 0);  // == Rng(11)
    sim::GravityParams gravity;
    gravity.total = util::Gbps{fabric * scale};
    const auto demands = sim::gravity_matrix(topology, gravity, demand_rng);
    double hitless_delivered = 0.0;
    for (sim::CapacityPolicy policy :
         {sim::CapacityPolicy::kDynamicHitless,
          sim::CapacityPolicy::kDynamic}) {
      sim::SimulationConfig config;
      config.horizon = 1.0 * util::kDay;
      config.te_interval = 30.0 * util::kMinute;
      config.policy = policy;
      config.diurnal = true;
      config.seed = 2024;
      sim::WanSimulator simulator(topology, engine, config);
      const auto metrics = simulator.run(demands);
      if (policy == sim::CapacityPolicy::kDynamicHitless)
        hitless_delivered = metrics.delivered_gbps_hours;
      const double lost =
          hitless_delivered > 0.0
              ? 1.0 - metrics.delivered_gbps_hours / hitless_delivered
              : 0.0;
      rows.add_row(
          {util::format_double(scale, 1) + "x", sim::to_string(policy),
           std::to_string(metrics.upgrades + metrics.link_flaps +
                          metrics.restorations),
           util::format_double(metrics.reconfig_downtime_hours, 2),
           util::format_percent(metrics.delivered_fraction()),
           util::format_percent(lost)});
    }
  }
  rows.print(std::cout);

  // Consistent-update timeline of one real upgrade: the controller plans
  // the transition schedule (update::plan_schedule, docs/UPDATE.md) and the
  // numbers below come from executing that schedule — not a hand-rolled
  // single-upgrade makespan. Parked traffic is the volume the scheduler
  // had to force-churn (remove, wait out the reconfig, re-add), weighted
  // by how long it sat off the network.
  std::cout << "\nScheduled execution of one upgrade (A-B 100G -> 200G"
               " while carrying 90G):\n";
  for (bvt::Procedure procedure :
       {bvt::Procedure::kStandard, bvt::Procedure::kEfficient}) {
    graph::Graph base;
    const auto a = base.add_node("A");
    const auto b = base.add_node("B");
    base.add_edge(a, b, util::Gbps{100.0});
    core::ControllerOptions controller_options;
    controller_options.snr_margin = util::Db{0.0};
    update::SchedulerConfig stage;
    stage.procedure = procedure;
    stage.sampled_durations = false;  // expected downtimes: stable output
    controller_options.update = stage;
    core::DynamicCapacityController controller(
        base, optical::ModulationTable::standard(), engine,
        controller_options);
    const std::vector<util::Db> snr = {util::Db{16.0}};
    controller.run_round(snr, {{a, b, util::Gbps{90.0}, 0}});
    const auto round =
        controller.run_round(snr, {{a, b, util::Gbps{150.0}, 0}});
    if (!round.update.has_value() || !round.update->feasible) {
      std::cout << "  [" << bvt::to_string(procedure)
                << "] no feasible transition schedule\n";
      continue;
    }
    const update::UpdateSchedule& schedule = *round.update;

    // Parked Gbps-s: per demand, volume removed in an early round times
    // the time until a later round re-adds it (churned kept paths).
    double parked_gbps_seconds = 0.0;
    std::map<std::size_t, std::pair<double, double>> pending;  // vol, t
    double clock = 0.0;
    for (const auto& update_round : schedule.rounds) {
      const double round_end = clock + update_round.duration_seconds;
      for (const auto& move : update_round.moves) {
        if (move.kind == update::Move::Kind::kRouteRemove) {
          auto& slot = pending[move.demand_index];
          slot.first += move.volume.value;
          slot.second = round_end;
        } else if (move.kind == update::Move::Kind::kRouteAdd) {
          auto it = pending.find(move.demand_index);
          if (it == pending.end()) continue;
          const double matched =
              std::min(it->second.first, move.volume.value);
          parked_gbps_seconds += matched * (round_end - it->second.second);
          it->second.first -= matched;
          if (it->second.first <= 0.0) pending.erase(it);
        }
      }
      clock = round_end;
    }

    update::ScheduleExecutor executor(base, schedule);
    executor.run();
    std::cout << "  [" << bvt::to_string(procedure) << "] "
              << schedule.rounds.size() << " rounds, makespan "
              << util::format_double(executor.result().makespan_seconds, 3)
              << " s, forced churn " << schedule.forced_churn
              << ", parked traffic "
              << util::format_double(parked_gbps_seconds, 1)
              << " Gbps-s, timeline:\n";
    clock = 0.0;
    for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
      const auto& update_round = schedule.rounds[r];
      std::cout << "    round " << r << "  t="
                << util::format_double(clock, 3) << "s -> "
                << util::format_double(
                       clock + update_round.duration_seconds, 3)
                << "s:";
      for (const auto& move : update_round.moves) {
        if (move.kind == update::Move::Kind::kReconfig)
          std::cout << "  reconfig edge " << move.edge.value << " "
                    << util::format_double(move.from.value, 0) << "G -> "
                    << util::format_double(move.to.value, 0) << "G";
        else
          std::cout << "  "
                    << (move.kind == update::Move::Kind::kRouteRemove
                            ? "remove "
                            : "add ")
                    << util::format_double(move.volume.value, 0)
                    << "G of demand " << move.demand_index;
      }
      std::cout << '\n';
      clock += update_round.duration_seconds;
    }
  }

  std::cout << "\nShape to match the paper: with 68 s changes, every"
               " reconfiguration bites;\nat 35 ms the downtime cost is"
               " negligible, making frequent adaptation viable.\n";
  return 0;
}
