// Closed-loop OD demand estimation (rwc::demand): the estimated-demand
// control loop measured and proven against the oracle-demand loop
// (docs/DEMAND.md; EXPERIMENTS.md "Demand estimation").
//
//   demand_loop [rounds] [--selfcheck] [--json <path>]
//
// Default mode drives the estimated-demand replay loop and reports
// rounds/sec plus the estimator's observability and certification
// counters.
//
// --selfcheck turns the bench into the PR's proof obligation:
//   A. determinism — the noisy estimated chain replayed at thread-pool
//      sizes {1, 2, 8} must reproduce the unpooled chain bit-for-bit;
//   B. exact recovery — on zero-noise counters with on-grid true volumes
//      the estimated loop's signature chain must equal the oracle loop's,
//      and every post-bootstrap round must carry the exact-recovery
//      certificate (demand.estimates_exact advances by rounds-1);
//   C. graceful degradation — sweeping counter noise {0, 0.01, 0.05,
//      0.20} over a mini-fleet, delivered traffic must never exceed the
//      zero-noise arm's (estimation error cannot manufacture capacity)
//      and the zero-noise arm must equal the oracle arm bitwise.
// The sweep rows are exported as demand.bench.* gauges so `--json`
// snapshots them into BENCH_demand.json for CI drift tracking.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "demand/estimator.hpp"
#include "exec/thread_pool.hpp"
#include "obs/timer.hpp"
#include "replay/driver.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "util/rng.hpp"

namespace {

using rwc::replay::ReplayConfig;
using rwc::replay::ReplayDriver;

struct Fleet {
  rwc::graph::Graph topology;
  rwc::te::TrafficMatrix demands;
};

/// Instance with ON-GRID demand volumes: leg B compares the estimated
/// chain against the oracle chain bitwise, which needs truths the 1e-6
/// Gbps estimate grid can represent (docs/DEMAND.md §4).
Fleet make_fleet() {
  rwc::util::Rng topo_rng = rwc::util::Rng::stream(rwc::bench::kFleetSeed, 60);
  Fleet fleet{rwc::sim::waxman(10, topo_rng), {}};
  rwc::util::Rng demand_rng =
      rwc::util::Rng::stream(rwc::bench::kFleetSeed, 61);
  rwc::sim::GravityParams gravity;
  gravity.total =
      rwc::util::Gbps{fleet.topology.total_capacity().value * 0.45};
  fleet.demands = rwc::sim::gravity_matrix(fleet.topology, gravity, demand_rng);
  for (rwc::te::Demand& demand : fleet.demands)
    demand.volume =
        rwc::util::Gbps{rwc::demand::snap_to_grid(demand.volume.value)};
  return fleet;
}

ReplayConfig make_config(std::uint64_t rounds) {
  ReplayConfig config;
  config.rounds = rounds;
  config.diurnal = false;  // leg B precondition: on-grid volumes stay on-grid
  config.hysteresis = rwc::core::HysteresisParams{};
  config.seed = rwc::util::Rng::stream(rwc::bench::kFleetSeed, 62).next_u64();
  return config;
}

std::uint64_t run_chain(const Fleet& fleet, const ReplayConfig& config) {
  rwc::te::McfTe engine;
  ReplayDriver driver(fleet.topology, engine, fleet.demands, config);
  driver.run();
  return driver.signature_chain();
}

int run_perf(std::uint64_t rounds) {
  const Fleet fleet = make_fleet();
  ReplayConfig config = make_config(rounds);
  config.demand.source = rwc::demand::DemandSource::kEstimated;
  config.demand.noise = 0.02;
  config.demand.loss_rate = 0.01;

  rwc::te::McfTe engine;
  ReplayDriver driver(fleet.topology, engine, fleet.demands, config);
  const rwc::obs::StopWatch watch;
  driver.run();
  const double seconds = watch.seconds();

  auto& registry = rwc::obs::Registry::global();
  rwc::bench::print_header("Demand loop: estimated-demand control rounds");
  std::printf("%-28s %llu\n", "rounds",
              static_cast<unsigned long long>(rounds));
  std::printf("%-28s %zu links, %zu ODs\n", "instance",
              fleet.topology.edge_count(), fleet.demands.size());
  std::printf("%-28s %.1f\n", "rounds/sec",
              seconds > 0.0 ? static_cast<double>(rounds) / seconds : 0.0);
  std::printf("%-28s %llu\n", "estimator solves",
              static_cast<unsigned long long>(
                  registry.counter("demand.solves").value()));
  std::printf("%-28s %llu\n", "exact certificates",
              static_cast<unsigned long long>(
                  registry.counter("demand.estimates_exact").value()));
  std::printf("%-28s %llu\n", "damped fallbacks",
              static_cast<unsigned long long>(
                  registry.counter("demand.estimates_damped").value()));
  std::printf("%-28s %llu\n", "counters sanitized",
              static_cast<unsigned long long>(
                  registry.counter("demand.counters_sanitized").value()));
  return 0;
}

/// Selfcheck leg A: the noisy estimated chain is invariant to the
/// thread-pool size (the estimator must not depend on reduction order).
bool selfcheck_pool_determinism(const Fleet& fleet, std::uint64_t rounds) {
  ReplayConfig config = make_config(rounds);
  config.demand.source = rwc::demand::DemandSource::kEstimated;
  config.demand.noise = 0.02;
  const std::uint64_t reference = run_chain(fleet, config);

  bool ok = true;
  for (const std::size_t pool_size : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
    rwc::exec::ThreadPool pool(pool_size);
    ReplayConfig pooled = config;
    pooled.pool = &pool;
    const std::uint64_t chain = run_chain(fleet, pooled);
    const bool match = chain == reference;
    std::printf("%-28s pool=%zu chain %s\n", "pool determinism", pool_size,
                match ? "MATCH" : "MISMATCH");
    if (!match) {
      std::fprintf(stderr,
                   "selfcheck: pool=%zu chain %016llx != reference %016llx\n",
                   pool_size, static_cast<unsigned long long>(chain),
                   static_cast<unsigned long long>(reference));
      ok = false;
    }
  }
  return ok;
}

/// Selfcheck leg B: zero-noise estimated == oracle, certified per round.
bool selfcheck_exact_recovery(const Fleet& fleet, std::uint64_t rounds) {
  const ReplayConfig oracle = make_config(rounds);
  const std::uint64_t oracle_chain = run_chain(fleet, oracle);

  ReplayConfig estimated = oracle;
  estimated.demand.source = rwc::demand::DemandSource::kEstimated;
  auto& exact = rwc::obs::Registry::global().counter("demand.estimates_exact");
  const std::uint64_t exact_before = exact.value();
  const std::uint64_t estimated_chain = run_chain(fleet, estimated);
  const std::uint64_t certified = exact.value() - exact_before;

  const bool chains_match = estimated_chain == oracle_chain;
  // Round 0 bootstraps from intent (nothing installed to invert); every
  // later round must certify or the equivalence is vacuous.
  const bool all_certified = certified >= rounds - 1;
  std::printf("%-28s chain %s, %llu/%llu rounds certified\n",
              "exact recovery", chains_match ? "MATCH" : "MISMATCH",
              static_cast<unsigned long long>(certified),
              static_cast<unsigned long long>(rounds - 1));
  if (!chains_match)
    std::fprintf(stderr,
                 "selfcheck: estimated chain %016llx != oracle %016llx\n",
                 static_cast<unsigned long long>(estimated_chain),
                 static_cast<unsigned long long>(oracle_chain));
  if (!all_certified)
    std::fprintf(stderr,
                 "selfcheck: only %llu certified exact recoveries, need %llu\n",
                 static_cast<unsigned long long>(certified),
                 static_cast<unsigned long long>(rounds - 1));
  return chains_match && all_certified;
}

/// Selfcheck leg C: counter-noise sweep over a mini-fleet simulation.
/// Delivered traffic under estimation error never exceeds the clean arm.
bool selfcheck_noise_sweep(const Fleet& fleet) {
  constexpr double kNoise[] = {0.0, 0.01, 0.05, 0.20};

  rwc::sim::SimulationConfig base;
  base.horizon = 12.0 * rwc::util::kHour;
  base.te_interval = 15.0 * rwc::util::kMinute;
  base.seed = rwc::bench::kFleetSeed;
  base.diurnal = false;
  base.policy = rwc::sim::CapacityPolicy::kDynamic;

  std::vector<rwc::sim::Scenario> scenarios;
  scenarios.push_back({"oracle", base});
  for (const double noise : kNoise) {
    rwc::sim::SimulationConfig config = base;
    config.demand.source = rwc::demand::DemandSource::kEstimated;
    config.demand.noise = noise;
    scenarios.push_back({"noise-" + std::to_string(noise), config});
  }

  const rwc::te::McfTe engine;
  const std::vector<rwc::sim::ScenarioResult> results =
      rwc::sim::run_scenarios(fleet.topology, engine, fleet.demands,
                              scenarios);

  auto& registry = rwc::obs::Registry::global();
  const double oracle_delivered = results[0].metrics.delivered_gbps_hours;
  const double clean_delivered = results[1].metrics.delivered_gbps_hours;
  bool ok = true;
  std::printf("%-28s %14s %14s %10s\n", "noise sweep", "delivered",
              "availability", "te rounds");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const rwc::sim::SimulationMetrics& m = results[i].metrics;
    std::printf("%-28s %14.2f %14.6f %10llu\n", results[i].name.c_str(),
                m.delivered_gbps_hours, m.availability,
                static_cast<unsigned long long>(m.te_rounds));
    registry.gauge("demand.bench." + results[i].name + ".delivered").set(
        m.delivered_gbps_hours);
    registry.gauge("demand.bench." + results[i].name + ".availability").set(
        m.availability);
  }
  if (clean_delivered != oracle_delivered) {
    std::fprintf(stderr,
                 "selfcheck: zero-noise delivered %.9f != oracle %.9f\n",
                 clean_delivered, oracle_delivered);
    ok = false;
  }
  // Estimation error can only lose traffic (honest delivered accounting):
  // allow a whisker of FP slack, nothing more.
  const double eps = 1e-9 * std::max(1.0, clean_delivered);
  for (std::size_t i = 2; i < results.size(); ++i) {
    if (results[i].metrics.delivered_gbps_hours >
        clean_delivered + eps) {
      std::fprintf(stderr,
                   "selfcheck: %s delivered %.9f exceeds zero-noise %.9f\n",
                   results[i].name.c_str(),
                   results[i].metrics.delivered_gbps_hours, clean_delivered);
      ok = false;
    }
  }
  return ok;
}

int run_selfcheck(std::uint64_t rounds) {
  const Fleet fleet = make_fleet();
  rwc::bench::print_header("Demand loop selfcheck");
  bool ok = selfcheck_pool_determinism(fleet, rounds);
  ok &= selfcheck_exact_recovery(fleet, rounds);
  ok &= selfcheck_noise_sweep(fleet);
  std::printf("\nselfcheck: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  rwc::bench::JsonExportGuard json_guard(argc, argv);
  bool selfcheck = false;
  std::uint64_t rounds = 96;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selfcheck") {
      selfcheck = true;
    } else if (const long long parsed = std::atoll(arg.c_str());
               parsed > 0) {
      rounds = static_cast<std::uint64_t>(parsed);
    }
  }
  if (selfcheck) return run_selfcheck(std::min<std::uint64_t>(rounds, 24));
  return run_perf(rounds);
}
