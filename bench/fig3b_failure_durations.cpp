// Figure 3b: duration of link failures when WAN links operate at a given
// capacity (only where the rate is feasible per the link's SNR). Paper
// shape: failures last several hours on average at every capacity.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "telemetry/analysis.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  const int fibers = bench::fibers_from_args(argc, argv, 12);
  bench::print_header("Figure 3b: failure durations vs capacity (" +
                      std::to_string(fibers * 40) + " links)");

  const auto fleet = bench::make_fleet(fibers);
  const auto table = optical::ModulationTable::standard();
  const auto formats = table.formats();

  // Collect failure durations per capacity, only for links whose feasible
  // capacity covers that rate (the paper's conditioning). Episodes shorter
  // than two samples (30 min) are debounced: production gear applies a
  // hold-down before declaring a link event, so single-sample jitter
  // crossings near the threshold are not failures.
  constexpr std::size_t kDebounceSamples = 2;
  std::vector<std::vector<double>> durations(formats.size());
  for (int link = 0; link < fleet.link_count(); ++link) {
    const auto trace = fleet.generate_trace(link);
    const auto stats = telemetry::analyze_link(trace, table);
    for (std::size_t i = 0; i < formats.size(); ++i) {
      if (stats.feasible_capacity < formats[i].capacity) continue;
      for (const auto& episode :
           telemetry::failure_episodes(trace, formats[i].min_snr)) {
        if (episode.length < kDebounceSamples) continue;
        durations[i].push_back(episode.duration(trace) / util::kHour);
      }
    }
  }

  util::TextTable rows(
      {"capacity", "episodes", "mean h", "median h", "p90 h", "max h"});
  for (std::size_t i = 0; i < formats.size(); ++i) {
    if (durations[i].empty()) {
      rows.add_row({util::format_double(formats[i].capacity.value, 0) +
                        " Gbps",
                    "0", "-", "-", "-", "-"});
      continue;
    }
    const util::EmpiricalCdf cdf(durations[i]);
    const auto summary = util::summarize(durations[i]);
    rows.add_row({util::format_double(formats[i].capacity.value, 0) + " Gbps",
                  std::to_string(durations[i].size()),
                  util::format_double(summary.mean, 1),
                  util::format_double(cdf.value_at(0.5), 1),
                  util::format_double(cdf.value_at(0.9), 1),
                  util::format_double(summary.max, 1)});
  }
  rows.print(std::cout);
  std::cout << "\nObservation (paper): failure events last several hours at"
               " every capacity,\nso creating extra failures by statically"
               " over-modulating is unacceptable.\n";
  return 0;
}
