// Section 2.2 simulation: availability gain from replacing binary link
// failures with capacity flaps. A degraded-SNR population drives frequent
// dips; the dynamic policy keeps partially-degraded links alive at lower
// rates while the static policy declares them down.
#include <iostream>

#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "tickets/analysis.hpp"
#include "tickets/generator.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  (void)argc;
  (void)argv;
  bench::print_header("Availability gain: failures become flaps");

  // Part 1: ticket-log estimate (paper's 25%).
  const auto tickets =
      tickets::generate_tickets(tickets::TicketModelParams{}, 20171130);
  const auto opportunity = tickets::opportunity_report(
      tickets, optical::ModulationTable::standard());
  std::cout << "From the 250-event ticket log: "
            << util::format_percent(opportunity.recoverable_event_fraction)
            << " of failures retain SNR >= 3 dB and become 50 Gbps flaps"
            << " (paper: ~25%).\n\n";

  // Part 2: trace-driven simulation on a stressed fleet.
  const graph::Graph topology = sim::abilene();
  te::McfTe engine;
  util::Rng rng = util::Rng::stream(7, 0);  // == Rng(7), same demands
  sim::GravityParams gravity;
  gravity.total = util::Gbps{400.0};
  const auto demands = sim::gravity_matrix(topology, gravity, rng);

  // The three policy arms run through run_scenarios (global pool); results
  // come back in policy order and match the former serial loop exactly.
  std::vector<sim::Scenario> scenarios;
  for (sim::CapacityPolicy policy :
       {sim::CapacityPolicy::kStatic, sim::CapacityPolicy::kDynamic,
        sim::CapacityPolicy::kDynamicHitless}) {
    sim::SimulationConfig config;
    config.horizon = 4.0 * util::kDay;
    config.te_interval = 30.0 * util::kMinute;
    config.policy = policy;
    config.seed = 99;
    // Stress the optical layer: lower baselines, frequent deep dips.
    config.snr_model.fiber_baseline_mean = util::Db{11.5};
    config.snr_model.fiber_deep_rate_per_year = 25.0;
    config.snr_model.deep_depth_median_db = 7.0;
    scenarios.push_back({sim::to_string(policy), config});
  }

  util::TextTable rows({"policy", "availability", "failures", "flaps",
                        "delivered", "downtime h"});
  for (const auto& [name, metrics] :
       sim::run_scenarios(topology, engine, demands, scenarios)) {
    rows.add_row({name, util::format_percent(metrics.availability),
                  std::to_string(metrics.link_failures),
                  std::to_string(metrics.link_flaps),
                  util::format_percent(metrics.delivered_fraction()),
                  util::format_double(metrics.reconfig_downtime_hours, 2)});
  }
  rows.print(std::cout);
  std::cout << "\nShape to match the paper: the dynamic policies convert a"
               " large share of\nbinary failures into rate flaps, raising"
               " availability; hitless reconfiguration\nmakes the flaps"
               " nearly free.\n";
  return 0;
}
