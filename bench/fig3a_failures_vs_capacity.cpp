// Figure 3a: number of link failures per wavelength as a function of the
// (statically) configured capacity, on a high-quality fiber where every
// rate is SNR-feasible. Paper shape: flat up to 175 Gbps, some links jump
// at 200 Gbps (log-scale spread 1..100).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "telemetry/analysis.hpp"

int main(int argc, char** argv) {
  using namespace rwc;
  bench::JsonExportGuard json_guard(argc, argv);
  bench::print_header(
      "Figure 3a: failures vs configured capacity (high-quality fiber)");
  (void)argc;
  (void)argv;

  // A premium fiber: high baseline so even 200 G is nominally feasible.
  telemetry::SnrFleetGenerator::FleetParams params;
  params.fiber_count = 1;
  params.wavelengths_per_fiber = 40;
  params.model.fiber_baseline_mean = util::Db{15.8};
  params.model.fiber_baseline_sigma = util::Db{0.3};
  params.model.fiber_baseline_min = util::Db{15.0};
  const telemetry::SnrFleetGenerator fleet(params, bench::kFleetSeed + 3);

  const auto table = optical::ModulationTable::standard();
  util::TextTable rows({"lambda", "100G", "125G", "150G", "175G", "200G"});
  std::vector<std::size_t> totals(table.formats().size(), 0);
  std::vector<std::size_t> max_failures(table.formats().size(), 0);
  for (int lambda = 0; lambda < fleet.wavelengths_per_fiber(); ++lambda) {
    const auto counts =
        telemetry::failures_per_capacity(fleet.generate_trace(0, lambda),
                                         table);
    // counts[0] is the 50 G rate; columns start at 100 G (index 1).
    rows.add_row({std::to_string(lambda), std::to_string(counts[1]),
                  std::to_string(counts[2]), std::to_string(counts[3]),
                  std::to_string(counts[4]), std::to_string(counts[5])});
    for (std::size_t i = 0; i < counts.size(); ++i) {
      totals[i] += counts[i];
      max_failures[i] = std::max(max_failures[i], counts[i]);
    }
  }
  rows.print(std::cout);

  std::cout << "\nFleet view (40 wavelengths):\n";
  util::TextTable agg({"capacity", "total failures", "max per lambda"});
  const auto formats = table.formats();
  for (std::size_t i = 1; i < formats.size(); ++i)
    agg.add_row({util::format_double(formats[i].capacity.value, 0) + " Gbps",
                 std::to_string(totals[i]),
                 std::to_string(max_failures[i])});
  agg.print(std::cout);
  std::cout << "\nObservation (paper): no significant increase up to 175"
               " Gbps; driving\nthe links at 200 Gbps multiplies failures"
               " on several wavelengths.\n";
  return 0;
}
