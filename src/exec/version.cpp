// Library identification for rwc_exec.
namespace rwc::exec {

/// Version string of the exec subsystem (matches the top-level project).
const char* version() { return "1.0.0"; }

}  // namespace rwc::exec
