#include "exec/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace rwc::exec {

namespace {

/// Handles into the global registry (docs/OBSERVABILITY.md: exec.*).
struct PoolMetrics {
  obs::Counter& tasks;
  obs::Counter& steals;
  obs::Gauge& threads;
  obs::Gauge& utilization;

  static PoolMetrics& instance() {
    static auto& registry = obs::Registry::global();
    static PoolMetrics metrics{
        registry.counter("exec.tasks"),
        registry.counter("exec.steals"),
        registry.gauge("exec.pool.threads"),
        registry.gauge("exec.pool_utilization"),
    };
    return metrics;
  }
};

/// The pool (if any) whose worker loop the current thread is running.
thread_local const ThreadPool* current_worker_pool = nullptr;

/// Workers currently executing a task, across all pools. Feeds the
/// exec.pool_utilization gauge (active / configured threads).
std::atomic<std::size_t> active_workers{0};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(wake_mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  RWC_EXPECTS(task != nullptr);
  if (workers_.empty()) {
    // Serial pool: run inline. Keeps submit() usable at size 0.
    PoolMetrics::instance().tasks.add();
    task();
    return;
  }
  {
    std::lock_guard lock(wake_mutex_);
    RWC_CHECK_MSG(!stopping_, "submit on a stopping ThreadPool");
    auto& queue = *queues_[next_queue_];
    next_queue_ = (next_queue_ + 1) % queues_.size();
    std::lock_guard queue_lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::on_worker_thread() const {
  return current_worker_pool == this;
}

bool ThreadPool::try_pop_own(std::size_t self, std::function<void()>& task) {
  auto& queue = *queues_[self];
  std::lock_guard lock(queue.mutex);
  if (queue.tasks.empty()) return false;
  task = std::move(queue.tasks.back());  // LIFO: newest, cache-warm
  queue.tasks.pop_back();
  return true;
}

bool ThreadPool::try_steal(std::size_t self, std::function<void()>& task) {
  // Fault injection (docs/FAULTS.md, site exec.steal): delay this worker at
  // the steal boundary. Shifts which tasks get stolen and in what
  // interleaving — scheduling noise that the determinism contract
  // (docs/CONCURRENCY.md) must absorb without changing any result.
  if (const fault::Action action = fault::next("exec.steal");
      action.kind == fault::Kind::kDelay && action.magnitude > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(action.magnitude));
  }
  const std::size_t n = queues_.size();
  for (std::size_t offset = 1; offset < n; ++offset) {
    auto& victim = *queues_[(self + offset) % n];
    std::lock_guard lock(victim.mutex);
    if (victim.tasks.empty()) continue;
    task = std::move(victim.tasks.front());  // FIFO: oldest first
    victim.tasks.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  current_worker_pool = this;
  auto& metrics = PoolMetrics::instance();
  const double configured = static_cast<double>(queues_.size());
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    if (!try_pop_own(self, task)) stolen = try_steal(self, task);
    if (task == nullptr) {
      std::unique_lock lock(wake_mutex_);
      wake_.wait(lock, [&] {
        if (stopping_) return true;
        // Re-check queues under the wake mutex: a submit that raced with
        // our scans has already notified, so we must not sleep past it.
        for (const auto& queue : queues_) {
          std::lock_guard queue_lock(queue->mutex);
          if (!queue->tasks.empty()) return true;
        }
        return false;
      });
      if (stopping_) {
        // Drain: only exit once every queue is empty, so no submitted
        // task is dropped on shutdown.
        bool any = false;
        for (const auto& queue : queues_) {
          std::lock_guard queue_lock(queue->mutex);
          any = any || !queue->tasks.empty();
        }
        if (!any) return;
      }
      continue;
    }

    metrics.tasks.add();
    if (stolen) metrics.steals.add();
    const auto active = active_workers.fetch_add(1) + 1;
    metrics.utilization.set(static_cast<double>(active) / configured);
    task();
    active_workers.fetch_sub(1);
  }
}

std::size_t ThreadPool::default_thread_count() {
  static const std::size_t count = [] {
    if (const char* env = std::getenv("RWC_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 0) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw > 0 ? hw : 1);
  }();
  return count;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_thread_count());
  PoolMetrics::instance().threads.set(
      static_cast<double>(pool.thread_count()));
  return pool;
}

}  // namespace rwc::exec
