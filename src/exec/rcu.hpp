// RCU-style epoch publication (rwc::exec).
//
// The read-side primitive behind rwc::serve's snapshot path: a single
// writer publishes immutable objects through one atomic pointer swap, and
// any number of registered readers acquire the current object WAIT-FREE —
// an acquire is one announcement store, one fence and one pointer load,
// with no CAS loop, no lock and no shared-counter contention. Reclamation
// is grace-period based: a retired object is freed only once every active
// reader has announced a version at or past the retirement, so a reader
// can hold a snapshot for arbitrarily long without ever blocking the
// writer (the writer just keeps the garbage until the reader quiesces).
//
// Protocol (the classic asymmetric Dekker pattern, docs/CONCURRENCY.md):
//
//   reader acquire:                 writer publish:
//     a = version   (seq_cst)         swap current   (seq_cst)
//     slot = a      (seq_cst)         version = v+1  (seq_cst)
//     load current  (seq_cst)         retire old @ tag v+1
//                                     free retired with tag <= min slot
//
// With seq_cst on both sides, either the writer's scan sees the reader's
// announcement (and keeps the object), or the reader's pointer load sees
// the new object (and never touches the retired one). An object's retire
// tag is the version that replaced it, and any reader that could still
// hold it announced a strictly smaller version — so "free tag t when every
// active announcement is >= t" never frees live memory.
//
// Single-writer contract: publish/synchronize must not race each other
// (RcuDomain serializes them with an internal mutex, so multiple writers
// are safe but will contend; the intended use is one publisher thread).
// tests/test_exec_rcu.cpp proves reclamation and safety; the TSan CI job
// runs the serve stress suite (tests/serve/) over this code.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "util/check.hpp"

namespace rwc::exec {

/// Reader registry + grace-period tracker. One domain can protect any
/// number of RcuCell<T>s that share its readers (rwc::serve uses one per
/// service). max_readers is a hard capacity: registration beyond it
/// throws, so the read path never needs a resizable (lock-guarded)
/// structure.
class RcuDomain {
 public:
  explicit RcuDomain(std::size_t max_readers = 256);
  RcuDomain(const RcuDomain&) = delete;
  RcuDomain& operator=(const RcuDomain&) = delete;
  /// Frees everything still retired. Callers must have dropped every
  /// guard and destroyed every cell first (checked).
  ~RcuDomain();

  std::size_t max_readers() const { return slots_.size(); }
  std::size_t registered_readers() const;

  /// Current publication version (starts at 1; each publish increments).
  std::uint64_t version() const {
    return version_.load(std::memory_order_seq_cst);
  }

  /// Number of retired-but-not-yet-freed objects (writer-side telemetry).
  std::size_t deferred() const;

  /// Blocks (spin + yield) until every reader active at call time has
  /// quiesced past the current version, then frees all retired objects.
  /// Writer-side only.
  void synchronize();

 private:
  friend class RcuReader;
  template <typename T>
  friend class RcuCell;

  struct alignas(64) Slot {
    /// kQuiescent, or the version announced by the occupying reader.
    std::atomic<std::uint64_t> announce{kQuiescent};
    /// Managed under mutex_ (registration only, never on the read path).
    bool in_use = false;
  };

  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  /// Registers a reader; returns its slot. Throws util::CheckError when
  /// the domain is at max_readers.
  Slot* register_reader();
  void unregister_reader(Slot* slot);

  /// Retires `object` at the current version; the deleter runs once every
  /// reader that could hold the object has quiesced. Called by RcuCell
  /// with the version tag already bumped.
  void retire(void* object, void (*deleter)(void*), std::uint64_t tag);

  /// Frees every retired object whose tag all active readers have passed.
  /// Requires mutex_ held.
  void reclaim_locked();

  /// Smallest announced version over active readers (kQuiescent when all
  /// readers are quiescent).
  std::uint64_t min_announcement() const;

  struct Retired {
    void* object;
    void (*deleter)(void*);
    std::uint64_t tag;
  };

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> version_{1};
  mutable std::mutex mutex_;  // registration + retire list + publish order
  std::vector<Retired> retired_;
  std::size_t registered_ = 0;
};

/// One reader's registration in a domain (RAII). A reader handle is NOT
/// thread-safe: each concurrent reader thread owns its own RcuReader.
/// At most one snapshot may be outstanding per reader at a time (checked);
/// re-acquiring after release is the expected pattern of a serving loop.
class RcuReader {
 public:
  explicit RcuReader(RcuDomain& domain)
      : domain_(&domain), slot_(domain.register_reader()) {}
  RcuReader(const RcuReader&) = delete;
  RcuReader& operator=(const RcuReader&) = delete;
  RcuReader(RcuReader&& other) noexcept
      : domain_(other.domain_), slot_(other.slot_) {
    other.slot_ = nullptr;
  }
  RcuReader& operator=(RcuReader&&) = delete;
  ~RcuReader() {
    if (slot_ != nullptr) domain_->unregister_reader(slot_);
  }

 private:
  template <typename T>
  friend class RcuCell;

  RcuDomain* domain_;
  RcuDomain::Slot* slot_;
};

/// A published immutable object of type T, swapped atomically and read
/// wait-free through a domain's readers.
template <typename T>
class RcuCell {
 public:
  explicit RcuCell(RcuDomain& domain) : domain_(&domain) {}
  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;
  ~RcuCell() {
    // Retire the final object through the domain so late readers stay
    // safe until the domain synchronizes/destructs.
    const T* last = current_.exchange(nullptr, std::memory_order_seq_cst);
    if (last != nullptr) {
      std::lock_guard<std::mutex> lock(domain_->mutex_);
      const std::uint64_t tag =
          domain_->version_.fetch_add(1, std::memory_order_seq_cst) + 1;
      domain_->retire(const_cast<T*>(last), &delete_object, tag);
      domain_->reclaim_locked();
    }
  }

  /// Wait-free snapshot of the current object; nullptr before the first
  /// publish. The object stays valid until release(). Requires no other
  /// snapshot outstanding on `reader`.
  const T* acquire(RcuReader& reader) const {
    RcuDomain::Slot* slot = reader.slot_;
    RWC_EXPECTS(slot->announce.load(std::memory_order_relaxed) ==
                RcuDomain::kQuiescent);
    // Announce the version BEFORE loading the pointer: any object this
    // load can return is protected by an announcement <= its retire tag.
    const std::uint64_t v =
        domain_->version_.load(std::memory_order_seq_cst);
    slot->announce.store(v, std::memory_order_seq_cst);
    return current_.load(std::memory_order_seq_cst);
  }

  /// Ends the snapshot started by acquire() on the same reader.
  void release(RcuReader& reader) const {
    reader.slot_->announce.store(RcuDomain::kQuiescent,
                                 std::memory_order_release);
  }

  /// Publishes `next` as the new current object, retires the previous one,
  /// and frees any retired object every reader has quiesced past. Single
  /// logical writer (serialized on the domain mutex).
  void publish(std::unique_ptr<const T> next) {
    RWC_EXPECTS(next != nullptr);
    std::lock_guard<std::mutex> lock(domain_->mutex_);
    const T* old =
        current_.exchange(next.release(), std::memory_order_seq_cst);
    const std::uint64_t tag =
        domain_->version_.fetch_add(1, std::memory_order_seq_cst) + 1;
    if (old != nullptr)
      domain_->retire(const_cast<T*>(old), &delete_object, tag);
    domain_->reclaim_locked();
  }

  /// Writer-side peek (no grace period; only safe on the publishing
  /// thread, which is the only one that can retire it).
  const T* unsafe_current() const {
    return current_.load(std::memory_order_seq_cst);
  }

 private:
  static void delete_object(void* object) {
    delete static_cast<const T*>(object);
  }

  RcuDomain* domain_;
  std::atomic<const T*> current_{nullptr};
};

/// RAII snapshot: acquire on construction, release on destruction.
template <typename T>
class RcuGuard {
 public:
  RcuGuard(const RcuCell<T>& cell, RcuReader& reader)
      : cell_(&cell), reader_(&reader), object_(cell.acquire(reader)) {}
  RcuGuard(const RcuGuard&) = delete;
  RcuGuard& operator=(const RcuGuard&) = delete;
  ~RcuGuard() { cell_->release(*reader_); }

  const T* get() const { return object_; }
  const T* operator->() const { return object_; }
  const T& operator*() const { return *object_; }
  explicit operator bool() const { return object_ != nullptr; }

 private:
  const RcuCell<T>* cell_;
  RcuReader* reader_;
  const T* object_;
};

}  // namespace rwc::exec
