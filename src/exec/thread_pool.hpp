// Fixed-size work-stealing thread pool (rwc::exec).
//
// The execution layer for every parallel hot path in librwc: controller
// consolidation candidates, simulator scenario sweeps and per-link telemetry
// analysis all fan out through one ThreadPool. Design goals, in order:
//
//   1. Determinism. The pool only *schedules*; it never changes results.
//      parallel_for / parallel_map (parallel.hpp) assign work by index and
//      reduce in index order, so outputs are bit-identical to a serial run
//      regardless of pool size or steal interleaving (the full contract
//      lives in docs/CONCURRENCY.md).
//   2. No nested deadlock. A worker thread that re-enters parallel code
//      runs it inline instead of blocking on its own pool.
//   3. Observability. Task and steal counts stream into the global
//      obs::Registry (exec.tasks, exec.steals, exec.pool_utilization — see
//      docs/OBSERVABILITY.md).
//
// Work stealing: each worker owns a deque; submitted tasks are distributed
// round-robin; a worker pops LIFO from its own deque (cache-warm) and
// steals FIFO from its victims (oldest first, classic Blumofe-Leiserson
// order) when its own deque runs dry.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rwc::exec {

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 is allowed and means "no workers": all
  /// work submitted through parallel_for / parallel_map runs inline on the
  /// calling thread (the pool is then a pure pass-through).
  explicit ThreadPool(std::size_t threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::size_t thread_count() const { return workers_.size(); }

  /// Submits one task. Tasks must not block on other tasks of the same
  /// pool (parallel.hpp's helpers never do; they run inline on re-entry).
  void submit(std::function<void()> task);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// The process-wide default pool. Sized from the RWC_THREADS environment
  /// variable when set (0 = serial), else std::thread::hardware_concurrency.
  /// Created on first use.
  static ThreadPool& global();

  /// Number of threads global() will be (or was) created with. Reads
  /// RWC_THREADS once.
  static std::size_t default_thread_count();

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop_own(std::size_t self, std::function<void()>& task);
  bool try_steal(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::size_t next_queue_ = 0;  // round-robin submit cursor (under wake_mutex_)
  bool stopping_ = false;       // under wake_mutex_
};

}  // namespace rwc::exec
