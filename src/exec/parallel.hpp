// Deterministic parallel algorithms on top of exec::ThreadPool.
//
// parallel_for / parallel_map split an index range into chunks, run the
// chunks on the pool, and (for parallel_map) reduce results in index order.
// The determinism contract (docs/CONCURRENCY.md):
//
//   * Work is assigned by index: task i always computes element i, whatever
//     thread runs it and in whatever order chunks complete.
//   * Results land in pre-sized slots, so the reduction order — and
//     therefore every floating-point rounding — matches the serial loop.
//   * Exceptions are re-thrown in index order: the caller always sees the
//     exception the serial loop would have seen first.
//
// Consequently outputs are bit-identical for every pool size, including 0
// (inline serial). Re-entrant calls from a worker thread of the same pool
// run inline, so nested parallelism cannot deadlock.
#pragma once

#include <exception>
#include <latch>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "util/check.hpp"

namespace rwc::exec {

namespace detail {

/// Chunk bounds: splits [0, n) into roughly `pieces` contiguous chunks.
inline std::vector<std::pair<std::size_t, std::size_t>> chunk_range(
    std::size_t n, std::size_t pieces) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  if (n == 0) return chunks;
  if (pieces == 0) pieces = 1;
  if (pieces > n) pieces = n;
  const std::size_t base = n / pieces;
  const std::size_t extra = n % pieces;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < pieces; ++c) {
    const std::size_t size = base + (c < extra ? 1 : 0);
    chunks.emplace_back(begin, begin + size);
    begin += size;
  }
  return chunks;
}

}  // namespace detail

/// Runs body(i) for every i in [0, n). Body must be safe to call from
/// multiple threads for distinct i and must not touch shared mutable state
/// (that is what makes the result order-independent). Blocks until all
/// iterations finished; rethrows the lowest-index exception.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t n, Body&& body) {
  if (n == 0) return;
  // Serial pool, single iteration, or re-entry from one of our own
  // workers: run inline. Inline execution is the semantic baseline the
  // parallel path must reproduce bit-identically.
  if (pool.thread_count() <= 1 || n == 1 || pool.on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // A few chunks per worker amortizes queue traffic while leaving enough
  // slack for stealing to balance uneven chunk costs.
  const auto chunks =
      detail::chunk_range(n, pool.thread_count() * 4);
  std::vector<std::exception_ptr> errors(chunks.size());
  std::latch done(static_cast<std::ptrdiff_t>(chunks.size()));
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    pool.submit([&, c] {
      const auto [begin, end] = chunks[c];
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        errors[c] = std::current_exception();
      }
      done.count_down();
    });
  }
  done.wait();
  for (const std::exception_ptr& error : errors)
    if (error != nullptr) std::rethrow_exception(error);
}

/// Computes fn(i) for every i in [0, n) and returns the results in index
/// order. T must be default-constructible; fn is called exactly once per
/// index. Deterministic, order-preserving reduction: element i of the
/// returned vector is always fn(i).
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using T = decltype(fn(std::size_t{0}));
  std::vector<T> results(n);
  parallel_for(pool, n, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace rwc::exec
