#include "exec/rcu.hpp"

#include <algorithm>
#include <thread>

#include "obs/registry.hpp"

namespace rwc::exec {

namespace {

/// Handles into the global registry (docs/OBSERVABILITY.md: exec.rcu.*).
/// Writer-side only — the read path touches no shared instrument.
struct RcuMetrics {
  obs::Counter& retired;
  obs::Counter& reclaimed;
  obs::Counter& synchronizes;

  static RcuMetrics& instance() {
    static auto& registry = obs::Registry::global();
    static RcuMetrics metrics{
        registry.counter("exec.rcu.retired"),
        registry.counter("exec.rcu.reclaimed"),
        registry.counter("exec.rcu.synchronizes"),
    };
    return metrics;
  }
};

}  // namespace

RcuDomain::RcuDomain(std::size_t max_readers) {
  RWC_EXPECTS(max_readers > 0);
  slots_.reserve(max_readers);
  for (std::size_t i = 0; i < max_readers; ++i)
    slots_.push_back(std::make_unique<Slot>());
}

RcuDomain::~RcuDomain() {
  std::lock_guard<std::mutex> lock(mutex_);
  RWC_EXPECTS(registered_ == 0);
  for (const Retired& entry : retired_) entry.deleter(entry.object);
  retired_.clear();
}

std::size_t RcuDomain::registered_readers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return registered_;
}

std::size_t RcuDomain::deferred() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retired_.size();
}

RcuDomain::Slot* RcuDomain::register_reader() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& slot : slots_) {
    if (!slot->in_use) {
      slot->in_use = true;
      ++registered_;
      return slot.get();
    }
  }
  RWC_CHECK_MSG(false, "RcuDomain reader capacity exhausted");
  return nullptr;
}

void RcuDomain::unregister_reader(Slot* slot) {
  // A destructing reader must have released its snapshot; clearing the
  // announcement here would hide that bug, so check instead.
  RWC_EXPECTS(slot->announce.load(std::memory_order_relaxed) == kQuiescent);
  std::lock_guard<std::mutex> lock(mutex_);
  slot->in_use = false;
  --registered_;
  // A departing reader can be the last thing delaying a grace period.
  reclaim_locked();
}

void RcuDomain::retire(void* object, void (*deleter)(void*),
                       std::uint64_t tag) {
  retired_.push_back(Retired{object, deleter, tag});
  RcuMetrics::instance().retired.add();
}

std::uint64_t RcuDomain::min_announcement() const {
  std::uint64_t min = kQuiescent;
  for (const auto& slot : slots_)
    min = std::min(min, slot->announce.load(std::memory_order_seq_cst));
  return min;
}

void RcuDomain::reclaim_locked() {
  // An object retired at tag t was unreachable from the moment version
  // became t, and any reader still holding it announced < t. So once every
  // active announcement is >= t (or no reader is active), t is safe.
  const std::uint64_t min = min_announcement();
  auto keep = retired_.begin();
  for (auto it = retired_.begin(); it != retired_.end(); ++it) {
    if (it->tag <= min) {
      it->deleter(it->object);
      RcuMetrics::instance().reclaimed.add();
    } else {
      *keep++ = *it;
    }
  }
  retired_.erase(keep, retired_.end());
}

void RcuDomain::synchronize() {
  RcuMetrics::instance().synchronizes.add();
  const std::uint64_t target = version_.load(std::memory_order_seq_cst);
  // Wait until no active reader's announcement predates `target`: every
  // object retired at or before the current version is then free-able.
  for (;;) {
    if (min_announcement() >= target) break;
    std::this_thread::yield();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  reclaim_locked();
}

}  // namespace rwc::exec
