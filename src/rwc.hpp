// Umbrella header: the full public API of librwc.
//
// Fine-grained includes are preferred in library code; this header is for
// applications and quick experiments.
#pragma once

// util — primitives
#include "util/ascii_plot.hpp"
#include "util/check.hpp"
#include "util/p2_quantile.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

// obs — observability (metrics registry, tracing, exporters)
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"

// fault — deterministic fault injection (plans, sites, RWC_FAULTS)
#include "fault/plan.hpp"
#include "fault/registry.hpp"

// exec — work-stealing thread pool and deterministic parallel loops
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"

// graph — topologies and path algorithms
#include "graph/connectivity.hpp"
#include "graph/dijkstra.hpp"
#include "graph/dot.hpp"
#include "graph/graph.hpp"
#include "graph/ksp.hpp"
#include "graph/path_cache.hpp"

// flow — max-flow / min-cost-flow solvers
#include "flow/cycle_cancel.hpp"
#include "flow/decompose.hpp"
#include "flow/disjoint.hpp"
#include "flow/graph_adapter.hpp"
#include "flow/maxflow.hpp"
#include "flow/mincost.hpp"
#include "flow/network.hpp"

// lp — simplex solver
#include "lp/simplex.hpp"

// optical — modulation ladder and physics
#include "optical/ber.hpp"
#include "optical/link_budget.hpp"
#include "optical/modulation.hpp"
#include "optical/q_factor.hpp"

// telemetry — SNR traces and analyses (paper Section 2.1)
#include "telemetry/analysis.hpp"
#include "telemetry/detect.hpp"
#include "telemetry/io.hpp"
#include "telemetry/snr_model.hpp"
#include "telemetry/streaming.hpp"

// tickets — failure tickets and root causes (paper Section 2.2)
#include "tickets/analysis.hpp"
#include "tickets/generator.hpp"
#include "tickets/io.hpp"
#include "tickets/ticket.hpp"

// bvt — bandwidth-variable transceiver model (paper Section 3.1)
#include "bvt/constellation.hpp"
#include "bvt/device.hpp"
#include "bvt/latency.hpp"
#include "bvt/registers.hpp"

// te — traffic-engineering engines (unmodified consumers of topologies)
#include "te/algorithm.hpp"
#include "te/b4.hpp"
#include "te/consistent_update.hpp"
#include "te/cspf.hpp"
#include "te/demand.hpp"
#include "te/ecmp.hpp"
#include "te/mcf_lp.hpp"
#include "te/mcf_te.hpp"
#include "te/protection.hpp"
#include "te/swan.hpp"

// core — the paper's contribution (Section 4)
#include "core/augment.hpp"
#include "core/controller.hpp"
#include "core/fixed_charge.hpp"
#include "core/hysteresis.hpp"
#include "core/orchestrator.hpp"
#include "core/penalty.hpp"
#include "core/translate.hpp"

// mgmt — management-plane interfaces (YANG-style config, SNMP-lite MIB)
#include "mgmt/config_model.hpp"
#include "mgmt/mib.hpp"

// sim — discrete-event WAN simulation
#include "sim/event.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
