// Library identification for rwc_core.
namespace rwc::core {

/// Version string of the core subsystem (matches the top-level project).
const char* version() { return "1.0.0"; }

}  // namespace rwc::core
