#include "core/hysteresis.hpp"

#include "util/check.hpp"

namespace rwc::core {

using util::Gbps;

HysteresisFilter::HysteresisFilter(std::size_t link_count,
                                   HysteresisParams params)
    : params_(params),
      candidate_(link_count, Gbps{0.0}),
      streak_(link_count, 0) {
  RWC_EXPECTS(params_.up_hold_rounds >= 1);
  RWC_EXPECTS(params_.extra_up_margin.value >= 0.0);
}

void HysteresisFilter::restore_state(State state) {
  RWC_EXPECTS(state.candidate.size() == candidate_.size());
  RWC_EXPECTS(state.streak.size() == streak_.size());
  candidate_ = std::move(state.candidate);
  streak_ = std::move(state.streak);
}

Gbps HysteresisFilter::filter(std::size_t link, Gbps raw_feasible,
                              Gbps raw_with_extra, Gbps configured) {
  RWC_EXPECTS(link < candidate_.size());
  RWC_EXPECTS(raw_with_extra <= raw_feasible);

  // Reductions are never dampened.
  if (raw_feasible < configured) {
    candidate_[link] = Gbps{0.0};
    streak_[link] = 0;
    return raw_feasible;
  }

  // Upgrade side: the candidate must clear the extra margin...
  const Gbps candidate = raw_with_extra;
  if (candidate <= configured) {
    candidate_[link] = Gbps{0.0};
    streak_[link] = 0;
    return configured;
  }
  // ...and hold for up_hold_rounds consecutive rounds. A round where the
  // candidate changes (even upward) restarts the streak at 1.
  if (candidate == candidate_[link]) {
    ++streak_[link];
  } else {
    candidate_[link] = candidate;
    streak_[link] = 1;
  }
  if (streak_[link] >= params_.up_hold_rounds) return candidate;
  return configured;
}

}  // namespace rwc::core
