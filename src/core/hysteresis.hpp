// Hysteresis on the SNR -> capacity decision.
//
// A link whose SNR hovers around a ladder threshold would otherwise flap up
// and down every telemetry tick — each transition costing a reconfiguration
// (68 s today, 35 ms hitless) and TE churn. The filter is asymmetric, like
// production dampening: capacity REDUCTIONS pass through immediately (they
// are correctness — the signal cannot sustain the rate), while capacity
// INCREASES require the higher rate to have been continuously feasible,
// with extra margin, for a configurable number of rounds.
#pragma once

#include <vector>

#include "optical/modulation.hpp"
#include "util/units.hpp"

namespace rwc::core {

struct HysteresisParams {
  /// Extra SNR margin (on top of the controller's base margin) a HIGHER
  /// rate must clear before it is even considered.
  util::Db extra_up_margin{0.5};
  /// Consecutive rounds the higher rate must stay feasible before the
  /// filter exposes it.
  int up_hold_rounds = 3;
};

/// Per-link state machine applying the dampening rule above.
class HysteresisFilter {
 public:
  HysteresisFilter(std::size_t link_count, HysteresisParams params);

  /// Filters one link's raw feasible capacity for this round.
  /// `raw_feasible` is the ladder rate at the base margin; `raw_with_extra`
  /// the rate at base + extra margin; `configured` the currently configured
  /// rate. Call exactly once per link per round.
  util::Gbps filter(std::size_t link, util::Gbps raw_feasible,
                    util::Gbps raw_with_extra, util::Gbps configured);

  const HysteresisParams& params() const { return params_; }

  /// Per-link dwell state, captured for checkpointing (rwc::replay): a
  /// filter restored from it continues the promotion streaks exactly where
  /// the capture left off.
  struct State {
    std::vector<util::Gbps> candidate;
    std::vector<int> streak;
  };
  State state() const { return State{candidate_, streak_}; }
  /// Restores a captured state; vector sizes must match the filter's
  /// link count.
  void restore_state(State state);

 private:
  HysteresisParams params_;
  std::vector<util::Gbps> candidate_;  // rate being held for promotion
  std::vector<int> streak_;            // rounds the candidate has held
};

}  // namespace rwc::core
