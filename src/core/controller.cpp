#include "core/controller.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "fault/registry.hpp"
#include "flow/network.hpp"
#include "obs/timer.hpp"
#include "util/check.hpp"

namespace rwc::core {

using graph::EdgeId;
using util::Db;
using util::Gbps;

namespace {

/// Handles into the global registry for the controller's stats contract
/// (docs/OBSERVABILITY.md: controller.*). Looked up once per process.
struct ControllerMetrics {
  obs::Counter& rounds;
  obs::Counter& reductions;
  obs::Counter& restorations;
  obs::Counter& upgrades;
  obs::Counter& evaluations;
  obs::Gauge& variable_links;
  obs::Histogram& round_seconds;
  obs::Histogram& augment_seconds;
  obs::Histogram& solve_seconds;
  obs::Histogram& translate_seconds;
  obs::Histogram& consolidate_seconds;
  obs::Histogram& transition_seconds;
  obs::Histogram& update_seconds;
  obs::Counter& incremental_hits;
  obs::Counter& incremental_misses;
  obs::Counter& incremental_augment_reuses;
  obs::Histogram& incremental_dirty_links;
  obs::Counter& partial_rounds;

  static ControllerMetrics& instance() {
    static auto& registry = obs::Registry::global();
    static ControllerMetrics metrics{
        registry.counter("controller.rounds"),
        registry.counter("controller.reductions"),
        registry.counter("controller.restorations"),
        registry.counter("controller.upgrades"),
        registry.counter("controller.evaluations"),
        registry.gauge("controller.variable_links"),
        registry.histogram("controller.round.seconds"),
        registry.histogram("controller.round.augment.seconds"),
        registry.histogram("controller.round.solve.seconds"),
        registry.histogram("controller.round.translate.seconds"),
        registry.histogram("controller.round.consolidate.seconds"),
        registry.histogram("controller.round.transition.seconds"),
        registry.histogram("controller.round.update.seconds"),
        registry.counter("solver.incremental_hits"),
        registry.counter("solver.incremental_misses"),
        registry.counter("solver.incremental_augment_reuses"),
        registry.histogram("solver.incremental_dirty_links"),
        registry.counter("solver.partial_rounds"),
    };
    return metrics;
  }
};

/// Counters whose per-round deltas surface in RoundStats.
struct SolverCounters {
  std::uint64_t mincost_runs;
  std::uint64_t mincost_paths;
  std::uint64_t simplex_solves;
  std::uint64_t simplex_iterations;
  /// Partial-tier activity (docs/SOLVERS.md): verified min-cost repairs
  /// plus LP warm-basis replays and memo hits. Their per-round delta
  /// drives RoundStats.partial_resolve.
  std::uint64_t partial_reuses;

  static SolverCounters read() {
    static auto& registry = obs::Registry::global();
    static auto& mincost_runs = registry.counter("flow.mincost.runs");
    static auto& mincost_paths = registry.counter("flow.mincost.paths");
    static auto& simplex_solves = registry.counter("lp.simplex.solves");
    static auto& simplex_iterations =
        registry.counter("lp.simplex.iterations");
    static auto& partial_repairs =
        registry.counter("solver.partial_repairs");
    static auto& basis_hits = registry.counter("lp.basis_reuse_hits");
    static auto& basis_memo_hits =
        registry.counter("lp.basis_reuse_memo_hits");
    return SolverCounters{mincost_runs.value(), mincost_paths.value(),
                          simplex_solves.value(),
                          simplex_iterations.value(),
                          partial_repairs.value() + basis_hits.value() +
                              basis_memo_hits.value()};
  }
};

/// Folds the stage timings and evaluation count of one candidate trial
/// into the round's stats. Only the fields evaluate() touches.
void merge_eval_stats(DynamicCapacityController::RoundStats& into,
                      const DynamicCapacityController::RoundStats& from) {
  into.augment_seconds += from.augment_seconds;
  into.solve_seconds += from.solve_seconds;
  into.translate_seconds += from.translate_seconds;
  into.evaluations += from.evaluations;
}

}  // namespace

DynamicCapacityController::DynamicCapacityController(
    graph::Graph physical, optical::ModulationTable table,
    const te::TeAlgorithm& engine, ControllerOptions options)
    : physical_(std::move(physical)),
      table_(std::move(table)),
      engine_(engine),
      options_(std::move(options)) {
  if (options_.penalty == nullptr)
    options_.penalty = std::make_shared<TrafficProportionalPenalty>();
  if (options_.demand.estimated())
    demand_pipeline_ = std::make_unique<demand::DemandPipeline>(
        physical_.edge_count(), options_.demand);
  configured_.reserve(physical_.edge_count());
  for (EdgeId edge : physical_.edge_ids())
    configured_.push_back(physical_.edge(edge).capacity);
  if (options_.hysteresis.has_value())
    hysteresis_.emplace(physical_.edge_count(), *options_.hysteresis);
  last_traffic_.assign(physical_.edge_count(), 0.0);
  last_snr_.assign(physical_.edge_count(), Db{0.0});
}

DynamicCapacityController::PersistentState
DynamicCapacityController::save_state() const {
  PersistentState state;
  state.configured = configured_;
  if (hysteresis_.has_value()) state.hysteresis = hysteresis_->state();
  state.last_assignment = last_assignment_;
  state.last_traffic = last_traffic_;
  state.last_snr = last_snr_;
  return state;
}

void DynamicCapacityController::restore_state(PersistentState state) {
  RWC_EXPECTS(state.configured.size() == physical_.edge_count());
  RWC_EXPECTS(state.last_traffic.size() == physical_.edge_count());
  RWC_EXPECTS(state.last_snr.size() == physical_.edge_count());
  RWC_EXPECTS(state.hysteresis.has_value() == hysteresis_.has_value());
  configured_ = std::move(state.configured);
  if (hysteresis_.has_value())
    hysteresis_->restore_state(std::move(*state.hysteresis));
  last_assignment_ = std::move(state.last_assignment);
  last_traffic_ = std::move(state.last_traffic);
  last_snr_ = std::move(state.last_snr);
  // The memo/augment cache are deliberately outside PersistentState; drop
  // them so the first post-restore round performs a clean full re-solve.
  memo_ = SolveMemo{};
  augment_cache_.invalidate();
}

graph::Graph DynamicCapacityController::current_topology() const {
  graph::Graph current;
  for (graph::NodeId node : physical_.node_ids())
    current.add_node(physical_.node_name(node));
  for (EdgeId edge : physical_.edge_ids()) {
    const graph::Edge& e = physical_.edge(edge);
    current.add_edge(e.src, e.dst,
                     configured_[static_cast<std::size_t>(edge.value)],
                     e.cost, e.weight);
  }
  return current;
}

Gbps DynamicCapacityController::configured_capacity(EdgeId edge) const {
  RWC_EXPECTS(edge.valid() &&
              static_cast<std::size_t>(edge.value) < configured_.size());
  return configured_[static_cast<std::size_t>(edge.value)];
}

ReconfigurationPlan DynamicCapacityController::evaluate(
    const graph::Graph& current,
    std::span<const VariableLink> variable_links,
    const te::TrafficMatrix& demands, RoundStats& stats,
    AugmentCache* cache) const {
  ++stats.evaluations;
  obs::StopWatch watch;
  // Either path produces the identical augmented view: the cache rebuilds
  // through the same augment_topology call whenever any input is dirty.
  AugmentedTopology rebuilt;
  const AugmentedTopology* augmented;
  if (cache != nullptr) {
    augmented = &cache->get(current, variable_links, *options_.penalty,
                            last_traffic_, options_.augment);
    if (cache->last_was_hit())
      ControllerMetrics::instance().incremental_augment_reuses.add();
  } else {
    rebuilt = augment_topology(current, variable_links, *options_.penalty,
                               last_traffic_, options_.augment);
    augmented = &rebuilt;
  }
  stats.augment_seconds += watch.seconds();

  watch.restart();
  const te::FlowAssignment assignment =
      engine_.solve(augmented->graph, demands);
  stats.solve_seconds += watch.seconds();

  watch.restart();
  ReconfigurationPlan plan =
      translate_assignment(current, *augmented, variable_links, assignment);
  stats.translate_seconds += watch.seconds();
  return plan;
}

void DynamicCapacityController::consolidate(
    exec::ThreadPool& pool, const graph::Graph& current,
    std::span<const VariableLink> variable_links,
    const te::TrafficMatrix& demands, RoundReport& report) const {
  // Try cheapest-traffic upgrades first: they are the likeliest to be
  // gratuitous tie-break artifacts.
  auto by_traffic = report.plan.upgrades;
  std::sort(by_traffic.begin(), by_traffic.end(),
            [](const CapacityChange& a, const CapacityChange& b) {
              return a.upgrade_traffic < b.upgrade_traffic;
            });

  // Variable-link set for testing the removal of `candidate` against the
  // current plan: links still upgraded by the plan, minus the candidate.
  const auto reduced_links = [&](const CapacityChange& candidate) {
    std::vector<VariableLink> reduced(variable_links.begin(),
                                      variable_links.end());
    std::erase_if(reduced, [&](const VariableLink& link) {
      const bool still_upgraded = std::any_of(
          report.plan.upgrades.begin(), report.plan.upgrades.end(),
          [&](const CapacityChange& u) { return u.edge == link.edge; });
      return !still_upgraded || link.edge == candidate.edge;
    });
    return reduced;
  };
  const auto accept = [&](const ReconfigurationPlan& trial) {
    const double before_routed =
        report.plan.physical_assignment.total_routed.value;
    return trial.physical_assignment.total_routed.value >=
               before_routed - 1e-6 &&
           trial.total_penalty <= report.plan.total_penalty + 1e-6 &&
           trial.upgrades.size() < report.plan.upgrades.size();
  };

  if (pool.thread_count() <= 1) {
    for (const CapacityChange& candidate : by_traffic) {
      if (report.plan.upgrades.size() <= 1) break;
      ReconfigurationPlan trial =
          evaluate(current, reduced_links(candidate), demands, report.stats);
      if (accept(trial)) report.plan = std::move(trial);
    }
    return;
  }

  // Speculative waves. A window of upcoming candidates is evaluated
  // concurrently against the frozen current plan, then scanned IN
  // CANDIDATE ORDER for the first acceptance. In the serial loop, every
  // rejection before the first acceptance was evaluated against that same
  // plan, so the scan reproduces the serial decision sequence exactly;
  // trials past the acceptance point were computed against a stale plan
  // and are discarded (a later wave re-evaluates them against the updated
  // plan). The window bounds that speculative waste to window-1
  // evaluations per acceptance — two chunks per worker keeps every thread
  // busy without over-speculating past likely acceptances. The only
  // observable difference from serial is that RoundStats counts the
  // discarded speculative evaluations as work performed.
  const std::size_t window = pool.thread_count() * 2;
  std::size_t next = 0;
  while (next < by_traffic.size() && report.plan.upgrades.size() > 1) {
    const std::size_t wave = std::min(window, by_traffic.size() - next);
    std::vector<ReconfigurationPlan> trials(wave);
    std::vector<RoundStats> trial_stats(wave);
    exec::parallel_for(pool, wave, [&](std::size_t i) {
      trials[i] = evaluate(current, reduced_links(by_traffic[next + i]),
                           demands, trial_stats[i]);
    });
    std::size_t accepted = wave;
    for (std::size_t i = 0; i < wave; ++i) {
      if (accept(trials[i])) {
        accepted = i;
        break;
      }
    }
    for (const RoundStats& s : trial_stats)
      merge_eval_stats(report.stats, s);
    if (accepted == wave) {
      next += wave;  // whole window rejected; move on to the next one
      continue;
    }
    report.plan = std::move(trials[accepted]);
    next += accepted + 1;
  }
}

DynamicCapacityController::RoundReport
DynamicCapacityController::run_round(std::span<const Db> link_snr,
                                     const te::TrafficMatrix& demands) {
  RWC_EXPECTS(link_snr.size() == physical_.edge_count());
  RoundReport report;
  const SolverCounters counters_before = SolverCounters::read();
  std::size_t variable_link_count = 0;
  {
    // Nested trace of the round: the span closes into
    // controller.round.seconds when the pipeline scope ends, before the
    // stats flush below reads total_seconds.
    obs::Span round_span("controller.round", &report.stats.total_seconds);

    // Step 0 (options_.demand, docs/DEMAND.md): closed-loop demand
    // estimation. The handed-in matrix becomes the offered intent; the
    // pipeline synthesizes link counters from it over the previous round's
    // installed routing and infers the matrix the TE stages actually solve.
    // With the default oracle source this block is skipped and `demands`
    // flows through untouched.
    const te::TrafficMatrix* round_demands = &demands;
    te::TrafficMatrix estimated_demands;
    if (demand_pipeline_ != nullptr) {
      demand::DemandPipeline::Result estimate =
          demand_pipeline_->round(demands, last_assignment_);
      estimated_demands = std::move(estimate.demands);
      report.demand = estimate.stats;
      round_demands = &estimated_demands;
    }

    // Step 1-2: feasible rates; flap down links whose SNR degraded.
    static auto& snr_clamped =
        obs::Registry::global().counter("controller.snr_clamped");
    std::vector<Gbps> feasible(physical_.edge_count());
    for (EdgeId edge : physical_.edge_ids()) {
      const auto i = static_cast<std::size_t>(edge.value);
      double snr_db = link_snr[i].value;
      // Fault injection (docs/FAULTS.md, site core.snr): this link's
      // telemetry arrives stale (previous round's reading), corrupted
      // (nan/garbage), or not at all (drop -> loss of light). Keyed by
      // edge id, so injections are pool-size independent.
      switch (fault::at("core.snr", static_cast<std::uint64_t>(
                                        static_cast<std::uint32_t>(edge.value)))
                  .kind) {
        case fault::Kind::kStale:
          snr_db = last_snr_[i].value;
          break;
        case fault::Kind::kNan:
          snr_db = std::numeric_limits<double>::quiet_NaN();
          break;
        case fault::Kind::kGarbage:
          snr_db = -1e9;
          break;
        case fault::Kind::kDrop:
          snr_db = 0.0;
          break;
        default:
          break;
      }
      // Telemetry guard: a non-finite or negative reading is a dead or
      // lying receiver — treat it as 0 dB (no feasible rate) instead of
      // letting NaN flow into the ladder lookup and capacity tables.
      if (!(std::isfinite(snr_db) && snr_db >= 0.0)) {
        snr_db = 0.0;
        snr_clamped.add();
      }
      last_snr_[i] = Db{snr_db};
      feasible[i] =
          table_.feasible_capacity(Db{snr_db}, options_.snr_margin);
      if (hysteresis_.has_value()) {
        const Gbps with_extra = table_.feasible_capacity(
            Db{snr_db},
            options_.snr_margin + options_.hysteresis->extra_up_margin);
        feasible[i] =
            hysteresis_->filter(i, feasible[i], with_extra, configured_[i]);
      }
      if (feasible[i] < configured_[i]) {
        report.reductions.push_back(
            LinkFlap{edge, configured_[i], feasible[i]});
        configured_[i] = feasible[i];
      }
    }

    // Restoration: degraded links come back toward their nominal rate as
    // soon as the SNR allows (an operational repair, not a TE decision).
    if (options_.restore_to_nominal) {
      for (EdgeId edge : physical_.edge_ids()) {
        const auto i = static_cast<std::size_t>(edge.value);
        const Gbps target =
            std::min(physical_.edge(edge).capacity, feasible[i]);
        if (target > configured_[i]) {
          report.restorations.push_back(
              LinkFlap{edge, configured_[i], target});
          configured_[i] = target;
        }
      }
    }

    // Step 3: variable links (headroom above the configured rate).
    std::vector<VariableLink> variable_links;
    for (EdgeId edge : physical_.edge_ids()) {
      const auto i = static_cast<std::size_t>(edge.value);
      if (feasible[i] > configured_[i])
        variable_links.push_back(VariableLink{edge, feasible[i]});
    }
    variable_link_count = variable_links.size();

    // Steps 4-5: augment, solve with the unmodified engine, translate.
    // Protected flows (Section 4.2 (i)) are carved out first: their
    // capacity disappears from the topology and their links leave the
    // variable set.
    graph::Graph current = current_topology();
    if (!options_.protected_flows.empty())
      current = carve_out_protected(current, options_.protected_flows,
                                    variable_links);

    // Incremental hot path (options_.incremental, docs/FLEET.md): the solve
    // pipeline is a deterministic function of (configured capacities,
    // variable links, demands, traffic on variable links) — penalty
    // policies read traffic only for variable links, and engine caches are
    // timing-only by contract. When all four match the previous round's,
    // the memoized post-consolidation plan IS what a full re-solve would
    // produce, bit for bit, so reuse it and skip augment/solve/translate/
    // consolidate. The transition plan below is still recomputed normally
    // (it depends on last_assignment_, which does evolve).
    std::vector<double> variable_traffic;
    if (options_.incremental) {
      variable_traffic.reserve(variable_links.size());
      for (const VariableLink& link : variable_links)
        variable_traffic.push_back(
            last_traffic_[static_cast<std::size_t>(link.edge.value)]);
    }
    const bool memo_hit =
        options_.incremental && memo_.valid &&
        memo_.configured == configured_ &&
        memo_.variable_links == variable_links &&
        memo_.variable_traffic == variable_traffic &&
        memo_.demands == *round_demands;
    if (memo_hit) {
      report.plan = memo_.plan;
      report.stats.incremental_hit = true;
    } else {
      report.plan =
          evaluate(current, variable_links, *round_demands, report.stats,
                   options_.incremental ? &augment_cache_ : nullptr);
      if (options_.incremental)
        report.stats.dirty_links = augment_cache_.last_dirty().size();

      // Consolidation: drop upgrades whose removal does not hurt throughput
      // or penalty (fewest activations among cost-equal optima).
      if (options_.consolidate && !report.plan.upgrades.empty()) {
        obs::StopWatch consolidate_watch;
        exec::ThreadPool& pool = options_.pool != nullptr
                                     ? *options_.pool
                                     : exec::ThreadPool::global();
        consolidate(pool, current, variable_links, *round_demands, report);
        report.stats.consolidate_seconds = consolidate_watch.seconds();
      }

      if (options_.incremental) {
        memo_.valid = true;
        memo_.configured = configured_;
        memo_.variable_links.assign(variable_links.begin(),
                                    variable_links.end());
        memo_.variable_traffic = std::move(variable_traffic);
        memo_.demands = *round_demands;
        memo_.plan = report.plan;
      }
    }

    // Step 6: apply upgrades and plan the consistent transition. The
    // pre-upgrade snapshot is the physical "now" the update scheduler
    // transitions from: flaps/restorations already landed at t=0 (SNR
    // forced them), only the TE-chosen upgrades are scheduled reconfigs.
    const std::vector<Gbps> pre_upgrade_capacity = configured_;
    for (const CapacityChange& change : report.plan.upgrades)
      configured_[static_cast<std::size_t>(change.edge.value)] = change.to;

    obs::StopWatch transition_watch;
    graph::Graph upgraded = current_topology();
    te::FlowAssignment previous = last_assignment_;
    previous.edge_load_gbps.resize(upgraded.edge_count(), 0.0);
    report.transition = te::plan_transition(
        upgraded, previous, report.plan.physical_assignment);
    report.transition_valid =
        te::validate_transition(upgraded, previous, report.transition);
    report.stats.transition_seconds = transition_watch.seconds();

    // Optional consistent-update stage (docs/UPDATE.md): order this
    // round's reconfigs + route moves into invariant-checked update
    // rounds. Observational by contract — plan_schedule reads controller
    // state, never writes it, so results are identical with it on or off.
    if (options_.update.has_value()) {
      obs::StopWatch update_watch;
      report.update = update::plan_schedule(
          physical_, pre_upgrade_capacity, configured_, previous,
          report.plan.physical_assignment, *options_.update);
      report.update_valid =
          report.update->feasible &&
          update::validate_schedule(physical_, *report.update, configured_,
                                    report.plan.physical_assignment);
      report.stats.update_rounds = report.update->rounds.size();
      report.stats.update_route_moves = report.update->route_moves;
      report.stats.update_reconfigs = report.update->reconfigs;
      report.stats.update_makespan_seconds =
          report.update->makespan_seconds;
      report.stats.update_seconds = update_watch.seconds();
    }

    report.total_routed = report.plan.physical_assignment.total_routed;
    report.total_penalty = report.plan.total_penalty;

    last_assignment_ = report.plan.physical_assignment;
    last_traffic_ = last_assignment_.edge_load_gbps;
    last_traffic_.resize(physical_.edge_count(), 0.0);
  }

  // Stats flush: solver-counter deltas into the report, stage timings and
  // round counters into the global registry (docs/OBSERVABILITY.md).
  const SolverCounters counters_after = SolverCounters::read();
  report.stats.mincost_runs =
      counters_after.mincost_runs - counters_before.mincost_runs;
  report.stats.mincost_paths =
      counters_after.mincost_paths - counters_before.mincost_paths;
  report.stats.simplex_solves =
      counters_after.simplex_solves - counters_before.simplex_solves;
  report.stats.simplex_iterations = counters_after.simplex_iterations -
                                    counters_before.simplex_iterations;
  report.stats.partial_resolve =
      counters_after.partial_reuses > counters_before.partial_reuses;
  if (physical_.edge_count() > 0)
    report.stats.dirty_fraction =
        static_cast<double>(report.stats.dirty_links) /
        static_cast<double>(physical_.edge_count());

  auto& metrics = ControllerMetrics::instance();
  metrics.rounds.add();
  metrics.reductions.add(report.reductions.size());
  metrics.restorations.add(report.restorations.size());
  metrics.upgrades.add(report.plan.upgrades.size());
  metrics.evaluations.add(report.stats.evaluations);
  metrics.variable_links.set(static_cast<double>(variable_link_count));
  metrics.augment_seconds.observe(report.stats.augment_seconds);
  metrics.solve_seconds.observe(report.stats.solve_seconds);
  metrics.translate_seconds.observe(report.stats.translate_seconds);
  metrics.consolidate_seconds.observe(report.stats.consolidate_seconds);
  metrics.transition_seconds.observe(report.stats.transition_seconds);
  if (options_.update.has_value())
    metrics.update_seconds.observe(report.stats.update_seconds);
  if (options_.incremental) {
    if (report.stats.incremental_hit) {
      metrics.incremental_hits.add();
    } else {
      metrics.incremental_misses.add();
      metrics.incremental_dirty_links.observe(
          static_cast<double>(report.stats.dirty_links));
    }
  }
  if (report.stats.partial_resolve) metrics.partial_rounds.add();
  return report;
}

}  // namespace rwc::core
