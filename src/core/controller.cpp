#include "core/controller.hpp"

#include <algorithm>

#include "flow/network.hpp"
#include "util/check.hpp"

namespace rwc::core {

using graph::EdgeId;
using util::Db;
using util::Gbps;

DynamicCapacityController::DynamicCapacityController(
    graph::Graph physical, optical::ModulationTable table,
    const te::TeAlgorithm& engine, ControllerOptions options)
    : physical_(std::move(physical)),
      table_(std::move(table)),
      engine_(engine),
      options_(std::move(options)) {
  if (options_.penalty == nullptr)
    options_.penalty = std::make_shared<TrafficProportionalPenalty>();
  configured_.reserve(physical_.edge_count());
  for (EdgeId edge : physical_.edge_ids())
    configured_.push_back(physical_.edge(edge).capacity);
  if (options_.hysteresis.has_value())
    hysteresis_.emplace(physical_.edge_count(), *options_.hysteresis);
  last_traffic_.assign(physical_.edge_count(), 0.0);
}

graph::Graph DynamicCapacityController::current_topology() const {
  graph::Graph current;
  for (graph::NodeId node : physical_.node_ids())
    current.add_node(physical_.node_name(node));
  for (EdgeId edge : physical_.edge_ids()) {
    const graph::Edge& e = physical_.edge(edge);
    current.add_edge(e.src, e.dst,
                     configured_[static_cast<std::size_t>(edge.value)],
                     e.cost, e.weight);
  }
  return current;
}

Gbps DynamicCapacityController::configured_capacity(EdgeId edge) const {
  RWC_EXPECTS(edge.valid() &&
              static_cast<std::size_t>(edge.value) < configured_.size());
  return configured_[static_cast<std::size_t>(edge.value)];
}

ReconfigurationPlan DynamicCapacityController::evaluate(
    const graph::Graph& current,
    std::span<const VariableLink> variable_links,
    const te::TrafficMatrix& demands) const {
  const AugmentedTopology augmented =
      augment_topology(current, variable_links, *options_.penalty,
                       last_traffic_, options_.augment);
  const te::FlowAssignment assignment =
      engine_.solve(augmented.graph, demands);
  return translate_assignment(current, augmented, variable_links, assignment);
}

DynamicCapacityController::RoundReport
DynamicCapacityController::run_round(std::span<const Db> link_snr,
                                     const te::TrafficMatrix& demands) {
  RWC_EXPECTS(link_snr.size() == physical_.edge_count());
  RoundReport report;

  // Step 1-2: feasible rates; flap down links whose SNR degraded.
  std::vector<Gbps> feasible(physical_.edge_count());
  for (EdgeId edge : physical_.edge_ids()) {
    const auto i = static_cast<std::size_t>(edge.value);
    feasible[i] =
        table_.feasible_capacity(link_snr[i], options_.snr_margin);
    if (hysteresis_.has_value()) {
      const Gbps with_extra = table_.feasible_capacity(
          link_snr[i],
          options_.snr_margin + options_.hysteresis->extra_up_margin);
      feasible[i] =
          hysteresis_->filter(i, feasible[i], with_extra, configured_[i]);
    }
    if (feasible[i] < configured_[i]) {
      report.reductions.push_back(LinkFlap{edge, configured_[i], feasible[i]});
      configured_[i] = feasible[i];
    }
  }

  // Restoration: degraded links come back toward their nominal rate as
  // soon as the SNR allows (an operational repair, not a TE decision).
  if (options_.restore_to_nominal) {
    for (EdgeId edge : physical_.edge_ids()) {
      const auto i = static_cast<std::size_t>(edge.value);
      const Gbps target = std::min(physical_.edge(edge).capacity, feasible[i]);
      if (target > configured_[i]) {
        report.restorations.push_back(
            LinkFlap{edge, configured_[i], target});
        configured_[i] = target;
      }
    }
  }

  // Step 3: variable links (headroom above the configured rate).
  std::vector<VariableLink> variable_links;
  for (EdgeId edge : physical_.edge_ids()) {
    const auto i = static_cast<std::size_t>(edge.value);
    if (feasible[i] > configured_[i])
      variable_links.push_back(VariableLink{edge, feasible[i]});
  }

  // Steps 4-5: augment, solve with the unmodified engine, translate.
  // Protected flows (Section 4.2 (i)) are carved out first: their capacity
  // disappears from the topology and their links leave the variable set.
  graph::Graph current = current_topology();
  if (!options_.protected_flows.empty())
    current = carve_out_protected(current, options_.protected_flows,
                                  variable_links);
  report.plan = evaluate(current, variable_links, demands);

  // Consolidation: drop upgrades whose removal does not hurt throughput or
  // penalty (fewest activations among cost-equal optima).
  if (options_.consolidate && !report.plan.upgrades.empty()) {
    // Try cheapest-traffic upgrades first: they are the likeliest to be
    // gratuitous tie-break artifacts.
    auto by_traffic = report.plan.upgrades;
    std::sort(by_traffic.begin(), by_traffic.end(),
              [](const CapacityChange& a, const CapacityChange& b) {
                return a.upgrade_traffic < b.upgrade_traffic;
              });
    for (const CapacityChange& candidate : by_traffic) {
      if (report.plan.upgrades.size() <= 1) break;
      std::vector<VariableLink> reduced = variable_links;
      std::erase_if(reduced, [&](const VariableLink& link) {
        const bool still_upgraded =
            std::any_of(report.plan.upgrades.begin(),
                        report.plan.upgrades.end(),
                        [&](const CapacityChange& u) {
                          return u.edge == link.edge;
                        });
        // Keep only links that are still part of the plan, minus the
        // candidate being tested.
        return !still_upgraded || link.edge == candidate.edge;
      });
      ReconfigurationPlan trial = evaluate(current, reduced, demands);
      const double before_routed =
          report.plan.physical_assignment.total_routed.value;
      if (trial.physical_assignment.total_routed.value >=
              before_routed - 1e-6 &&
          trial.total_penalty <= report.plan.total_penalty + 1e-6 &&
          trial.upgrades.size() < report.plan.upgrades.size()) {
        report.plan = std::move(trial);
      }
    }
  }

  // Step 6: apply upgrades and plan the consistent transition.
  for (const CapacityChange& change : report.plan.upgrades)
    configured_[static_cast<std::size_t>(change.edge.value)] = change.to;

  graph::Graph upgraded = current_topology();
  te::FlowAssignment previous = last_assignment_;
  previous.edge_load_gbps.resize(upgraded.edge_count(), 0.0);
  report.transition = te::plan_transition(
      upgraded, previous, report.plan.physical_assignment);
  report.transition_valid =
      te::validate_transition(upgraded, previous, report.transition);

  report.total_routed = report.plan.physical_assignment.total_routed;
  report.total_penalty = report.plan.total_penalty;

  last_assignment_ = report.plan.physical_assignment;
  last_traffic_ = last_assignment_.edge_load_gbps;
  last_traffic_.resize(physical_.edge_count(), 0.0);
  return report;
}

}  // namespace rwc::core
