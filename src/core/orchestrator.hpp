// Timed, device-backed execution of a reconfiguration plan.
//
// The controller decides WHAT to change; this orchestrator executes it the
// way an operator would, against the per-link BVT devices:
//   phase 1 (drain)       — consistent-update REMOVE steps, so no traffic
//                           rides a link while its modulation changes;
//   phase 2 (reconfigure) — MDIO-driven modulation changes, in parallel
//                           across links (each samples its own downtime);
//   phase 3 (restore)     — consistent-update ADD steps onto the new
//                           capacities.
// The produced timeline quantifies the §3.1 question at network level: how
// long a capacity change takes end-to-end and how much traffic had to be
// parked, under the standard (laser-cycling) vs efficient procedure.
#pragma once

#include <string>
#include <vector>

#include "bvt/device.hpp"
#include "core/translate.hpp"
#include "te/consistent_update.hpp"

namespace rwc::core {

struct OrchestratorEvent {
  enum class Kind {
    kDrainStep,
    kReconfigureStart,
    kReconfigureDone,
    kReconfigureFailed,
    kRestoreStep,
  };
  util::Seconds at = 0.0;  // offset from execution start
  Kind kind = Kind::kDrainStep;
  graph::EdgeId edge;  // valid for reconfigure events
  std::string description;
};

struct ExecutionReport {
  std::vector<OrchestratorEvent> timeline;
  /// End-to-end duration of the whole execution.
  util::Seconds makespan = 0.0;
  /// Traffic-time parked off reconfigured links: sum over changes of
  /// (previous traffic on the link) x (its reconfiguration downtime).
  double parked_gbps_seconds = 0.0;
  /// All modulation changes locked at their target rate.
  bool success = true;
  /// The transition plan used for drain/restore, for auditing.
  te::UpdatePlan transition;
};

/// Per-physical-edge BVT devices (indexed by EdgeId).
using DeviceArray = std::vector<bvt::BvtDevice>;

/// Builds one device per edge of `topology`, lasers on, SNR preset.
DeviceArray make_device_array(const graph::Graph& topology,
                              const optical::ModulationTable& table,
                              std::uint64_t seed,
                              util::Db initial_snr = util::Db{16.0});

class ReconfigurationOrchestrator {
 public:
  struct Options {
    bvt::Procedure procedure = bvt::Procedure::kEfficient;
    /// Latency of pushing one routing update step to the dataplane.
    util::Seconds routing_step_latency = 0.005;
  };

  explicit ReconfigurationOrchestrator(Options options) : options_(options) {}

  /// Executes `plan` against `devices`. `topology_after` must carry the
  /// post-plan capacities; `before` is the routing in effect beforehand.
  /// Devices of upgraded links are driven through change_modulation; a lock
  /// failure marks the report unsuccessful (the link SNR could not sustain
  /// the chosen rate — the controller's margin should prevent this).
  ExecutionReport execute(const graph::Graph& topology_after,
                          const te::FlowAssignment& before,
                          const ReconfigurationPlan& plan,
                          DeviceArray& devices) const;

 private:
  Options options_;
};

}  // namespace rwc::core
