// Algorithm 1: the graph augmentation that lets unmodified TE algorithms
// drive dynamic link capacities.
//
// For every physical link whose SNR supports more than its configured
// capacity, a parallel "fake" link is added carrying the headroom at a
// penalty cost. A min-cost TE run on the augmented topology then implicitly
// chooses which links to upgrade (fake links carrying flow) and how to route
// (Theorem 1).
//
// Two construction modes:
//   plain   — one fake edge per upgradable link (Fig. 7b);
//   gadget  — the Fig. 8 node-splitting construction, which additionally
//             permits an unsplittable flow of the full upgraded rate to
//             traverse the link on a single parallel edge.
#pragma once

#include <span>
#include <vector>

#include "core/penalty.hpp"
#include "graph/graph.hpp"

namespace rwc::core {

/// A physical link whose SNR currently supports a higher ladder rate than
/// its configured capacity.
struct VariableLink {
  graph::EdgeId edge;                 // edge id in the base topology
  util::Gbps feasible_capacity{0.0};  // rate the SNR supports (> configured)

  friend bool operator==(const VariableLink&, const VariableLink&) = default;
};

/// Role of an edge in the augmented topology.
enum class AugmentedEdgeKind {
  kReal,             // unchanged physical edge
  kFake,             // headroom edge (plain mode)
  kGadgetEntryReal,  // gadget: entry at the configured rate, zero cost
  kGadgetEntryFake,  // gadget: entry at the full upgraded rate, penalized
  kGadgetBody,       // gadget: the link body (carries the merged flow)
  kGadgetExit,       // gadget: exit edge, zero cost
};

struct AugmentedEdgeInfo {
  AugmentedEdgeKind kind = AugmentedEdgeKind::kReal;
  graph::EdgeId base_edge;  // the physical link this edge belongs to
};

struct AugmentOptions {
  /// Fig. 7c: give every augmented edge unit weight so shortest-path TE
  /// favors few hops regardless of upgrades.
  bool unit_weights = false;
  /// Fig. 8: use the node-splitting gadget for variable links.
  bool unsplittable_gadget = false;

  friend bool operator==(const AugmentOptions&, const AugmentOptions&) =
      default;
};

/// The augmented view G' plus the bookkeeping needed to translate TE output
/// back onto the physical topology.
struct AugmentedTopology {
  graph::Graph graph;
  std::vector<AugmentedEdgeInfo> edge_info;  // per augmented edge id
  std::size_t base_node_count = 0;
  std::size_t base_edge_count = 0;
  /// Plain mode: the fake edge of each base edge (invalid when none).
  std::vector<graph::EdgeId> fake_edge_of;

  const AugmentedEdgeInfo& info(graph::EdgeId augmented_edge) const {
    return edge_info[static_cast<std::size_t>(augmented_edge.value)];
  }
};

/// Algorithm 1 (with the gadget extension). `current_traffic_gbps` is the
/// per-base-edge traffic used by penalty policies (empty = all zero).
/// Variable links must reference distinct base edges with feasible capacity
/// strictly above the configured one.
AugmentedTopology augment_topology(
    const graph::Graph& base, std::span<const VariableLink> variable_links,
    const PenaltyPolicy& penalty,
    std::span<const double> current_traffic_gbps = {},
    const AugmentOptions& options = {});

/// Dirty-link tracking for the incremental re-solve hot path (docs/FLEET.md).
///
/// The cache remembers the exact inputs of the previous augmentation —
/// per-edge endpoints/capacity/cost/weight, the variable-link set, the
/// penalty-relevant traffic (penalty policies only read `traffic_on(edge)`
/// for VARIABLE links, so only those entries participate), the construction
/// options and the penalty-policy identity. get() diffs the new inputs edge
/// by edge: when no base link is dirty the cached AugmentedTopology is
/// returned untouched, which is bit-identical to rebuilding because
/// augment_topology is a pure function of exactly the compared inputs.
/// Node names are assumed stable across calls with an equal node count
/// (the controller rebuilds the current topology from a fixed physical
/// graph every round, so this holds by construction).
class AugmentCache {
 public:
  /// Returns the augmented view of `base`, reusing the cached topology when
  /// no link is dirty. The returned reference stays valid until the next
  /// get() or invalidate(). Same preconditions as augment_topology().
  const AugmentedTopology& get(const graph::Graph& base,
                               std::span<const VariableLink> variable_links,
                               const PenaltyPolicy& penalty,
                               std::span<const double> current_traffic_gbps,
                               const AugmentOptions& options);

  /// True when the last get() reused the cached topology.
  bool last_was_hit() const { return last_hit_; }
  /// Base links that forced the last rebuild (every base edge when the
  /// cache was cold or a structural input changed). Empty after a hit.
  const std::vector<graph::EdgeId>& last_dirty() const { return last_dirty_; }

  /// Drops the cached topology; the next get() rebuilds unconditionally.
  void invalidate();

 private:
  /// The fields of a base edge that augment_topology reads.
  struct EdgeKey {
    std::int32_t src = -1;
    std::int32_t dst = -1;
    double capacity = 0.0;
    double cost = 0.0;
    double weight = 0.0;

    friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
  };

  bool valid_ = false;
  std::size_t node_count_ = 0;
  std::vector<EdgeKey> edges_;
  /// Per base edge: feasible rate when variable, -1 when not.
  std::vector<double> variable_feasible_;
  /// Per base edge: penalty-relevant traffic (meaningful only when
  /// variable_feasible_[i] >= 0).
  std::vector<double> variable_traffic_;
  const PenaltyPolicy* penalty_ = nullptr;
  AugmentOptions options_{};
  AugmentedTopology cached_;
  bool last_hit_ = false;
  std::vector<graph::EdgeId> last_dirty_;
};

/// Section 4.2 (i): a flow that must not be disturbed at all. Its links may
/// not change capacity and the flow (with the capacity it uses) is hidden
/// from the TE optimization.
struct ProtectedFlow {
  graph::Path path;          // over base edges
  util::Gbps volume{0.0};
};

/// Removes protected flows from the picture: subtracts their volume from the
/// capacities of `base` (returning the reduced copy) and drops their links
/// from `variable_links`.
graph::Graph carve_out_protected(
    const graph::Graph& base, std::span<const ProtectedFlow> protected_flows,
    std::vector<VariableLink>& variable_links);

}  // namespace rwc::core
