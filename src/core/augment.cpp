#include "core/augment.hpp"

#include <algorithm>
#include <set>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace rwc::core {

using graph::EdgeId;
using graph::NodeId;
using util::Gbps;

AugmentedTopology augment_topology(
    const graph::Graph& base, std::span<const VariableLink> variable_links,
    const PenaltyPolicy& penalty, std::span<const double> current_traffic_gbps,
    const AugmentOptions& options) {
  RWC_EXPECTS(current_traffic_gbps.empty() ||
              current_traffic_gbps.size() == base.edge_count());
  {
    std::set<std::int32_t> seen;
    for (const VariableLink& link : variable_links) {
      RWC_EXPECTS(link.edge.valid() &&
                  static_cast<std::size_t>(link.edge.value) <
                      base.edge_count());
      RWC_EXPECTS(link.feasible_capacity > base.edge(link.edge).capacity);
      RWC_EXPECTS(seen.insert(link.edge.value).second);
    }
  }

  auto traffic_on = [&](EdgeId edge) {
    return current_traffic_gbps.empty()
               ? 0.0
               : current_traffic_gbps[static_cast<std::size_t>(edge.value)];
  };
  auto edge_weight = [&](const graph::Edge& e) {
    return options.unit_weights ? 1.0 : e.weight;
  };

  AugmentedTopology result;
  result.base_node_count = base.node_count();
  result.base_edge_count = base.edge_count();
  result.fake_edge_of.assign(base.edge_count(), EdgeId{});

  // Variable-link lookup by base edge.
  std::vector<const VariableLink*> variable_of(base.edge_count(), nullptr);
  for (const VariableLink& link : variable_links)
    variable_of[static_cast<std::size_t>(link.edge.value)] = &link;

  // Copy base nodes (ids preserved).
  for (NodeId node : base.node_ids()) result.graph.add_node(base.node_name(node));

  auto push_info = [&](AugmentedEdgeKind kind, EdgeId base_edge) {
    result.edge_info.push_back(AugmentedEdgeInfo{kind, base_edge});
  };

  // Pass 1: base edges, id-for-id. Variable links handled per mode.
  for (EdgeId edge : base.edge_ids()) {
    const graph::Edge& e = base.edge(edge);
    const VariableLink* variable =
        variable_of[static_cast<std::size_t>(edge.value)];
    if (variable != nullptr && options.unsplittable_gadget) {
      // Gadget: the original edge slot becomes the zero-cost entry at the
      // configured rate (A -> A'); the rest of the gadget is appended later
      // so base edge ids keep their positions.
      // Placeholder: record as entry-real; endpoints fixed in pass 2 when
      // the gadget nodes exist. To keep ids aligned we must add the edge
      // now, so gadget nodes are created on demand here.
      const NodeId entry = result.graph.add_node(
          base.node_name(e.src) + "'" + std::to_string(edge.value));
      // Entry edge at configured rate, penalty-free.
      result.graph.add_edge(e.src, entry, e.capacity,
                            penalty.real_penalty(base, edge), 0.0);
      push_info(AugmentedEdgeKind::kGadgetEntryReal, edge);
      continue;
    }
    result.graph.add_edge(e.src, e.dst, e.capacity,
                          penalty.real_penalty(base, edge), edge_weight(e));
    push_info(AugmentedEdgeKind::kReal, edge);
  }

  // Pass 2: fake edges / gadget completions appended after all base slots.
  for (EdgeId edge : base.edge_ids()) {
    const VariableLink* variable =
        variable_of[static_cast<std::size_t>(edge.value)];
    if (variable == nullptr) continue;
    const graph::Edge& e = base.edge(edge);
    const Gbps headroom = variable->feasible_capacity - e.capacity;
    const double cost =
        penalty.upgrade_penalty(base, edge, headroom, traffic_on(edge));

    if (!options.unsplittable_gadget) {
      const EdgeId fake = result.graph.add_edge(e.src, e.dst, headroom, cost,
                                                edge_weight(e));
      push_info(AugmentedEdgeKind::kFake, edge);
      result.fake_edge_of[static_cast<std::size_t>(edge.value)] = fake;
      continue;
    }

    // Gadget (Fig. 8): A -> A' (two parallel entries), A' -> B' (body at the
    // full upgraded rate), B' -> B (exit). The entry-real edge was created in
    // pass 1; find its A' endpoint.
    const EdgeId entry_real{edge.value};  // same slot as the base edge
    const NodeId entry_node = result.graph.edge(entry_real).dst;
    const NodeId exit_node = result.graph.add_node(
        base.node_name(e.dst) + "'" + std::to_string(edge.value));

    const EdgeId entry_fake = result.graph.add_edge(
        e.src, entry_node, variable->feasible_capacity, cost, 0.0);
    push_info(AugmentedEdgeKind::kGadgetEntryFake, edge);
    result.fake_edge_of[static_cast<std::size_t>(edge.value)] = entry_fake;

    result.graph.add_edge(entry_node, exit_node, variable->feasible_capacity,
                          0.0, edge_weight(e));
    push_info(AugmentedEdgeKind::kGadgetBody, edge);

    result.graph.add_edge(exit_node, e.dst, variable->feasible_capacity, 0.0,
                          0.0);
    push_info(AugmentedEdgeKind::kGadgetExit, edge);
  }

  RWC_ENSURES(result.edge_info.size() == result.graph.edge_count());
  return result;
}

void AugmentCache::invalidate() {
  valid_ = false;
  cached_ = AugmentedTopology{};
  edges_.clear();
  variable_feasible_.clear();
  variable_traffic_.clear();
  last_hit_ = false;
  last_dirty_.clear();
}

const AugmentedTopology& AugmentCache::get(
    const graph::Graph& base, std::span<const VariableLink> variable_links,
    const PenaltyPolicy& penalty, std::span<const double> current_traffic_gbps,
    const AugmentOptions& options) {
  static auto& registry = obs::Registry::global();
  static auto& hits = registry.counter("augment.cache.hits");
  static auto& misses = registry.counter("augment.cache.misses");
  static auto& dirty_links = registry.histogram("core.dirty_links");

  last_hit_ = false;
  last_dirty_.clear();

  const std::size_t edge_count = base.edge_count();
  auto traffic_on = [&](std::size_t i) {
    return current_traffic_gbps.empty() ? 0.0 : current_traffic_gbps[i];
  };

  // New per-edge keys: edge attributes plus the variable-link overlay
  // (-1 = not variable) and the traffic the penalty policy would read.
  std::vector<EdgeKey> edges(edge_count);
  std::vector<double> variable_feasible(edge_count, -1.0);
  std::vector<double> variable_traffic(edge_count, 0.0);
  for (EdgeId edge : base.edge_ids()) {
    const auto i = static_cast<std::size_t>(edge.value);
    const graph::Edge& e = base.edge(edge);
    edges[i] = EdgeKey{e.src.value, e.dst.value, e.capacity.value, e.cost,
                       e.weight};
  }
  for (const VariableLink& link : variable_links) {
    const auto i = static_cast<std::size_t>(link.edge.value);
    RWC_EXPECTS(i < edge_count);
    variable_feasible[i] = link.feasible_capacity.value;
    variable_traffic[i] = traffic_on(i);
  }

  // A structural change (cold cache, different shape, different policy or
  // options) dirties every link; otherwise diff edge by edge.
  const bool structural = !valid_ || node_count_ != base.node_count() ||
                          edges_.size() != edge_count ||
                          penalty_ != &penalty || !(options_ == options);
  if (structural) {
    last_dirty_.reserve(edge_count);
    for (EdgeId edge : base.edge_ids()) last_dirty_.push_back(edge);
  } else {
    for (EdgeId edge : base.edge_ids()) {
      const auto i = static_cast<std::size_t>(edge.value);
      const bool clean =
          edges_[i] == edges[i] &&
          variable_feasible_[i] == variable_feasible[i] &&
          (variable_feasible[i] < 0.0 ||
           variable_traffic_[i] == variable_traffic[i]);
      if (!clean) last_dirty_.push_back(edge);
    }
  }

  if (valid_ && last_dirty_.empty()) {
    last_hit_ = true;
    hits.add();
    return cached_;
  }

  misses.add();
  // Observed on rebuilds only: a hit contributes no rebuild work, so the
  // histogram answers "how perturbed were the rounds that cost us a
  // rebuild" (docs/OBSERVABILITY.md: core.dirty_links).
  dirty_links.observe(static_cast<double>(last_dirty_.size()));
  cached_ = augment_topology(base, variable_links, penalty,
                             current_traffic_gbps, options);
  valid_ = true;
  node_count_ = base.node_count();
  edges_ = std::move(edges);
  variable_feasible_ = std::move(variable_feasible);
  variable_traffic_ = std::move(variable_traffic);
  penalty_ = &penalty;
  options_ = options;
  return cached_;
}

graph::Graph carve_out_protected(
    const graph::Graph& base, std::span<const ProtectedFlow> protected_flows,
    std::vector<VariableLink>& variable_links) {
  graph::Graph reduced;
  for (NodeId node : base.node_ids()) reduced.add_node(base.node_name(node));

  std::vector<double> reserved(base.edge_count(), 0.0);
  std::vector<bool> frozen(base.edge_count(), false);
  for (const ProtectedFlow& flow : protected_flows) {
    RWC_EXPECTS(flow.volume.value >= 0.0);
    for (EdgeId edge : flow.path.edges) {
      reserved[static_cast<std::size_t>(edge.value)] += flow.volume.value;
      frozen[static_cast<std::size_t>(edge.value)] = true;
    }
  }

  for (EdgeId edge : base.edge_ids()) {
    const graph::Edge& e = base.edge(edge);
    const double capacity =
        e.capacity.value - reserved[static_cast<std::size_t>(edge.value)];
    RWC_CHECK_MSG(capacity >= -1e-9,
                  "protected flows exceed a link's capacity");
    reduced.add_edge(e.src, e.dst, Gbps{std::max(0.0, capacity)}, e.cost,
                     e.weight);
  }

  std::erase_if(variable_links, [&](const VariableLink& link) {
    return frozen[static_cast<std::size_t>(link.edge.value)];
  });
  return reduced;
}

}  // namespace rwc::core
