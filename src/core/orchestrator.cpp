#include "core/orchestrator.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/timer.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace rwc::core {

using graph::EdgeId;
using util::Seconds;

DeviceArray make_device_array(const graph::Graph& topology,
                              const optical::ModulationTable& table,
                              std::uint64_t seed, util::Db initial_snr) {
  DeviceArray devices;
  devices.reserve(topology.edge_count());
  for (EdgeId edge : topology.edge_ids()) {
    bvt::BvtDevice device(table, seed ^ (0xD3u + static_cast<std::uint64_t>(
                                                     edge.value) *
                                                     0x9E3779B9u));
    device.mdio_write(bvt::Register::kControl,
                      bvt::control::kLaserEnable | bvt::control::kTxEnable);
    device.set_link_snr(initial_snr);
    devices.push_back(std::move(device));
  }
  return devices;
}

ExecutionReport ReconfigurationOrchestrator::execute(
    const graph::Graph& topology_after, const te::FlowAssignment& before,
    const ReconfigurationPlan& plan, DeviceArray& devices) const {
  RWC_EXPECTS(devices.size() == topology_after.edge_count());
  // Wall-clock execute span; the simulated-time results (makespan, parked
  // traffic) flush at the end (docs/OBSERVABILITY.md: orchestrator.*).
  obs::Span execute_span("orchestrator.execute");

  ExecutionReport report;
  te::FlowAssignment previous = before;
  previous.edge_load_gbps.resize(topology_after.edge_count(), 0.0);
  report.transition = te::plan_transition(topology_after, previous,
                                          plan.physical_assignment);

  const std::set<std::int32_t> reconfigured = [&] {
    std::set<std::int32_t> edges;
    for (const CapacityChange& change : plan.upgrades)
      edges.insert(change.edge.value);
    return edges;
  }();

  Seconds now = 0.0;
  auto emit = [&](OrchestratorEvent::Kind kind, EdgeId edge,
                  std::string description) {
    report.timeline.push_back(
        OrchestratorEvent{now, kind, edge, std::move(description)});
  };

  // Phase 1: drain — all REMOVE steps, reconfigured links first so their
  // modulation change starts as early as possible.
  std::vector<const te::UpdateStep*> removes;
  std::vector<const te::UpdateStep*> adds;
  for (const te::UpdateStep& step : report.transition.steps)
    (step.kind == te::UpdateStep::Kind::kRemove ? removes : adds)
        .push_back(&step);
  std::stable_sort(removes.begin(), removes.end(),
                   [&](const te::UpdateStep* a, const te::UpdateStep* b) {
                     auto touches = [&](const te::UpdateStep* s) {
                       for (EdgeId e : s->path.edges)
                         if (reconfigured.contains(e.value)) return true;
                       return false;
                     };
                     return touches(a) && !touches(b);
                   });
  for (const te::UpdateStep* step : removes) {
    std::ostringstream os;
    os << "drain " << step->volume << " from "
       << graph::path_to_string(topology_after, step->path);
    emit(OrchestratorEvent::Kind::kDrainStep, EdgeId{}, os.str());
    now += options_.routing_step_latency;
  }

  // Phase 2: modulation changes, in parallel. Each device samples its own
  // downtime; the phase ends when the slowest lock completes.
  const Seconds phase2_start = now;
  Seconds phase2_end = now;
  for (const CapacityChange& change : plan.upgrades) {
    auto& device = devices[static_cast<std::size_t>(change.edge.value)];
    emit(OrchestratorEvent::Kind::kReconfigureStart, change.edge,
         "reconfigure to " +
             util::format_double(change.to.value, 0) + "G");
    const auto result =
        device.change_modulation(change.to, options_.procedure);
    const Seconds done_at = phase2_start + result.downtime;
    phase2_end = std::max(phase2_end, done_at);
    // Traffic that was on the link before the change is parked while the
    // modulation switches.
    const double previous_load =
        previous.edge_load_gbps[static_cast<std::size_t>(change.edge.value)];
    report.parked_gbps_seconds += previous_load * result.downtime;
    const Seconds saved_now = now;
    now = done_at;
    if (result.success) {
      emit(OrchestratorEvent::Kind::kReconfigureDone, change.edge,
           "locked at " + util::format_double(change.to.value, 0) + "G");
    } else {
      report.success = false;
      emit(OrchestratorEvent::Kind::kReconfigureFailed, change.edge,
           "carrier failed to lock");
    }
    now = saved_now;
  }
  now = phase2_end;

  // Phase 3: restore — ADD steps onto the new capacities.
  for (const te::UpdateStep* step : adds) {
    std::ostringstream os;
    os << "restore " << step->volume << " onto "
       << graph::path_to_string(topology_after, step->path);
    emit(OrchestratorEvent::Kind::kRestoreStep, EdgeId{}, os.str());
    now += options_.routing_step_latency;
  }

  std::stable_sort(report.timeline.begin(), report.timeline.end(),
                   [](const OrchestratorEvent& a, const OrchestratorEvent& b) {
                     return a.at < b.at;
                   });
  report.makespan = now;

  static auto& registry = obs::Registry::global();
  static auto& executions = registry.counter("orchestrator.executions");
  static auto& drain_steps = registry.counter("orchestrator.drain_steps");
  static auto& restore_steps =
      registry.counter("orchestrator.restore_steps");
  static auto& makespan_seconds =
      registry.histogram("orchestrator.makespan_seconds");
  static auto& parked = registry.gauge("orchestrator.parked_gbps_seconds");
  executions.add();
  drain_steps.add(removes.size());
  restore_steps.add(adds.size());
  makespan_seconds.observe(report.makespan);
  parked.add(report.parked_gbps_seconds);
  return report;
}

}  // namespace rwc::core
