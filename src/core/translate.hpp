// Theorem 1, step 3: translate the TE engine's output on the augmented
// topology into (a) which physical link capacities to change and (b) the
// flow-paths of the current demands on the physical topology.
#pragma once

#include <span>
#include <vector>

#include "core/augment.hpp"
#include "te/demand.hpp"

namespace rwc::core {

/// One capacity change the TE run decided on.
struct CapacityChange {
  graph::EdgeId edge;            // base edge
  util::Gbps from{0.0};
  util::Gbps to{0.0};
  /// Traffic the TE routed over the upgraded headroom.
  util::Gbps upgrade_traffic{0.0};
  /// Penalty the engine paid for it (upgrade_traffic * per-unit penalty).
  double penalty_paid = 0.0;

  bool is_upgrade() const { return to > from; }
};

struct ReconfigurationPlan {
  std::vector<CapacityChange> upgrades;
  /// The demands' routing projected onto the physical topology (fake/gadget
  /// edges merged back into their base links).
  te::FlowAssignment physical_assignment;
  double total_penalty = 0.0;
};

/// Projects an assignment computed on `augmented` back onto the base
/// topology and extracts the capacity changes. `base` must be the graph the
/// augmentation was built from.
ReconfigurationPlan translate_assignment(
    const graph::Graph& base, const AugmentedTopology& augmented,
    std::span<const VariableLink> variable_links,
    const te::FlowAssignment& augmented_assignment);

/// Applies the plan's upgrades to `topology` (sets each upgraded edge's
/// capacity to the target rate).
void apply_plan(graph::Graph& topology, const ReconfigurationPlan& plan);

}  // namespace rwc::core
