// Penalty policies for fake (capacity-upgrade) links — Section 4.2: "We
// suggest using the current link traffic as a penalty function, but the TE
// operator can set the penalty values arbitrarily."
//
// Penalties are per unit of flow routed over the fake link; they are what a
// min-cost TE engine trades against throughput when deciding whether a
// capacity change is worth the traffic disruption it causes.
#pragma once

#include <memory>
#include <string>

#include "graph/graph.hpp"
#include "util/units.hpp"

namespace rwc::core {

class PenaltyPolicy {
 public:
  virtual ~PenaltyPolicy() = default;

  virtual std::string name() const = 0;

  /// Penalty per Gbps routed on the fake link of `edge`.
  /// `current_traffic_gbps` is the traffic the link carries now (what a
  /// non-hitless reconfiguration would disrupt).
  virtual double upgrade_penalty(const graph::Graph& base,
                                 graph::EdgeId edge, util::Gbps headroom,
                                 double current_traffic_gbps) const = 0;

  /// Penalty on real links; Algorithm 1 sets these to zero.
  virtual double real_penalty(const graph::Graph& base,
                              graph::EdgeId edge) const;
};

/// Upgrades are free: maximally aggressive, maximal churn.
class ZeroPenalty final : public PenaltyPolicy {
 public:
  std::string name() const override { return "zero"; }
  double upgrade_penalty(const graph::Graph&, graph::EdgeId, util::Gbps,
                         double) const override {
    return 0.0;
  }
};

/// Constant penalty per unit flow (the Fig. 7 example uses 100).
class FixedPenalty final : public PenaltyPolicy {
 public:
  explicit FixedPenalty(double value) : value_(value) {}
  std::string name() const override { return "fixed"; }
  double upgrade_penalty(const graph::Graph&, graph::EdgeId, util::Gbps,
                         double) const override {
    return value_;
  }

 private:
  double value_;
};

/// The paper's suggested default: penalty proportional to the traffic the
/// reconfiguration would disrupt (plus a small floor so a zero-traffic link
/// still prefers no-change solutions on ties).
class TrafficProportionalPenalty final : public PenaltyPolicy {
 public:
  explicit TrafficProportionalPenalty(double scale = 1.0, double floor = 1e-3)
      : scale_(scale), floor_(floor) {}
  std::string name() const override { return "traffic-proportional"; }
  double upgrade_penalty(const graph::Graph&, graph::EdgeId, util::Gbps,
                         double current_traffic_gbps) const override {
    return floor_ + scale_ * current_traffic_gbps;
  }

 private:
  double scale_;
  double floor_;
};

/// Wraps another policy and scales its penalty by a per-priority factor —
/// "adjusting the penalty according to the traffic priority class".
class PriorityScaledPenalty final : public PenaltyPolicy {
 public:
  PriorityScaledPenalty(std::shared_ptr<const PenaltyPolicy> inner,
                        double scale)
      : inner_(std::move(inner)), scale_(scale) {}
  std::string name() const override {
    return inner_->name() + "+priority-scaled";
  }
  double upgrade_penalty(const graph::Graph& base, graph::EdgeId edge,
                         util::Gbps headroom,
                         double current_traffic_gbps) const override {
    return scale_ *
           inner_->upgrade_penalty(base, edge, headroom,
                                   current_traffic_gbps);
  }

 private:
  std::shared_ptr<const PenaltyPolicy> inner_;
  double scale_;
};

}  // namespace rwc::core
