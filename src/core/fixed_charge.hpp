// Fixed-charge activation variant of the abstraction (DESIGN.md ablation).
//
// Min-cost max-flow charges fake links PER UNIT OF FLOW — tractable, and
// what Theorem 1's reduction uses. Operators sometimes want the other
// semantics: activating a capacity change costs a FIXED price (a maintenance
// window, a disruption event) no matter how much traffic later uses it.
// That problem is a fixed-charge network design problem (NP-hard), so we
// provide:
//   - an exact lexicographic solver (max throughput, then min total
//     activation cost) by cost-ordered subset enumeration, for variable
//     sets up to `exact_limit` links;
//   - a greedy drop heuristic (start from all-activated, drop the most
//     expensive activation whose removal costs no throughput) for larger
//     sets.
// Both treat the TE engine as a black box, like everything else here.
#pragma once

#include <span>
#include <vector>

#include "core/augment.hpp"
#include "te/algorithm.hpp"

namespace rwc::core {

struct FixedChargeOptions {
  /// Largest variable-set size solved exactly (2^n engine runs worst case).
  std::size_t exact_limit = 12;
  /// Throughput tolerance when comparing subsets.
  double throughput_epsilon = 1e-6;
};

struct FixedChargeResult {
  /// The chosen activations (subset of the input variable links).
  std::vector<VariableLink> activated;
  /// Throughput the engine achieves with exactly these activations.
  util::Gbps routed{0.0};
  /// Sum of the chosen links' activation costs.
  double activation_cost = 0.0;
  /// True when produced by exhaustive enumeration (optimal), false when by
  /// the greedy heuristic.
  bool exact = false;
};

/// Chooses which variable links to activate under fixed activation costs:
/// lexicographically maximize routed throughput, then minimize total
/// activation cost. `activation_cost` is indexed like `variable_links`.
/// The engine runs on plain upgraded topologies (no fake links needed —
/// activation semantics make the upgrade unconditional).
FixedChargeResult solve_fixed_charge(
    const graph::Graph& base, std::span<const VariableLink> variable_links,
    std::span<const double> activation_cost, const te::TeAlgorithm& engine,
    const te::TrafficMatrix& demands,
    const FixedChargeOptions& options = FixedChargeOptions{});

}  // namespace rwc::core
