#include "core/translate.hpp"

#include <algorithm>

#include "flow/network.hpp"
#include "util/check.hpp"

namespace rwc::core {

using graph::EdgeId;
using util::Gbps;

ReconfigurationPlan translate_assignment(
    const graph::Graph& base, const AugmentedTopology& augmented,
    std::span<const VariableLink> variable_links,
    const te::FlowAssignment& augmented_assignment) {
  RWC_EXPECTS(augmented.base_edge_count == base.edge_count());

  ReconfigurationPlan plan;
  plan.physical_assignment.routings.reserve(
      augmented_assignment.routings.size());

  // Per-base-edge traffic that used upgraded headroom.
  std::vector<double> upgrade_traffic(base.edge_count(), 0.0);
  std::vector<double> penalty_paid(base.edge_count(), 0.0);

  for (const auto& routing : augmented_assignment.routings) {
    te::FlowAssignment::DemandRouting physical_routing;
    physical_routing.demand = routing.demand;
    for (const auto& [aug_path, volume] : routing.paths) {
      graph::Path physical_path;
      for (EdgeId aug_edge : aug_path.edges) {
        const AugmentedEdgeInfo& info = augmented.info(aug_edge);
        const double cost = augmented.graph.edge(aug_edge).cost;
        switch (info.kind) {
          case AugmentedEdgeKind::kReal:
            physical_path.edges.push_back(info.base_edge);
            physical_path.weight += base.edge(info.base_edge).weight;
            break;
          case AugmentedEdgeKind::kFake:
            physical_path.edges.push_back(info.base_edge);
            physical_path.weight += base.edge(info.base_edge).weight;
            upgrade_traffic[static_cast<std::size_t>(info.base_edge.value)] +=
                volume.value;
            penalty_paid[static_cast<std::size_t>(info.base_edge.value)] +=
                volume.value * cost;
            break;
          case AugmentedEdgeKind::kGadgetEntryFake:
            upgrade_traffic[static_cast<std::size_t>(info.base_edge.value)] +=
                volume.value;
            penalty_paid[static_cast<std::size_t>(info.base_edge.value)] +=
                volume.value * cost;
            break;
          case AugmentedEdgeKind::kGadgetBody:
            // The body carries the merged flow: this is where the physical
            // link appears in the projected path.
            physical_path.edges.push_back(info.base_edge);
            physical_path.weight += base.edge(info.base_edge).weight;
            break;
          case AugmentedEdgeKind::kGadgetEntryReal:
          case AugmentedEdgeKind::kGadgetExit:
            break;  // plumbing only
        }
      }
      physical_routing.paths.emplace_back(std::move(physical_path), volume);
    }
    plan.physical_assignment.routings.push_back(std::move(physical_routing));
  }

  for (const VariableLink& link : variable_links) {
    const auto i = static_cast<std::size_t>(link.edge.value);
    if (upgrade_traffic[i] <= flow::kFlowEps) continue;
    CapacityChange change;
    change.edge = link.edge;
    change.from = base.edge(link.edge).capacity;
    change.to = link.feasible_capacity;
    change.upgrade_traffic = Gbps{upgrade_traffic[i]};
    change.penalty_paid = penalty_paid[i];
    plan.upgrades.push_back(change);
    plan.total_penalty += change.penalty_paid;
  }
  std::sort(plan.upgrades.begin(), plan.upgrades.end(),
            [](const CapacityChange& a, const CapacityChange& b) {
              return a.edge < b.edge;
            });

  // Edge loads of the physical assignment are computed against the upgraded
  // topology (loads may legitimately exceed pre-upgrade capacities).
  graph::Graph upgraded = base;
  for (const CapacityChange& change : plan.upgrades)
    upgraded.edge(change.edge).capacity = change.to;
  te::finalize_assignment(upgraded, plan.physical_assignment);
  return plan;
}

void apply_plan(graph::Graph& topology, const ReconfigurationPlan& plan) {
  for (const CapacityChange& change : plan.upgrades)
    topology.edge(change.edge).capacity = change.to;
}

}  // namespace rwc::core
