#include "core/penalty.hpp"

namespace rwc::core {

double PenaltyPolicy::real_penalty(const graph::Graph&, graph::EdgeId) const {
  return 0.0;
}

}  // namespace rwc::core
