#include "core/fixed_charge.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace rwc::core {

using util::Gbps;

namespace {

/// Throughput with the given subset of variable links activated.
double evaluate_subset(const graph::Graph& base,
                       std::span<const VariableLink> variable_links,
                       std::uint32_t mask, const te::TeAlgorithm& engine,
                       const te::TrafficMatrix& demands) {
  graph::Graph upgraded = base;
  for (std::size_t i = 0; i < variable_links.size(); ++i)
    if (mask & (1u << i))
      upgraded.edge(variable_links[i].edge).capacity =
          variable_links[i].feasible_capacity;
  return engine.solve(upgraded, demands).total_routed.value;
}

double subset_cost(std::span<const double> activation_cost,
                   std::uint32_t mask) {
  double cost = 0.0;
  for (std::size_t i = 0; i < activation_cost.size(); ++i)
    if (mask & (1u << i)) cost += activation_cost[i];
  return cost;
}

std::vector<VariableLink> subset_links(
    std::span<const VariableLink> variable_links, std::uint32_t mask) {
  std::vector<VariableLink> chosen;
  for (std::size_t i = 0; i < variable_links.size(); ++i)
    if (mask & (1u << i)) chosen.push_back(variable_links[i]);
  return chosen;
}

FixedChargeResult solve_exact(const graph::Graph& base,
                              std::span<const VariableLink> variable_links,
                              std::span<const double> activation_cost,
                              const te::TeAlgorithm& engine,
                              const te::TrafficMatrix& demands,
                              const FixedChargeOptions& options) {
  const auto n = variable_links.size();
  const std::uint32_t subsets = 1u << n;

  // Target throughput: everything activated.
  const double best_throughput = evaluate_subset(
      base, variable_links, subsets - 1, engine, demands);

  // Enumerate subsets in ascending activation cost; the first one achieving
  // the target throughput is lexicographically optimal.
  std::vector<std::uint32_t> order(subsets);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double ca = subset_cost(activation_cost, a);
    const double cb = subset_cost(activation_cost, b);
    if (ca != cb) return ca < cb;
    return a < b;  // deterministic tie-break: prefer smaller subsets first
  });

  FixedChargeResult result;
  result.exact = true;
  for (std::uint32_t mask : order) {
    const double routed =
        evaluate_subset(base, variable_links, mask, engine, demands);
    if (routed + options.throughput_epsilon >= best_throughput) {
      result.activated = subset_links(variable_links, mask);
      result.routed = Gbps{routed};
      result.activation_cost = subset_cost(activation_cost, mask);
      return result;
    }
  }
  // Unreachable: the full set achieves its own throughput.
  RWC_CHECK_MSG(false, "fixed-charge enumeration found no subset");
  return result;
}

FixedChargeResult solve_greedy(const graph::Graph& base,
                               std::span<const VariableLink> variable_links,
                               std::span<const double> activation_cost,
                               const te::TeAlgorithm& engine,
                               const te::TrafficMatrix& demands,
                               const FixedChargeOptions& options) {
  std::vector<bool> active(variable_links.size(), true);
  auto mask_of = [&]() {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < active.size(); ++i)
      if (active[i]) mask |= 1u << i;
    return mask;
  };
  double current =
      evaluate_subset(base, variable_links, mask_of(), engine, demands);

  // Drop the most expensive activation whose removal is throughput-free;
  // repeat until no drop survives.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    std::vector<std::size_t> by_cost;
    for (std::size_t i = 0; i < active.size(); ++i)
      if (active[i]) by_cost.push_back(i);
    std::sort(by_cost.begin(), by_cost.end(),
              [&](std::size_t a, std::size_t b) {
                return activation_cost[a] > activation_cost[b];
              });
    for (std::size_t candidate : by_cost) {
      active[candidate] = false;
      const double routed =
          evaluate_subset(base, variable_links, mask_of(), engine, demands);
      if (routed + options.throughput_epsilon >= current) {
        current = std::max(current, routed);
        progressed = true;
        break;
      }
      active[candidate] = true;
    }
  }

  FixedChargeResult result;
  result.exact = false;
  result.activated = subset_links(variable_links, mask_of());
  result.routed = Gbps{current};
  result.activation_cost = subset_cost(activation_cost, mask_of());
  return result;
}

}  // namespace

FixedChargeResult solve_fixed_charge(
    const graph::Graph& base, std::span<const VariableLink> variable_links,
    std::span<const double> activation_cost, const te::TeAlgorithm& engine,
    const te::TrafficMatrix& demands, const FixedChargeOptions& options) {
  RWC_EXPECTS(activation_cost.size() == variable_links.size());
  RWC_EXPECTS(variable_links.size() < 31);
  for (double cost : activation_cost) RWC_EXPECTS(cost >= 0.0);

  if (variable_links.empty()) {
    FixedChargeResult result;
    result.exact = true;
    result.routed = engine.solve(base, demands).total_routed;
    return result;
  }
  if (variable_links.size() <= options.exact_limit)
    return solve_exact(base, variable_links, activation_cost, engine,
                       demands, options);
  return solve_greedy(base, variable_links, activation_cost, engine, demands,
                      options);
}

}  // namespace rwc::core
