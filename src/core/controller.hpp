// DynamicCapacityController: the end-to-end pipeline of the paper.
//
// Each TE round:
//   1. Map every link's SNR to the highest feasible ladder rate (with a
//      safety margin).
//   2. Links whose SNR no longer supports the configured rate FLAP DOWN to
//      the feasible rate (possibly 0) — the paper's "link flap instead of
//      link failure" (Section 2.2).
//   3. Links with headroom become variable links; Algorithm 1 builds the
//      augmented topology with the configured penalty policy.
//   4. An UNMODIFIED TE engine routes the demands on the augmented view.
//   5. The output is translated into capacity upgrades + physical routing;
//      an optional consolidation pass minimizes the number of activated
//      upgrades among cost-equal solutions (recovers the Fig. 7 example's
//      "only one link is increased").
//   6. A consistent-update transition plan is produced against the previous
//      round's routing (Section 4.2 (ii)).
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "core/augment.hpp"
#include "core/hysteresis.hpp"
#include "core/translate.hpp"
#include "demand/pipeline.hpp"
#include "obs/registry.hpp"
#include "optical/modulation.hpp"
#include "te/algorithm.hpp"
#include "te/consistent_update.hpp"
#include "update/schedule.hpp"

namespace rwc::exec {
class ThreadPool;
}

namespace rwc::core {

/// An SNR-forced capacity reduction (from > to; to == 0 means link down).
struct LinkFlap {
  graph::EdgeId edge;
  util::Gbps from{0.0};
  util::Gbps to{0.0};
};

struct ControllerOptions {
  /// Safety margin subtracted from the SNR before the ladder lookup.
  util::Db snr_margin{0.5};
  AugmentOptions augment;
  /// Greedy post-pass dropping upgrades that do not improve throughput.
  bool consolidate = true;
  /// Automatically restore a degraded link toward its nominal (provisioned)
  /// rate as soon as the SNR allows, without waiting for TE to need it.
  /// Upgrades beyond nominal always remain TE-driven.
  bool restore_to_nominal = true;
  /// Optional dampening of capacity INCREASES (reductions always pass):
  /// suppresses flapping when SNR hovers around a ladder threshold.
  std::optional<HysteresisParams> hysteresis;
  /// Flows that must not be disturbed at all (Section 4.2 (i)): their
  /// capacity is carved out of the topology and their links are barred from
  /// changing capacity. The flows themselves are invisible to the TE run
  /// and do not appear in the round's physical assignment.
  std::vector<ProtectedFlow> protected_flows;
  /// Incremental re-solve hot path (docs/FLEET.md): when a round's solve
  /// inputs — configured capacities, variable-link set, demands, and the
  /// penalty-relevant traffic on variable links — are identical to the
  /// previous round's, the controller reuses the previous round's
  /// (post-consolidation) plan instead of re-running augment/solve/
  /// translate; when only the demands changed but no link is dirty, the
  /// augmented topology is reused via core::AugmentCache. Results are
  /// bit-identical to a full re-solve by construction (a full re-solve on
  /// identical inputs is deterministic, and engine caches are timing-only
  /// by contract); only RoundStats work counters and timings differ. The
  /// memo is never checkpointed — a cold memo after restore costs one full
  /// re-solve, nothing else.
  bool incremental = false;
  /// Optional consistent-update transition stage (docs/UPDATE.md): when
  /// set, every round also plans an update::UpdateSchedule ordering the
  /// round's BVT reconfigs and route moves into congestion-free /
  /// loop-free update rounds (from the previous round's capacities +
  /// routing to the new ones). Purely observational: the schedule rides
  /// in RoundReport::update and its shape in RoundStats, but controller
  /// results and signatures are bit-identical with the stage on or off.
  std::optional<update::SchedulerConfig> update;
  /// Closed-loop demand estimation (docs/DEMAND.md). With the default
  /// kOracle source the controller consumes the handed-in matrix directly,
  /// bit-for-bit as before. With kEstimated the handed-in matrix is the
  /// OFFERED INTENT: a demand::DemandPipeline synthesizes link counters
  /// from it over the previous round's installed routing, degrades them
  /// per the config (and any armed demand.counter plan), infers an OD
  /// matrix back, and the TE stages solve THAT. Unlike every stats knob,
  /// this changes RESULTS — embedders fingerprint it (serve, replay).
  demand::DemandConfig demand;
  /// Penalty policy; defaults to TrafficProportionalPenalty.
  std::shared_ptr<const PenaltyPolicy> penalty;
  /// Thread pool for the consolidation pass's candidate evaluations;
  /// nullptr selects exec::ThreadPool::global(). The chosen plan is
  /// identical at every pool size (speculative waves replicate the serial
  /// acceptance sequence — docs/CONCURRENCY.md); only RoundStats work
  /// counters may include discarded speculative evaluations at sizes >= 2.
  /// Requires the TE engine's solve() to be safe to call concurrently.
  exec::ThreadPool* pool = nullptr;
};

class DynamicCapacityController {
 public:
  /// `physical` carries the nominal configured capacities (e.g. 100 Gbps
  /// everywhere). The engine reference must outlive the controller.
  DynamicCapacityController(graph::Graph physical,
                            optical::ModulationTable table,
                            const te::TeAlgorithm& engine,
                            ControllerOptions options = ControllerOptions{});

  /// Per-round performance statistics, filled by every run_round call.
  ///
  /// Stage timings are wall-clock seconds. The augment/solve/translate
  /// buckets sum over EVERY evaluation of the round, including the
  /// re-evaluations the consolidation pass performs; `consolidate_seconds`
  /// additionally covers the whole consolidation pass (so it overlaps the
  /// per-stage buckets — the stage buckets answer "where does solver time
  /// go", consolidate answers "what does the post-pass cost on top").
  /// The same values are recorded into the global `obs::Registry` under the
  /// `controller.round.*` histograms; names and units are contractual —
  /// see docs/OBSERVABILITY.md.
  struct RoundStats {
    /// Algorithm-1 topology augmentation time (all evaluations).
    double augment_seconds = 0.0;
    /// TE engine solve time on the augmented graph (all evaluations).
    double solve_seconds = 0.0;
    /// Assignment-to-plan translation time (all evaluations).
    double translate_seconds = 0.0;
    /// Consolidation post-pass, including its nested evaluations.
    double consolidate_seconds = 0.0;
    /// Consistent-update transition planning + validation time.
    double transition_seconds = 0.0;
    /// End-to-end run_round wall time.
    double total_seconds = 0.0;
    /// Augment->solve->translate passes (1 + accepted/tried consolidations).
    std::uint64_t evaluations = 0;
    /// Solver work observed during this round (deltas of the global
    /// registry counters; which ones move depends on the TE engine).
    std::uint64_t mincost_runs = 0;       ///< flow.mincost.runs delta
    std::uint64_t mincost_paths = 0;      ///< flow.mincost.paths delta
    std::uint64_t simplex_solves = 0;     ///< lp.simplex.solves delta
    std::uint64_t simplex_iterations = 0; ///< lp.simplex.iterations delta
    /// Incremental hot path (options.incremental): whether this round's
    /// plan was served from the previous round's memo without a solve.
    /// Work accounting only — never part of a round's result signature.
    bool incremental_hit = false;
    /// Base links whose inputs changed since the previous augmentation
    /// (edge_count on the first/cold round; 0 on a memo hit).
    std::uint64_t dirty_links = 0;
    /// Whether any solver-tier partial re-solve served work this round:
    /// a verified min-cost repair (solver.partial_repairs) or an LP
    /// warm-basis reuse (lp.basis_reuse_hits / lp.basis_reuse_memo_hits)
    /// moved during the round. The middle rung of the escalation ladder
    /// (docs/SOLVERS.md: memo -> partial -> full). Work accounting only —
    /// never part of a round's result signature.
    bool partial_resolve = false;
    /// dirty_links / edge_count: 0.0 on a memo hit, 1.0 on a cold or
    /// fully-perturbed round. Only meaningful with options.incremental.
    double dirty_fraction = 0.0;
    /// Consistent-update stage (options.update): shape of the planned
    /// schedule. Work accounting only — never part of a round's result
    /// signature (like every other stats field).
    std::uint64_t update_rounds = 0;
    std::uint64_t update_route_moves = 0;
    std::uint64_t update_reconfigs = 0;
    double update_makespan_seconds = 0.0;
    /// Schedule planning + validation wall time.
    double update_seconds = 0.0;
  };

  /// Everything one TE round decided and how it went (the paper's §4
  /// pipeline output plus the observability stats contract).
  struct RoundReport {
    /// SNR-forced capacity reductions applied this round (walk / crawl).
    std::vector<LinkFlap> reductions;
    /// SNR-recovery restorations toward the nominal rate (from < to).
    std::vector<LinkFlap> restorations;
    /// Capacity upgrades + physical routing chosen by the TE engine.
    ReconfigurationPlan plan;
    /// Total demand volume routed on the physical topology.
    util::Gbps total_routed{0.0};
    /// Total penalty paid on fake links (upgrade disruption proxy).
    double total_penalty = 0.0;
    /// Consistent-update steps from the previous round's routing.
    te::UpdatePlan transition;
    /// Whether the transition plan passed validation.
    bool transition_valid = false;
    /// Demand-estimation outcome of this round (only when options.demand
    /// selects kEstimated). Diagnostics — never part of a round's result
    /// signature; the estimated volumes the round solved are (read them
    /// via demand_pipeline()->last_estimated()).
    std::optional<demand::EstimateStats> demand;
    /// Ordered update schedule for this round's transition (only when
    /// options.update is set) — executable via update::ScheduleExecutor.
    std::optional<update::UpdateSchedule> update;
    /// Whether the schedule is feasible AND passed validate_schedule.
    /// Meaningless when options.update is unset.
    bool update_valid = false;
    /// Per-stage timings and solver counters for this round.
    RoundStats stats;
  };

  /// Runs one TE round. `link_snr` is indexed by physical edge id.
  RoundReport run_round(std::span<const util::Db> link_snr,
                        const te::TrafficMatrix& demands);

  /// Everything that evolves across rounds, captured for checkpointing
  /// (rwc::replay). A controller built with the same topology/table/options
  /// and restored from this state produces bit-identical RoundReports for
  /// the remaining rounds — docs/REPLAY.md states the contract.
  struct PersistentState {
    std::vector<util::Gbps> configured;
    std::optional<HysteresisFilter::State> hysteresis;
    te::FlowAssignment last_assignment;
    std::vector<double> last_traffic;
    std::vector<util::Db> last_snr;
  };
  PersistentState save_state() const;
  /// Restores a captured state. Vector sizes must match this controller's
  /// physical topology, and hysteresis presence must match the options the
  /// controller was built with.
  void restore_state(PersistentState state);

  const graph::Graph& physical_topology() const { return physical_; }
  /// Physical topology with the currently configured capacities.
  graph::Graph current_topology() const;
  util::Gbps configured_capacity(graph::EdgeId edge) const;
  /// All configured capacities, indexed by edge id — the epoch-publication
  /// hook (rwc::serve): building a PlanEpoch copies this span once instead
  /// of issuing edge_count bounds-checked per-edge lookups.
  std::span<const util::Gbps> configured_capacities() const {
    return configured_;
  }
  const te::FlowAssignment& last_assignment() const {
    return last_assignment_;
  }
  const optical::ModulationTable& table() const { return table_; }
  const ControllerOptions& options() const { return options_; }

  /// The estimation pipeline (nullptr unless options.demand is estimated).
  /// Its evolving state rides the optional kDemand checkpoint section —
  /// PersistentState stays wire-compatible (docs/REPLAY.md).
  demand::DemandPipeline* demand_pipeline() { return demand_pipeline_.get(); }
  const demand::DemandPipeline* demand_pipeline() const {
    return demand_pipeline_.get();
  }

 private:
  /// One augment -> solve -> translate evaluation against `current`.
  /// Stage wall-times and the evaluation count accumulate into `stats`.
  /// With `cache` non-null the augmentation goes through the dirty-link
  /// cache (primary evaluation of an incremental round); consolidation
  /// trials pass nullptr because their reduced variable sets would thrash
  /// the cache.
  ReconfigurationPlan evaluate(const graph::Graph& current,
                               std::span<const VariableLink> variable_links,
                               const te::TrafficMatrix& demands,
                               RoundStats& stats,
                               AugmentCache* cache = nullptr) const;

  /// Consolidation post-pass on report.plan: drops upgrades whose removal
  /// does not hurt throughput or penalty. Serial at pool sizes <= 1; at
  /// larger sizes the remaining candidates are evaluated in speculative
  /// waves whose in-order acceptance scan reproduces the serial decision
  /// sequence bit-for-bit.
  void consolidate(exec::ThreadPool& pool, const graph::Graph& current,
                   std::span<const VariableLink> variable_links,
                   const te::TrafficMatrix& demands,
                   RoundReport& report) const;

  /// Inputs and outcome of the last full solve (options_.incremental): a
  /// round whose solve inputs compare equal reuses `plan` wholesale.
  /// Deliberately not part of PersistentState — restoring with a cold memo
  /// changes timing only, never results.
  struct SolveMemo {
    bool valid = false;
    std::vector<util::Gbps> configured;
    std::vector<VariableLink> variable_links;
    te::TrafficMatrix demands;
    /// last_traffic_ sampled on the variable links (aligned with
    /// variable_links) — the only traffic the penalty policies read.
    std::vector<double> variable_traffic;
    ReconfigurationPlan plan;
  };

  graph::Graph physical_;
  optical::ModulationTable table_;
  const te::TeAlgorithm& engine_;
  ControllerOptions options_;
  std::unique_ptr<demand::DemandPipeline> demand_pipeline_;
  std::vector<util::Gbps> configured_;
  SolveMemo memo_;
  AugmentCache augment_cache_;
  std::optional<HysteresisFilter> hysteresis_;
  te::FlowAssignment last_assignment_;
  std::vector<double> last_traffic_;
  /// Previous round's sanitized per-link SNR; what a stale telemetry fault
  /// (site core.snr) replays. 0 dB before the first round.
  std::vector<util::Db> last_snr_;
};

}  // namespace rwc::core
