// Streaming long-horizon fleet replay driver (rwc::replay).
//
// ReplayDriver re-runs the paper's dynamic-capacity control loop — SNR
// telemetry -> DynamicCapacityController round -> analytic reconfiguration
// accounting — over arbitrarily long synthetic fleet horizons in bounded
// memory: instead of materializing multi-year SNR traces up front (the
// WanSimulator approach, O(rounds * links) floats), it streams each link's
// trace through an SnrTraceCursor in chunks of `chunk_rounds` samples.
//
// The driver is checkpointable between any two rounds: checkpoint()
// captures the full deterministic state (see replay/checkpoint.hpp) and
// restore() resumes BIT-IDENTICALLY — the remaining rounds produce the
// same RoundReports, metrics and signature chain as the uninterrupted run,
// at every thread-pool size, whether or not the engine caches were
// persisted (caches only affect timing). tests/test_replay_driver.cpp
// proves the contract; docs/REPLAY.md states it.
//
// Accounting matches WanSimulator's analytic dynamic-policy path exactly
// (device_backed is out of scope for replay v1): each capacity change
// samples a reconfiguration downtime from the latency model and charges
// the traffic newly assigned to the changed link for the overlap with the
// TE interval.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "bvt/latency.hpp"
#include "core/controller.hpp"
#include "demand/config.hpp"
#include "replay/checkpoint.hpp"
#include "sim/simulator.hpp"
#include "telemetry/snr_model.hpp"
#include "util/rng.hpp"

namespace rwc::exec {
class ThreadPool;
}

namespace rwc::replay {

struct ReplayConfig {
  /// Total TE rounds to drive (96 = one day at the default interval).
  std::uint64_t rounds = 96;
  util::Seconds te_interval = 15.0 * util::kMinute;
  util::Db snr_margin{0.5};
  /// Scale demands by the diurnal curve.
  bool diurnal = true;
  telemetry::SnrModelParams snr_model;
  bvt::LatencyModelParams latency;
  /// Reconfiguration procedure of the analytic account (kStandard mirrors
  /// CapacityPolicy::kDynamic, kEfficient mirrors kDynamicHitless).
  bvt::Procedure procedure = bvt::Procedure::kStandard;
  std::uint64_t seed = 1;
  /// SNR samples generated per streaming refill; bounds peak memory at
  /// O(chunk_rounds * links) instead of O(rounds * links). Part of the
  /// config fingerprint: chunk boundaries decide which cursor states a
  /// checkpoint carries.
  std::uint64_t chunk_rounds = 256;
  /// Persist the TE engine's warm-start / path caches in checkpoints.
  /// Either way restore is bit-identical — caches only change timing — so
  /// this trades checkpoint size against post-restore warm-up.
  bool checkpoint_caches = true;
  /// Persist (and restore) the global obs counters/gauges. Off by default:
  /// the registry is process-global, so restoring it rewinds metrics of
  /// everything else in the process too. Histograms are reset on restore
  /// (documented limitation, docs/REPLAY.md).
  bool checkpoint_obs = false;
  /// When non-zero and a store is attached, step() writes a checkpoint
  /// every this many rounds.
  std::uint64_t checkpoint_every = 0;
  /// Controller-side dampening of capacity increases.
  std::optional<core::HysteresisParams> hysteresis;
  /// Enable the controller's incremental re-solve hot path
  /// (core::ControllerOptions::incremental, docs/FLEET.md). Deliberately
  /// NOT part of the config fingerprint: results are bit-identical with
  /// the flag on or off, so checkpoints are portable across modes — the
  /// differential tests rely on exactly that.
  bool incremental = false;
  /// Pool for chunk generation and the controller's consolidation pass;
  /// nullptr selects exec::ThreadPool::global(). Results are identical at
  /// every pool size (docs/CONCURRENCY.md).
  exec::ThreadPool* pool = nullptr;
  /// Demand source of every controller round (docs/DEMAND.md). kOracle
  /// keeps the historical behavior: the true matrix is fed to TE directly.
  /// kEstimated routes each round through a demand::DemandPipeline — TE
  /// sees the counter-inferred matrix, delivered accounting caps each OD
  /// at its TRUE volume (routing against an over-estimate never counts as
  /// delivering traffic nobody offered), and checkpoints carry the kDemand
  /// section. The demand fields join the config fingerprint only in
  /// estimated mode, so existing oracle checkpoints stay valid.
  demand::DemandConfig demand;
};

class ReplayDriver {
 public:
  /// `topology` must be built from bidirectional pairs (edges 2k, 2k+1 form
  /// one physical link; one fiber per pair, one wavelength per direction,
  /// like WanSimulator). The engine must outlive the driver.
  ReplayDriver(graph::Graph topology, const te::TeAlgorithm& engine,
               te::TrafficMatrix base_demands, ReplayConfig config);

  /// Hash of everything that determines the run's outputs: topology,
  /// demands, seed, intervals, model parameters, chunking. Checkpoints
  /// carry it; restore rejects a mismatch with Error::kConfigMismatch.
  std::uint64_t config_fingerprint() const { return config_fingerprint_; }

  std::uint64_t round() const { return round_; }
  bool done() const { return round_ >= config_.rounds; }

  /// Rolling digest folding every completed round's signature content
  /// (upgrades, routed, penalty, reduction/restoration counts, transition
  /// validity — the prop::RoundSignature fields). Two runs agree on every
  /// round iff their chains agree.
  std::uint64_t signature_chain() const { return signature_chain_; }

  /// Cumulative metrics so far, with availability normalized to the mean
  /// link-up fraction (WanSimulator convention).
  sim::SimulationMetrics metrics() const;

  /// Attaches a store for periodic checkpoints (config.checkpoint_every).
  /// The store must outlive the driver; nullptr detaches.
  void attach_store(CheckpointStore* store) { store_ = store; }

  /// Per-round observation hook, invoked at the end of every step() with
  /// the index of the round just executed, the raw per-link SNR fed to the
  /// controller, and the round's report. Pure observation: it runs after
  /// all round state (signature chain, metrics) is final and must not
  /// mutate the driver. Not part of checkpointed state — an aggregator
  /// that needs to survive restore must rebuild from its own data
  /// (rwc::fleet re-registers its aggregation hook after every restore).
  using RoundObserver = std::function<void(
      std::uint64_t round, std::span<const util::Db> snr,
      const core::DynamicCapacityController::RoundReport& report)>;
  void set_round_observer(RoundObserver observer) {
    observer_ = std::move(observer);
  }

  /// The driver's controller (e.g. to read configured capacities from an
  /// observer).
  const core::DynamicCapacityController& controller() const {
    return controller_;
  }

  /// Runs one TE round and returns its report (for signature checks and
  /// invariant harnesses). Precondition: !done().
  core::DynamicCapacityController::RoundReport step();

  /// Runs to completion; returns the final metrics().
  sim::SimulationMetrics run();

  /// Runs up to `max_rounds` further rounds; returns how many ran.
  std::uint64_t run(std::uint64_t max_rounds);

  /// Captures the full deterministic state between rounds.
  Checkpoint checkpoint() const;

  /// Rewinds (or fast-forwards) the driver to `checkpoint`. On any error
  /// the driver is unchanged. kConfigMismatch when the checkpoint belongs
  /// to a different configuration, kMalformed when its internal sizes
  /// cannot apply to this topology.
  Error restore(const Checkpoint& checkpoint);

  /// Restores from the newest valid checkpoint in `store` (deterministic
  /// fallback across corrupted files — replay.restore.fallbacks counts the
  /// skips).
  Error restore_latest(const CheckpointStore& store);

 private:
  void refill_chunk();
  /// Captures the cursor states as the new chunk base and generates the
  /// next chunk_len_ samples per edge (parallel over edges, deterministic).
  void fill_chunk_from_cursors();
  exec::ThreadPool& pool() const;

  graph::Graph topology_;
  const te::TeAlgorithm& engine_;
  te::TrafficMatrix base_demands_;
  ReplayConfig config_;
  std::uint64_t config_fingerprint_ = 0;

  optical::ModulationTable table_;
  core::DynamicCapacityController controller_;
  telemetry::SnrFleetGenerator fleet_;
  bvt::LatencyModel latency_;
  util::Rng latency_rng_;

  /// One streaming cursor per physical edge (fiber e/2, wavelength e%2).
  std::vector<telemetry::SnrTraceCursor> cursors_;
  /// Cursor states captured at the last refill — what a checkpoint carries
  /// (the in-flight chunk is regenerated from them on restore).
  std::vector<telemetry::SnrTraceCursor::State> chunk_base_states_;
  /// Per-edge SNR samples for rounds [chunk_base_round_, .. + chunk_len_).
  std::vector<std::vector<float>> chunk_;
  std::uint64_t chunk_base_round_ = 0;
  std::uint64_t chunk_len_ = 0;

  std::uint64_t round_ = 0;
  std::uint64_t signature_chain_ = 0;
  /// availability holds the running per-round sum until metrics() divides.
  sim::SimulationMetrics metrics_;

  CheckpointStore* store_ = nullptr;
  RoundObserver observer_;
};

}  // namespace rwc::replay
