// Versioned binary checkpoints of a long-horizon replay run (rwc::replay).
//
// A Checkpoint captures everything that evolves across TE rounds of a
// ReplayDriver — controller hysteresis/round state, the SNR trace cursor
// positions at the current chunk base, the analytic-accounting Rng stream,
// cumulative metrics, a rolling round-signature digest, and (optionally)
// the TE engine's warm-start / path caches and the global obs counters.
// A driver built with the same inputs and restored from a checkpoint
// continues bit-identically to the uninterrupted run (docs/REPLAY.md states
// the contract; tests/test_replay_driver.cpp proves it at pool sizes
// 1/2/8).
//
// On the wire a checkpoint is a magic/version header plus length- and
// CRC32-framed sections, so a stale, truncated or corrupted snapshot is
// rejected with a typed Error — never undefined behavior:
//
//   magic[8] "RWCKPT01" | u32 version | u32 section_count
//   per section: u32 id | u64 payload_length | u32 crc32 | payload
//
// All integers are little-endian; doubles/floats travel as their IEEE-754
// bit patterns (bit-exactness is the whole point). Unknown section ids are
// skipped (forward compatibility within a format version); the meta,
// controller, cursors and rng sections are mandatory. The cache and obs
// sections are optional — their absence is the explicit cold-cache /
// no-obs marker, and restore clears the corresponding live state.
//
// docs/REPLAY.md documents the format, versioning policy and the recovery
// workflow; docs/FAULTS.md documents the `replay.restore` fault site that
// read_file() evaluates to exercise truncation/corruption handling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/controller.hpp"
#include "demand/pipeline.hpp"
#include "flow/mincost.hpp"
#include "graph/path_cache.hpp"
#include "sim/simulator.hpp"
#include "telemetry/snr_model.hpp"
#include "util/rng.hpp"

namespace rwc::replay {

/// Why a checkpoint could not be decoded, loaded or applied. Every failure
/// mode of the restore path maps to exactly one of these; none of them is
/// an exception or UB.
enum class Error {
  kNone,            ///< success
  kIo,              ///< file could not be read/written
  kNotFound,        ///< store holds no checkpoint at all
  kBadMagic,        ///< not a checkpoint file
  kBadVersion,      ///< produced by an incompatible format version
  kTruncated,       ///< bytes end before the framing says they should
  kCrcMismatch,     ///< a section's payload fails its CRC32
  kMalformed,       ///< framing intact but a payload does not parse
  kMissingSection,  ///< a mandatory section is absent
  kConfigMismatch,  ///< valid checkpoint of a different run configuration
};

const char* to_string(Error error);

/// On-the-wire format version; bumped on any incompatible layout change
/// (docs/REPLAY.md, "Versioning").
inline constexpr std::uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
std::uint32_t crc32(std::span<const std::byte> bytes);

/// Full deterministic state of a ReplayDriver between rounds.
struct Checkpoint {
  // Meta section.
  std::uint64_t config_fingerprint = 0;  ///< ReplayDriver::config_fingerprint
  std::uint64_t round = 0;               ///< rounds completed when captured
  std::uint64_t chunk_base_round = 0;    ///< round the cursor states refer to
  std::uint64_t signature_chain = 0;     ///< rolling RoundSignature digest
  /// Cumulative accounting; `availability` holds the per-round running SUM
  /// (ReplayDriver::metrics() normalizes it on read-out).
  sim::SimulationMetrics metrics;

  // Controller section: everything the §4 pipeline carries across rounds.
  core::DynamicCapacityController::PersistentState controller;

  // Cursors section: one SNR trace cursor state per physical edge, captured
  // at the last chunk refill (the in-flight chunk is regenerated on
  // restore).
  std::vector<telemetry::SnrTraceCursor::State> cursors;

  // Rng section: the analytic latency-accounting stream.
  util::RngState latency_rng;

  // Cache sections (optional). Absent == explicit cold-cache marker:
  // restore clears the live caches, which only changes timing, never
  // results.
  bool caches_present = false;
  std::vector<flow::MinCostWarmStart> warm_recordings;        ///< FIFO order
  std::vector<graph::PathCache::ExportedEntry> path_entries;  ///< FIFO order

  // Obs section (optional): cumulative counters/gauges of the global
  // registry. Histograms are not captured — a restore resets them
  // (documented limitation, docs/REPLAY.md).
  bool obs_present = false;
  std::vector<std::pair<std::string, std::uint64_t>> obs_counters;
  std::vector<std::pair<std::string, double>> obs_gauges;

  // Serve section (optional): opaque state payload of the rwc::serve
  // control-plane state machine (current demands/SNR, ingest-log cursor —
  // serve/service.cpp owns the inner framing, docs/SERVE.md documents it).
  // The envelope CRC-frames it like every other section; decoders that
  // predate the section skip it by id.
  bool serve_present = false;
  std::vector<std::byte> serve_payload;

  // Update section (optional): opaque execution cursor of a mid-flight
  // update::ScheduleExecutor (committed-round count + timing counters —
  // update/executor.cpp owns the inner framing, docs/UPDATE.md documents
  // it). Same envelope contract as the serve section.
  bool update_present = false;
  std::vector<std::byte> update_payload;

  // Dataplane section (optional): opaque evolving state of a
  // dataplane::DataplaneSim riding along with the control-plane run
  // (flowlet rates, pipeline queues, round counter —
  // dataplane/dataplane.cpp owns the inner framing, docs/DATAPLANE.md
  // documents it). Same envelope contract as the serve/update sections:
  // restore-then-continue is bit-identical to the uninterrupted run.
  bool dataplane_present = false;
  std::vector<std::byte> dataplane_payload;

  // Demand section (present exactly when the run estimates demands from
  // link counters, core::ControllerOptions::demand): the DemandPipeline's
  // cross-round state — round index, EWMA prior, last observed counters,
  // capacity peaks (docs/DEMAND.md). Unlike the cache/obs sections it
  // CHANGES RESULTS, so restore() treats it as mandatory whenever the
  // restoring driver runs estimated and rejects its absence with
  // kMissingSection.
  bool demand_present = false;
  demand::DemandPipeline::State demand_state;
};

/// Serializes `checkpoint` into the framed binary form above.
std::vector<std::byte> encode(const Checkpoint& checkpoint);

/// Parses `bytes`; on any Error other than kNone, `out` is unspecified.
Error decode(std::span<const std::byte> bytes, Checkpoint& out);

/// encode() + atomic write (temp file + rename) to `path`.
Error write_file(const std::filesystem::path& path,
                 const Checkpoint& checkpoint);

/// Reads and decodes `path`. Evaluates the `replay.restore` fault site on
/// the raw bytes before decoding: kDrop truncates the tail (magnitude
/// bytes; 0 drops half the file), kGarbage flips one byte (at offset
/// magnitude mod size) — so an armed plan exercises exactly the corruption
/// paths the decoder must reject.
Error read_file(const std::filesystem::path& path, Checkpoint& out);

/// Directory of rotated checkpoint files ("ckpt-<round>.bin"), keeping the
/// newest `keep` and loading newest-first with deterministic fallback: a
/// file that fails to decode or belongs to a different configuration is
/// counted under replay.restore.rejected and the scan falls back to the
/// next-older file (replay.restore.fallbacks).
class CheckpointStore {
 public:
  /// Creates `directory` if needed; `keep` >= 1 files are retained.
  explicit CheckpointStore(std::filesystem::path directory,
                           std::size_t keep = 4);

  /// Writes `checkpoint` as ckpt-<round>.bin and prunes old files.
  Error write(const Checkpoint& checkpoint);

  /// Newest checkpoint that decodes and (when `expected_fingerprint` is
  /// non-zero) matches the configuration. kNotFound when the directory has
  /// no checkpoint files; otherwise the newest file's error when none
  /// survives.
  Error load_latest(std::uint64_t expected_fingerprint, Checkpoint& out) const;

  /// Checkpoint files, oldest first.
  std::vector<std::filesystem::path> files() const;

  const std::filesystem::path& directory() const { return directory_; }
  std::size_t keep() const { return keep_; }

 private:
  std::filesystem::path directory_;
  std::size_t keep_;
};

}  // namespace rwc::replay
