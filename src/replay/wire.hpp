// Little-endian wire primitives shared by every rwc binary codec: the
// checkpoint sections (replay/checkpoint.cpp) and the serve control-plane
// state payload (serve/service.cpp) frame their bytes through the same
// writer/reader pair, so "doubles travel as IEEE-754 bit patterns" and
// "any overrun latches fail()" hold once, for every format.
//
// ByteReader is deliberately forgiving in-flight and strict at the end:
// a truncated payload makes every subsequent read return zero instead of
// throwing, and the caller checks failed()/exhausted() exactly once after
// parsing — the pattern every section decoder in docs/REPLAY.md follows.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace rwc::replay::wire {

/// Little-endian append-only serializer.
class ByteWriter {
 public:
  void u8(std::uint8_t value) { bytes_.push_back(std::byte{value}); }
  void u32(std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8)
      bytes_.push_back(std::byte{static_cast<std::uint8_t>(value >> shift)});
  }
  void u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8)
      bytes_.push_back(std::byte{static_cast<std::uint8_t>(value >> shift)});
  }
  void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }
  void str(const std::string& value) {
    u32(static_cast<std::uint32_t>(value.size()));
    for (char c : value)
      bytes_.push_back(std::byte{static_cast<std::uint8_t>(c)});
  }

  const std::vector<std::byte>& bytes() const { return bytes_; }
  std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
};

/// Bounds-checked little-endian reader: any overrun latches fail() and
/// makes every subsequent read return zero, so payload parsers can run to
/// completion and check once at the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    if (position_ + 1 > bytes_.size())
      return static_cast<std::uint8_t>(fail_read());
    return std::to_integer<std::uint8_t>(bytes_[position_++]);
  }
  std::uint32_t u32() {
    std::uint32_t value = 0;
    if (position_ + 4 > bytes_.size())
      return static_cast<std::uint32_t>(fail_read());
    for (int shift = 0; shift < 32; shift += 8)
      value |= static_cast<std::uint32_t>(
                   std::to_integer<std::uint8_t>(bytes_[position_++]))
               << shift;
    return value;
  }
  std::uint64_t u64() {
    std::uint64_t value = 0;
    if (position_ + 8 > bytes_.size()) return fail_read();
    for (int shift = 0; shift < 64; shift += 8)
      value |= static_cast<std::uint64_t>(
                   std::to_integer<std::uint8_t>(bytes_[position_++]))
               << shift;
    return value;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t size = u32();
    if (position_ + size > bytes_.size()) {
      fail_read();
      return {};
    }
    std::string value(size, '\0');
    std::memcpy(value.data(), bytes_.data() + position_, size);
    position_ += size;
    return value;
  }
  /// Element-count sanity bound: a count that could not possibly fit in the
  /// remaining payload (>= 1 byte per element) marks the payload malformed
  /// without attempting a huge allocation.
  bool fits(std::uint64_t count) {
    if (count <= bytes_.size() - position_) return true;
    failed_ = true;
    return false;
  }

  bool failed() const { return failed_; }
  bool exhausted() const { return position_ == bytes_.size(); }

 private:
  std::uint64_t fail_read() {
    failed_ = true;
    position_ = bytes_.size();
    return 0;
  }

  std::span<const std::byte> bytes_;
  std::size_t position_ = 0;
  bool failed_ = false;
};

}  // namespace rwc::replay::wire
