#include "replay/driver.hpp"

#include <algorithm>
#include <bit>
#include <span>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"
#include "util/check.hpp"

namespace rwc::replay {

namespace {

/// Handles into the global registry (docs/OBSERVABILITY.md: replay.*).
struct DriverMetrics {
  obs::Counter& rounds;
  obs::Counter& refills;
  obs::Counter& restores;
  obs::Counter& rejected;
  obs::Histogram& write_seconds;
  obs::Histogram& restore_seconds;

  static DriverMetrics& instance() {
    static auto& registry = obs::Registry::global();
    static DriverMetrics metrics{
        registry.counter("replay.rounds"),
        registry.counter("replay.chunk.refills"),
        registry.counter("replay.restores"),
        registry.counter("replay.restore.rejected"),
        registry.histogram("replay.checkpoint.write.seconds"),
        registry.histogram("replay.restore.seconds"),
    };
    return metrics;
  }
};

/// Word-at-a-time mixer (murmur3-finalizer style), same construction as the
/// fingerprints in graph::PathCache / flow::network_fingerprint.
std::uint64_t mix64(std::uint64_t hash, std::uint64_t value) {
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  hash = (hash ^ value) * 0x2545f4914f6cdd1dULL;
  return hash ^ (hash >> 29);
}

std::uint64_t mix_double(std::uint64_t hash, double value) {
  return mix64(hash, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t fingerprint_of(const graph::Graph& topology,
                             const te::TrafficMatrix& demands,
                             const ReplayConfig& config) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  hash = mix64(hash, topology.node_count());
  hash = mix64(hash, topology.edge_count());
  for (graph::EdgeId id : topology.edge_ids()) {
    const graph::Edge& edge = topology.edge(id);
    hash = mix64(hash, static_cast<std::uint32_t>(edge.src.value));
    hash = mix64(hash, static_cast<std::uint32_t>(edge.dst.value));
    hash = mix_double(hash, edge.capacity.value);
    hash = mix_double(hash, edge.cost);
    hash = mix_double(hash, edge.weight);
  }
  hash = mix64(hash, demands.size());
  for (const te::Demand& demand : demands) {
    hash = mix64(hash, static_cast<std::uint32_t>(demand.src.value));
    hash = mix64(hash, static_cast<std::uint32_t>(demand.dst.value));
    hash = mix_double(hash, demand.volume.value);
    hash = mix64(hash, static_cast<std::uint32_t>(demand.priority));
  }
  hash = mix64(hash, config.rounds);
  hash = mix_double(hash, config.te_interval);
  hash = mix_double(hash, config.snr_margin.value);
  hash = mix64(hash, config.diurnal ? 1 : 0);
  hash = mix64(hash, config.seed);
  hash = mix64(hash, config.chunk_rounds);
  hash = mix64(hash, static_cast<std::uint64_t>(config.procedure));
  const bvt::LatencyModelParams& l = config.latency;
  for (double field :
       {l.laser_shutdown_mean, l.laser_shutdown_sd, l.laser_warmup_mean,
        l.laser_warmup_sd, l.register_program_mean, l.register_program_sd,
        l.fast_program_mean, l.fast_program_sd, l.dsp_relock_mean,
        l.dsp_relock_sd})
    hash = mix_double(hash, field);
  const telemetry::SnrModelParams& m = config.snr_model;
  for (double field :
       {m.fiber_baseline_mean.value, m.fiber_baseline_sigma.value,
        m.fiber_baseline_min.value, m.fiber_baseline_max.value,
        m.lambda_offset_sigma.value, m.jitter_sigma_median_db,
        m.jitter_sigma_log_sigma, m.noisy_lambda_fraction,
        m.noisy_jitter_multiplier, m.drift_amplitude_mean_db,
        m.drift_period_min, m.drift_period_max,
        m.fiber_shallow_rate_per_year, m.lambda_shallow_rate_per_year,
        m.shallow_depth_median_db, m.shallow_depth_log_sigma,
        m.shallow_duration_mean_hours, m.shallow_duration_sd_hours,
        m.fiber_deep_rate_per_year, m.lambda_deep_rate_per_year,
        m.deep_depth_median_db, m.deep_depth_log_sigma,
        m.deep_duration_mean_hours, m.deep_duration_sd_hours,
        m.fiber_cut_rate_per_year, m.cut_duration_mean_hours,
        m.cut_duration_sd_hours, m.event_depth_lambda_log_sigma,
        m.noise_floor.value})
    hash = mix_double(hash, field);
  hash = mix64(hash, config.hysteresis.has_value() ? 1 : 0);
  if (config.hysteresis.has_value()) {
    hash = mix_double(hash, config.hysteresis->extra_up_margin.value);
    hash = mix64(hash,
                 static_cast<std::uint32_t>(config.hysteresis->up_hold_rounds));
  }
  // Demand fields join the fingerprint only in estimated mode: estimation
  // changes results, but oracle runs must keep the exact pre-demand hash so
  // historical checkpoints still restore.
  if (config.demand.estimated()) {
    const demand::DemandConfig& d = config.demand;
    hash = mix64(hash, static_cast<std::uint64_t>(d.source));
    hash = mix_double(hash, d.noise);
    hash = mix_double(hash, d.loss_rate);
    hash = mix_double(hash, d.staleness);
    hash = mix_double(hash, d.interval_seconds);
    hash = mix_double(hash, d.ewma_alpha);
    hash = mix_double(hash, d.damping);
    hash = mix64(hash, d.seed);
  }
  return hash;
}

telemetry::SnrFleetGenerator::FleetParams fleet_params_for(
    const ReplayConfig& config, std::size_t edges) {
  telemetry::SnrFleetGenerator::FleetParams params;
  params.fiber_count = static_cast<int>(edges / 2);
  params.wavelengths_per_fiber = 2;
  // One sample per round plus one spare, like WanSimulator's
  // horizon + te_interval duration.
  params.duration =
      static_cast<double>(config.rounds + 1) * config.te_interval;
  params.interval = config.te_interval;
  params.model = config.snr_model;
  return params;
}

core::ControllerOptions controller_options_for(const ReplayConfig& config) {
  core::ControllerOptions options;
  options.snr_margin = config.snr_margin;
  options.hysteresis = config.hysteresis;
  options.incremental = config.incremental;
  options.pool = config.pool;
  options.demand = config.demand;
  return options;
}

}  // namespace

ReplayDriver::ReplayDriver(graph::Graph topology,
                           const te::TeAlgorithm& engine,
                           te::TrafficMatrix base_demands,
                           ReplayConfig config)
    : topology_(std::move(topology)),
      engine_(engine),
      base_demands_(std::move(base_demands)),
      config_(config),
      table_(optical::ModulationTable::standard()),
      controller_(topology_, table_, engine_,
                  controller_options_for(config_)),
      fleet_(fleet_params_for(config_, topology_.edge_count()), config_.seed),
      latency_(config_.latency),
      // Same stream-split constant as WanSimulator, so the analytic account
      // of a replay run draws the same downtimes as a simulator run of the
      // same seed would.
      latency_rng_(config_.seed ^ 0x1A7E9C5ull) {
  RWC_EXPECTS(topology_.edge_count() > 0);
  RWC_EXPECTS(topology_.edge_count() % 2 == 0);
  RWC_EXPECTS(config_.rounds > 0);
  RWC_EXPECTS(config_.te_interval > 0.0);
  RWC_EXPECTS(config_.chunk_rounds > 0);
  const std::size_t edges = topology_.edge_count();
  cursors_.reserve(edges);
  for (std::size_t e = 0; e < edges; ++e)
    cursors_.emplace_back(fleet_, static_cast<int>(e / 2),
                          static_cast<int>(e % 2));
  chunk_base_states_.reserve(edges);
  for (const auto& cursor : cursors_)
    chunk_base_states_.push_back(cursor.state());
  chunk_.resize(edges);
  config_fingerprint_ = fingerprint_of(topology_, base_demands_, config_);
}

exec::ThreadPool& ReplayDriver::pool() const {
  return config_.pool != nullptr ? *config_.pool
                                 : exec::ThreadPool::global();
}

void ReplayDriver::refill_chunk() {
  chunk_base_round_ = round_;
  fill_chunk_from_cursors();
}

void ReplayDriver::fill_chunk_from_cursors() {
  chunk_base_states_.clear();
  for (const auto& cursor : cursors_)
    chunk_base_states_.push_back(cursor.state());
  const std::uint64_t remaining =
      cursors_[0].total_samples() - cursors_[0].position();
  chunk_len_ = std::min<std::uint64_t>(config_.chunk_rounds, remaining);
  // Each cursor is pure per edge, so chunk generation parallelizes with
  // results landing in per-edge slots — identical at every pool size.
  exec::parallel_for(pool(), cursors_.size(), [&](std::size_t e) {
    chunk_[e].resize(static_cast<std::size_t>(chunk_len_));
    cursors_[e].next(std::span<float>(chunk_[e]));
  });
  DriverMetrics::instance().refills.add();
}

sim::SimulationMetrics ReplayDriver::metrics() const {
  sim::SimulationMetrics out = metrics_;
  if (out.te_rounds > 0)
    out.availability /= static_cast<double>(out.te_rounds);
  return out;
}

core::DynamicCapacityController::RoundReport ReplayDriver::step() {
  RWC_EXPECTS(!done());
  auto& driver_metrics = DriverMetrics::instance();
  if (round_ >= chunk_base_round_ + chunk_len_) refill_chunk();

  const std::size_t edges = topology_.edge_count();
  const util::Seconds now =
      static_cast<double>(round_) * config_.te_interval;
  const double tick_hours = config_.te_interval / util::kHour;

  const te::TrafficMatrix demands =
      config_.diurnal
          ? sim::scale_matrix(base_demands_, sim::diurnal_factor(now))
          : base_demands_;
  metrics_.offered_gbps_hours += te::total_demand(demands).value * tick_hours;
  ++metrics_.te_rounds;

  const auto slot = static_cast<std::size_t>(round_ - chunk_base_round_);
  std::vector<util::Db> snr(edges);
  for (std::size_t e = 0; e < edges; ++e)
    snr[e] = util::Db{static_cast<double>(chunk_[e][slot])};

  auto report = controller_.run_round(snr, demands);
  const double routed = report.total_routed.value;
  metrics_.upgrades += report.plan.upgrades.size();

  // Analytic reconfiguration account — WanSimulator's dynamic-policy path
  // verbatim (its reconfig-complete events are no-ops, so no event queue is
  // needed): each change takes the link out for a sampled duration and the
  // traffic newly assigned to it is lost for the overlap with the round.
  double lost = 0.0;
  auto account_change = [&](graph::EdgeId edge) {
    const util::Seconds downtime =
        latency_.sample_downtime(config_.procedure, latency_rng_);
    metrics_.reconfig_downtime_hours += downtime / util::kHour;
    const double load =
        report.plan.physical_assignment
            .edge_load_gbps[static_cast<std::size_t>(edge.value)];
    lost += load * std::min(downtime, config_.te_interval) / util::kHour;
  };
  for (const auto& restoration : report.restorations) {
    ++metrics_.restorations;
    account_change(restoration.edge);
  }
  for (const auto& flap : report.reductions) {
    if (flap.to.value > 0.0) {
      ++metrics_.link_flaps;
      account_change(flap.edge);
    } else {
      ++metrics_.link_failures;
    }
  }
  for (const auto& change : report.plan.upgrades)
    account_change(change.edge);

  std::size_t links_up = 0;
  for (graph::EdgeId edge : topology_.edge_ids())
    if (controller_.configured_capacity(edge).value > 0.0) ++links_up;

  // Honest delivered account in estimated mode: TE routed the ESTIMATED
  // matrix, but only traffic actually offered can be delivered — each OD
  // is capped at its TRUE volume (docs/DEMAND.md). The signature chain
  // below keeps mixing total_routed (the controller's own output), so the
  // accounting policy never perturbs round-equivalence checks.
  double delivered = routed;
  if (controller_.demand_pipeline() != nullptr) {
    delivered = 0.0;
    const auto& routings = report.plan.physical_assignment.routings;
    for (std::size_t j = 0; j < routings.size(); ++j) {
      const double truth = j < demands.size() ? demands[j].volume.value
                                              : routings[j].routed.value;
      delivered += std::min(routings[j].routed.value, truth);
    }
  }
  metrics_.delivered_gbps_hours +=
      std::max(0.0, delivered * tick_hours - lost);
  metrics_.availability +=
      static_cast<double>(links_up) / static_cast<double>(edges);

  // Fold this round's signature content (the prop::RoundSignature fields)
  // into the chain: bit patterns, not rounded values, so the chain agrees
  // exactly when the rounds agree exactly.
  std::uint64_t chain = mix64(signature_chain_, round_);
  chain = mix64(chain, report.plan.upgrades.size());
  for (const auto& change : report.plan.upgrades) {
    chain = mix64(chain, static_cast<std::uint32_t>(change.edge.value));
    chain = mix_double(chain, change.to.value);
  }
  chain = mix_double(chain, routed);
  chain = mix_double(chain, report.total_penalty);
  chain = mix64(chain, report.reductions.size());
  chain = mix64(chain, report.restorations.size());
  chain = mix64(chain, report.transition_valid ? 1 : 0);
  signature_chain_ = chain;

  // Observation hook (rwc::fleet aggregation): round state is final here,
  // round_ still names the round just executed.
  if (observer_) observer_(round_, snr, report);

  ++round_;
  driver_metrics.rounds.add();

  if (store_ != nullptr && config_.checkpoint_every > 0 &&
      round_ % config_.checkpoint_every == 0) {
    const obs::StopWatch watch;
    (void)store_->write(checkpoint());
    driver_metrics.write_seconds.observe(watch.seconds());
  }
  return report;
}

sim::SimulationMetrics ReplayDriver::run() {
  while (!done()) step();
  return metrics();
}

std::uint64_t ReplayDriver::run(std::uint64_t max_rounds) {
  std::uint64_t ran = 0;
  while (!done() && ran < max_rounds) {
    step();
    ++ran;
  }
  return ran;
}

Checkpoint ReplayDriver::checkpoint() const {
  Checkpoint out;
  out.config_fingerprint = config_fingerprint_;
  out.round = round_;
  out.chunk_base_round = chunk_base_round_;
  out.signature_chain = signature_chain_;
  out.metrics = metrics_;  // availability stays the running sum
  out.controller = controller_.save_state();
  out.cursors = chunk_base_states_;
  out.latency_rng = latency_rng_.state();
  if (const demand::DemandPipeline* pipeline = controller_.demand_pipeline()) {
    out.demand_present = true;
    out.demand_state = pipeline->save_state();
  }
  if (config_.checkpoint_caches) {
    out.caches_present = true;
    if (const auto* mcf = dynamic_cast<const te::McfTe*>(&engine_)) {
      for (const auto& recording : mcf->warm_cache().snapshot())
        out.warm_recordings.push_back(*recording);
    }
    if (const auto* swan = dynamic_cast<const te::SwanTe*>(&engine_))
      out.path_entries = swan->path_cache().snapshot();
  }
  if (config_.checkpoint_obs) {
    out.obs_present = true;
    auto& registry = obs::Registry::global();
    for (const auto& [name, counter] : registry.counters())
      out.obs_counters.emplace_back(name, counter->value());
    for (const auto& [name, gauge] : registry.gauges())
      out.obs_gauges.emplace_back(name, gauge->value());
  }
  return out;
}

Error ReplayDriver::restore(const Checkpoint& checkpoint) {
  auto& driver_metrics = DriverMetrics::instance();
  const obs::StopWatch watch;
  if (checkpoint.config_fingerprint != config_fingerprint_) {
    driver_metrics.rejected.add();
    return Error::kConfigMismatch;
  }
  // Size validation up front so a failed restore leaves the driver
  // untouched (decode CRCs make a mismatch here near-impossible, but the
  // contract is typed rejection, never a throw from half-applied state).
  const std::size_t edges = topology_.edge_count();
  const auto& state = checkpoint.controller;
  const bool sizes_ok =
      checkpoint.cursors.size() == edges &&
      state.configured.size() == edges &&
      state.last_traffic.size() == edges && state.last_snr.size() == edges &&
      state.hysteresis.has_value() == config_.hysteresis.has_value() &&
      (!state.hysteresis.has_value() ||
       (state.hysteresis->candidate.size() == edges &&
        state.hysteresis->streak.size() == edges)) &&
      checkpoint.round >= checkpoint.chunk_base_round &&
      checkpoint.round <= config_.rounds;
  if (!sizes_ok) {
    driver_metrics.rejected.add();
    return Error::kMalformed;
  }
  bool cursors_ok = true;
  for (const auto& cursor : checkpoint.cursors)
    cursors_ok = cursors_ok && cursor.position == checkpoint.chunk_base_round;
  if (!cursors_ok) {
    driver_metrics.rejected.add();
    return Error::kMalformed;
  }
  // The demand section changes results, so when this driver estimates it is
  // MANDATORY: a checkpoint without it cannot reproduce the run (the round
  // index drives the counter noise stream, the EWMA anchors damped solves).
  demand::DemandPipeline* pipeline = controller_.demand_pipeline();
  if (pipeline != nullptr) {
    if (!checkpoint.demand_present) {
      driver_metrics.rejected.add();
      return Error::kMissingSection;
    }
    const demand::DemandPipeline::State& demand_state = checkpoint.demand_state;
    const bool demand_ok =
        (demand_state.last_observed.empty() ||
         demand_state.last_observed.size() == edges) &&
        (demand_state.capacity_peak_gbps.empty() ||
         demand_state.capacity_peak_gbps.size() == edges);
    if (!demand_ok) {
      driver_metrics.rejected.add();
      return Error::kMalformed;
    }
  }

  // Optional obs rewind first, so the restore's own bookkeeping lands on
  // top of the restored values.
  if (config_.checkpoint_obs && checkpoint.obs_present) {
    auto& registry = obs::Registry::global();
    registry.reset_values();
    for (const auto& [name, value] : checkpoint.obs_counters)
      registry.counter(name).add(value);
    for (const auto& [name, value] : checkpoint.obs_gauges)
      registry.gauge(name).set(value);
  }

  controller_.restore_state(state);
  if (pipeline != nullptr) pipeline->restore_state(checkpoint.demand_state);
  latency_rng_ = util::Rng::from_state(checkpoint.latency_rng);
  round_ = checkpoint.round;
  chunk_base_round_ = checkpoint.chunk_base_round;
  signature_chain_ = checkpoint.signature_chain;
  metrics_ = checkpoint.metrics;
  for (std::size_t e = 0; e < edges; ++e)
    cursors_[e].restore(checkpoint.cursors[e]);
  // Regenerate the in-flight chunk from the restored cursor states; the
  // generation is pure, so the chunk is bit-identical to the one the
  // checkpointed run was consuming.
  fill_chunk_from_cursors();

  // Engine caches: restore the persisted contents, or reset to the
  // explicit cold state. Either way results are unchanged — caches only
  // affect timing (docs/CONCURRENCY.md).
  if (const auto* mcf = dynamic_cast<const te::McfTe*>(&engine_)) {
    std::vector<std::shared_ptr<const flow::MinCostWarmStart>> recordings;
    recordings.reserve(checkpoint.warm_recordings.size());
    for (const auto& recording : checkpoint.warm_recordings)
      recordings.push_back(
          std::make_shared<const flow::MinCostWarmStart>(recording));
    mcf->warm_cache().restore(std::move(recordings));
  }
  if (const auto* swan = dynamic_cast<const te::SwanTe*>(&engine_))
    swan->path_cache().restore(checkpoint.path_entries);

  driver_metrics.restores.add();
  driver_metrics.restore_seconds.observe(watch.seconds());
  return Error::kNone;
}

Error ReplayDriver::restore_latest(const CheckpointStore& store) {
  Checkpoint checkpoint;
  const Error error = store.load_latest(config_fingerprint_, checkpoint);
  if (error != Error::kNone) return error;
  return restore(checkpoint);
}

}  // namespace rwc::replay
