// Library identification for rwc_replay.
namespace rwc::replay {

/// Version string of the replay subsystem (matches the top-level project).
const char* version() { return "1.0.0"; }

}  // namespace rwc::replay
