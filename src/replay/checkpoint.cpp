#include "replay/checkpoint.hpp"

#include "replay/wire.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <fstream>
#include <system_error>

#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace rwc::replay {

namespace {

using wire::ByteReader;
using wire::ByteWriter;

constexpr std::array<char, 8> kMagic = {'R', 'W', 'C', 'K', 'P', 'T',
                                        '0', '1'};

/// Section ids of format version 1. Ids are stable forever; a removed
/// section's id is never reused.
enum class SectionId : std::uint32_t {
  kMeta = 1,
  kController = 2,
  kCursors = 3,
  kRng = 4,
  kWarmCache = 5,
  kPathCache = 6,
  kObs = 7,
  kServe = 8,
  kUpdate = 9,
  kDemand = 10,
  kDataplane = 11,
};

/// Handles into the global registry (docs/OBSERVABILITY.md: replay.*).
struct CheckpointMetrics {
  obs::Counter& writes;
  obs::Counter& bytes;
  obs::Counter& rejected;
  obs::Counter& fallbacks;

  static CheckpointMetrics& instance() {
    static auto& registry = obs::Registry::global();
    static CheckpointMetrics metrics{
        registry.counter("replay.checkpoint.writes"),
        registry.counter("replay.checkpoint.bytes"),
        registry.counter("replay.restore.rejected"),
        registry.counter("replay.restore.fallbacks"),
    };
    return metrics;
  }
};

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

void write_rng_state(ByteWriter& writer, const util::RngState& state) {
  for (std::uint64_t word : state.engine) writer.u64(word);
  writer.f64(state.cached_normal);
  writer.u8(state.has_cached_normal ? 1 : 0);
}

util::RngState read_rng_state(ByteReader& reader) {
  util::RngState state;
  for (std::uint64_t& word : state.engine) word = reader.u64();
  state.cached_normal = reader.f64();
  state.has_cached_normal = reader.u8() != 0;
  return state;
}

void write_path(ByteWriter& writer, const graph::Path& path) {
  writer.u64(path.edges.size());
  for (graph::EdgeId edge : path.edges) writer.i32(edge.value);
  writer.f64(path.weight);
}

graph::Path read_path(ByteReader& reader) {
  graph::Path path;
  const std::uint64_t edges = reader.u64();
  if (!reader.fits(edges)) return path;
  path.edges.reserve(edges);
  for (std::uint64_t i = 0; i < edges; ++i)
    path.edges.push_back(graph::EdgeId{reader.i32()});
  path.weight = reader.f64();
  return path;
}

std::vector<std::byte> encode_meta(const Checkpoint& checkpoint) {
  ByteWriter writer;
  writer.u64(checkpoint.config_fingerprint);
  writer.u64(checkpoint.round);
  writer.u64(checkpoint.chunk_base_round);
  writer.u64(checkpoint.signature_chain);
  const sim::SimulationMetrics& m = checkpoint.metrics;
  writer.f64(m.offered_gbps_hours);
  writer.f64(m.delivered_gbps_hours);
  writer.f64(m.availability);
  writer.u64(m.link_failures);
  writer.u64(m.link_flaps);
  writer.u64(m.upgrades);
  writer.u64(m.restorations);
  writer.u64(m.lock_failures);
  writer.f64(m.reconfig_downtime_hours);
  writer.u64(m.te_rounds);
  return writer.take();
}

bool decode_meta(std::span<const std::byte> payload, Checkpoint& out) {
  ByteReader reader(payload);
  out.config_fingerprint = reader.u64();
  out.round = reader.u64();
  out.chunk_base_round = reader.u64();
  out.signature_chain = reader.u64();
  sim::SimulationMetrics& m = out.metrics;
  m.offered_gbps_hours = reader.f64();
  m.delivered_gbps_hours = reader.f64();
  m.availability = reader.f64();
  m.link_failures = reader.u64();
  m.link_flaps = reader.u64();
  m.upgrades = reader.u64();
  m.restorations = reader.u64();
  m.lock_failures = reader.u64();
  m.reconfig_downtime_hours = reader.f64();
  m.te_rounds = reader.u64();
  return !reader.failed() && reader.exhausted();
}

void write_assignment(ByteWriter& writer, const te::FlowAssignment& a) {
  writer.u64(a.routings.size());
  for (const auto& routing : a.routings) {
    writer.i32(routing.demand.src.value);
    writer.i32(routing.demand.dst.value);
    writer.f64(routing.demand.volume.value);
    writer.i32(routing.demand.priority);
    writer.u64(routing.paths.size());
    for (const auto& [path, volume] : routing.paths) {
      write_path(writer, path);
      writer.f64(volume.value);
    }
    writer.f64(routing.routed.value);
  }
  writer.u64(a.edge_load_gbps.size());
  for (double load : a.edge_load_gbps) writer.f64(load);
  writer.f64(a.total_routed.value);
  writer.f64(a.total_cost);
}

te::FlowAssignment read_assignment(ByteReader& reader) {
  te::FlowAssignment a;
  const std::uint64_t routings = reader.u64();
  if (!reader.fits(routings)) return a;
  a.routings.reserve(routings);
  for (std::uint64_t r = 0; r < routings && !reader.failed(); ++r) {
    te::FlowAssignment::DemandRouting routing;
    routing.demand.src = graph::NodeId{reader.i32()};
    routing.demand.dst = graph::NodeId{reader.i32()};
    routing.demand.volume = util::Gbps{reader.f64()};
    routing.demand.priority = reader.i32();
    const std::uint64_t paths = reader.u64();
    if (!reader.fits(paths)) break;
    routing.paths.reserve(paths);
    for (std::uint64_t p = 0; p < paths && !reader.failed(); ++p) {
      graph::Path path = read_path(reader);
      const util::Gbps volume{reader.f64()};
      routing.paths.emplace_back(std::move(path), volume);
    }
    routing.routed = util::Gbps{reader.f64()};
    a.routings.push_back(std::move(routing));
  }
  const std::uint64_t loads = reader.u64();
  if (!reader.fits(loads)) return a;
  a.edge_load_gbps.reserve(loads);
  for (std::uint64_t i = 0; i < loads; ++i)
    a.edge_load_gbps.push_back(reader.f64());
  a.total_routed = util::Gbps{reader.f64()};
  a.total_cost = reader.f64();
  return a;
}

std::vector<std::byte> encode_controller(const Checkpoint& checkpoint) {
  ByteWriter writer;
  const auto& state = checkpoint.controller;
  writer.u64(state.configured.size());
  for (util::Gbps rate : state.configured) writer.f64(rate.value);
  writer.u8(state.hysteresis.has_value() ? 1 : 0);
  if (state.hysteresis.has_value()) {
    writer.u64(state.hysteresis->candidate.size());
    for (util::Gbps rate : state.hysteresis->candidate) writer.f64(rate.value);
    for (int streak : state.hysteresis->streak) writer.i32(streak);
  }
  write_assignment(writer, state.last_assignment);
  writer.u64(state.last_traffic.size());
  for (double traffic : state.last_traffic) writer.f64(traffic);
  writer.u64(state.last_snr.size());
  for (util::Db snr : state.last_snr) writer.f64(snr.value);
  return writer.take();
}

bool decode_controller(std::span<const std::byte> payload, Checkpoint& out) {
  ByteReader reader(payload);
  auto& state = out.controller;
  const std::uint64_t configured = reader.u64();
  if (!reader.fits(configured)) return false;
  state.configured.reserve(configured);
  for (std::uint64_t i = 0; i < configured; ++i)
    state.configured.push_back(util::Gbps{reader.f64()});
  if (reader.u8() != 0) {
    core::HysteresisFilter::State hysteresis;
    const std::uint64_t links = reader.u64();
    if (!reader.fits(links)) return false;
    hysteresis.candidate.reserve(links);
    for (std::uint64_t i = 0; i < links; ++i)
      hysteresis.candidate.push_back(util::Gbps{reader.f64()});
    hysteresis.streak.reserve(links);
    for (std::uint64_t i = 0; i < links; ++i)
      hysteresis.streak.push_back(reader.i32());
    state.hysteresis = std::move(hysteresis);
  }
  state.last_assignment = read_assignment(reader);
  const std::uint64_t traffic = reader.u64();
  if (!reader.fits(traffic)) return false;
  state.last_traffic.reserve(traffic);
  for (std::uint64_t i = 0; i < traffic; ++i)
    state.last_traffic.push_back(reader.f64());
  const std::uint64_t snr = reader.u64();
  if (!reader.fits(snr)) return false;
  state.last_snr.reserve(snr);
  for (std::uint64_t i = 0; i < snr; ++i)
    state.last_snr.push_back(util::Db{reader.f64()});
  return !reader.failed() && reader.exhausted();
}

std::vector<std::byte> encode_cursors(const Checkpoint& checkpoint) {
  ByteWriter writer;
  writer.u64(checkpoint.cursors.size());
  for (const auto& cursor : checkpoint.cursors) {
    writer.u64(cursor.position);
    write_rng_state(writer, cursor.rng);
  }
  return writer.take();
}

bool decode_cursors(std::span<const std::byte> payload, Checkpoint& out) {
  ByteReader reader(payload);
  const std::uint64_t count = reader.u64();
  if (!reader.fits(count)) return false;
  out.cursors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    telemetry::SnrTraceCursor::State state;
    state.position = reader.u64();
    state.rng = read_rng_state(reader);
    out.cursors.push_back(state);
  }
  return !reader.failed() && reader.exhausted();
}

std::vector<std::byte> encode_rng(const Checkpoint& checkpoint) {
  ByteWriter writer;
  write_rng_state(writer, checkpoint.latency_rng);
  return writer.take();
}

bool decode_rng(std::span<const std::byte> payload, Checkpoint& out) {
  ByteReader reader(payload);
  out.latency_rng = read_rng_state(reader);
  return !reader.failed() && reader.exhausted();
}

std::vector<std::byte> encode_warm_cache(const Checkpoint& checkpoint) {
  ByteWriter writer;
  writer.u64(checkpoint.warm_recordings.size());
  for (const auto& recording : checkpoint.warm_recordings) {
    writer.u64(recording.fingerprint);
    writer.u64(recording.augmentations.size());
    for (const auto& aug : recording.augmentations) {
      writer.u64(aug.arcs.size());
      for (int arc : aug.arcs) writer.i32(arc);
      writer.f64(aug.bottleneck);
      writer.f64(aug.path_cost);
    }
    writer.u8(recording.exhausted ? 1 : 0);
    writer.u64(recording.final_potential.size());
    for (double potential : recording.final_potential) writer.f64(potential);
  }
  return writer.take();
}

bool decode_warm_cache(std::span<const std::byte> payload, Checkpoint& out) {
  ByteReader reader(payload);
  const std::uint64_t count = reader.u64();
  if (!reader.fits(count)) return false;
  out.warm_recordings.reserve(count);
  for (std::uint64_t r = 0; r < count && !reader.failed(); ++r) {
    flow::MinCostWarmStart recording;
    recording.fingerprint = reader.u64();
    const std::uint64_t augmentations = reader.u64();
    if (!reader.fits(augmentations)) return false;
    recording.augmentations.reserve(augmentations);
    for (std::uint64_t a = 0; a < augmentations && !reader.failed(); ++a) {
      flow::MinCostWarmStart::Augmentation aug;
      const std::uint64_t arcs = reader.u64();
      if (!reader.fits(arcs)) return false;
      aug.arcs.reserve(arcs);
      for (std::uint64_t i = 0; i < arcs; ++i) aug.arcs.push_back(reader.i32());
      aug.bottleneck = reader.f64();
      aug.path_cost = reader.f64();
      recording.augmentations.push_back(std::move(aug));
    }
    recording.exhausted = reader.u8() != 0;
    const std::uint64_t potentials = reader.u64();
    if (!reader.fits(potentials)) return false;
    recording.final_potential.reserve(potentials);
    for (std::uint64_t i = 0; i < potentials; ++i)
      recording.final_potential.push_back(reader.f64());
    out.warm_recordings.push_back(std::move(recording));
  }
  return !reader.failed() && reader.exhausted();
}

std::vector<std::byte> encode_path_cache(const Checkpoint& checkpoint) {
  ByteWriter writer;
  writer.u64(checkpoint.path_entries.size());
  for (const auto& entry : checkpoint.path_entries) {
    writer.u64(entry.fingerprint);
    writer.i32(entry.source);
    writer.i32(entry.target);
    writer.u64(entry.k);
    writer.u64(entry.paths.size());
    for (const graph::Path& path : entry.paths) write_path(writer, path);
  }
  return writer.take();
}

bool decode_path_cache(std::span<const std::byte> payload, Checkpoint& out) {
  ByteReader reader(payload);
  const std::uint64_t count = reader.u64();
  if (!reader.fits(count)) return false;
  out.path_entries.reserve(count);
  for (std::uint64_t e = 0; e < count && !reader.failed(); ++e) {
    graph::PathCache::ExportedEntry entry;
    entry.fingerprint = reader.u64();
    entry.source = reader.i32();
    entry.target = reader.i32();
    entry.k = reader.u64();
    const std::uint64_t paths = reader.u64();
    if (!reader.fits(paths)) return false;
    entry.paths.reserve(paths);
    for (std::uint64_t p = 0; p < paths && !reader.failed(); ++p)
      entry.paths.push_back(read_path(reader));
    out.path_entries.push_back(std::move(entry));
  }
  return !reader.failed() && reader.exhausted();
}

std::vector<std::byte> encode_obs(const Checkpoint& checkpoint) {
  ByteWriter writer;
  writer.u64(checkpoint.obs_counters.size());
  for (const auto& [name, value] : checkpoint.obs_counters) {
    writer.str(name);
    writer.u64(value);
  }
  writer.u64(checkpoint.obs_gauges.size());
  for (const auto& [name, value] : checkpoint.obs_gauges) {
    writer.str(name);
    writer.f64(value);
  }
  return writer.take();
}

bool decode_obs(std::span<const std::byte> payload, Checkpoint& out) {
  ByteReader reader(payload);
  const std::uint64_t counters = reader.u64();
  if (!reader.fits(counters)) return false;
  out.obs_counters.reserve(counters);
  for (std::uint64_t i = 0; i < counters && !reader.failed(); ++i) {
    std::string name = reader.str();
    const std::uint64_t value = reader.u64();
    out.obs_counters.emplace_back(std::move(name), value);
  }
  const std::uint64_t gauges = reader.u64();
  if (!reader.fits(gauges)) return false;
  out.obs_gauges.reserve(gauges);
  for (std::uint64_t i = 0; i < gauges && !reader.failed(); ++i) {
    std::string name = reader.str();
    const double value = reader.f64();
    out.obs_gauges.emplace_back(std::move(name), value);
  }
  return !reader.failed() && reader.exhausted();
}

std::vector<std::byte> encode_demand(const Checkpoint& checkpoint) {
  ByteWriter writer;
  const demand::DemandPipeline::State& state = checkpoint.demand_state;
  writer.u64(state.round);
  writer.u8(state.ewma_warm ? 1 : 0);
  writer.u64(state.ewma.size());
  for (double value : state.ewma) writer.f64(value);
  writer.u64(state.last_observed.size());
  for (const demand::CounterSample& sample : state.last_observed) {
    writer.f64(sample.tx_bytes);
    writer.f64(sample.tx_packets);
    writer.f64(sample.lost_packets);
    writer.u8(sample.missing ? 1 : 0);
  }
  writer.u64(state.capacity_peak_gbps.size());
  for (double peak : state.capacity_peak_gbps) writer.f64(peak);
  return writer.take();
}

bool decode_demand(std::span<const std::byte> payload, Checkpoint& out) {
  ByteReader reader(payload);
  demand::DemandPipeline::State& state = out.demand_state;
  state.round = reader.u64();
  state.ewma_warm = reader.u8() != 0;
  const std::uint64_t ewma = reader.u64();
  if (!reader.fits(ewma)) return false;
  state.ewma.reserve(ewma);
  for (std::uint64_t i = 0; i < ewma; ++i) state.ewma.push_back(reader.f64());
  const std::uint64_t samples = reader.u64();
  if (!reader.fits(samples)) return false;
  state.last_observed.reserve(samples);
  for (std::uint64_t i = 0; i < samples && !reader.failed(); ++i) {
    demand::CounterSample sample;
    sample.tx_bytes = reader.f64();
    sample.tx_packets = reader.f64();
    sample.lost_packets = reader.f64();
    sample.missing = reader.u8() != 0;
    state.last_observed.push_back(sample);
  }
  const std::uint64_t peaks = reader.u64();
  if (!reader.fits(peaks)) return false;
  state.capacity_peak_gbps.reserve(peaks);
  for (std::uint64_t i = 0; i < peaks; ++i)
    state.capacity_peak_gbps.push_back(reader.f64());
  return !reader.failed() && reader.exhausted();
}

void append_section(ByteWriter& writer, SectionId id,
                    const std::vector<std::byte>& payload) {
  writer.u32(static_cast<std::uint32_t>(id));
  writer.u64(payload.size());
  writer.u32(crc32(payload));
  for (std::byte b : payload)
    writer.u8(std::to_integer<std::uint8_t>(b));
}

}  // namespace

const char* to_string(Error error) {
  switch (error) {
    case Error::kNone:
      return "none";
    case Error::kIo:
      return "io";
    case Error::kNotFound:
      return "not-found";
    case Error::kBadMagic:
      return "bad-magic";
    case Error::kBadVersion:
      return "bad-version";
    case Error::kTruncated:
      return "truncated";
    case Error::kCrcMismatch:
      return "crc-mismatch";
    case Error::kMalformed:
      return "malformed";
    case Error::kMissingSection:
      return "missing-section";
    case Error::kConfigMismatch:
      return "config-mismatch";
  }
  return "unknown";
}

std::uint32_t crc32(std::span<const std::byte> bytes) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::byte b : bytes)
    crc = (crc >> 8) ^ table[(crc ^ std::to_integer<std::uint32_t>(b)) & 0xFFu];
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::byte> encode(const Checkpoint& checkpoint) {
  std::vector<std::pair<SectionId, std::vector<std::byte>>> sections;
  sections.emplace_back(SectionId::kMeta, encode_meta(checkpoint));
  sections.emplace_back(SectionId::kController, encode_controller(checkpoint));
  sections.emplace_back(SectionId::kCursors, encode_cursors(checkpoint));
  sections.emplace_back(SectionId::kRng, encode_rng(checkpoint));
  if (checkpoint.caches_present) {
    sections.emplace_back(SectionId::kWarmCache, encode_warm_cache(checkpoint));
    sections.emplace_back(SectionId::kPathCache, encode_path_cache(checkpoint));
  }
  if (checkpoint.obs_present)
    sections.emplace_back(SectionId::kObs, encode_obs(checkpoint));
  if (checkpoint.serve_present)
    sections.emplace_back(SectionId::kServe, checkpoint.serve_payload);
  if (checkpoint.update_present)
    sections.emplace_back(SectionId::kUpdate, checkpoint.update_payload);
  if (checkpoint.demand_present)
    sections.emplace_back(SectionId::kDemand, encode_demand(checkpoint));
  if (checkpoint.dataplane_present)
    sections.emplace_back(SectionId::kDataplane, checkpoint.dataplane_payload);

  ByteWriter writer;
  for (char c : kMagic) writer.u8(static_cast<std::uint8_t>(c));
  writer.u32(kFormatVersion);
  writer.u32(static_cast<std::uint32_t>(sections.size()));
  for (const auto& [id, payload] : sections)
    append_section(writer, id, payload);
  return writer.take();
}

Error decode(std::span<const std::byte> bytes, Checkpoint& out) {
  out = Checkpoint{};
  if (bytes.size() < kMagic.size()) return Error::kTruncated;
  for (std::size_t i = 0; i < kMagic.size(); ++i)
    if (std::to_integer<char>(bytes[i]) != kMagic[i]) return Error::kBadMagic;

  ByteReader header(bytes.subspan(kMagic.size()));
  const std::uint32_t version = header.u32();
  if (header.failed()) return Error::kTruncated;
  if (version != kFormatVersion) return Error::kBadVersion;
  const std::uint32_t section_count = header.u32();
  if (header.failed()) return Error::kTruncated;

  std::size_t offset = kMagic.size() + 8;  // version + count
  bool saw_meta = false, saw_controller = false, saw_cursors = false,
       saw_rng = false;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    if (offset + 16 > bytes.size()) return Error::kTruncated;
    ByteReader section_header(bytes.subspan(offset, 16));
    const std::uint32_t id = section_header.u32();
    const std::uint64_t length = section_header.u64();
    const std::uint32_t expected_crc = section_header.u32();
    offset += 16;
    if (length > bytes.size() - offset) return Error::kTruncated;
    const std::span<const std::byte> payload = bytes.subspan(offset, length);
    offset += length;
    if (crc32(payload) != expected_crc) return Error::kCrcMismatch;

    bool ok = true;
    switch (static_cast<SectionId>(id)) {
      case SectionId::kMeta:
        ok = decode_meta(payload, out);
        saw_meta = true;
        break;
      case SectionId::kController:
        ok = decode_controller(payload, out);
        saw_controller = true;
        break;
      case SectionId::kCursors:
        ok = decode_cursors(payload, out);
        saw_cursors = true;
        break;
      case SectionId::kRng:
        ok = decode_rng(payload, out);
        saw_rng = true;
        break;
      case SectionId::kWarmCache:
        ok = decode_warm_cache(payload, out);
        out.caches_present = true;
        break;
      case SectionId::kPathCache:
        ok = decode_path_cache(payload, out);
        out.caches_present = true;
        break;
      case SectionId::kObs:
        ok = decode_obs(payload, out);
        out.obs_present = true;
        break;
      case SectionId::kServe:
        // Opaque subsystem payload: the serve state machine owns the inner
        // framing (serve/service.cpp); the envelope only guarantees CRC
        // integrity and length.
        out.serve_payload.assign(payload.begin(), payload.end());
        out.serve_present = true;
        break;
      case SectionId::kUpdate:
        // Opaque like kServe: update/executor.cpp owns the inner framing.
        out.update_payload.assign(payload.begin(), payload.end());
        out.update_present = true;
        break;
      case SectionId::kDemand:
        ok = decode_demand(payload, out);
        out.demand_present = true;
        break;
      case SectionId::kDataplane:
        // Opaque like kServe: dataplane/dataplane.cpp owns the inner
        // framing (DataplaneSim::save_state).
        out.dataplane_payload.assign(payload.begin(), payload.end());
        out.dataplane_present = true;
        break;
      default:
        // Unknown id within a known version: skip (forward compatibility).
        break;
    }
    if (!ok) return Error::kMalformed;
  }
  if (offset != bytes.size()) return Error::kMalformed;
  if (!saw_meta || !saw_controller || !saw_cursors || !saw_rng)
    return Error::kMissingSection;
  // Internal consistency the framing cannot express.
  if (out.round < out.chunk_base_round) return Error::kMalformed;
  if (out.controller.hysteresis.has_value() &&
      out.controller.hysteresis->candidate.size() !=
          out.controller.hysteresis->streak.size())
    return Error::kMalformed;
  return Error::kNone;
}

Error write_file(const std::filesystem::path& path,
                 const Checkpoint& checkpoint) {
  const std::vector<std::byte> bytes = encode(checkpoint);
  // Temp-then-rename so a crash mid-write never leaves a half checkpoint
  // under the final name (the decoder would reject one anyway, but the
  // store should not have to skip it).
  std::filesystem::path temp = path;
  temp += ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return Error::kIo;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return Error::kIo;
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) return Error::kIo;
  auto& metrics = CheckpointMetrics::instance();
  metrics.writes.add();
  metrics.bytes.add(bytes.size());
  return Error::kNone;
}

Error read_file(const std::filesystem::path& path, Checkpoint& out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Error::kIo;
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) return Error::kIo;
  }

  // Fault injection (docs/FAULTS.md, site replay.restore): corrupt the raw
  // bytes after the read so the decoder's rejection paths are exercised
  // end to end, exactly as a torn write or bit rot would.
  if (const fault::Action action = fault::next("replay.restore")) {
    if (action.kind == fault::Kind::kDrop && !bytes.empty()) {
      std::size_t drop = action.magnitude > 0.0
                             ? static_cast<std::size_t>(action.magnitude)
                             : bytes.size() / 2;
      drop = std::min(drop, bytes.size());
      bytes.resize(bytes.size() - drop);
    } else if (action.kind == fault::Kind::kGarbage && !bytes.empty()) {
      const std::size_t index =
          static_cast<std::size_t>(action.magnitude) % bytes.size();
      bytes[index] ^= std::byte{0xA5};
    }
  }
  return decode(bytes, out);
}

CheckpointStore::CheckpointStore(std::filesystem::path directory,
                                 std::size_t keep)
    : directory_(std::move(directory)), keep_(keep == 0 ? 1 : keep) {
  std::filesystem::create_directories(directory_);
}

namespace {

std::filesystem::path file_for_round(const std::filesystem::path& directory,
                                     std::uint64_t round) {
  // Zero-padded so lexicographic file order == round order.
  std::string name = std::to_string(round);
  name.insert(0, name.size() < 12 ? 12 - name.size() : 0, '0');
  return directory / ("ckpt-" + name + ".bin");
}

}  // namespace

Error CheckpointStore::write(const Checkpoint& checkpoint) {
  const Error error =
      write_file(file_for_round(directory_, checkpoint.round), checkpoint);
  if (error != Error::kNone) return error;
  std::vector<std::filesystem::path> existing = files();
  while (existing.size() > keep_) {
    std::error_code ec;
    std::filesystem::remove(existing.front(), ec);
    existing.erase(existing.begin());
  }
  return Error::kNone;
}

Error CheckpointStore::load_latest(std::uint64_t expected_fingerprint,
                                   Checkpoint& out) const {
  const std::vector<std::filesystem::path> candidates = files();
  if (candidates.empty()) return Error::kNotFound;
  auto& metrics = CheckpointMetrics::instance();
  Error newest_error = Error::kNotFound;
  bool first = true;
  // Newest first; every rejected file is one deterministic fallback step.
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    Error error = read_file(*it, out);
    if (error == Error::kNone && expected_fingerprint != 0 &&
        out.config_fingerprint != expected_fingerprint)
      error = Error::kConfigMismatch;
    if (error == Error::kNone) return Error::kNone;
    metrics.rejected.add();
    metrics.fallbacks.add();
    if (first) newest_error = error;
    first = false;
  }
  return newest_error;
}

std::vector<std::filesystem::path> CheckpointStore::files() const {
  std::vector<std::filesystem::path> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.starts_with("ckpt-") && name.ends_with(".bin"))
      out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rwc::replay
