#include "fleet/study.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "optical/modulation.hpp"

namespace rwc::fleet {

double DeploymentStudy::fraction_at_or_above(double rate_gbps) const {
  for (const CdfPoint& point : capability_cdf)
    if (point.rate_gbps >= rate_gbps - 1e-9) return point.fraction;
  return 0.0;
}

DeploymentStudy build_study(const FleetResult& fleet) {
  DeploymentStudy study;
  study.instances = fleet.instances.size();
  study.total_rounds = fleet.total_rounds;
  study.incremental_hits = fleet.incremental_hits;
  study.incremental_hit_rate = fleet.incremental_hit_rate();
  study.partial_rounds = fleet.partial_rounds;
  study.partial_hit_rate = fleet.partial_hit_rate();
  study.failure_events = fleet.failure_events;
  study.crawl_retained_events = fleet.crawl_retained_events;
  study.crawl_retention_fraction = fleet.crawl_retention_fraction();

  const optical::ModulationTable table = optical::ModulationTable::standard();
  study.capability_cdf.reserve(table.formats().size());
  for (const optical::ModulationFormat& format : table.formats())
    study.capability_cdf.push_back(
        DeploymentStudy::CdfPoint{format.capacity.value, 0, 0.0});

  double offered = 0.0;
  double delivered = 0.0;
  double availability_sum = 0.0;
  for (const InstanceResult& instance : fleet.instances) {
    offered += instance.metrics.offered_gbps_hours;
    delivered += instance.metrics.delivered_gbps_hours;
    availability_sum += instance.metrics.availability;
    for (std::size_t e = 0; e < instance.link_capability_gbps.size(); ++e) {
      const double capability = instance.link_capability_gbps[e];
      const double nominal = instance.link_nominal_gbps[e];
      ++study.links;
      study.total_gain_gbps += std::max(0.0, capability - nominal);
      for (DeploymentStudy::CdfPoint& point : study.capability_cdf)
        if (capability >= point.rate_gbps - 1e-9) ++point.links_at_or_above;
    }
  }
  if (study.links > 0) {
    study.mean_gain_gbps =
        study.total_gain_gbps / static_cast<double>(study.links);
    for (DeploymentStudy::CdfPoint& point : study.capability_cdf)
      point.fraction = static_cast<double>(point.links_at_or_above) /
                       static_cast<double>(study.links);
  }
  if (study.instances > 0)
    study.availability =
        availability_sum / static_cast<double>(study.instances);
  if (offered > 0.0) study.delivered_fraction = delivered / offered;
  return study;
}

std::string to_json(const DeploymentStudy& study) {
  std::ostringstream out;
  out.precision(17);
  out << "{\n";
  out << "  \"instances\": " << study.instances << ",\n";
  out << "  \"links\": " << study.links << ",\n";
  out << "  \"capability_cdf\": [";
  for (std::size_t i = 0; i < study.capability_cdf.size(); ++i) {
    const DeploymentStudy::CdfPoint& point = study.capability_cdf[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"rate_gbps\": " << point.rate_gbps
        << ", \"links_at_or_above\": " << point.links_at_or_above
        << ", \"fraction\": " << point.fraction << "}";
  }
  out << "\n  ],\n";
  out << "  \"total_gain_gbps\": " << study.total_gain_gbps << ",\n";
  out << "  \"mean_gain_gbps\": " << study.mean_gain_gbps << ",\n";
  out << "  \"failure_events\": " << study.failure_events << ",\n";
  out << "  \"crawl_retained_events\": " << study.crawl_retained_events
      << ",\n";
  out << "  \"crawl_retention_fraction\": " << study.crawl_retention_fraction
      << ",\n";
  out << "  \"availability\": " << study.availability << ",\n";
  out << "  \"delivered_fraction\": " << study.delivered_fraction << ",\n";
  out << "  \"total_rounds\": " << study.total_rounds << ",\n";
  out << "  \"incremental_hits\": " << study.incremental_hits << ",\n";
  out << "  \"incremental_hit_rate\": " << study.incremental_hit_rate << ",\n";
  out << "  \"partial_rounds\": " << study.partial_rounds << ",\n";
  out << "  \"partial_hit_rate\": " << study.partial_hit_rate << "\n";
  out << "}\n";
  return out.str();
}

}  // namespace rwc::fleet
