#include "fleet/dataplane_sweep.hpp"

#include <algorithm>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc::fleet {

namespace {

/// Same murmur3-finalizer mixer as fleet.cpp, so sweep chains compose
/// with the per-instance xcheck chains they fold.
std::uint64_t mix64(std::uint64_t hash, std::uint64_t value) {
  hash ^= value + 0x9e3779b97f4a7c15ull + (hash << 6) + (hash >> 2);
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  return hash;
}

struct Metrics {
  obs::Counter& instances;
  obs::Counter& failures;
  obs::Counter& capacity_violations;

  static Metrics& get() {
    static Metrics metrics{
        obs::Registry::global().counter("fleet.dataplane.instances"),
        obs::Registry::global().counter("fleet.dataplane.failures"),
        obs::Registry::global().counter(
            "fleet.dataplane.capacity_violations"),
    };
    return metrics;
  }
};

}  // namespace

DataplaneInstanceResult run_dataplane_instance(
    const DataplaneSweepConfig& config, std::size_t instance) {
  // The instance's oracle seed derives purely from (config.seed, id) —
  // neither shard assignment nor pool size can perturb its inputs.
  util::Rng rng = util::Rng::stream(config.seed, 900 + instance);
  dataplane::XcheckConfig xcheck = config.base;
  xcheck.seed = rng.next_u64();
  xcheck.engine = (instance % 2 == 0) ? dataplane::XcheckEngine::kMcf
                                      : dataplane::XcheckEngine::kSwan;
  xcheck.demand_aware = (instance / 2) % 2 == 1;
  xcheck.pool = config.pool;

  const dataplane::XcheckOutcome outcome = dataplane::run_xcheck(xcheck);
  DataplaneInstanceResult result;
  result.pass = outcome.pass;
  result.failure = outcome.failure;
  result.chain = outcome.chain;
  result.max_shortfall = outcome.max_shortfall;
  result.max_overshoot = outcome.max_overshoot;
  result.capacity_violations = outcome.capacity_violations;
  result.migrations = outcome.migrations;
  return result;
}

DataplaneSweepResult run_dataplane_sweep(const DataplaneSweepConfig& config) {
  RWC_CHECK_MSG(config.instances > 0,
                "run_dataplane_sweep: at least one instance");
  exec::ThreadPool& pool =
      config.pool != nullptr ? *config.pool : exec::ThreadPool::global();
  const std::size_t shards =
      std::clamp<std::size_t>(config.shards, 1, config.instances);

  DataplaneSweepResult result;
  result.instances.resize(config.instances);

  // Shard s owns the contiguous instance block [begin, end): shards run
  // concurrently, each runs its instances sequentially into id-indexed
  // slots. The nested xcheck shares the sweep pool (exec::parallel_for
  // re-entry runs inline on worker threads).
  const std::size_t base = config.instances / shards;
  const std::size_t extra = config.instances % shards;
  exec::parallel_for(pool, shards, [&](std::size_t shard) {
    const std::size_t begin = shard * base + std::min(shard, extra);
    const std::size_t end = begin + base + (shard < extra ? 1 : 0);
    for (std::size_t id = begin; id < end; ++id)
      result.instances[id] = run_dataplane_instance(config, id);
  });

  // Serial fold in instance-id order.
  std::uint64_t chain = 0x64617461706c616eull;  // "dataplan"
  for (const DataplaneInstanceResult& instance : result.instances) {
    chain = mix64(chain, instance.chain);
    if (!instance.pass) {
      if (result.first_failure.empty()) result.first_failure =
          instance.failure;
      ++result.failed_instances;
    }
    result.max_shortfall =
        std::max(result.max_shortfall, instance.max_shortfall);
    result.max_overshoot =
        std::max(result.max_overshoot, instance.max_overshoot);
    result.capacity_violations += instance.capacity_violations;
  }
  result.sweep_chain = chain;

  Metrics& metrics = Metrics::get();
  metrics.instances.add(config.instances);
  metrics.failures.add(result.failed_instances);
  metrics.capacity_violations.add(result.capacity_violations);
  return result;
}

}  // namespace rwc::fleet
