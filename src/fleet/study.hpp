// Deployment-study aggregation over a fleet run (the paper's §2 numbers).
//
// build_study() reduces a FleetResult into the distributions the paper
// reports: the per-link capability CDF over the modulation ladder (§2.1 —
// "what fraction of links could run above their provisioned rate, and how
// far"), the aggregate potential capacity gain (the "+145 Tbps" analog),
// and the availability story (§2.2 — what fraction of failure events
// retained crawl capacity). bench/fleet_study dumps it as JSON for
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"

namespace rwc::fleet {

struct DeploymentStudy {
  /// One point of the capability CDF: how many links (directed edges,
  /// fleet-wide) could sustain at least `rate_gbps` at some round.
  struct CdfPoint {
    double rate_gbps = 0.0;
    std::uint64_t links_at_or_above = 0;
    double fraction = 0.0;
  };

  std::uint64_t instances = 0;
  std::uint64_t links = 0;  ///< directed edges across the fleet
  /// Capability CDF at every ladder rate, ascending.
  std::vector<CdfPoint> capability_cdf;
  /// Sum over links of max(capability - nominal, 0): the fleet's potential
  /// capacity gain if every link ran at its best observed rate.
  double total_gain_gbps = 0.0;
  double mean_gain_gbps = 0.0;

  std::uint64_t failure_events = 0;
  std::uint64_t crawl_retained_events = 0;
  /// §2.2: fraction of failure events that kept >= 50 G feasible.
  double crawl_retention_fraction = 0.0;

  /// Mean over instances of the per-round link-up fraction.
  double availability = 0.0;
  /// Fleet-wide delivered / offered volume.
  double delivered_fraction = 0.0;

  std::uint64_t total_rounds = 0;
  std::uint64_t incremental_hits = 0;
  double incremental_hit_rate = 0.0;
  /// Rounds served by the solver partial tier (docs/SOLVERS.md) and the
  /// fraction of memo-miss rounds it covered.
  std::uint64_t partial_rounds = 0;
  double partial_hit_rate = 0.0;

  /// Fraction of links whose capability reached `rate_gbps` (nearest CDF
  /// point at or above); 0 when the ladder has no such rate.
  double fraction_at_or_above(double rate_gbps) const;
};

DeploymentStudy build_study(const FleetResult& fleet);

/// Compact single-object JSON rendering (bench/fleet_study --study-json).
std::string to_json(const DeploymentStudy& study);

}  // namespace rwc::fleet
