// Fleet-scale sharded deployment study (rwc::fleet).
//
// The paper's headline numbers are population-scale: +145 Tbps across
// >2000 links (§2.1) and availability gains because ≥25% of "failed" links
// still sustain crawl-mode capacity (§2.2). FleetEngine reproduces that
// kind of study in-process: it simulates many independent WAN instances —
// each a sampled Waxman topology with a gravity demand matrix and a
// calibrated SNR trace (rwc::telemetry) driven through the full
// ReplayDriver/DynamicCapacityController pipeline — partitioned into
// deterministic shards executed on exec::ThreadPool.
//
// Determinism contract (tests/test_fleet_differential.cpp,
// tests/prop/prop_fleet.cpp):
//   * Every instance derives its topology, demands and trace seed purely
//     from (config.seed, instance id) via util::Rng::stream, so instance i
//     computes the same result whatever shard runs it and whatever the
//     pool size — results are bit-identical across shard counts AND pool
//     sizes (docs/CONCURRENCY.md extends to the fleet level).
//   * Per-instance results land in id-indexed slots and the fleet chain
//     folds them in id order, so the merge is a serial reduction.
//   * The incremental re-solve hot path (FleetConfig::incremental) is
//     bit-identical to full re-solves: the fleet chain (a fold of every
//     round's signature content) is equal with the flag on or off.
//   * Fault plans armed around a fleet run must target parallel-keyed
//     sites only (core.snr by edge id, flow.mincost by network
//     fingerprint, cache.* by entry key): their keys derive from per-
//     instance inputs, so injections are independent of scheduling. Plans
//     matching serial (hit-counter) sites would see an interleaving-
//     dependent counter and void the determinism contract — docs/FLEET.md.
//
// Memory stays bounded per shard: a shard owns one live instance at a
// time (engine + driver + chunked SNR stream), so peak memory is
// O(shards * instance) rather than O(instances).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/hysteresis.hpp"
#include "demand/config.hpp"
#include "sim/simulator.hpp"
#include "telemetry/snr_model.hpp"
#include "util/env.hpp"
#include "util/units.hpp"

namespace rwc::exec {
class ThreadPool;
}

namespace rwc::fleet {

/// Which TE engine each instance constructs (engines are per-instance so
/// their caches never alias across instances).
enum class EngineKind { kMcf, kSwan };

struct FleetConfig {
  /// Independent WAN instances to simulate.
  std::size_t instances = 1000;
  /// Deterministic partition of instances into contiguous shards; the unit
  /// of parallel execution. Results are invariant to this value.
  std::size_t shards = 8;
  /// TE rounds per instance.
  std::uint64_t rounds = 96;
  std::uint64_t seed = 1;
  /// Sampled topology size range (inclusive), Waxman graphs.
  int min_nodes = 8;
  int max_nodes = 12;
  /// Gravity demand total as a fraction of the topology's total capacity.
  double demand_load = 0.5;
  EngineKind engine = EngineKind::kMcf;
  /// Controller incremental re-solve hot path (docs/FLEET.md). Changes
  /// timing and work counters only, never results.
  bool incremental = true;
  /// Solver partial tier (docs/SOLVERS.md): verified warm-start repair in
  /// the mincost engine and pivot-replay warm bases in the SWAN LPs.
  /// Bit-identical to cold solves by construction — changes timing and
  /// work counters only, never results or the fleet chain.
  /// RWC_PARTIAL_RESOLVE=0 flips the default off for bisection.
  bool partial = util::env_flag("RWC_PARTIAL_RESOLVE", true);
  /// Diurnal demand scaling. Off by default so stable-SNR rounds repeat
  /// their solve inputs exactly — the case the incremental path serves.
  bool diurnal = false;
  util::Db snr_margin{0.5};
  telemetry::SnrModelParams snr_model;
  /// Engaged by default: dampening capacity increases is what makes the
  /// common case common — without it, per-sample jitter flips some link's
  /// quantized rate almost every round and the incremental memo never
  /// hits. Mirrors the paper's §2.3 observation that short-horizon SNR
  /// movement should not change capacity decisions. Set to nullopt to
  /// study the undamped controller.
  std::optional<core::HysteresisParams> hysteresis = core::HysteresisParams{};
  /// SNR samples per streaming refill (bounds per-instance memory).
  std::uint64_t chunk_rounds = 64;
  /// When non-empty, each instance writes rotated checkpoints under
  /// <checkpoint_dir>/instance-<id>/ every `checkpoint_every` rounds
  /// (0 disables). Restoring an instance from its store and finishing the
  /// horizon reproduces its slot of the fleet bit-identically.
  std::string checkpoint_dir;
  std::uint64_t checkpoint_every = 0;
  /// Pool for shard execution (and, transitively, everything the driver
  /// parallelizes — nested use runs inline on worker threads); nullptr
  /// selects exec::ThreadPool::global().
  exec::ThreadPool* pool = nullptr;
  /// Demand source every instance's controller runs on (docs/DEMAND.md).
  /// kEstimated makes each instance infer its matrix from synthetic link
  /// counters; the per-instance counter stream derives from the instance's
  /// own trace seed, so results stay a pure function of
  /// (config, instance id) and the shard/pool invariance holds unchanged.
  demand::DemandConfig demand;
};

/// What one instance contributes to the study. Everything here is a pure
/// function of (config, instance id).
struct InstanceResult {
  /// ReplayDriver::signature_chain after the full horizon: folds every
  /// round's result signature, so two runs agree on every round iff their
  /// chains agree.
  std::uint64_t signature_chain = 0;
  std::uint64_t rounds = 0;
  /// Rounds served by the controller's memo without a re-solve.
  std::uint64_t incremental_hits = 0;
  /// Rounds whose solve engaged the partial tier (a warm-start repair or
  /// an LP basis replay) instead of running fully cold — the middle rung
  /// of the memo -> partial -> full ladder (docs/SOLVERS.md).
  std::uint64_t partial_rounds = 0;
  sim::SimulationMetrics metrics;
  /// Per directed edge: highest ladder rate the link's SNR supported at
  /// any round (Gbps) — the §2.1 capability distribution.
  std::vector<double> link_capability_gbps;
  /// Per directed edge: nominal (provisioned) rate.
  std::vector<double> link_nominal_gbps;
  /// Failure events: maximal runs of consecutive rounds during which a
  /// link's feasible rate sat below its nominal rate.
  std::uint64_t failure_events = 0;
  /// Failure events whose feasible rate never dropped below crawl (50 G).
  std::uint64_t crawl_retained_events = 0;
};

/// Aggregated fleet outcome. Per-instance results are kept (id order) so
/// the deployment study can build distributions; the scalar fields are the
/// id-ordered serial fold the tests pin.
struct FleetResult {
  /// mix of every instance's signature_chain, folded in id order.
  std::uint64_t fleet_chain = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t incremental_hits = 0;
  std::uint64_t partial_rounds = 0;
  std::uint64_t failure_events = 0;
  std::uint64_t crawl_retained_events = 0;
  std::vector<InstanceResult> instances;

  double incremental_hit_rate() const {
    return total_rounds > 0
               ? static_cast<double>(incremental_hits) /
                     static_cast<double>(total_rounds)
               : 0.0;
  }
  /// Fraction of the rounds that missed the memo but were still served by
  /// the partial tier — how often "something changed" cost less than a
  /// full re-solve (docs/SOLVERS.md).
  double partial_hit_rate() const {
    const std::uint64_t misses = total_rounds - incremental_hits;
    return misses > 0
               ? static_cast<double>(partial_rounds) /
                     static_cast<double>(misses)
               : 0.0;
  }
  double crawl_retention_fraction() const {
    return failure_events > 0
               ? static_cast<double>(crawl_retained_events) /
                     static_cast<double>(failure_events)
               : 0.0;
  }
};

/// Runs one instance of the fleet in isolation (what a shard does for each
/// of its instances). Exposed for the differential tests, which compare a
/// directly-run instance against its slot in a sharded fleet run.
InstanceResult run_instance(const FleetConfig& config, std::size_t instance);

/// Runs the whole fleet: shards execute on the pool, per-instance results
/// land in id-indexed slots, the fold is serial in id order. Records
/// fleet.* metrics (docs/OBSERVABILITY.md).
FleetResult run_fleet(const FleetConfig& config);

}  // namespace rwc::fleet
