#include "fleet/fleet.hpp"

#include <algorithm>
#include <filesystem>
#include <span>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "optical/modulation.hpp"
#include "replay/driver.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc::fleet {

namespace {

/// Handles into the global registry (docs/OBSERVABILITY.md: fleet.*).
struct FleetMetrics {
  obs::Counter& runs;
  obs::Counter& instances;
  obs::Counter& rounds;
  obs::Counter& incremental_hits;
  obs::Counter& partial_rounds;
  obs::Counter& failure_events;
  obs::Counter& crawl_retained;
  obs::Gauge& hit_rate;
  obs::Histogram& run_seconds;

  static FleetMetrics& instance() {
    static auto& registry = obs::Registry::global();
    static FleetMetrics metrics{
        registry.counter("fleet.runs"),
        registry.counter("fleet.instances"),
        registry.counter("fleet.rounds"),
        registry.counter("fleet.incremental_hits"),
        registry.counter("fleet.partial_rounds"),
        registry.counter("fleet.failure_events"),
        registry.counter("fleet.crawl_retained"),
        registry.gauge("fleet.incremental_hit_rate"),
        registry.histogram("fleet.run.seconds"),
    };
    return metrics;
  }
};

/// Same murmur3-finalizer mixer as the replay signature chain, so the
/// fleet chain composes with the per-instance chains it folds.
std::uint64_t mix64(std::uint64_t hash, std::uint64_t value) {
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  hash = (hash ^ value) * 0x2545f4914f6cdd1dULL;
  return hash ^ (hash >> 29);
}

/// Crawl rate: the ladder's lowest format (50 G), the §2.2 availability
/// floor.
double crawl_gbps() {
  static const double rate =
      optical::ModulationTable::standard().min_capacity().value;
  return rate;
}

}  // namespace

InstanceResult run_instance(const FleetConfig& config, std::size_t instance) {
  RWC_EXPECTS(instance < config.instances);
  RWC_EXPECTS(config.min_nodes >= 4 && config.max_nodes >= config.min_nodes);
  RWC_EXPECTS(config.rounds > 0);

  // Everything below is a pure function of (config.seed, instance): two
  // disjoint Rng streams per instance (structure, trace seed), so neither
  // shard assignment nor pool size can perturb an instance's inputs.
  // Stream ids start at 1: stream 0 is the root stream reserved for
  // callers that still use Rng(seed) directly.
  util::Rng structure_rng =
      util::Rng::stream(config.seed, 2 * instance + 1);
  const int nodes = config.min_nodes +
                    static_cast<int>(structure_rng.uniform_int(
                        0, config.max_nodes - config.min_nodes));
  graph::Graph topology = sim::waxman(nodes, structure_rng);
  sim::GravityParams gravity;
  gravity.total =
      util::Gbps{topology.total_capacity().value * config.demand_load};
  const te::TrafficMatrix demands =
      sim::gravity_matrix(topology, gravity, structure_rng);
  const std::uint64_t trace_seed =
      util::Rng::stream(config.seed, 2 * instance + 2).next_u64();

  replay::ReplayConfig replay_config;
  replay_config.rounds = config.rounds;
  replay_config.snr_margin = config.snr_margin;
  replay_config.diurnal = config.diurnal;
  replay_config.snr_model = config.snr_model;
  replay_config.seed = trace_seed;
  replay_config.chunk_rounds = config.chunk_rounds;
  replay_config.hysteresis = config.hysteresis;
  replay_config.incremental = config.incremental;
  replay_config.checkpoint_every = config.checkpoint_every;
  // The driver's nested parallelism runs inline on a worker thread of the
  // same pool (exec::parallel_for re-entry rule), so sharing the fleet
  // pool is deadlock-free and deterministic.
  replay_config.pool = config.pool;
  replay_config.demand = config.demand;
  // Per-instance counter stream: derive the pipeline seed from the
  // instance's trace seed so counter noise is independent across
  // instances yet pure in (config, instance id).
  if (config.demand.estimated())
    replay_config.demand.seed = config.demand.seed ^ trace_seed;

  // Engines are per-instance: their warm/path caches never alias across
  // instances (and caches are timing-only anyway).
  te::McfTe::Options mcf_options;
  mcf_options.partial_repair = config.partial;
  te::SwanTe::Options swan_options;
  swan_options.warm_basis = config.partial;
  te::McfTe mcf(mcf_options);
  te::SwanTe swan(swan_options);
  const te::TeAlgorithm& engine =
      config.engine == EngineKind::kMcf
          ? static_cast<const te::TeAlgorithm&>(mcf)
          : static_cast<const te::TeAlgorithm&>(swan);

  replay::ReplayDriver driver(topology, engine, demands, replay_config);

  std::optional<replay::CheckpointStore> store;
  if (!config.checkpoint_dir.empty() && config.checkpoint_every > 0) {
    store.emplace(std::filesystem::path(config.checkpoint_dir) /
                  ("instance-" + std::to_string(instance)));
    driver.attach_store(&*store);
  }

  InstanceResult result;
  const std::size_t edges = topology.edge_count();
  result.link_capability_gbps.assign(edges, 0.0);
  result.link_nominal_gbps.resize(edges);
  for (graph::EdgeId edge : topology.edge_ids())
    result.link_nominal_gbps[static_cast<std::size_t>(edge.value)] =
        topology.edge(edge).capacity.value;

  // Deployment-study aggregation over the round stream: per-link
  // capability (best ladder rate the raw SNR supported) and failure
  // episodes (maximal runs of rounds with feasible < nominal), classified
  // by whether the link ever lost crawl capacity during the episode.
  const optical::ModulationTable table = optical::ModulationTable::standard();
  std::vector<char> in_episode(edges, 0);
  std::vector<double> episode_min(edges, 0.0);
  const auto close_episode = [&](std::size_t e) {
    in_episode[e] = 0;
    ++result.failure_events;
    if (episode_min[e] >= crawl_gbps()) ++result.crawl_retained_events;
  };
  driver.set_round_observer(
      [&](std::uint64_t, std::span<const util::Db> snr,
          const core::DynamicCapacityController::RoundReport& report) {
        if (report.stats.incremental_hit) ++result.incremental_hits;
        if (report.stats.partial_resolve) ++result.partial_rounds;
        for (std::size_t e = 0; e < edges; ++e) {
          const double feasible =
              table.feasible_capacity(snr[e], config.snr_margin).value;
          result.link_capability_gbps[e] =
              std::max(result.link_capability_gbps[e], feasible);
          if (feasible < result.link_nominal_gbps[e]) {
            if (!in_episode[e]) {
              in_episode[e] = 1;
              episode_min[e] = feasible;
            } else {
              episode_min[e] = std::min(episode_min[e], feasible);
            }
          } else if (in_episode[e]) {
            close_episode(e);
          }
        }
      });

  result.metrics = driver.run();
  for (std::size_t e = 0; e < edges; ++e)
    if (in_episode[e]) close_episode(e);
  result.signature_chain = driver.signature_chain();
  result.rounds = config.rounds;
  return result;
}

FleetResult run_fleet(const FleetConfig& config) {
  RWC_EXPECTS(config.instances > 0);
  const obs::StopWatch watch;
  exec::ThreadPool& pool =
      config.pool != nullptr ? *config.pool : exec::ThreadPool::global();
  const std::size_t shards =
      std::clamp<std::size_t>(config.shards, 1, config.instances);

  FleetResult result;
  result.instances.resize(config.instances);

  // Shard s owns the contiguous instance block [begin, end): a shard runs
  // its instances sequentially (one live driver per shard bounds memory);
  // results land in id-indexed slots, so the partition is irrelevant to
  // the outcome — only to the schedule.
  const std::size_t base = config.instances / shards;
  const std::size_t extra = config.instances % shards;
  exec::parallel_for(pool, shards, [&](std::size_t shard) {
    const std::size_t begin = shard * base + std::min(shard, extra);
    const std::size_t end = begin + base + (shard < extra ? 1 : 0);
    for (std::size_t i = begin; i < end; ++i)
      result.instances[i] = run_instance(config, i);
  });

  // Serial fold in instance-id order: the fleet chain is a deterministic
  // reduction of the per-instance chains.
  std::uint64_t chain = 0xcbf29ce484222325ULL;
  for (const InstanceResult& instance : result.instances) {
    chain = mix64(chain, instance.signature_chain);
    result.total_rounds += instance.rounds;
    result.incremental_hits += instance.incremental_hits;
    result.partial_rounds += instance.partial_rounds;
    result.failure_events += instance.failure_events;
    result.crawl_retained_events += instance.crawl_retained_events;
  }
  result.fleet_chain = chain;

  auto& metrics = FleetMetrics::instance();
  metrics.runs.add();
  metrics.instances.add(config.instances);
  metrics.rounds.add(result.total_rounds);
  metrics.incremental_hits.add(result.incremental_hits);
  metrics.partial_rounds.add(result.partial_rounds);
  metrics.failure_events.add(result.failure_events);
  metrics.crawl_retained.add(result.crawl_retained_events);
  metrics.hit_rate.set(result.incremental_hit_rate());
  metrics.run_seconds.observe(watch.seconds());
  return result;
}

}  // namespace rwc::fleet
