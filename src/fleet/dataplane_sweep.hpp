// Fleet-scale dataplane differential sweep (rwc::fleet) —
// docs/DATAPLANE.md §8.
//
// Runs the solver-vs-dataplane oracle (dataplane/xcheck.hpp) over many
// independent WAN instances, sharded on exec::ThreadPool with the same
// determinism contract as fleet.hpp: every instance is a pure function of
// (config, instance id) — its xcheck seed derives from
// util::Rng::stream(config.seed, id), its per-instance outcome lands in an
// id-indexed slot, and the sweep chain folds the per-instance chains in id
// order. Results are bit-identical across shard counts AND pool sizes,
// and instances alternate engines (Mcf/Swan) and workloads
// (gravity/demand-aware) so one sweep covers the full oracle matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/xcheck.hpp"

namespace rwc::exec {
class ThreadPool;
}

namespace rwc::fleet {

struct DataplaneSweepConfig {
  /// Independent xcheck instances to run.
  std::size_t instances = 16;
  /// Deterministic partition into contiguous shards; results are
  /// invariant to this value.
  std::size_t shards = 4;
  std::uint64_t seed = 1;
  /// Per-instance oracle shape (seed/engine/demand_aware are overridden
  /// per instance; pool is overridden with the sweep pool).
  dataplane::XcheckConfig base;
  /// Pool for shard execution; nullptr = exec::ThreadPool::global().
  exec::ThreadPool* pool = nullptr;
};

/// One instance's slot: the oracle outcome reduced to what the sweep
/// aggregates (the full round list stays with run_dataplane_instance).
struct DataplaneInstanceResult {
  bool pass = true;
  std::string failure;
  std::uint64_t chain = 0;
  double max_shortfall = 0.0;
  double max_overshoot = 0.0;
  std::uint64_t capacity_violations = 0;
  std::uint64_t migrations = 0;
};

struct DataplaneSweepResult {
  /// mix of every instance's chain, folded in id order.
  std::uint64_t sweep_chain = 0;
  std::size_t failed_instances = 0;
  /// First failing instance's clause, empty when all pass.
  std::string first_failure;
  double max_shortfall = 0.0;
  double max_overshoot = 0.0;
  std::uint64_t capacity_violations = 0;
  std::vector<DataplaneInstanceResult> instances;
};

/// Runs one sweep instance in isolation (what a shard does per instance).
/// Exposed for the shard-invariance differential tests.
DataplaneInstanceResult run_dataplane_instance(
    const DataplaneSweepConfig& config, std::size_t instance);

/// Runs the sweep: shards execute on the pool, slots are id-indexed, the
/// fold is serial in id order. Records fleet.dataplane.* metrics.
DataplaneSweepResult run_dataplane_sweep(const DataplaneSweepConfig& config);

}  // namespace rwc::fleet
