// Strong quantity types for the two units this library constantly mixes:
// optical signal quality (dB) and link capacity (Gbps). Keeping them as
// distinct types prevents the classic cross-layer bug of feeding a capacity
// where a signal-to-noise ratio is expected.
//
// Simulation time is kept as plain double seconds (alias Seconds) with named
// constants; the discrete-event core does arithmetic-heavy scheduling where a
// wrapper would be friction without a matching safety payoff.
#pragma once

#include <compare>
#include <iosfwd>

namespace rwc::util {

/// Signal-to-noise ratio (or any optical power ratio) in decibel.
struct Db {
  double value = 0.0;

  constexpr auto operator<=>(const Db&) const = default;

  constexpr Db operator+(Db other) const { return Db{value + other.value}; }
  constexpr Db operator-(Db other) const { return Db{value - other.value}; }
  constexpr Db operator-() const { return Db{-value}; }
  constexpr Db& operator+=(Db other) {
    value += other.value;
    return *this;
  }
  constexpr Db& operator-=(Db other) {
    value -= other.value;
    return *this;
  }
  constexpr Db operator*(double k) const { return Db{value * k}; }
};

constexpr Db operator*(double k, Db db) { return Db{k * db.value}; }

/// Converts a dB ratio to linear scale (10^(dB/10)).
double db_to_linear(Db db);
/// Converts a linear ratio to dB (10*log10(x)); requires x > 0.
Db linear_to_db(double linear);

std::ostream& operator<<(std::ostream& os, Db db);

/// Link/flow capacity in gigabit per second.
struct Gbps {
  double value = 0.0;

  constexpr auto operator<=>(const Gbps&) const = default;

  constexpr Gbps operator+(Gbps other) const { return Gbps{value + other.value}; }
  constexpr Gbps operator-(Gbps other) const { return Gbps{value - other.value}; }
  constexpr Gbps operator-() const { return Gbps{-value}; }
  constexpr Gbps& operator+=(Gbps other) {
    value += other.value;
    return *this;
  }
  constexpr Gbps& operator-=(Gbps other) {
    value -= other.value;
    return *this;
  }
  constexpr Gbps operator*(double k) const { return Gbps{value * k}; }
  constexpr double operator/(Gbps other) const { return value / other.value; }
};

constexpr Gbps operator*(double k, Gbps g) { return Gbps{k * g.value}; }

std::ostream& operator<<(std::ostream& os, Gbps gbps);

inline namespace literals {
constexpr Db operator""_dB(long double v) { return Db{static_cast<double>(v)}; }
constexpr Db operator""_dB(unsigned long long v) {
  return Db{static_cast<double>(v)};
}
constexpr Gbps operator""_Gbps(long double v) {
  return Gbps{static_cast<double>(v)};
}
constexpr Gbps operator""_Gbps(unsigned long long v) {
  return Gbps{static_cast<double>(v)};
}
}  // namespace literals

/// Simulation time in seconds.
using Seconds = double;

constexpr Seconds kMinute = 60.0;
constexpr Seconds kHour = 3600.0;
constexpr Seconds kDay = 86400.0;

}  // namespace rwc::util
