// Tiny environment-variable helpers for runtime escape hatches. Keep the
// set small: every flag read here must be documented (README "escape
// hatches") because env-dependent behavior is invisible in configs.
#pragma once

namespace rwc::util {

/// True unless `name` is set to an explicit "off" value ("0", "false",
/// "off", "no", case-insensitive); `fallback` when unset or empty. Any
/// other non-empty value reads as true, so RWC_X=1 and RWC_X=yes both
/// enable. Reads the environment on every call — callers on hot paths
/// should latch the result once (the flags gate behavior chosen at
/// engine-construction time, never per solve).
bool env_flag(const char* name, bool fallback);

}  // namespace rwc::util
