#include "util/units.hpp"

#include <cmath>
#include <ostream>

#include "util/check.hpp"

namespace rwc::util {

double db_to_linear(Db db) { return std::pow(10.0, db.value / 10.0); }

Db linear_to_db(double linear) {
  RWC_EXPECTS(linear > 0.0);
  return Db{10.0 * std::log10(linear)};
}

std::ostream& operator<<(std::ostream& os, Db db) {
  return os << db.value << " dB";
}

std::ostream& operator<<(std::ostream& os, Gbps gbps) {
  return os << gbps.value << " Gbps";
}

}  // namespace rwc::util
