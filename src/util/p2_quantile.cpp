#include "util/p2_quantile.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rwc::util {

P2Quantile::P2Quantile(double p) : p_(p) {
  RWC_EXPECTS(p > 0.0 && p < 1.0);
  desired_increment_ = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
}

void P2Quantile::add(double value) {
  if (count_ < 5) {
    heights_[count_++] = value;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i)
        positions_[i] = static_cast<double>(i + 1);
      desired_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
    }
    return;
  }
  ++count_;

  // Locate the cell containing the new observation; clamp extremes.
  std::size_t cell;
  if (value < heights_[0]) {
    heights_[0] = value;
    cell = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= heights_[cell + 1]) ++cell;
  }

  for (std::size_t i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i)
    desired_[i] += desired_increment_[i];

  // Adjust the three interior markers with parabolic (or linear) steps.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double gap = desired_[i] - positions_[i];
    const double forward = positions_[i + 1] - positions_[i];
    const double backward = positions_[i - 1] - positions_[i];
    if ((gap >= 1.0 && forward > 1.0) || (gap <= -1.0 && backward < -1.0)) {
      const double direction = gap >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction.
      const double qi = heights_[i];
      const double parabolic =
          qi + direction / (positions_[i + 1] - positions_[i - 1]) *
                   ((positions_[i] - positions_[i - 1] + direction) *
                        (heights_[i + 1] - qi) / forward +
                    (positions_[i + 1] - positions_[i] - direction) *
                        (qi - heights_[i - 1]) / (-backward));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        // Linear fallback.
        const auto j = static_cast<std::size_t>(
            static_cast<double>(i) + direction);
        heights_[i] = qi + direction * (heights_[j] - qi) /
                               (positions_[j] - positions_[i]);
      }
      positions_[i] += direction;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact on the buffered prefix.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    const double position = p_ * static_cast<double>(count_ - 1);
    const auto lower = static_cast<std::size_t>(position);
    const double weight = position - static_cast<double>(lower);
    if (lower + 1 >= count_) return sorted[count_ - 1];
    return sorted[lower] * (1.0 - weight) + sorted[lower + 1] * weight;
  }
  return heights_[2];
}

void StreamingSummary::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double StreamingSummary::stddev() const {
  if (count_ == 0) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_));
}

}  // namespace rwc::util
