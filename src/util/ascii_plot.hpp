// ASCII renderings of the paper's figures: CDF curves, time series, and
// scatter plots (constellation diagrams). Benches print these so the shape of
// each reproduced figure is visible in plain terminal output.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

namespace rwc::util {

class EmpiricalCdf;

/// Character canvas with data-space axes; plot primitives clamp to range.
class PlotCanvas {
 public:
  PlotCanvas(std::size_t width, std::size_t height, double x_lo, double x_hi,
             double y_lo, double y_hi);

  /// Plots a single point with the glyph `mark`.
  void point(double x, double y, char mark = '*');
  /// Plots a polyline through the given (x, y) vertices.
  void line(std::span<const std::pair<double, double>> points,
            char mark = '*');

  /// Renders with a simple axis frame and min/max labels.
  std::string render(const std::string& x_label,
                     const std::string& y_label) const;

  double x_lo() const { return x_lo_; }
  double x_hi() const { return x_hi_; }

 private:
  std::size_t width_;
  std::size_t height_;
  double x_lo_, x_hi_, y_lo_, y_hi_;
  std::vector<std::string> grid_;  // grid_[row][col], row 0 = top
};

/// Renders one or more CDFs over a shared x-range. Each series gets its own
/// glyph and a legend line.
std::string plot_cdfs(
    std::span<const std::pair<std::string, const EmpiricalCdf*>> series,
    std::size_t width, std::size_t height, const std::string& x_label);

/// Renders y-values against their index (time series).
std::string plot_series(std::span<const double> values, std::size_t width,
                        std::size_t height, const std::string& x_label,
                        const std::string& y_label);

}  // namespace rwc::util
