// Summary statistics, empirical CDFs and highest-density-region (HDR)
// estimation — the measurement-analysis primitives behind Figures 2a, 2b,
// 3b, 4c and 6b of the paper.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rwc::util {

/// Basic moments and extrema of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
};

/// Computes Summary over `samples`; returns a zeroed Summary when empty.
Summary summarize(std::span<const double> samples);

/// p-th percentile (p in [0,1]) with linear interpolation.
/// Requires non-empty `sorted` in ascending order.
double percentile_sorted(std::span<const double> sorted, double p);

/// Closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double width() const { return hi - lo; }
};

/// Highest density region: the narrowest interval containing at least
/// `coverage` fraction of the samples (the paper uses coverage = 0.95).
/// Requires non-empty samples and coverage in (0, 1].
Interval highest_density_region(std::span<const double> samples,
                                double coverage);

/// Empirical cumulative distribution of a sample set.
class EmpiricalCdf {
 public:
  /// Takes ownership of the samples and sorts them. Requires non-empty.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Quantile: smallest sample value v with CDF(v) >= fraction.
  /// fraction in [0, 1].
  double value_at(double fraction) const;

  /// Fraction of samples <= value.
  double fraction_at_or_below(double value) const;

  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }
  std::size_t size() const { return sorted_.size(); }
  std::span<const double> sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Histogram with equal-width bins over [lo, hi]; values outside are clamped
/// into the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  std::size_t total() const { return total_; }
  std::span<const std::size_t> counts() const { return counts_; }
  /// Center of bin i.
  double bin_center(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rwc::util
