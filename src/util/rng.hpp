// Deterministic random number generation.
//
// Every stochastic component in librwc takes an explicit Rng (or a seed) so
// that benches and tests are reproducible across runs and platforms. We own
// both the engine (xoshiro256++) and the distribution transforms, because the
// standard library's distribution implementations differ across standard
// libraries and would make calibration tests platform-dependent.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace rwc::util {

/// splitmix64 step; used for seeding and for deriving substreams.
std::uint64_t splitmix64(std::uint64_t& state);

/// Serializable position of an Rng stream: the full xoshiro256++ engine
/// state plus the Box-Muller cache, so a generator restored from a
/// checkpoint continues its output sequence bit-identically from where the
/// capture left off (rwc::replay relies on this).
struct RngState {
  std::array<std::uint64_t, 4> engine{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;

  friend bool operator==(const RngState&, const RngState&) = default;
};

/// Deterministic pseudo-random generator (xoshiro256++ engine) with its own
/// distribution transforms. Cheap to copy; fork() derives independent
/// substreams so that adding a consumer does not perturb existing ones.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface (for std::shuffle etc.).
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);
  /// Normal via Box-Muller (cached second variate).
  double normal(double mean, double stddev);
  /// Log-normal: exp(N(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log);
  /// Log-normal parameterized by the mean/stddev of the *resulting* variable.
  double lognormal_from_moments(double mean, double stddev);
  /// Exponential with the given mean. Requires mean > 0.
  double exponential(double mean);
  /// Pareto (type I): scale * U^(-1/shape). Requires scale, shape > 0.
  double pareto(double scale, double shape);
  /// Poisson (Knuth's method; suitable for small means).
  int poisson(double mean);

  /// Index drawn proportionally to non-negative weights (at least one > 0).
  std::size_t pick_weighted(std::span<const double> weights);

  /// Derive a statistically independent substream keyed by `stream`.
  Rng fork(std::uint64_t stream) const;

  /// Splittable construction: the generator for stream `stream_id` of the
  /// family rooted at `seed`. Unlike fork(), the derivation is a pure
  /// function of (seed, stream_id) — independent of any generator state or
  /// call order — which is what makes per-task RNGs deterministic under any
  /// thread-pool size (docs/CONCURRENCY.md). Stream 0 is the root stream:
  /// `Rng::stream(seed, 0)` is bit-identical to `Rng(seed)`, so call sites
  /// migrate without perturbing existing outputs.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id);

  /// Captures the stream position for checkpointing; from_state() resumes
  /// the output sequence bit-identically.
  RngState state() const;
  static Rng from_state(const RngState& state);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace rwc::util
