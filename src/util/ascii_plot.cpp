#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rwc::util {

PlotCanvas::PlotCanvas(std::size_t width, std::size_t height, double x_lo,
                       double x_hi, double y_lo, double y_hi)
    : width_(width),
      height_(height),
      x_lo_(x_lo),
      x_hi_(x_hi),
      y_lo_(y_lo),
      y_hi_(y_hi),
      grid_(height, std::string(width, ' ')) {
  RWC_EXPECTS(width >= 2 && height >= 2);
  RWC_EXPECTS(x_lo < x_hi && y_lo < y_hi);
}

void PlotCanvas::point(double x, double y, char mark) {
  const double fx = (x - x_lo_) / (x_hi_ - x_lo_);
  const double fy = (y - y_lo_) / (y_hi_ - y_lo_);
  if (fx < 0.0 || fx > 1.0 || fy < 0.0 || fy > 1.0) return;
  auto col = static_cast<std::size_t>(fx * static_cast<double>(width_ - 1));
  auto row = height_ - 1 -
             static_cast<std::size_t>(fy * static_cast<double>(height_ - 1));
  grid_[row][col] = mark;
}

void PlotCanvas::line(std::span<const std::pair<double, double>> points,
                      char mark) {
  if (points.empty()) return;
  // Dense interpolation between consecutive vertices; cheap and adequate for
  // terminal resolution.
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const auto [x0, y0] = points[i];
    const auto [x1, y1] = points[i + 1];
    const int steps = static_cast<int>(width_) * 2;
    for (int s = 0; s <= steps; ++s) {
      const double t = static_cast<double>(s) / steps;
      point(x0 + t * (x1 - x0), y0 + t * (y1 - y0), mark);
    }
  }
  point(points.back().first, points.back().second, mark);
}

std::string PlotCanvas::render(const std::string& x_label,
                               const std::string& y_label) const {
  std::ostringstream os;
  os << y_label << " (" << format_double(y_lo_) << " .. "
     << format_double(y_hi_) << ")\n";
  for (const auto& row : grid_) os << '|' << row << '\n';
  os << '+' << std::string(width_, '-') << '\n';
  os << ' ' << format_double(x_lo_) << std::string(width_ > 24 ? width_ - 16 : 1, ' ')
     << format_double(x_hi_) << "  " << x_label << '\n';
  return os.str();
}

std::string plot_cdfs(
    std::span<const std::pair<std::string, const EmpiricalCdf*>> series,
    std::size_t width, std::size_t height, const std::string& x_label) {
  RWC_EXPECTS(!series.empty());
  double x_lo = series.front().second->min();
  double x_hi = series.front().second->max();
  for (const auto& [name, cdf] : series) {
    x_lo = std::min(x_lo, cdf->min());
    x_hi = std::max(x_hi, cdf->max());
  }
  if (x_hi <= x_lo) x_hi = x_lo + 1.0;
  PlotCanvas canvas(width, height, x_lo, x_hi, 0.0, 1.0);
  static constexpr char kMarks[] = {'*', 'o', '+', 'x', '#', '@'};
  std::ostringstream legend;
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char mark = kMarks[s % sizeof kMarks];
    const auto& cdf = *series[s].second;
    std::vector<std::pair<double, double>> pts;
    const int samples = static_cast<int>(width) * 2;
    for (int i = 0; i <= samples; ++i) {
      const double x = x_lo + (x_hi - x_lo) * i / samples;
      pts.emplace_back(x, cdf.fraction_at_or_below(x));
    }
    canvas.line(pts, mark);
    legend << "  [" << mark << "] " << series[s].first << '\n';
  }
  return canvas.render(x_label, "CDF") + legend.str();
}

std::string plot_series(std::span<const double> values, std::size_t width,
                        std::size_t height, const std::string& x_label,
                        const std::string& y_label) {
  RWC_EXPECTS(!values.empty());
  const auto summary = summarize(values);
  double lo = summary.min;
  double hi = summary.max;
  if (hi <= lo) hi = lo + 1.0;
  PlotCanvas canvas(width, height, 0.0,
                    static_cast<double>(values.size() - 1) + 1e-9, lo, hi);
  std::vector<std::pair<double, double>> pts;
  pts.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    pts.emplace_back(static_cast<double>(i), values[i]);
  canvas.line(pts);
  return canvas.render(x_label, y_label);
}

}  // namespace rwc::util
