#include "util/env.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

namespace rwc::util {

bool env_flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  std::string value(raw);
  for (char& c : value)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (value == "0" || value == "false" || value == "off" || value == "no")
    return false;
  return true;
}

}  // namespace rwc::util
