#include "util/check.hpp"

#include <sstream>

namespace rwc::util {

void throw_check_failure(const char* kind, const char* expr, const char* file,
                         int line, const std::string& detail) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ':' << line;
  if (!detail.empty()) os << " (" << detail << ')';
  throw CheckError(os.str());
}

}  // namespace rwc::util
