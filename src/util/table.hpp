// Plain-text table and CSV emission used by the bench binaries to print
// paper-style rows.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rwc::util {

/// Column-aligned text table. Rows are strings; numeric helpers format with a
/// fixed precision so bench output is stable and diff-able.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  void print(std::ostream& os) const;
  std::string to_string() const;

  /// Renders as CSV (no quoting of cells; callers keep cells comma-free).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the decimal point.
std::string format_double(double value, int precision = 2);

/// Formats a fraction (0..1) as a percentage string like "82.5%".
std::string format_percent(double fraction, int precision = 1);

}  // namespace rwc::util
