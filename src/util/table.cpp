#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace rwc::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RWC_EXPECTS(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  RWC_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t underline = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    underline += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(underline, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

}  // namespace rwc::util
