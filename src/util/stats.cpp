#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rwc::util {

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  s.count = samples.size();
  double sum = 0.0;
  s.min = samples.front();
  s.max = samples.front();
  for (double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

double percentile_sorted(std::span<const double> sorted, double p) {
  RWC_EXPECTS(!sorted.empty());
  RWC_EXPECTS(p >= 0.0 && p <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double position = p * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  if (lower + 1 >= sorted.size()) return sorted.back();
  const double weight = position - static_cast<double>(lower);
  return sorted[lower] * (1.0 - weight) + sorted[lower + 1] * weight;
}

Interval highest_density_region(std::span<const double> samples,
                                double coverage) {
  RWC_EXPECTS(!samples.empty());
  RWC_EXPECTS(coverage > 0.0 && coverage <= 1.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  const auto window = std::min<std::size_t>(
      n, static_cast<std::size_t>(
             std::ceil(coverage * static_cast<double>(n))));
  RWC_CHECK(window >= 1);
  Interval best{sorted.front(), sorted[window - 1]};
  for (std::size_t i = 1; i + window <= n; ++i) {
    const double width = sorted[i + window - 1] - sorted[i];
    if (width < best.width()) best = {sorted[i], sorted[i + window - 1]};
  }
  return best;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  RWC_EXPECTS(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::value_at(double fraction) const {
  return percentile_sorted(sorted_, std::clamp(fraction, 0.0, 1.0));
}

double EmpiricalCdf::fraction_at_or_below(double value) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), value);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RWC_EXPECTS(bins >= 1);
  RWC_EXPECTS(lo < hi);
}

void Histogram::add(double value) {
  const double unit = (value - lo_) / (hi_ - lo_);
  auto index = static_cast<std::ptrdiff_t>(
      unit * static_cast<double>(counts_.size()));
  index = std::clamp<std::ptrdiff_t>(
      index, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(index)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  RWC_EXPECTS(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (static_cast<double>(i) + 0.5);
}

}  // namespace rwc::util
