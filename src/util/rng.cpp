#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace rwc::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RWC_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RWC_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) {
  RWC_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  RWC_EXPECTS(stddev >= 0.0);
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::lognormal(double mu_log, double sigma_log) {
  return std::exp(normal(mu_log, sigma_log));
}

double Rng::lognormal_from_moments(double mean, double stddev) {
  RWC_EXPECTS(mean > 0.0 && stddev >= 0.0);
  const double cv2 = (stddev / mean) * (stddev / mean);
  const double sigma2 = std::log1p(cv2);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return lognormal(mu, std::sqrt(sigma2));
}

double Rng::exponential(double mean) {
  RWC_EXPECTS(mean > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::pareto(double scale, double shape) {
  RWC_EXPECTS(scale > 0.0 && shape > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return scale * std::pow(u, -1.0 / shape);
}

int Rng::poisson(double mean) {
  RWC_EXPECTS(mean >= 0.0);
  const double limit = std::exp(-mean);
  int count = 0;
  double product = uniform();
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

std::size_t Rng::pick_weighted(std::span<const double> weights) {
  RWC_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    RWC_EXPECTS(w >= 0.0);
    total += w;
  }
  RWC_EXPECTS(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on last positive weight
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) {
  if (stream_id == 0) return Rng(seed);
  // Mix the stream id through splitmix64 before combining: consecutive ids
  // must land on decorrelated seeds.
  std::uint64_t s = stream_id * 0x9e3779b97f4a7c15ULL;
  const std::uint64_t mixed = splitmix64(s);
  return Rng(seed ^ mixed);
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix our state with the stream id through splitmix64 for a decorrelated
  // child; const state copy keeps the parent sequence untouched.
  std::uint64_t s = state_[0] ^ rotl(state_[2], 13) ^ (stream * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(s));
}

RngState Rng::state() const {
  return RngState{state_, cached_normal_, has_cached_normal_};
}

Rng Rng::from_state(const RngState& state) {
  Rng rng(0);
  rng.state_ = state.engine;
  rng.cached_normal_ = state.cached_normal;
  rng.has_cached_normal_ = state.has_cached_normal;
  return rng;
}

}  // namespace rwc::util
