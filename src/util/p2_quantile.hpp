// P-square (P²) streaming quantile estimation (Jain & Chlamtac, 1985).
//
// Telemetry pipelines cannot afford to buffer 2.5 years of 15-minute samples
// per link just to compute percentile-based statistics; P² maintains a
// five-marker parabolic approximation of one quantile in O(1) memory per
// quantile. telemetry::analyze_link_streaming builds an approximate HDR
// from two P² estimators.
#pragma once

#include <array>
#include <cstddef>

namespace rwc::util {

/// Streaming estimator of a single quantile p (0 < p < 1).
class P2Quantile {
 public:
  explicit P2Quantile(double p);

  /// Feeds one observation.
  void add(double value);

  /// Current estimate. Exact while fewer than 5 observations were added;
  /// NaN-free: returns 0 when empty.
  double value() const;

  std::size_t count() const { return count_; }
  double quantile() const { return p_; }

 private:
  double p_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};           // marker heights q_i
  std::array<double, 5> positions_{};         // actual positions n_i
  std::array<double, 5> desired_{};           // desired positions n'_i
  std::array<double, 5> desired_increment_{};  // dn'_i
};

/// Streaming summary: count / mean / variance (Welford) plus extrema.
class StreamingSummary {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rwc::util
