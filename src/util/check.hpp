// Lightweight contract checking (precondition / postcondition / invariant).
//
// Violations throw rwc::util::CheckError so callers and tests can observe
// them; they are programming errors, not recoverable runtime conditions.
#pragma once

#include <stdexcept>
#include <string>

namespace rwc::util {

/// Thrown when a RWC_CHECK / RWC_EXPECTS / RWC_ENSURES condition fails.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Builds the failure message and throws CheckError. Out-of-line so the
/// throwing path stays cold in callers.
[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& detail = {});

}  // namespace rwc::util

/// General invariant check.
#define RWC_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::rwc::util::throw_check_failure("check", #expr, __FILE__, __LINE__); \
  } while (false)

/// Invariant check with an explanatory detail message.
#define RWC_CHECK_MSG(expr, detail)                                   \
  do {                                                                \
    if (!(expr))                                                      \
      ::rwc::util::throw_check_failure("check", #expr, __FILE__,      \
                                       __LINE__, (detail));           \
  } while (false)

/// Function precondition (Core Guidelines I.5/I.6).
#define RWC_EXPECTS(expr)                                                 \
  do {                                                                    \
    if (!(expr))                                                          \
      ::rwc::util::throw_check_failure("precondition", #expr, __FILE__,  \
                                       __LINE__);                         \
  } while (false)

/// Function postcondition (Core Guidelines I.7/I.8).
#define RWC_ENSURES(expr)                                                 \
  do {                                                                    \
    if (!(expr))                                                          \
      ::rwc::util::throw_check_failure("postcondition", #expr, __FILE__, \
                                       __LINE__);                         \
  } while (false)
