#include "te/mcf_te.hpp"

#include <algorithm>
#include <numeric>

#include "flow/decompose.hpp"
#include "flow/mincost.hpp"
#include "flow/network.hpp"
#include "obs/timer.hpp"
#include "util/check.hpp"

namespace rwc::te {

using util::Gbps;

FlowAssignment McfTe::solve(const graph::Graph& graph,
                            const TrafficMatrix& demands) const {
  static auto& solves = obs::Registry::global().counter("te.mcf.solves");
  static auto& seconds =
      obs::Registry::global().histogram("te.mcf.solve_seconds");
  solves.add();
  obs::ScopedTimer timer(seconds);

  FlowAssignment result;
  result.routings.resize(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i)
    result.routings[i].demand = demands[i];

  // Serve demands by priority (desc), then input order.
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return demands[a].priority > demands[b].priority;
                   });

  std::vector<double> remaining(graph.edge_count());
  for (graph::EdgeId edge : graph.edge_ids())
    remaining[static_cast<std::size_t>(edge.value)] =
        graph.edge(edge).capacity.value;

  for (std::size_t index : order) {
    const Demand& demand = demands[index];
    RWC_EXPECTS(demand.volume.value >= 0.0);
    if (demand.volume.value <= flow::kFlowEps) continue;
    RWC_EXPECTS(demand.src != demand.dst);

    // Fresh network against the remaining capacities.
    flow::ResidualNetwork net(graph.node_count());
    std::vector<int> arc_of_edge(graph.edge_count());
    for (graph::EdgeId edge : graph.edge_ids()) {
      const graph::Edge& e = graph.edge(edge);
      arc_of_edge[static_cast<std::size_t>(edge.value)] = net.add_arc(
          e.src.value, e.dst.value,
          remaining[static_cast<std::size_t>(edge.value)], e.cost);
    }
    if (options_.warm_start) {
      // Exact record/replay keyed by the network fingerprint; replay is
      // bit-identical to the cold solve (see flow/mincost.hpp). On an
      // exact miss, a structurally matching recording (same arcs, costs,
      // terminals; perturbed residuals — the dirty-link case) feeds the
      // solver's verified partial-repair path instead of solving cold.
      const flow::NetworkFingerprints prints = flow::network_fingerprints(
          net, demand.src.value, demand.dst.value);
      auto cached = warm_cache_.find(prints.exact);
      if (cached == nullptr && options_.partial_repair) {
        cached = warm_cache_.find_structural(prints.structural);
        // A structural hit that resolves to this exact network would turn
        // a forced exact-miss into a replay; treat it as absent.
        if (cached != nullptr && cached->fingerprint == prints.exact)
          cached = nullptr;
      }
      flow::MinCostWarmStart warm;
      if (cached != nullptr) warm = *cached;
      min_cost_max_flow(net, demand.src.value, demand.dst.value,
                        demand.volume.value, &warm);
      // Re-store when the recording now describes THIS network (cold
      // re-record, verified repair, or resumed extension) and is new or
      // changed; a pure replay and a prefix-bound repair (the recording
      // still carries the old fingerprint) leave the cache untouched.
      if (warm.fingerprint == prints.exact &&
          (cached == nullptr || cached->fingerprint != prints.exact ||
           warm.augmentations.size() != cached->augmentations.size() ||
           warm.exhausted != cached->exhausted)) {
        warm_cache_.store(
            std::make_shared<flow::MinCostWarmStart>(std::move(warm)));
      }
    } else {
      min_cost_max_flow(net, demand.src.value, demand.dst.value,
                        demand.volume.value);
    }

    // Arc index order matches edge id order: arc 2*i is edge i.
    const auto decomposition =
        flow::decompose_flow(net, demand.src.value, demand.dst.value);
    auto& routing = result.routings[index];
    for (const flow::PathFlow& pf : decomposition.paths) {
      graph::Path path;
      for (int arc : pf.arcs) {
        const graph::EdgeId edge{arc / 2};
        path.edges.push_back(edge);
        path.weight += graph.edge(edge).weight;
        remaining[static_cast<std::size_t>(edge.value)] -= pf.amount;
      }
      routing.paths.emplace_back(std::move(path), Gbps{pf.amount});
    }
  }
  finalize_assignment(graph, result);
  return result;
}

}  // namespace rwc::te
