// 1+1 path protection for flows that must not be disturbed (Section 4.2
// (i)): each protected demand gets a primary and an edge-disjoint backup
// path, both with reserved capacity, so no single link failure (or capacity
// reconfiguration) interrupts it. The reserved paths are then hidden from
// the TE optimization via core::carve_out_protected.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "te/demand.hpp"

namespace rwc::te {

/// A protected service: primary plus edge-disjoint backup, both reserved.
struct ProtectedService {
  Demand demand;
  graph::Path primary;
  graph::Path backup;
};

struct ProtectionPlan {
  std::vector<ProtectedService> services;
  /// Demands that could not be protected (no disjoint pair with enough
  /// spare capacity), in input order.
  std::vector<Demand> unprotected;
  /// Capacity reserved per edge (primary + backup reservations).
  std::vector<double> reserved_gbps;
};

/// Greedily plans 1+1 protection for `demands` on `graph`, reserving each
/// service's volume on BOTH paths. Demands are served in priority order;
/// a demand is protected only if a disjoint pair exists whose every edge has
/// enough spare capacity.
ProtectionPlan plan_protection(const graph::Graph& graph,
                               const TrafficMatrix& demands);

/// True when no single edge removal disconnects both paths of any service.
bool survives_any_single_failure(const ProtectionPlan& plan);

}  // namespace rwc::te
