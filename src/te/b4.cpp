#include "te/b4.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "flow/network.hpp"
#include "graph/ksp.hpp"
#include "obs/timer.hpp"
#include "util/check.hpp"

namespace rwc::te {

using util::Gbps;

FlowAssignment B4Te::solve(const graph::Graph& graph,
                           const TrafficMatrix& demands) const {
  RWC_EXPECTS(options_.quantum.value > 0.0);
  static auto& solves = obs::Registry::global().counter("te.b4.solves");
  static auto& seconds =
      obs::Registry::global().histogram("te.b4.solve_seconds");
  solves.add();
  obs::ScopedTimer timer(seconds);

  FlowAssignment result;
  result.routings.resize(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i)
    result.routings[i].demand = demands[i];

  // Tunnel groups: k shortest paths per demand, cost-aware tie-breaking.
  double max_cost = 0.0;
  for (graph::EdgeId edge : graph.edge_ids())
    max_cost = std::max(max_cost, graph.edge(edge).cost);
  const double cost_scale =
      max_cost > 0.0
          ? 1e-6 / (max_cost * static_cast<double>(graph.edge_count() + 1))
          : 0.0;

  struct Tunnel {
    graph::Path path;
    double metric = 0.0;  // weight + tiny cost
  };
  std::vector<std::vector<Tunnel>> tunnels(demands.size());
  for (std::size_t d = 0; d < demands.size(); ++d) {
    if (demands[d].volume.value <= flow::kFlowEps) continue;
    RWC_EXPECTS(demands[d].src != demands[d].dst);
    for (graph::Path& path :
         graph::k_shortest_paths(graph, demands[d].src, demands[d].dst,
                                 options_.paths_per_demand)) {
      Tunnel tunnel;
      tunnel.metric = path.weight;
      for (graph::EdgeId edge : path.edges)
        tunnel.metric += cost_scale * graph.edge(edge).cost;
      tunnel.path = std::move(path);
      tunnels[d].push_back(std::move(tunnel));
    }
    std::sort(tunnels[d].begin(), tunnels[d].end(),
              [](const Tunnel& a, const Tunnel& b) {
                return a.metric < b.metric;
              });
  }

  std::vector<double> remaining(graph.edge_count());
  for (graph::EdgeId edge : graph.edge_ids())
    remaining[static_cast<std::size_t>(edge.value)] =
        graph.edge(edge).capacity.value;
  std::vector<double> unmet(demands.size());
  for (std::size_t d = 0; d < demands.size(); ++d)
    unmet[d] = demands[d].volume.value;

  // Allocation per (demand, tunnel index) accumulated into paths at the end.
  std::vector<std::map<std::size_t, double>> allocation(demands.size());

  std::set<int, std::greater<>> classes;
  for (const Demand& d : demands) classes.insert(d.priority);

  for (int priority : classes) {
    std::vector<std::size_t> members;
    for (std::size_t d = 0; d < demands.size(); ++d)
      if (demands[d].priority == priority && !tunnels[d].empty())
        members.push_back(d);

    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t d : members) {
        if (unmet[d] <= flow::kFlowEps) continue;
        // Best tunnel with spare capacity.
        for (std::size_t t = 0; t < tunnels[d].size(); ++t) {
          double spare = std::numeric_limits<double>::infinity();
          for (graph::EdgeId edge : tunnels[d][t].path.edges)
            spare = std::min(spare,
                             remaining[static_cast<std::size_t>(edge.value)]);
          if (spare <= flow::kFlowEps) continue;
          const double amount =
              std::min({options_.quantum.value, unmet[d], spare});
          for (graph::EdgeId edge : tunnels[d][t].path.edges)
            remaining[static_cast<std::size_t>(edge.value)] -= amount;
          allocation[d][t] += amount;
          unmet[d] -= amount;
          progress = true;
          break;
        }
      }
    }
  }

  for (std::size_t d = 0; d < demands.size(); ++d)
    for (const auto& [tunnel_index, volume] : allocation[d])
      result.routings[d].paths.emplace_back(tunnels[d][tunnel_index].path,
                                            Gbps{volume});
  finalize_assignment(graph, result);
  return result;
}

}  // namespace rwc::te
