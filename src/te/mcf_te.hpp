// Min-cost-flow TE: demands are routed sequentially (priority order, then
// input order) as min-cost flows on a shared residual network. This is the
// engine the augmentation theorem directly targets: on an augmented topology
// the min-cost route maximizes throughput while minimizing activation
// penalty for each demand in turn.
//
// Warm starts: every per-demand solve is keyed by an exact fingerprint of
// its residual network (capacities after earlier demands, costs,
// terminals). Across controller rounds where little changed — the common
// steady state — most per-demand networks recur bit-identically and the
// min-cost solver replays its recorded augmenting paths instead of running
// Dijkstra per path. Replay is exact, so results are bit-identical to cold
// solves; on any change the fingerprint misses and the solve runs cold
// (docs/CONCURRENCY.md, "Warm starts"). Safe under concurrent solve()
// calls: the cache is thread-safe and only affects timing, never results.
#pragma once

#include "flow/mincost.hpp"
#include "te/algorithm.hpp"
#include "util/env.hpp"

namespace rwc::te {

class McfTe final : public TeAlgorithm {
 public:
  struct Options {
    /// Record/replay per-demand min-cost solves (exact; on by default).
    bool warm_start = true;
    /// Max recordings kept (FIFO); ~one per (demand, topology state). Must
    /// cover a full round's demand count or cyclic FIFO thrash turns every
    /// repeat solve into a miss (docs/CONCURRENCY.md, "Warm starts").
    std::size_t warm_cache_entries = 8192;
    /// On an exact-fingerprint miss, look up a structurally matching
    /// recording and let the solver attempt a verified partial repair
    /// (docs/SOLVERS.md). Bit-identical to a cold solve by construction;
    /// RWC_PARTIAL_RESOLVE=0 flips the default off for bisection.
    bool partial_repair = util::env_flag("RWC_PARTIAL_RESOLVE", true);
  };

  McfTe() : McfTe(Options{}) {}
  explicit McfTe(Options options)
      : options_(options), warm_cache_(options.warm_cache_entries) {}

  std::string name() const override { return "mcf"; }

  FlowAssignment solve(const graph::Graph& graph,
                       const TrafficMatrix& demands) const override;

  const Options& options() const { return options_; }

  /// The engine's warm-start store, exposed for checkpointing
  /// (rwc::replay persists or cold-resets it across restore). Mutating it
  /// only changes solve timing, never results.
  flow::WarmStartCache& warm_cache() const { return warm_cache_; }

 private:
  Options options_;
  mutable flow::WarmStartCache warm_cache_;
};

}  // namespace rwc::te
