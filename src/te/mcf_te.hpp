// Min-cost-flow TE: demands are routed sequentially (priority order, then
// input order) as min-cost flows on a shared residual network. This is the
// engine the augmentation theorem directly targets: on an augmented topology
// the min-cost route maximizes throughput while minimizing activation
// penalty for each demand in turn.
#pragma once

#include "te/algorithm.hpp"

namespace rwc::te {

class McfTe final : public TeAlgorithm {
 public:
  std::string name() const override { return "mcf"; }

  FlowAssignment solve(const graph::Graph& graph,
                       const TrafficMatrix& demands) const override;
};

}  // namespace rwc::te
