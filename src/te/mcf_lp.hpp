// Exact multi-commodity-flow TE via an edge-based LP: one flow variable per
// (commodity, edge), conservation at every interior node, shared edge
// capacities. Lexicographic like SWAN: maximize throughput per priority
// class (high to low), then minimize total edge cost.
//
// This is the optimality REFERENCE for the other engines: unlike the
// path-based SWAN LP it is not limited to k preinstalled tunnels, so its
// throughput upper-bounds every engine here. Dense-simplex sized: use on
// small instances (the tests) — variables = commodities x edges.
#pragma once

#include "te/algorithm.hpp"

namespace rwc::te {

class McfLpTe final : public TeAlgorithm {
 public:
  std::string name() const override { return "mcf-lp"; }

  FlowAssignment solve(const graph::Graph& graph,
                       const TrafficMatrix& demands) const override;
};

}  // namespace rwc::te
