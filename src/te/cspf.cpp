#include "te/cspf.hpp"

#include <algorithm>
#include <numeric>

#include "flow/network.hpp"
#include "graph/dijkstra.hpp"
#include "util/check.hpp"

namespace rwc::te {

using util::Gbps;

FlowAssignment CspfTe::solve(const graph::Graph& graph,
                             const TrafficMatrix& demands) const {
  FlowAssignment result;
  result.routings.resize(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i)
    result.routings[i].demand = demands[i];

  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return demands[a].priority > demands[b].priority;
                   });

  std::vector<double> remaining(graph.edge_count());
  for (graph::EdgeId edge : graph.edge_ids())
    remaining[static_cast<std::size_t>(edge.value)] =
        graph.edge(edge).capacity.value;

  // Cost participates as a small weight perturbation so that among
  // equal-weight paths the cheaper one wins without distorting the metric.
  double max_cost = 0.0;
  for (graph::EdgeId edge : graph.edge_ids())
    max_cost = std::max(max_cost, graph.edge(edge).cost);
  const double cost_scale =
      max_cost > 0.0
          ? 1e-6 / (max_cost * static_cast<double>(graph.edge_count() + 1))
          : 0.0;

  for (std::size_t index : order) {
    const Demand& demand = demands[index];
    if (demand.volume.value <= flow::kFlowEps) continue;
    RWC_EXPECTS(demand.src != demand.dst);
    auto& routing = result.routings[index];

    double left = demand.volume.value;
    // Guard against pathological loops: at most one iteration per edge per
    // chunk is ever useful.
    std::size_t iterations = 0;
    const std::size_t max_iterations = 4 * (graph.edge_count() + 16);
    while (left > flow::kFlowEps && iterations++ < max_iterations) {
      const double want =
          chunk_.value > 0.0 ? std::min(chunk_.value, left) : left;
      auto usable = [&](graph::EdgeId edge) {
        return remaining[static_cast<std::size_t>(edge.value)] >
               flow::kFlowEps;
      };
      auto weight = [&](graph::EdgeId edge) {
        return graph.edge(edge).weight +
               cost_scale * graph.edge(edge).cost;
      };
      const auto tree =
          graph::dijkstra(graph, demand.src, weight, usable);
      graph::Path path = graph::extract_path(graph, tree, demand.dst);
      if (path.empty()) break;

      double bottleneck = want;
      for (graph::EdgeId edge : path.edges)
        bottleneck = std::min(
            bottleneck, remaining[static_cast<std::size_t>(edge.value)]);
      if (bottleneck <= flow::kFlowEps) break;
      for (graph::EdgeId edge : path.edges)
        remaining[static_cast<std::size_t>(edge.value)] -= bottleneck;
      left -= bottleneck;
      routing.paths.emplace_back(std::move(path), Gbps{bottleneck});
    }
  }
  finalize_assignment(graph, result);
  return result;
}

}  // namespace rwc::te
