// Library identification for rwc_te.
namespace rwc::te {

/// Version string of the te subsystem (matches the top-level project).
const char* version() { return "1.0.0"; }

}  // namespace rwc::te
