// Consistent network updates (Section 4.2 (ii)): transition from an old
// flow assignment to a new one through ordered steps such that no edge is
// ever loaded beyond its capacity at any intermediate point. Used by the
// controller to drain traffic off links whose capacity is about to change.
//
// The planner uses the classic two-phase rule: removals (and shrink-downs)
// first, then additions — valid whenever both endpoints assignments are
// individually feasible and capacities do not shrink mid-transition. When a
// capacity does shrink (a link flap to a lower rate), removals on that edge
// are ordered before everything else.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "te/demand.hpp"

namespace rwc::te {

/// One step of a transition plan.
struct UpdateStep {
  enum class Kind { kRemove, kAdd };
  Kind kind = Kind::kRemove;
  std::size_t demand_index = 0;
  graph::Path path;
  util::Gbps volume{0.0};
};

struct UpdatePlan {
  std::vector<UpdateStep> steps;
  /// Peak per-edge load observed across all intermediate states.
  std::vector<double> peak_edge_load_gbps;
};

/// Plans a transition from `before` to `after` on `graph` (whose edge
/// capacities are the ones that hold DURING the transition — pass the
/// minimum of old and new capacity for links being reconfigured).
UpdatePlan plan_transition(const graph::Graph& graph,
                           const FlowAssignment& before,
                           const FlowAssignment& after);

/// Replays the plan and verifies no intermediate state exceeds capacities.
/// Returns false (and fills `violation` when non-null) on overload.
bool validate_transition(const graph::Graph& graph,
                         const FlowAssignment& before, const UpdatePlan& plan,
                         std::string* violation = nullptr);

}  // namespace rwc::te
