#include "te/protection.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "flow/disjoint.hpp"
#include "flow/network.hpp"
#include "util/check.hpp"

namespace rwc::te {

ProtectionPlan plan_protection(const graph::Graph& graph,
                               const TrafficMatrix& demands) {
  ProtectionPlan plan;
  plan.reserved_gbps.assign(graph.edge_count(), 0.0);

  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return demands[a].priority > demands[b].priority;
                   });

  // Working copy whose weights are the originals but whose edges drop out
  // once their spare capacity cannot host the candidate volume.
  for (std::size_t index : order) {
    const Demand& demand = demands[index];
    RWC_EXPECTS(demand.volume.value >= 0.0);
    if (demand.volume.value <= flow::kFlowEps) continue;

    // Filtered copy containing only edges with enough spare capacity for
    // this volume (edge_disjoint_pair uses unit capacities internally, so
    // usability is encoded by edge presence); original_of maps back.
    std::vector<bool> usable(graph.edge_count(), false);
    for (graph::EdgeId e : graph.edge_ids()) {
      const double spare =
          graph.edge(e).capacity.value -
          plan.reserved_gbps[static_cast<std::size_t>(e.value)];
      usable[static_cast<std::size_t>(e.value)] =
          spare + flow::kFlowEps >= demand.volume.value;
    }
    graph::Graph filtered;
    for (graph::NodeId node : graph.node_ids())
      filtered.add_node(graph.node_name(node));
    std::vector<graph::EdgeId> original_of;
    for (graph::EdgeId e : graph.edge_ids()) {
      if (!usable[static_cast<std::size_t>(e.value)]) continue;
      const graph::Edge& edge = graph.edge(e);
      filtered.add_edge(edge.src, edge.dst, edge.capacity, edge.cost,
                        edge.weight);
      original_of.push_back(e);
    }

    const auto pair =
        flow::edge_disjoint_pair(filtered, demand.src, demand.dst);
    if (!pair.has_value()) {
      plan.unprotected.push_back(demand);
      continue;
    }

    auto remap = [&](const graph::Path& path) {
      graph::Path mapped;
      mapped.weight = path.weight;
      for (graph::EdgeId e : path.edges)
        mapped.edges.push_back(
            original_of[static_cast<std::size_t>(e.value)]);
      return mapped;
    };
    ProtectedService service;
    service.demand = demand;
    service.primary = remap(pair->first);
    service.backup = remap(pair->second);
    for (const graph::Path* path : {&service.primary, &service.backup})
      for (graph::EdgeId e : path->edges)
        plan.reserved_gbps[static_cast<std::size_t>(e.value)] +=
            demand.volume.value;
    plan.services.push_back(std::move(service));
  }
  return plan;
}

bool survives_any_single_failure(const ProtectionPlan& plan) {
  for (const ProtectedService& service : plan.services) {
    std::set<graph::EdgeId> primary(service.primary.edges.begin(),
                                    service.primary.edges.end());
    for (graph::EdgeId e : service.backup.edges)
      if (primary.contains(e)) return false;
  }
  return true;
}

}  // namespace rwc::te
