// MPLS-TE-style CSPF (constrained shortest path first): each demand is
// placed greedily on the shortest-weight path with enough headroom, splitting
// into chunks when no single path fits. Cost-aware tie-breaking: among
// shortest paths the engine prefers lower total edge cost, which is what
// lets it cooperate with the augmentation's penalties.
#pragma once

#include "te/algorithm.hpp"

namespace rwc::te {

class CspfTe final : public TeAlgorithm {
 public:
  /// `chunk` is the granularity of splitting when a demand does not fit on
  /// one path (0 = route whatever the bottleneck allows per iteration).
  explicit CspfTe(util::Gbps chunk = util::Gbps{0.0}) : chunk_(chunk) {}

  std::string name() const override { return "cspf"; }

  FlowAssignment solve(const graph::Graph& graph,
                       const TrafficMatrix& demands) const override;

 private:
  util::Gbps chunk_;
};

}  // namespace rwc::te
