// The TE engine interface. Theorem 1's promise is that engines implementing
// this interface run UNMODIFIED on augmented topologies: they receive a
// Graph whose edges carry <capacity, cost, weight> and a TrafficMatrix, and
// return a FlowAssignment. Nothing here knows about SNR or fake links.
#pragma once

#include <memory>
#include <string>

#include "graph/graph.hpp"
#include "te/demand.hpp"

namespace rwc::te {

class TeAlgorithm {
 public:
  virtual ~TeAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Routes as much of `demands` as possible subject to edge capacities,
  /// preferring low-cost edges (engines differ in how strictly).
  virtual FlowAssignment solve(const graph::Graph& graph,
                               const TrafficMatrix& demands) const = 0;
};

}  // namespace rwc::te
