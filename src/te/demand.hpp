// Traffic demands and flow assignments — the interface between TE engines
// and everything else. TE engines see only a Graph and a TrafficMatrix;
// they are deliberately unaware of dynamic capacities (Section 4's point).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/units.hpp"

namespace rwc::te {

/// One src->dst traffic demand. Higher priority is served first by greedy
/// engines and never starved by the LP engine's lexicographic passes.
struct Demand {
  graph::NodeId src;
  graph::NodeId dst;
  util::Gbps volume{0.0};
  int priority = 0;

  friend bool operator==(const Demand&, const Demand&) = default;
};

using TrafficMatrix = std::vector<Demand>;

/// Total offered volume.
util::Gbps total_demand(const TrafficMatrix& demands);

/// The routing a TE engine produced.
struct FlowAssignment {
  struct DemandRouting {
    Demand demand;
    /// Paths carrying this demand and the volume on each.
    std::vector<std::pair<graph::Path, util::Gbps>> paths;
    util::Gbps routed{0.0};
  };

  std::vector<DemandRouting> routings;   // one per input demand, same order
  std::vector<double> edge_load_gbps;    // indexed by EdgeId
  util::Gbps total_routed{0.0};
  /// Sum over edges of load * edge cost (the penalty the engine paid).
  double total_cost = 0.0;
};

/// Recomputes edge loads / totals from the per-demand paths; validates that
/// no edge is loaded beyond capacity (within tolerance) and that path
/// volumes sum to the routed amounts. Throws util::CheckError on violations.
void validate_assignment(const graph::Graph& graph,
                         const FlowAssignment& assignment,
                         double tolerance = 1e-6);

/// Builds edge loads and totals from routings (helper for engines).
void finalize_assignment(const graph::Graph& graph,
                         FlowAssignment& assignment);

}  // namespace rwc::te
