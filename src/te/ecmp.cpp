#include "te/ecmp.hpp"

#include <algorithm>

#include "flow/network.hpp"
#include "graph/ksp.hpp"
#include "util/check.hpp"

namespace rwc::te {

using util::Gbps;

FlowAssignment EcmpTe::solve(const graph::Graph& graph,
                             const TrafficMatrix& demands) const {
  RWC_EXPECTS(max_paths_ >= 1);
  FlowAssignment result;
  result.routings.resize(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i)
    result.routings[i].demand = demands[i];

  std::vector<double> remaining(graph.edge_count());
  for (graph::EdgeId edge : graph.edge_ids())
    remaining[static_cast<std::size_t>(edge.value)] =
        graph.edge(edge).capacity.value;

  for (std::size_t d = 0; d < demands.size(); ++d) {
    const Demand& demand = demands[d];
    if (demand.volume.value <= flow::kFlowEps) continue;
    RWC_EXPECTS(demand.src != demand.dst);

    // Equal-cost shortest paths (within epsilon of the best weight).
    auto paths =
        graph::k_shortest_paths(graph, demand.src, demand.dst, max_paths_);
    if (paths.empty()) continue;
    const double best_weight = paths.front().weight;
    std::erase_if(paths, [&](const graph::Path& p) {
      return p.weight > best_weight + 1e-9;
    });

    // Oblivious equal split; excess over a path's spare capacity is lost.
    const double share =
        demand.volume.value / static_cast<double>(paths.size());
    for (graph::Path& path : paths) {
      double spare = share;
      for (graph::EdgeId edge : path.edges)
        spare = std::min(spare,
                         remaining[static_cast<std::size_t>(edge.value)]);
      if (spare <= flow::kFlowEps) continue;
      for (graph::EdgeId edge : path.edges)
        remaining[static_cast<std::size_t>(edge.value)] -= spare;
      result.routings[d].paths.emplace_back(std::move(path), Gbps{spare});
    }
  }
  finalize_assignment(graph, result);
  return result;
}

}  // namespace rwc::te
