#include "te/demand.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rwc::te {

using util::Gbps;

Gbps total_demand(const TrafficMatrix& demands) {
  Gbps total{0.0};
  for (const Demand& d : demands) total += d.volume;
  return total;
}

void finalize_assignment(const graph::Graph& graph,
                         FlowAssignment& assignment) {
  assignment.edge_load_gbps.assign(graph.edge_count(), 0.0);
  assignment.total_routed = Gbps{0.0};
  assignment.total_cost = 0.0;
  for (auto& routing : assignment.routings) {
    routing.routed = Gbps{0.0};
    for (const auto& [path, volume] : routing.paths) {
      routing.routed += volume;
      for (graph::EdgeId edge : path.edges)
        assignment.edge_load_gbps[static_cast<std::size_t>(edge.value)] +=
            volume.value;
    }
    assignment.total_routed += routing.routed;
  }
  for (graph::EdgeId edge : graph.edge_ids())
    assignment.total_cost +=
        assignment.edge_load_gbps[static_cast<std::size_t>(edge.value)] *
        graph.edge(edge).cost;
}

void validate_assignment(const graph::Graph& graph,
                         const FlowAssignment& assignment,
                         double tolerance) {
  RWC_EXPECTS(assignment.edge_load_gbps.size() == graph.edge_count());
  // Edge loads within capacity and consistent with the path volumes.
  std::vector<double> recomputed(graph.edge_count(), 0.0);
  for (const auto& routing : assignment.routings) {
    double routed = 0.0;
    for (const auto& [path, volume] : routing.paths) {
      RWC_CHECK_MSG(volume.value >= -tolerance, "negative path volume");
      routed += volume.value;
      // Path endpoints must match the demand.
      if (!path.empty()) {
        const auto nodes = graph::path_nodes(graph, path);
        RWC_CHECK_MSG(nodes.front() == routing.demand.src &&
                          nodes.back() == routing.demand.dst,
                      "path endpoints do not match demand");
      }
      for (graph::EdgeId edge : path.edges)
        recomputed[static_cast<std::size_t>(edge.value)] += volume.value;
    }
    RWC_CHECK_MSG(std::abs(routed - routing.routed.value) <
                      tolerance + 1e-9 * std::abs(routed),
                  "routed volume mismatch");
    RWC_CHECK_MSG(routed <= routing.demand.volume.value + tolerance,
                  "demand over-served");
  }
  for (graph::EdgeId edge : graph.edge_ids()) {
    const auto i = static_cast<std::size_t>(edge.value);
    RWC_CHECK_MSG(std::abs(recomputed[i] - assignment.edge_load_gbps[i]) <
                      tolerance + 1e-9 * recomputed[i],
                  "edge load mismatch");
    RWC_CHECK_MSG(recomputed[i] <= graph.edge(edge).capacity.value + tolerance,
                  "edge over capacity");
  }
}

}  // namespace rwc::te
