// B4-style greedy TE (Jain et al., SIGCOMM 2013): demands are grouped by
// priority; within a class, bandwidth is handed out in small quanta,
// round-robin across demands (progressive filling — approximate max-min
// fairness), each demand taking its best available tunnel from k
// preinstalled shortest paths.
#pragma once

#include "te/algorithm.hpp"

namespace rwc::te {

class B4Te final : public TeAlgorithm {
 public:
  struct Options {
    std::size_t paths_per_demand = 4;
    util::Gbps quantum{1.0};
  };

  B4Te() : options_{} {}
  explicit B4Te(Options options) : options_(options) {}

  std::string name() const override { return "b4"; }

  FlowAssignment solve(const graph::Graph& graph,
                       const TrafficMatrix& demands) const override;

 private:
  Options options_;
};

}  // namespace rwc::te
