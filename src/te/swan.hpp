// SWAN-style LP traffic engineering (Hong et al., SIGCOMM 2013):
// path-based multi-commodity flow over k preinstalled tunnels per demand,
// solved lexicographically — priority classes high to low, maximize
// throughput, then minimize total edge cost at that throughput (the pass
// that makes augmentation penalties effective), with optional approximate
// max-min fairness within a class via iterative LP water-filling.
#pragma once

#include "graph/path_cache.hpp"
#include "lp/simplex.hpp"
#include "te/algorithm.hpp"
#include "util/env.hpp"

namespace rwc::te {

class SwanTe final : public TeAlgorithm {
 public:
  struct Options {
    std::size_t paths_per_demand = 4;
    bool max_min_fairness = false;
    /// Relative slack when fixing the throughput between the two passes.
    double throughput_slack = 1e-9;
    /// Reuse tunnel (k-shortest-path) precomputation across solves on
    /// structurally identical graphs via graph::PathCache. Tunnels depend
    /// only on weights, never capacities, so cached results are identical
    /// to recomputation; the cache only saves time (docs/CONCURRENCY.md).
    bool use_path_cache = true;
    /// Warm-start every LP solve from the previous round's pivot recording
    /// (lp::LpWarmCache). Across rounds the SWAN LPs are rhs-only
    /// perturbations of each other (capacities, volumes, locked
    /// throughputs), so the verified pivot replay applies and results stay
    /// bit-identical to cold solves (docs/SOLVERS.md).
    /// RWC_PARTIAL_RESOLVE=0 flips the default off for bisection.
    bool warm_basis = util::env_flag("RWC_PARTIAL_RESOLVE", true);
  };

  SwanTe() : options_{} {}
  explicit SwanTe(Options options) : options_(options) {}

  std::string name() const override { return "swan"; }

  FlowAssignment solve(const graph::Graph& graph,
                       const TrafficMatrix& demands) const override;

  /// The tunnel cache, exposed for checkpointing (rwc::replay persists or
  /// cold-resets it across restore). Timing-only: cached entries are by
  /// definition identical to recomputation.
  graph::PathCache& path_cache() const { return path_cache_; }

  /// The LP warm-basis cache. Deliberately NOT checkpointed: warm bases
  /// are observational, so after a restore the first solves run cold and
  /// re-record (docs/REPLAY.md). Mutating it only changes timing.
  lp::LpWarmCache& lp_cache() const { return lp_cache_; }

 private:
  Options options_;
  /// Tunnel precomputation cache; thread-safe, shared across solves.
  mutable graph::PathCache path_cache_;
  /// Pivot recordings keyed by LP structure; thread-safe, timing-only.
  mutable lp::LpWarmCache lp_cache_;
};

}  // namespace rwc::te
