#include "te/swan.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "flow/network.hpp"
#include "graph/ksp.hpp"
#include "lp/simplex.hpp"
#include "obs/timer.hpp"
#include "util/check.hpp"

namespace rwc::te {

using util::Gbps;

namespace {

/// One LP variable: volume on `path` of demand `demand_index`.
struct PathVariable {
  std::size_t demand_index;
  graph::Path path;
  double cost = 0.0;  // sum of edge costs along the path
};

struct LpShape {
  std::vector<PathVariable> variables;
  /// variable indices per demand.
  std::vector<std::vector<int>> by_demand;
  /// variable indices per edge (only edges used by some path).
  std::map<int, std::vector<int>> by_edge;
};

LpShape build_shape(const graph::Graph& graph, const TrafficMatrix& demands,
                    std::size_t k, graph::PathCache* path_cache) {
  LpShape shape;
  shape.by_demand.resize(demands.size());
  for (std::size_t d = 0; d < demands.size(); ++d) {
    if (demands[d].volume.value <= flow::kFlowEps) continue;
    RWC_EXPECTS(demands[d].src != demands[d].dst);
    const auto paths =
        path_cache != nullptr
            ? path_cache->k_shortest(graph, demands[d].src, demands[d].dst, k)
            : graph::k_shortest_paths(graph, demands[d].src, demands[d].dst,
                                      k);
    for (const graph::Path& path : paths) {
      PathVariable variable{d, path, 0.0};
      for (graph::EdgeId edge : path.edges)
        variable.cost += graph.edge(edge).cost;
      const int var_index = static_cast<int>(shape.variables.size());
      shape.by_demand[d].push_back(var_index);
      for (graph::EdgeId edge : path.edges)
        shape.by_edge[edge.value].push_back(var_index);
      shape.variables.push_back(std::move(variable));
    }
  }
  return shape;
}

/// Adds the shared structure: demand caps and edge capacities. `x_of` maps
/// shape-variable index -> LP variable index.
void add_shared_constraints(lp::LpProblem& problem, const graph::Graph& graph,
                            const TrafficMatrix& demands,
                            const LpShape& shape,
                            const std::vector<int>& x_of) {
  for (std::size_t d = 0; d < demands.size(); ++d) {
    if (shape.by_demand[d].empty()) continue;
    std::vector<lp::Term> terms;
    for (int v : shape.by_demand[d]) terms.push_back({x_of[static_cast<std::size_t>(v)], 1.0});
    problem.add_constraint(std::move(terms), lp::Relation::kLessEqual,
                           demands[d].volume.value);
  }
  for (const auto& [edge_value, vars] : shape.by_edge) {
    std::vector<lp::Term> terms;
    for (int v : vars) terms.push_back({x_of[static_cast<std::size_t>(v)], 1.0});
    problem.add_constraint(
        std::move(terms), lp::Relation::kLessEqual,
        graph.edge(graph::EdgeId{edge_value}).capacity.value);
  }
}

}  // namespace

FlowAssignment SwanTe::solve(const graph::Graph& graph,
                             const TrafficMatrix& demands) const {
  static auto& solves = obs::Registry::global().counter("te.swan.solves");
  static auto& seconds =
      obs::Registry::global().histogram("te.swan.solve_seconds");
  solves.add();
  obs::ScopedTimer timer(seconds);

  FlowAssignment result;
  result.routings.resize(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i)
    result.routings[i].demand = demands[i];

  const LpShape shape =
      build_shape(graph, demands, options_.paths_per_demand,
                  options_.use_path_cache ? &path_cache_ : nullptr);
  const int n_vars = static_cast<int>(shape.variables.size());
  if (n_vars == 0) {
    finalize_assignment(graph, result);
    return result;
  }
  std::vector<int> x_of(static_cast<std::size_t>(n_vars));
  for (int v = 0; v < n_vars; ++v) x_of[static_cast<std::size_t>(v)] = v;

  // Across controller rounds the LPs below differ from the previous
  // round's only in rhs values (capacities, volumes, locked throughputs),
  // which is exactly the perturbation the LP warm cache's verified pivot
  // replay handles; results are bit-identical with or without the cache.
  // (A locked throughput crossing zero flips that row's rhs sign and
  // structurally misses — the solve just runs cold and re-records.)
  lp::LpWarmCache* const lp_cache =
      options_.warm_basis ? &lp_cache_ : nullptr;

  // Priority classes, high to low; each class's achieved throughput becomes
  // a >= constraint for later passes.
  std::set<int, std::greater<>> classes;
  for (const Demand& d : demands) classes.insert(d.priority);

  // class -> throughput locked in by its maximize pass.
  std::vector<std::pair<int, double>> locked;

  auto class_terms = [&](int priority) {
    std::vector<lp::Term> terms;
    for (int v = 0; v < n_vars; ++v)
      if (demands[shape.variables[static_cast<std::size_t>(v)].demand_index]
              .priority == priority)
        terms.push_back({v, 1.0});
    return terms;
  };

  auto add_locked = [&](lp::LpProblem& problem) {
    for (const auto& [priority, throughput] : locked) {
      auto terms = class_terms(priority);
      if (terms.empty()) continue;
      problem.add_constraint(
          std::move(terms), lp::Relation::kGreaterEqual,
          throughput * (1.0 - options_.throughput_slack) - 1e-9);
    }
  };

  for (int priority : classes) {
    // Pass A: maximize this class's throughput.
    lp::LpProblem maximize(lp::Sense::kMaximize);
    for (int v = 0; v < n_vars; ++v) {
      const bool in_class =
          demands[shape.variables[static_cast<std::size_t>(v)].demand_index]
              .priority == priority;
      maximize.add_variable(in_class ? 1.0 : 0.0);
    }
    add_shared_constraints(maximize, graph, demands, shape, x_of);
    add_locked(maximize);
    const auto max_solution = maximize.solve(lp_cache);
    RWC_CHECK_MSG(max_solution.optimal(), "SWAN throughput LP not optimal");
    locked.emplace_back(priority, max_solution.objective);
  }

  // Final pass: all class throughputs locked; minimize total path cost.
  lp::LpProblem minimize(lp::Sense::kMinimize);
  for (int v = 0; v < n_vars; ++v)
    minimize.add_variable(shape.variables[static_cast<std::size_t>(v)].cost);
  add_shared_constraints(minimize, graph, demands, shape, x_of);
  add_locked(minimize);
  auto solution = minimize.solve(lp_cache);
  RWC_CHECK_MSG(solution.optimal(), "SWAN cost LP not optimal");

  if (options_.max_min_fairness) {
    // Water-filling refinement: scale every demand's share up uniformly,
    // freezing saturated demands, while keeping the cost-optimal basis as a
    // fallback if any LP fails.
    std::vector<double> frozen(demands.size(), -1.0);
    for (int round = 0; round < 32; ++round) {
      lp::LpProblem fair(lp::Sense::kMaximize);
      for (int v = 0; v < n_vars; ++v) fair.add_variable(0.0);
      const int t = fair.add_variable(1.0, 1.0, "t");
      add_shared_constraints(fair, graph, demands, shape, x_of);
      add_locked(fair);
      bool any_unfrozen = false;
      for (std::size_t d = 0; d < demands.size(); ++d) {
        if (shape.by_demand[d].empty()) continue;
        std::vector<lp::Term> terms;
        for (int v : shape.by_demand[d]) terms.push_back({v, 1.0});
        if (frozen[d] >= 0.0) {
          fair.add_constraint(std::move(terms), lp::Relation::kGreaterEqual,
                              frozen[d] - 1e-9);
        } else {
          any_unfrozen = true;
          terms.push_back({t, -demands[d].volume.value});
          fair.add_constraint(std::move(terms), lp::Relation::kGreaterEqual,
                              0.0);
        }
      }
      if (!any_unfrozen) break;
      const auto fair_solution = fair.solve(lp_cache);
      if (!fair_solution.optimal()) break;
      const double t_star =
          fair_solution.values[static_cast<std::size_t>(t)];
      bool progressed = false;
      for (std::size_t d = 0; d < demands.size(); ++d) {
        if (frozen[d] >= 0.0 || shape.by_demand[d].empty()) continue;
        double alloc = 0.0;
        for (int v : shape.by_demand[d])
          alloc += fair_solution.values[static_cast<std::size_t>(v)];
        const double fair_share = t_star * demands[d].volume.value;
        if (alloc <= fair_share + 1e-6 || t_star >= 1.0 - 1e-9) {
          frozen[d] = std::min(alloc, demands[d].volume.value);
          progressed = true;
        }
      }
      solution = fair_solution;
      if (!progressed) break;
    }
  }

  for (int v = 0; v < n_vars; ++v) {
    const double volume = solution.values[static_cast<std::size_t>(v)];
    if (volume <= 1e-7) continue;
    const PathVariable& variable = shape.variables[static_cast<std::size_t>(v)];
    result.routings[variable.demand_index].paths.emplace_back(variable.path,
                                                              Gbps{volume});
  }
  finalize_assignment(graph, result);
  return result;
}

}  // namespace rwc::te
