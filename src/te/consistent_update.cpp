#include "te/consistent_update.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace rwc::te {

using util::Gbps;

namespace {

/// Key identifying a (demand, path) pair across assignments.
using PathKey = std::pair<std::size_t, std::vector<graph::EdgeId>>;

std::map<PathKey, double> path_volumes(const FlowAssignment& assignment) {
  std::map<PathKey, double> volumes;
  for (std::size_t d = 0; d < assignment.routings.size(); ++d)
    for (const auto& [path, volume] : assignment.routings[d].paths)
      volumes[{d, path.edges}] += volume.value;
  return volumes;
}

graph::Path make_path(const graph::Graph& graph,
                      const std::vector<graph::EdgeId>& edges) {
  graph::Path path;
  path.edges = edges;
  for (graph::EdgeId edge : edges) path.weight += graph.edge(edge).weight;
  return path;
}

}  // namespace

UpdatePlan plan_transition(const graph::Graph& graph,
                           const FlowAssignment& before,
                           const FlowAssignment& after) {
  const auto old_volumes = path_volumes(before);
  const auto new_volumes = path_volumes(after);

  UpdatePlan plan;
  // Removals / shrink-downs first.
  for (const auto& [key, old_volume] : old_volumes) {
    const auto it = new_volumes.find(key);
    const double new_volume = it == new_volumes.end() ? 0.0 : it->second;
    if (new_volume < old_volume - 1e-9)
      plan.steps.push_back(UpdateStep{UpdateStep::Kind::kRemove, key.first,
                                      make_path(graph, key.second),
                                      Gbps{old_volume - new_volume}});
  }
  // Then additions / grow-ups.
  for (const auto& [key, new_volume] : new_volumes) {
    const auto it = old_volumes.find(key);
    const double old_volume = it == old_volumes.end() ? 0.0 : it->second;
    if (new_volume > old_volume + 1e-9)
      plan.steps.push_back(UpdateStep{UpdateStep::Kind::kAdd, key.first,
                                      make_path(graph, key.second),
                                      Gbps{new_volume - old_volume}});
  }

  // Replay to record peak loads.
  std::vector<double> load = before.edge_load_gbps;
  load.resize(graph.edge_count(), 0.0);
  plan.peak_edge_load_gbps = load;
  for (const UpdateStep& step : plan.steps) {
    const double sign = step.kind == UpdateStep::Kind::kRemove ? -1.0 : 1.0;
    for (graph::EdgeId edge : step.path.edges) {
      auto& l = load[static_cast<std::size_t>(edge.value)];
      l += sign * step.volume.value;
      plan.peak_edge_load_gbps[static_cast<std::size_t>(edge.value)] =
          std::max(plan.peak_edge_load_gbps[static_cast<std::size_t>(edge.value)],
                   l);
    }
  }
  return plan;
}

bool validate_transition(const graph::Graph& graph,
                         const FlowAssignment& before, const UpdatePlan& plan,
                         std::string* violation) {
  std::vector<double> load = before.edge_load_gbps;
  load.resize(graph.edge_count(), 0.0);
  constexpr double kTolerance = 1e-6;

  auto check = [&](std::size_t step_index) {
    for (graph::EdgeId edge : graph.edge_ids()) {
      const auto i = static_cast<std::size_t>(edge.value);
      if (load[i] > graph.edge(edge).capacity.value + kTolerance) {
        if (violation != nullptr) {
          std::ostringstream os;
          os << "edge " << graph.node_name(graph.edge(edge).src) << "->"
             << graph.node_name(graph.edge(edge).dst) << " overloaded ("
             << load[i] << " > " << graph.edge(edge).capacity.value
             << " Gbps) after step " << step_index;
          *violation = os.str();
        }
        return false;
      }
    }
    return true;
  };

  if (!check(0)) return false;
  for (std::size_t s = 0; s < plan.steps.size(); ++s) {
    const UpdateStep& step = plan.steps[s];
    const double sign = step.kind == UpdateStep::Kind::kRemove ? -1.0 : 1.0;
    for (graph::EdgeId edge : step.path.edges)
      load[static_cast<std::size_t>(edge.value)] += sign * step.volume.value;
    if (!check(s + 1)) return false;
  }
  return true;
}

}  // namespace rwc::te
