// ECMP baseline: each demand splits equally over its equal-weight shortest
// paths, oblivious to load — the distributed-routing behaviour WAN TE
// systems replaced. Included as the "before" baseline in comparisons: it is
// cost- and load-oblivious, so it neither exploits fake links deliberately
// nor avoids penalties; traffic exceeding a path's share is simply dropped.
#pragma once

#include "te/algorithm.hpp"

namespace rwc::te {

class EcmpTe final : public TeAlgorithm {
 public:
  /// `max_paths` caps how many equal-cost paths a demand spreads over.
  explicit EcmpTe(std::size_t max_paths = 4) : max_paths_(max_paths) {}

  std::string name() const override { return "ecmp"; }

  FlowAssignment solve(const graph::Graph& graph,
                       const TrafficMatrix& demands) const override;

 private:
  std::size_t max_paths_;
};

}  // namespace rwc::te
