#include "te/mcf_lp.hpp"

#include <set>

#include "flow/decompose.hpp"
#include "flow/network.hpp"
#include "lp/simplex.hpp"
#include "util/check.hpp"

namespace rwc::te {

using util::Gbps;

FlowAssignment McfLpTe::solve(const graph::Graph& graph,
                              const TrafficMatrix& demands) const {
  FlowAssignment result;
  result.routings.resize(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i)
    result.routings[i].demand = demands[i];

  const int edges = static_cast<int>(graph.edge_count());
  const int commodities = static_cast<int>(demands.size());
  if (edges == 0 || commodities == 0) {
    finalize_assignment(graph, result);
    return result;
  }
  auto var = [&](int k, int e) { return k * edges + e; };

  // Net outflow of commodity k at its source, as LP terms.
  auto source_terms = [&](int k) {
    std::vector<lp::Term> terms;
    const graph::NodeId src = demands[static_cast<std::size_t>(k)].src;
    for (graph::EdgeId e : graph.out_edges(src))
      terms.push_back({var(k, e.value), 1.0});
    for (graph::EdgeId e : graph.in_edges(src))
      terms.push_back({var(k, e.value), -1.0});
    return terms;
  };

  auto add_shared = [&](lp::LpProblem& problem) {
    // Conservation at interior nodes, per commodity.
    for (int k = 0; k < commodities; ++k) {
      const Demand& demand = demands[static_cast<std::size_t>(k)];
      RWC_EXPECTS(demand.src != demand.dst);
      for (graph::NodeId node : graph.node_ids()) {
        if (node == demand.src || node == demand.dst) continue;
        std::vector<lp::Term> terms;
        for (graph::EdgeId e : graph.out_edges(node))
          terms.push_back({var(k, e.value), 1.0});
        for (graph::EdgeId e : graph.in_edges(node))
          terms.push_back({var(k, e.value), -1.0});
        if (!terms.empty())
          problem.add_constraint(std::move(terms), lp::Relation::kEqual, 0.0);
      }
      // 0 <= served_k <= volume_k.
      problem.add_constraint(source_terms(k), lp::Relation::kLessEqual,
                             demand.volume.value);
      problem.add_constraint(source_terms(k), lp::Relation::kGreaterEqual,
                             0.0);
    }
    // Shared edge capacities.
    for (graph::EdgeId e : graph.edge_ids()) {
      std::vector<lp::Term> terms;
      for (int k = 0; k < commodities; ++k)
        terms.push_back({var(k, e.value), 1.0});
      problem.add_constraint(std::move(terms), lp::Relation::kLessEqual,
                             graph.edge(e).capacity.value);
    }
  };

  std::set<int, std::greater<>> classes;
  for (const Demand& d : demands) classes.insert(d.priority);
  std::vector<std::pair<int, double>> locked;

  auto add_locked = [&](lp::LpProblem& problem) {
    for (const auto& [priority, throughput] : locked) {
      std::vector<lp::Term> terms;
      for (int k = 0; k < commodities; ++k)
        if (demands[static_cast<std::size_t>(k)].priority == priority)
          for (const lp::Term& t : source_terms(k)) terms.push_back(t);
      if (!terms.empty())
        problem.add_constraint(std::move(terms),
                               lp::Relation::kGreaterEqual,
                               throughput - 1e-7);
    }
  };

  for (int priority : classes) {
    lp::LpProblem maximize(lp::Sense::kMaximize);
    std::vector<double> objective(
        static_cast<std::size_t>(commodities * edges), 0.0);
    for (int k = 0; k < commodities; ++k) {
      if (demands[static_cast<std::size_t>(k)].priority != priority)
        continue;
      for (const lp::Term& t : source_terms(k))
        objective[static_cast<std::size_t>(t.variable)] += t.coefficient;
    }
    for (double c : objective) maximize.add_variable(c);
    add_shared(maximize);
    add_locked(maximize);
    const auto solution = maximize.solve();
    RWC_CHECK_MSG(solution.optimal(), "mcf-lp throughput pass not optimal");
    locked.emplace_back(priority, solution.objective);
  }

  // Final pass: minimize cost at the locked throughputs.
  lp::LpProblem minimize(lp::Sense::kMinimize);
  for (int k = 0; k < commodities; ++k)
    for (graph::EdgeId e : graph.edge_ids())
      minimize.add_variable(graph.edge(e).cost);
  add_shared(minimize);
  add_locked(minimize);
  const auto solution = minimize.solve();
  RWC_CHECK_MSG(solution.optimal(), "mcf-lp cost pass not optimal");

  // Extract per-commodity edge flows; decompose into paths.
  for (int k = 0; k < commodities; ++k) {
    flow::ResidualNetwork net(graph.node_count());
    std::vector<int> arc_of_edge(graph.edge_count());
    for (graph::EdgeId e : graph.edge_ids()) {
      const double f = solution.values[static_cast<std::size_t>(
          var(k, e.value))];
      const graph::Edge& edge = graph.edge(e);
      const int arc =
          net.add_arc(edge.src.value, edge.dst.value, std::max(0.0, f));
      net.push(arc, std::max(0.0, f));  // saturate: flow == capacity
      arc_of_edge[static_cast<std::size_t>(e.value)] = arc;
    }
    const Demand& demand = demands[static_cast<std::size_t>(k)];
    const auto decomposition =
        flow::decompose_flow(net, demand.src.value, demand.dst.value);
    for (const flow::PathFlow& pf : decomposition.paths) {
      if (pf.amount <= 1e-7) continue;
      graph::Path path;
      for (int arc : pf.arcs) {
        const graph::EdgeId edge{arc / 2};
        path.edges.push_back(edge);
        path.weight += graph.edge(edge).weight;
      }
      result.routings[static_cast<std::size_t>(k)].paths.emplace_back(
          std::move(path), Gbps{pf.amount});
    }
  }
  finalize_assignment(graph, result);
  return result;
}

}  // namespace rwc::te
