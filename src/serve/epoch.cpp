#include "serve/epoch.hpp"

#include <bit>

namespace rwc::serve {

namespace {

/// Word-at-a-time mixer (murmur3-finalizer style), same construction as
/// replay's signature chain: bit patterns, not rounded values, so two
/// epochs checksum equal exactly when their content is bit-identical.
std::uint64_t mix64(std::uint64_t hash, std::uint64_t value) {
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  hash = (hash ^ value) * 0x2545f4914f6cdd1dULL;
  return hash ^ (hash >> 29);
}

std::uint64_t mix_double(std::uint64_t hash, double value) {
  return mix64(hash, std::bit_cast<std::uint64_t>(value));
}

}  // namespace

std::uint64_t PlanEpoch::compute_checksum() const {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  hash = mix64(hash, epoch);
  hash = mix64(hash, round);
  hash = mix64(hash, signature_chain);
  hash = mix64(hash, capacity_gbps.size());
  for (double value : capacity_gbps) hash = mix_double(hash, value);
  hash = mix64(hash, edge_load_gbps.size());
  for (double value : edge_load_gbps) hash = mix_double(hash, value);
  hash = mix64(hash, upgrades.size());
  for (const auto& [edge, rate] : upgrades) {
    hash = mix64(hash, static_cast<std::uint32_t>(edge));
    hash = mix_double(hash, rate);
  }
  hash = mix_double(hash, total_routed_gbps);
  hash = mix_double(hash, total_penalty);
  hash = mix64(hash, reductions);
  hash = mix64(hash, restorations);
  hash = mix64(hash, transition_valid ? 1 : 0);
  return hash;
}

PlanEpoch make_epoch(
    std::uint64_t epoch, std::uint64_t round, std::uint64_t signature_chain,
    const core::DynamicCapacityController& controller,
    const core::DynamicCapacityController::RoundReport& report) {
  PlanEpoch out;
  out.epoch = epoch;
  out.round = round;
  out.signature_chain = signature_chain;
  const std::span<const util::Gbps> configured =
      controller.configured_capacities();
  out.capacity_gbps.reserve(configured.size());
  for (util::Gbps capacity : configured)
    out.capacity_gbps.push_back(capacity.value);
  out.edge_load_gbps = report.plan.physical_assignment.edge_load_gbps;
  out.upgrades.reserve(report.plan.upgrades.size());
  for (const core::CapacityChange& change : report.plan.upgrades)
    out.upgrades.emplace_back(
        static_cast<std::int32_t>(change.edge.value), change.to.value);
  out.total_routed_gbps = report.total_routed.value;
  out.total_penalty = report.total_penalty;
  out.reductions = report.reductions.size();
  out.restorations = report.restorations.size();
  out.transition_valid = report.transition_valid;
  out.checksum = out.compute_checksum();
  return out;
}

}  // namespace rwc::serve
