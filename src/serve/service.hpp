// Always-on control-plane service (rwc::serve).
//
// ServeService wraps the paper's §4 pipeline (core::DynamicCapacity-
// Controller) into a long-running daemon shape:
//
//   * telemetry/intent updates stream in through a bounded IngestQueue
//     (any number of producer threads, backpressure via ShedPolicy);
//   * one serving thread turns the crank: each step() drains the queue,
//     RECORDS the drained batch into the IngestLog, applies it to the live
//     demand/SNR state with deterministic sanitization, runs one TE round,
//     folds the round into the rolling signature chain, and publishes the
//     result as an immutable PlanEpoch through exec::RcuCell;
//   * any number of reader threads snapshot the current epoch WAIT-FREE
//     (exec::RcuReader + RcuGuard) while rounds and publications race on —
//     no lock, no torn epoch, grace-period reclamation;
//   * periodic checkpoints (replay::CheckpointStore, optional) capture the
//     full state machine; restore-then-continue is bit-identical.
//
// Determinism contract (docs/SERVE.md): the service's results are a pure
// function of (construction inputs, recorded ingest log). Concurrent
// arrival order is absorbed by the record-before-apply rule, and the
// `serve.ingest` faults fire in offer() before recording — so replaying a
// live run's log through step(batch) on a fresh service, WITHOUT faults
// armed and at any pool size, reproduces every round's signature chain
// exactly. bench/serve_loop --selfcheck proves it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/controller.hpp"
#include "demand/config.hpp"
#include "exec/rcu.hpp"
#include "graph/graph.hpp"
#include "optical/modulation.hpp"
#include "replay/checkpoint.hpp"
#include "serve/epoch.hpp"
#include "serve/ingest.hpp"
#include "te/algorithm.hpp"
#include "update/schedule.hpp"
#include "util/units.hpp"

namespace rwc::exec {
class ThreadPool;
}

namespace rwc::serve {

struct ServeConfig {
  /// Stream seed (checkpoint Rng section + config fingerprint).
  std::uint64_t seed = 1;
  /// Controller safety margin (fingerprinted).
  util::Db snr_margin{0.5};
  /// Optional flap dampening (presence and params fingerprinted).
  std::optional<core::HysteresisParams> hysteresis;
  /// Incremental re-solve hot path (docs/FLEET.md). Timing-only by the
  /// controller's contract, so NOT fingerprinted — a restored service may
  /// flip it freely.
  bool incremental = true;
  /// SNR every link starts at before the first sample arrives (dB;
  /// fingerprinted — it is round 0 input state).
  double initial_snr_db = 15.0;

  /// Ingest queue bound + shed policy (backpressure knobs; deliberately
  /// NOT fingerprinted — they shape which events reach the log, and the
  /// contract is over the log).
  std::size_t queue_capacity = 1024;
  ShedPolicy shed = ShedPolicy::kDropOldest;

  /// Checkpoint every N completed rounds into the attached store
  /// (0 = only explicit checkpoint() calls).
  std::uint64_t checkpoint_every = 0;

  /// Reader-slot capacity of the service's RCU domain.
  std::size_t max_readers = 128;

  /// Thread pool for the controller's consolidation pass; nullptr selects
  /// exec::ThreadPool::global(). Bit-identical results at every pool size
  /// (docs/CONCURRENCY.md), so not fingerprinted.
  exec::ThreadPool* pool = nullptr;

  /// Optional consistent-update transition stage (docs/UPDATE.md): each
  /// round's schedule is planned and EXECUTED (update::ScheduleExecutor,
  /// update.commit/update.rollback fault sites live) before the epoch
  /// publishes — an epoch never becomes visible ahead of its transition.
  /// Observational by the controller's contract, so NOT fingerprinted — a
  /// restored service may flip it freely.
  std::optional<update::SchedulerConfig> update;

  /// Demand source of every round (docs/DEMAND.md). kEstimated routes the
  /// live (sanitized) intent through a demand::DemandPipeline before TE —
  /// the published epochs carry counter-inferred volumes. CHANGES RESULTS,
  /// so the demand fields join the config fingerprint (estimated mode
  /// only; oracle services keep the historical hash) and checkpoints grow
  /// a mandatory kDemand section.
  demand::DemandConfig demand;
};

class ServeService {
 public:
  using RoundReport = core::DynamicCapacityController::RoundReport;

  /// `physical` carries nominal capacities; `engine` must outlive the
  /// service; `base_demands` is the round-0 traffic intent (volumes evolve
  /// via kDemand ingest events; src/dst/priority are fixed).
  ServeService(graph::Graph physical, const te::TeAlgorithm& engine,
               te::TrafficMatrix base_demands,
               ServeConfig config = ServeConfig{});

  // --- Producer side -----------------------------------------------------
  /// The ingest queue; any thread may offer() into it.
  IngestQueue& queue() { return queue_; }

  // --- Serving thread ----------------------------------------------------
  /// Live step: drain -> record -> apply -> round -> publish -> checkpoint.
  RoundReport step();
  /// Replay step: apply a recorded batch instead of draining the queue
  /// (appends to this service's log too, so a replayed service's log
  /// equals the original's). Everything downstream is identical to live.
  RoundReport step(const std::vector<IngestEvent>& batch);

  // --- Reader side (wait-free) -------------------------------------------
  /// Register readers against this domain; acquire epochs from the cell:
  ///   exec::RcuReader reader(service.rcu_domain());
  ///   exec::RcuGuard<PlanEpoch> epoch(service.epoch_cell(), reader);
  exec::RcuDomain& rcu_domain() { return domain_; }
  const exec::RcuCell<PlanEpoch>& epoch_cell() const { return cell_; }

  // --- State machine -----------------------------------------------------
  std::uint64_t round() const { return round_; }
  std::uint64_t signature_chain() const { return signature_chain_; }
  std::uint64_t epochs_published() const { return epochs_; }
  const IngestLog& log() const { return log_; }
  const core::DynamicCapacityController& controller() const {
    return controller_;
  }
  /// Live (sanitized) per-demand volumes and per-link SNR.
  const te::TrafficMatrix& demands() const { return demands_; }
  const std::vector<util::Db>& link_snr() const { return snr_; }

  /// Hash of everything that must match for a checkpoint to be portable:
  /// topology, base demands, seed, snr_margin, hysteresis, initial SNR.
  /// Queue/shed/pool/incremental knobs are excluded by design.
  std::uint64_t config_fingerprint() const { return config_fingerprint_; }

  // --- Checkpointing -----------------------------------------------------
  /// Store for periodic checkpoints (config.checkpoint_every); must
  /// outlive the service. nullptr detaches.
  void set_checkpoint_store(replay::CheckpointStore* store) {
    store_ = store;
  }

  /// Captures the full serve state machine as a replay::Checkpoint (meta +
  /// controller + rng sections reused; serve-specific state travels in the
  /// opaque kServe section — docs/SERVE.md, "Checkpoint anatomy").
  replay::Checkpoint checkpoint() const;
  /// Restores a captured state. kConfigMismatch on a foreign fingerprint,
  /// kMissingSection when the serve section is absent, kMalformed when the
  /// payload does not parse against this topology. On any error the
  /// service is unchanged.
  replay::Error restore(const replay::Checkpoint& checkpoint);
  /// load_latest() + restore() against `store`.
  replay::Error restore_latest(const replay::CheckpointStore& store);

 private:
  RoundReport step_batch(const std::vector<IngestEvent>& batch);
  /// Applies one recorded event to demands_/snr_ with deterministic
  /// sanitization (NaN -> keep previous, clamp to the legal range; every
  /// rewrite counted under serve.ingest.clamped).
  void apply_event(const IngestEvent& event);
  void publish_epoch(const RoundReport& report);

  graph::Graph topology_;
  core::DynamicCapacityController controller_;
  ServeConfig config_;
  std::uint64_t config_fingerprint_ = 0;

  te::TrafficMatrix base_demands_;
  te::TrafficMatrix demands_;       // live volumes (sanitized)
  std::vector<util::Db> snr_;      // live per-link SNR (sanitized)

  IngestQueue queue_;
  IngestLog log_;

  std::uint64_t round_ = 0;
  std::uint64_t signature_chain_ = 0;
  std::uint64_t epochs_ = 0;

  exec::RcuDomain domain_;
  exec::RcuCell<PlanEpoch> cell_;

  replay::CheckpointStore* store_ = nullptr;
};

}  // namespace rwc::serve
