// Streaming telemetry ingestion (rwc::serve).
//
// Producers — telemetry collectors, operator tooling, test drivers — push
// IngestEvents into a bounded multi-producer queue; the single serving
// thread drains the queue once per round. The queue is deliberately
// bounded: when producers outrun the control loop the configured
// ShedPolicy decides which events to drop, and every shed is counted
// (serve.ingest.dropped) rather than silently absorbed — backpressure is
// part of the contract, not a failure (docs/SERVE.md, "Backpressure").
//
// Determinism note: arrival order into the queue is NOT deterministic
// under concurrency, and does not need to be. The service's determinism
// contract is over the RECORDED ingest log — whatever batch a round drains
// is recorded before it is applied, so a replay of the log reproduces the
// run bit-identically regardless of how racy the original arrivals were
// (docs/SERVE.md, "Determinism over the ingest log").
//
// Fault sites (docs/FAULTS.md): `serve.ingest` is evaluated in offer(),
// keyed deterministically by (type, index) — kDrop loses the event before
// it reaches the queue, kGarbage corrupts the value in flight, kStall
// sleeps the producer. All three fire BEFORE the event can be recorded,
// which is what keeps live-with-faults == replay-without-faults.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace rwc::serve {

/// What an ingest event updates.
enum class IngestType : std::uint8_t {
  kSnr = 0,     ///< per-link SNR sample; index = edge id, value = dB
  kDemand = 1,  ///< demand volume update; index = demand slot, value = Gbps
};

/// One telemetry / intent update. Raw as offered — sanitization (NaN /
/// out-of-range clamping) happens deterministically at apply time, after
/// recording, so live and replay sanitize the same bytes.
struct IngestEvent {
  IngestType type = IngestType::kSnr;
  std::uint32_t index = 0;
  double value = 0.0;

  friend bool operator==(const IngestEvent&, const IngestEvent&) = default;
};

/// What to do when the queue is full (docs/SERVE.md, "Backpressure").
enum class ShedPolicy : std::uint8_t {
  /// Reject the incoming event (producer-visible: offer() returns false).
  kDropNewest = 0,
  /// Evict the oldest queued event to make room; offer() returns true.
  kDropOldest = 1,
};

/// Bounded MPSC event queue. Any number of producer threads may offer()
/// concurrently; exactly one consumer drains. Mutex-guarded — the queue is
/// touched a handful of times per round, never on the epoch read path.
class IngestQueue {
 public:
  IngestQueue(std::size_t capacity, ShedPolicy shed);

  /// Offers one event. Evaluates the `serve.ingest` fault site first (see
  /// file header); a full queue applies the shed policy. Returns whether
  /// the event was enqueued. Thread-safe.
  bool offer(IngestEvent event);

  /// Removes and returns all queued events, oldest first. Single consumer.
  std::vector<IngestEvent> drain();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  ShedPolicy shed_policy() const { return shed_; }

  /// Producer-side accounting since construction (also exported as
  /// serve.ingest.* registry counters — these locals exist so tests can
  /// assert per-queue without registry resets).
  std::uint64_t offered() const {
    return offered_.load(std::memory_order_relaxed);
  }
  std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Events lost to shedding or an injected drop fault.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  const ShedPolicy shed_;
  mutable std::mutex mutex_;
  std::deque<IngestEvent> events_;
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Per-round record of what the service actually consumed: batch r holds
/// the events round r drained, in the drain order the round applied them.
/// Feeding the batches back through ServeService::step(batch) reproduces
/// the run bit-identically (the determinism contract's replay side).
class IngestLog {
 public:
  void append(std::vector<IngestEvent> batch) {
    batches_.push_back(std::move(batch));
  }

  std::size_t rounds() const { return batches_.size(); }
  const std::vector<IngestEvent>& batch(std::size_t round) const {
    return batches_[round];
  }
  const std::vector<std::vector<IngestEvent>>& batches() const {
    return batches_;
  }
  std::size_t total_events() const;

 private:
  std::vector<std::vector<IngestEvent>> batches_;
};

}  // namespace rwc::serve
