#include "serve/ingest.hpp"

#include <chrono>
#include <limits>
#include <thread>

#include "fault/registry.hpp"
#include "obs/registry.hpp"

namespace rwc::serve {

namespace {

/// Handles into the global registry (docs/OBSERVABILITY.md: serve.ingest.*).
struct IngestMetrics {
  obs::Counter& offered;
  obs::Counter& accepted;
  obs::Counter& dropped;
  obs::Gauge& queue_depth;

  static IngestMetrics& instance() {
    static auto& registry = obs::Registry::global();
    static IngestMetrics metrics{
        registry.counter("serve.ingest.offered"),
        registry.counter("serve.ingest.accepted"),
        registry.counter("serve.ingest.dropped"),
        registry.gauge("serve.queue.depth"),
    };
    return metrics;
  }
};

/// Deterministic `serve.ingest` evaluation key: what the event targets,
/// never when or from which thread it arrived.
std::uint64_t fault_key(const IngestEvent& event) {
  return (static_cast<std::uint64_t>(event.type) << 32) |
         static_cast<std::uint64_t>(event.index);
}

}  // namespace

IngestQueue::IngestQueue(std::size_t capacity, ShedPolicy shed)
    : capacity_(capacity == 0 ? 1 : capacity), shed_(shed) {}

bool IngestQueue::offer(IngestEvent event) {
  IngestMetrics& metrics = IngestMetrics::instance();
  offered_.fetch_add(1, std::memory_order_relaxed);
  metrics.offered.add();

  // Fault site: perturb the event BEFORE it can be recorded, so the ingest
  // log only ever holds what the service really consumed.
  if (const fault::Action action = fault::at("serve.ingest", fault_key(event))) {
    switch (action.kind) {
      case fault::Kind::kDrop:
        dropped_.fetch_add(1, std::memory_order_relaxed);
        metrics.dropped.add();
        return false;
      case fault::Kind::kGarbage:
        // Wildly out-of-range value; apply-time sanitization must tame it
        // identically live and on replay.
        event.value = (action.magnitude != 0.0 ? action.magnitude : 1.0) * 1e12;
        break;
      case fault::Kind::kNan:
        event.value = std::numeric_limits<double>::quiet_NaN();
        break;
      case fault::Kind::kStall:
        std::this_thread::sleep_for(std::chrono::duration<double>(
            action.magnitude != 0.0 ? action.magnitude : 0.01));
        break;
      default:
        break;  // kinds this site does not understand are ignored
    }
  }

  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() >= capacity_) {
      if (shed_ == ShedPolicy::kDropNewest) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        metrics.dropped.add();
        metrics.queue_depth.set(static_cast<double>(events_.size()));
        return false;
      }
      events_.pop_front();
      dropped_.fetch_add(1, std::memory_order_relaxed);
      metrics.dropped.add();
    }
    events_.push_back(event);
    depth = events_.size();
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  metrics.accepted.add();
  metrics.queue_depth.set(static_cast<double>(depth));
  return true;
}

std::vector<IngestEvent> IngestQueue::drain() {
  std::vector<IngestEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.assign(events_.begin(), events_.end());
    events_.clear();
  }
  IngestMetrics::instance().queue_depth.set(0.0);
  return out;
}

std::size_t IngestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t IngestLog::total_events() const {
  std::size_t total = 0;
  for (const auto& batch : batches_) total += batch.size();
  return total;
}

}  // namespace rwc::serve
