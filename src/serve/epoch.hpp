// Versioned immutable plan epochs (rwc::serve).
//
// A PlanEpoch is everything a control-plane client needs from one
// completed TE round — configured capacities, routing loads, the round's
// upgrade decisions and accounting — frozen into an immutable object and
// published through exec::RcuCell with a single atomic pointer swap.
// Readers acquire whatever epoch is current, wait-free, and may hold it
// for as long as they like: the RCU grace period keeps a superseded epoch
// alive until its last reader quiesces (docs/SERVE.md, "Epoch lifecycle").
//
// Every epoch carries a checksum folded over all of its content at
// publish time. A reader that recomputes it and mismatches has observed a
// torn or partial epoch — which the publication protocol makes impossible,
// and which bench/serve_loop --selfcheck and tests/serve/ verify on every
// read under racing publishes.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/controller.hpp"

namespace rwc::serve {

/// Immutable snapshot of one published round. Never mutated after
/// publish() — the whole point of the epoch design.
struct PlanEpoch {
  /// Monotonic publication number (1 = first published round). Readers
  /// use it for staleness checks; it only ever increases.
  std::uint64_t epoch = 0;
  /// Round index (0-based) of the ServeService state machine that
  /// produced this epoch.
  std::uint64_t round = 0;
  /// Rolling signature chain through this round (ServeService contract:
  /// equal chains <=> bit-identical round histories).
  std::uint64_t signature_chain = 0;

  /// Configured capacity per directed edge (Gbps), after this round's
  /// flaps/restorations/upgrades.
  std::vector<double> capacity_gbps;
  /// Routed load per directed edge (Gbps) of this round's assignment.
  std::vector<double> edge_load_gbps;
  /// Capacity upgrades this round decided: (edge id, new rate Gbps).
  std::vector<std::pair<std::int32_t, double>> upgrades;

  double total_routed_gbps = 0.0;
  double total_penalty = 0.0;
  std::size_t reductions = 0;
  std::size_t restorations = 0;
  bool transition_valid = false;

  /// Content checksum, folded at publish time over every field above.
  std::uint64_t checksum = 0;

  /// Recomputes the content fold (excluding `checksum` itself).
  std::uint64_t compute_checksum() const;
  /// True when checksum matches content — what a snapshot reader asserts
  /// to prove it never sees a torn epoch.
  bool consistent() const { return checksum == compute_checksum(); }
};

/// Builds the epoch for a just-completed round from the controller's
/// published state (core's configured_capacities() hook + the report).
/// `epoch`/`round`/`signature_chain` are the service's counters.
PlanEpoch make_epoch(
    std::uint64_t epoch, std::uint64_t round, std::uint64_t signature_chain,
    const core::DynamicCapacityController& controller,
    const core::DynamicCapacityController::RoundReport& report);

}  // namespace rwc::serve
