#include "serve/service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "replay/wire.hpp"
#include "update/executor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc::serve {

namespace {

/// Handles into the global registry (docs/OBSERVABILITY.md: serve.*).
struct ServeMetrics {
  obs::Counter& rounds;
  obs::Counter& clamped;
  obs::Counter& epochs;
  obs::Histogram& publish_seconds;

  static ServeMetrics& instance() {
    static auto& registry = obs::Registry::global();
    static ServeMetrics metrics{
        registry.counter("serve.rounds"),
        registry.counter("serve.ingest.clamped"),
        registry.counter("serve.publish.epochs"),
        registry.histogram("serve.publish.seconds"),
    };
    return metrics;
  }
};

/// Legal ranges the apply-time sanitizer clamps raw ingest values into —
/// the deterministic taming of kGarbage/kNan faults (docs/SERVE.md).
constexpr double kSnrMinDb = -10.0;
constexpr double kSnrMaxDb = 40.0;
constexpr double kDemandMaxGbps = 1.0e5;

/// Rng-section stream id of the serve state machine (the service draws no
/// randomness itself; the checkpoint Rng section still needs a well-defined
/// stream so the mandatory-section contract holds).
constexpr std::uint64_t kServeRngStream = 0x53455256;  // "SERV"

/// Inner format version of the kServe checkpoint payload.
constexpr std::uint32_t kServePayloadVersion = 1;

/// Word-at-a-time mixer (murmur3-finalizer style) — same construction and
/// fold order as replay::ReplayDriver's signature chain, so serve rounds
/// and replay rounds chain identically given identical reports.
std::uint64_t mix64(std::uint64_t hash, std::uint64_t value) {
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  hash = (hash ^ value) * 0x2545f4914f6cdd1dULL;
  return hash ^ (hash >> 29);
}

std::uint64_t mix_double(std::uint64_t hash, double value) {
  return mix64(hash, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t fingerprint_of(const graph::Graph& topology,
                             const te::TrafficMatrix& base_demands,
                             const ServeConfig& config) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  hash = mix64(hash, topology.node_count());
  hash = mix64(hash, topology.edge_count());
  for (graph::EdgeId id : topology.edge_ids()) {
    const graph::Edge& edge = topology.edge(id);
    hash = mix64(hash, static_cast<std::uint32_t>(edge.src.value));
    hash = mix64(hash, static_cast<std::uint32_t>(edge.dst.value));
    hash = mix_double(hash, edge.capacity.value);
    hash = mix_double(hash, edge.cost);
    hash = mix_double(hash, edge.weight);
  }
  hash = mix64(hash, base_demands.size());
  for (const te::Demand& demand : base_demands) {
    hash = mix64(hash, static_cast<std::uint32_t>(demand.src.value));
    hash = mix64(hash, static_cast<std::uint32_t>(demand.dst.value));
    hash = mix_double(hash, demand.volume.value);
    hash = mix64(hash, static_cast<std::uint32_t>(demand.priority));
  }
  hash = mix64(hash, config.seed);
  hash = mix_double(hash, config.snr_margin.value);
  hash = mix64(hash, config.hysteresis.has_value() ? 1 : 0);
  if (config.hysteresis.has_value()) {
    hash = mix_double(hash, config.hysteresis->extra_up_margin.value);
    hash = mix64(hash,
                 static_cast<std::uint32_t>(config.hysteresis->up_hold_rounds));
  }
  hash = mix_double(hash, config.initial_snr_db);
  // Demand fields join the fingerprint only in estimated mode: estimation
  // changes results, oracle services keep the historical hash (same policy
  // as replay::ReplayDriver).
  if (config.demand.estimated()) {
    const demand::DemandConfig& d = config.demand;
    hash = mix64(hash, static_cast<std::uint64_t>(d.source));
    hash = mix_double(hash, d.noise);
    hash = mix_double(hash, d.loss_rate);
    hash = mix_double(hash, d.staleness);
    hash = mix_double(hash, d.interval_seconds);
    hash = mix_double(hash, d.ewma_alpha);
    hash = mix_double(hash, d.damping);
    hash = mix64(hash, d.seed);
  }
  return hash;
}

core::ControllerOptions controller_options_for(const ServeConfig& config) {
  core::ControllerOptions options;
  options.snr_margin = config.snr_margin;
  options.hysteresis = config.hysteresis;
  options.incremental = config.incremental;
  options.pool = config.pool;
  options.update = config.update;
  options.demand = config.demand;
  return options;
}

}  // namespace

ServeService::ServeService(graph::Graph physical,
                           const te::TeAlgorithm& engine,
                           te::TrafficMatrix base_demands, ServeConfig config)
    : topology_(physical),
      controller_(std::move(physical), optical::ModulationTable::standard(),
                  engine, controller_options_for(config)),
      config_(config),
      config_fingerprint_(fingerprint_of(topology_, base_demands, config)),
      base_demands_(base_demands),
      demands_(std::move(base_demands)),
      snr_(topology_.edge_count(), util::Db{config.initial_snr_db}),
      queue_(config.queue_capacity, config.shed),
      domain_(config.max_readers == 0 ? 1 : config.max_readers),
      cell_(domain_) {}

void ServeService::apply_event(const IngestEvent& event) {
  ServeMetrics& metrics = ServeMetrics::instance();
  switch (event.type) {
    case IngestType::kSnr: {
      if (event.index >= snr_.size()) {
        metrics.clamped.add();
        return;  // unroutable index: deterministically ignored
      }
      double value = event.value;
      if (std::isnan(value)) {
        metrics.clamped.add();
        return;  // NaN carries no information: keep the previous sample
      }
      if (value < kSnrMinDb || value > kSnrMaxDb) {
        value = std::clamp(value, kSnrMinDb, kSnrMaxDb);
        metrics.clamped.add();
      }
      snr_[event.index] = util::Db{value};
      return;
    }
    case IngestType::kDemand: {
      if (event.index >= demands_.size()) {
        metrics.clamped.add();
        return;
      }
      double value = event.value;
      if (std::isnan(value)) {
        metrics.clamped.add();
        return;
      }
      if (value < 0.0 || value > kDemandMaxGbps) {
        value = std::clamp(value, 0.0, kDemandMaxGbps);
        metrics.clamped.add();
      }
      demands_[event.index].volume = util::Gbps{value};
      return;
    }
  }
}

ServeService::RoundReport ServeService::step() {
  // Record-before-apply: the batch this round consumed becomes the round's
  // log entry verbatim; everything after this line is a pure function of
  // the log (the determinism contract, docs/SERVE.md).
  return step_batch(queue_.drain());
}

ServeService::RoundReport ServeService::step(
    const std::vector<IngestEvent>& batch) {
  return step_batch(batch);
}

ServeService::RoundReport ServeService::step_batch(
    const std::vector<IngestEvent>& batch) {
  log_.append(batch);
  for (const IngestEvent& event : batch) apply_event(event);

  RoundReport report = controller_.run_round(snr_, demands_);

  // Fold this round into the chain — same fields and order as
  // replay::ReplayDriver, bit patterns not rounded values.
  std::uint64_t chain = mix64(signature_chain_, round_);
  chain = mix64(chain, report.plan.upgrades.size());
  for (const auto& change : report.plan.upgrades) {
    chain = mix64(chain, static_cast<std::uint32_t>(change.edge.value));
    chain = mix_double(chain, change.to.value);
  }
  chain = mix_double(chain, report.total_routed.value);
  chain = mix_double(chain, report.total_penalty);
  chain = mix64(chain, report.reductions.size());
  chain = mix64(chain, report.restorations.size());
  chain = mix64(chain, report.transition_valid ? 1 : 0);
  signature_chain_ = chain;

  // Consistent-update stage (config_.update): commit the round's schedule
  // BEFORE the epoch becomes visible — readers never observe a plan whose
  // dataplane transition has not finished. Execution is observational
  // (controller state already advanced; the executor walks its own copy of
  // the schedule's dataplane), so the chain above is identical with the
  // stage on or off; update.commit/update.rollback faults can stretch or
  // abort the transition but never perturb the published state.
  if (report.update.has_value() && report.update->feasible) {
    update::ScheduleExecutor executor(controller_.physical_topology(),
                                      *report.update);
    executor.run();
  }

  publish_epoch(report);

  ++round_;
  ServeMetrics::instance().rounds.add();

  if (store_ != nullptr && config_.checkpoint_every > 0 &&
      round_ % config_.checkpoint_every == 0) {
    store_->write(checkpoint());
  }
  return report;
}

void ServeService::publish_epoch(const RoundReport& report) {
  ServeMetrics& metrics = ServeMetrics::instance();
  const auto start = std::chrono::steady_clock::now();

  // Fault site: a stalled/delayed publication must never degrade the read
  // path — readers keep serving the previous epoch wait-free while the
  // writer sleeps here (bench/serve_loop --selfcheck leg C proves it).
  if (const fault::Action action = fault::next("serve.publish")) {
    if (action.kind == fault::Kind::kDelay ||
        action.kind == fault::Kind::kStall) {
      const double seconds = action.kind == fault::Kind::kDelay
                                 ? action.magnitude / 1000.0
                                 : action.magnitude;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          seconds > 0.0 ? seconds : 0.01));
    }
  }

  auto epoch = std::make_unique<PlanEpoch>(make_epoch(
      epochs_ + 1, round_, signature_chain_, controller_, report));
  cell_.publish(std::move(epoch));
  ++epochs_;

  metrics.epochs.add();
  metrics.publish_seconds.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
}

replay::Checkpoint ServeService::checkpoint() const {
  replay::Checkpoint out;
  out.config_fingerprint = config_fingerprint_;
  out.round = round_;
  out.chunk_base_round = round_;  // serve has no trace chunks
  out.signature_chain = signature_chain_;
  out.controller = controller_.save_state();
  // Mandatory Rng section: the serve machine draws no randomness, but the
  // slot must round-trip, so it carries the service's reserved stream.
  out.latency_rng =
      util::Rng::stream(config_.seed, kServeRngStream).state();

  replay::wire::ByteWriter writer;
  writer.u32(kServePayloadVersion);
  writer.u64(demands_.size());
  for (const te::Demand& demand : demands_) writer.f64(demand.volume.value);
  writer.u64(snr_.size());
  for (util::Db snr : snr_) writer.f64(snr.value);
  writer.u64(epochs_);
  out.serve_present = true;
  out.serve_payload = writer.take();
  if (const demand::DemandPipeline* pipeline = controller_.demand_pipeline()) {
    out.demand_present = true;
    out.demand_state = pipeline->save_state();
  }
  return out;
}

replay::Error ServeService::restore(const replay::Checkpoint& checkpoint) {
  if (checkpoint.config_fingerprint != config_fingerprint_)
    return replay::Error::kConfigMismatch;
  if (!checkpoint.serve_present) return replay::Error::kMissingSection;

  replay::wire::ByteReader reader(checkpoint.serve_payload);
  if (reader.u32() != kServePayloadVersion) return replay::Error::kMalformed;
  const std::uint64_t demand_count = reader.u64();
  if (demand_count != demands_.size() || !reader.fits(demand_count))
    return replay::Error::kMalformed;
  std::vector<double> volumes(demand_count);
  for (double& volume : volumes) volume = reader.f64();
  const std::uint64_t edge_count = reader.u64();
  if (edge_count != snr_.size() || !reader.fits(edge_count))
    return replay::Error::kMalformed;
  std::vector<double> snr(edge_count);
  for (double& value : snr) value = reader.f64();
  const std::uint64_t epochs = reader.u64();
  if (reader.failed() || !reader.exhausted()) return replay::Error::kMalformed;

  // Controller-state shape checks up front: restore_state() RWC_CHECKs the
  // same conditions, and a decodable-but-foreign payload must surface as a
  // typed error, never an abort.
  const auto& state = checkpoint.controller;
  const std::size_t edges = topology_.edge_count();
  if (state.configured.size() != edges || state.last_traffic.size() != edges ||
      state.last_snr.size() != edges)
    return replay::Error::kMalformed;
  if (state.hysteresis.has_value() != config_.hysteresis.has_value())
    return replay::Error::kMalformed;
  // Mandatory demand section when this service estimates (results depend
  // on it); shape checks mirror ReplayDriver::restore.
  demand::DemandPipeline* pipeline = controller_.demand_pipeline();
  if (pipeline != nullptr) {
    if (!checkpoint.demand_present) return replay::Error::kMissingSection;
    const demand::DemandPipeline::State& demand_state = checkpoint.demand_state;
    if (!(demand_state.last_observed.empty() ||
          demand_state.last_observed.size() == edges) ||
        !(demand_state.capacity_peak_gbps.empty() ||
          demand_state.capacity_peak_gbps.size() == edges))
      return replay::Error::kMalformed;
  }

  // Point of no return: every mutation below succeeds unconditionally.
  controller_.restore_state(state);
  if (pipeline != nullptr) pipeline->restore_state(checkpoint.demand_state);
  for (std::size_t d = 0; d < demands_.size(); ++d)
    demands_[d].volume = util::Gbps{volumes[d]};
  for (std::size_t e = 0; e < snr_.size(); ++e) snr_[e] = util::Db{snr[e]};
  round_ = checkpoint.round;
  signature_chain_ = checkpoint.signature_chain;
  epochs_ = epochs;
  // The log restarts at the restore point: a restored service's log covers
  // rounds [checkpoint.round, ...), which is exactly what a replay of the
  // continuation needs (docs/SERVE.md, "Restore semantics").
  log_ = IngestLog{};
  return replay::Error::kNone;
}

replay::Error ServeService::restore_latest(
    const replay::CheckpointStore& store) {
  replay::Checkpoint checkpoint;
  const replay::Error error =
      store.load_latest(config_fingerprint_, checkpoint);
  if (error != replay::Error::kNone) return error;
  return restore(checkpoint);
}

}  // namespace rwc::serve
