#include "tickets/analysis.hpp"

#include "util/check.hpp"

namespace rwc::tickets {

namespace {

std::size_t cause_index(RootCause cause) {
  for (std::size_t i = 0; i < 5; ++i)
    if (kAllRootCauses[i] == cause) return i;
  RWC_CHECK_MSG(false, "unknown root cause");
  return 0;
}

}  // namespace

double RootCauseBreakdown::event_share(RootCause cause) const {
  if (total_events == 0) return 0.0;
  return static_cast<double>(event_count[cause_index(cause)]) /
         static_cast<double>(total_events);
}

double RootCauseBreakdown::duration_share(RootCause cause) const {
  if (total_duration <= 0.0) return 0.0;
  return total_duration_hours[cause_index(cause)] / total_duration;
}

RootCauseBreakdown breakdown_by_cause(
    std::span<const FailureTicket> tickets) {
  RootCauseBreakdown breakdown;
  for (const FailureTicket& ticket : tickets) {
    const std::size_t index = cause_index(ticket.cause);
    const double hours = ticket.outage_duration / util::kHour;
    ++breakdown.event_count[index];
    breakdown.total_duration_hours[index] += hours;
    ++breakdown.total_events;
    breakdown.total_duration += hours;
  }
  return breakdown;
}

OpportunityReport opportunity_report(std::span<const FailureTicket> tickets,
                                     const optical::ModulationTable& table) {
  OpportunityReport report;
  if (tickets.empty()) return report;
  const util::Db fallback_threshold = table.formats().front().min_snr;
  std::size_t non_cut = 0;
  std::size_t recoverable = 0;
  for (const FailureTicket& ticket : tickets) {
    report.lowest_snr_db.push_back(ticket.lowest_snr.value);
    if (ticket.cause != RootCause::kFiberCut) ++non_cut;
    if (ticket.lowest_snr >= fallback_threshold) {
      ++recoverable;
      report.recoverable_outage_hours += ticket.outage_duration / util::kHour;
    }
  }
  const auto n = static_cast<double>(tickets.size());
  report.non_cut_event_fraction = static_cast<double>(non_cut) / n;
  report.recoverable_event_fraction = static_cast<double>(recoverable) / n;
  return report;
}

}  // namespace rwc::tickets
