// Root-cause analysis over a ticket log: the aggregation behind Fig. 4.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "optical/modulation.hpp"
#include "tickets/ticket.hpp"

namespace rwc::tickets {

/// Per-root-cause aggregates (indexed in kAllRootCauses order).
struct RootCauseBreakdown {
  std::array<std::size_t, 5> event_count{};
  std::array<double, 5> total_duration_hours{};
  std::size_t total_events = 0;
  double total_duration = 0.0;  // hours

  double event_share(RootCause cause) const;
  double duration_share(RootCause cause) const;
};

RootCauseBreakdown breakdown_by_cause(std::span<const FailureTicket> tickets);

/// The paper's availability opportunity metrics.
struct OpportunityReport {
  /// Fraction of events that are NOT fiber cuts (paper: > 90%).
  double non_cut_event_fraction = 0.0;
  /// Fraction of events with lowest SNR >= the 50 Gbps threshold
  /// (paper: ~25% — these failures become 50 Gbps link flaps instead).
  double recoverable_event_fraction = 0.0;
  /// Outage hours that dynamic capacity would converts into degraded-rate
  /// operation at 50 Gbps.
  double recoverable_outage_hours = 0.0;
  /// Per-event lowest SNR values (input of the Fig. 4c CDF).
  std::vector<double> lowest_snr_db;
};

OpportunityReport opportunity_report(std::span<const FailureTicket> tickets,
                                     const optical::ModulationTable& table);

}  // namespace rwc::tickets
