// Failure-ticket model for unplanned WAN outage events (paper Section 2.2:
// 250 events over seven months, manually categorized by field operators).
#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace rwc::tickets {

/// Root-cause categories from the paper's manual ticket analysis.
enum class RootCause {
  kMaintenanceCoincident,  // unplanned event during scheduled maintenance
  kFiberCut,               // accidental fiber break
  kHardwareFailure,        // amplifier / transponder / OXC failure
  kHumanError,             // mis-operation outside maintenance windows
  kUndocumented,           // action not logged (known not to be a cut)
};

inline constexpr RootCause kAllRootCauses[] = {
    RootCause::kMaintenanceCoincident, RootCause::kFiberCut,
    RootCause::kHardwareFailure, RootCause::kHumanError,
    RootCause::kUndocumented,
};

const char* to_string(RootCause cause);

/// One unplanned failure ticket.
struct FailureTicket {
  int id = 0;
  util::Seconds opened_at = 0.0;
  util::Seconds outage_duration = 0.0;
  RootCause cause = RootCause::kUndocumented;
  /// Lowest SNR observed on the affected link during the outage. Fiber cuts
  /// read the receiver noise floor; degradations retain partial signal.
  util::Db lowest_snr{0.0};
  std::string affected_link;
};

}  // namespace rwc::tickets
