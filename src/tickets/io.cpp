#include "tickets/io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace rwc::tickets {

namespace {
constexpr const char* kHeader =
    "id,opened_at_seconds,outage_hours,cause,lowest_snr_db,link";

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  return cells;
}
}  // namespace

RootCause root_cause_from_string(const std::string& name) {
  for (RootCause cause : kAllRootCauses)
    if (name == to_string(cause)) return cause;
  RWC_CHECK_MSG(false, "unknown root cause: " + name);
  return RootCause::kUndocumented;
}

void write_tickets_csv(std::span<const FailureTicket> tickets,
                       std::ostream& os) {
  os << kHeader << '\n';
  for (const FailureTicket& t : tickets)
    os << t.id << ',' << t.opened_at << ','
       << t.outage_duration / util::kHour << ',' << to_string(t.cause) << ','
       << t.lowest_snr.value << ',' << t.affected_link << '\n';
}

std::string tickets_to_csv(std::span<const FailureTicket> tickets) {
  std::ostringstream os;
  write_tickets_csv(tickets, os);
  return os.str();
}

std::vector<FailureTicket> read_tickets_csv(std::istream& is) {
  std::string line;
  RWC_CHECK_MSG(static_cast<bool>(std::getline(is, line)) && line == kHeader,
                "tickets csv: bad header");
  std::vector<FailureTicket> tickets;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    RWC_CHECK_MSG(cells.size() == 6, "tickets csv: bad column count");
    FailureTicket ticket;
    ticket.id = std::stoi(cells[0]);
    ticket.opened_at = std::stod(cells[1]);
    ticket.outage_duration = std::stod(cells[2]) * util::kHour;
    ticket.cause = root_cause_from_string(cells[3]);
    ticket.lowest_snr = util::Db{std::stod(cells[4])};
    ticket.affected_link = cells[5];
    RWC_CHECK_MSG(ticket.outage_duration >= 0.0,
                  "tickets csv: negative duration");
    tickets.push_back(std::move(ticket));
  }
  return tickets;
}

std::vector<FailureTicket> tickets_from_csv(const std::string& csv) {
  std::istringstream is(csv);
  return read_tickets_csv(is);
}

void save_tickets_csv(std::span<const FailureTicket> tickets,
                      const std::string& path) {
  std::ofstream os(path);
  RWC_CHECK_MSG(os.good(), "cannot open tickets file for writing: " + path);
  write_tickets_csv(tickets, os);
  RWC_CHECK_MSG(os.good(), "error writing tickets file: " + path);
}

std::vector<FailureTicket> load_tickets_csv(const std::string& path) {
  std::ifstream is(path);
  RWC_CHECK_MSG(is.good(), "cannot open tickets file: " + path);
  return read_tickets_csv(is);
}

}  // namespace rwc::tickets
