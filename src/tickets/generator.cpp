#include "tickets/generator.hpp"

#include <algorithm>
#include <span>
#include <string>

#include "util/check.hpp"

namespace rwc::tickets {

using util::Rng;

std::vector<FailureTicket> generate_tickets(const TicketModelParams& params,
                                            std::uint64_t seed) {
  RWC_EXPECTS(params.event_count > 0);
  RWC_EXPECTS(params.observation_window > 0.0);
  Rng rng(seed);

  std::vector<FailureTicket> tickets;
  tickets.reserve(static_cast<std::size_t>(params.event_count));
  for (int i = 0; i < params.event_count; ++i) {
    FailureTicket ticket;
    ticket.id = i + 1;
    ticket.opened_at = rng.uniform(0.0, params.observation_window);

    const std::size_t cause_index =
        rng.pick_weighted(std::span<const double>(params.event_share, 5));
    ticket.cause = kAllRootCauses[cause_index];

    ticket.outage_duration =
        std::max(0.25, rng.lognormal_from_moments(
                           params.mean_duration_hours[cause_index],
                           params.duration_sd_hours[cause_index])) *
        util::kHour;

    if (rng.bernoulli(params.recoverable_probability[cause_index])) {
      ticket.lowest_snr = util::Db{rng.uniform(
          params.recoverable_snr_lo.value, params.recoverable_snr_hi.value)};
    } else if (ticket.cause == RootCause::kFiberCut ||
               rng.bernoulli(params.loss_of_light_fraction)) {
      ticket.lowest_snr = util::Db{params.noise_floor.value +
                                   std::abs(rng.normal(0.0, 0.05))};
    } else {
      ticket.lowest_snr = util::Db{rng.uniform(
          params.noise_floor.value + 0.1, params.recoverable_snr_lo.value)};
    }

    ticket.affected_link =
        "link-" + std::to_string(rng.uniform_int(1, 2000));
    tickets.push_back(std::move(ticket));
  }
  std::sort(tickets.begin(), tickets.end(),
            [](const FailureTicket& a, const FailureTicket& b) {
              return a.opened_at < b.opened_at;
            });
  return tickets;
}

}  // namespace rwc::tickets
