// Synthetic failure-ticket generator, calibrated to the paper's published
// category mix (Fig. 4a/4b) and SNR-at-failure distribution (Fig. 4c):
//   events:   maintenance-coincident 25%, fiber cuts 5%, hardware ~30%,
//             human error ~15%, undocumented ~25%
//   duration: maintenance-coincident ~20%, fiber cuts ~10% of total outage
//   SNR:      ~25% of failures keep lowest SNR >= 3.0 dB (50 Gbps viable)
#pragma once

#include <cstdint>
#include <vector>

#include "tickets/ticket.hpp"
#include "util/rng.hpp"

namespace rwc::tickets {

struct TicketModelParams {
  int event_count = 250;
  util::Seconds observation_window = 7.0 * 30.0 * util::kDay;  // seven months

  /// Event-share per root cause, in kAllRootCauses order.
  double event_share[5] = {0.25, 0.05, 0.30, 0.15, 0.25};
  /// Mean outage duration (hours) per root cause, chosen so the duration
  /// shares land near the paper's Fig. 4a.
  double mean_duration_hours[5] = {4.0, 10.0, 5.0, 4.0, 5.6};
  double duration_sd_hours[5] = {3.5, 7.0, 4.5, 3.0, 5.0};

  /// Probability that a failure of this cause retains SNR >= 3 dB
  /// (degradation rather than loss of light).
  double recoverable_probability[5] = {0.40, 0.0, 0.30, 0.25, 0.15};

  /// SNR range for recoverable failures: [3.0 dB, just under the 100 G
  /// threshold). Non-recoverable failures draw SNR in [floor, 3.0).
  util::Db recoverable_snr_lo{3.0};
  util::Db recoverable_snr_hi{6.3};
  util::Db noise_floor{0.2};
  /// Among non-recoverable failures, the fraction reading the bare noise
  /// floor (complete loss of light) vs. a partial value in (floor, 3.0 dB).
  double loss_of_light_fraction = 0.55;
};

/// Generates a deterministic ticket log for the observation window.
std::vector<FailureTicket> generate_tickets(const TicketModelParams& params,
                                            std::uint64_t seed);

}  // namespace rwc::tickets
