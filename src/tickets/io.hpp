// CSV import/export of failure-ticket logs, so operators can replay their
// own ticket data through the Fig. 4 analyses and examples/failure_replay.
//
// Columns: id,opened_at_seconds,outage_hours,cause,lowest_snr_db,link
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "tickets/ticket.hpp"

namespace rwc::tickets {

void write_tickets_csv(std::span<const FailureTicket> tickets,
                       std::ostream& os);
std::string tickets_to_csv(std::span<const FailureTicket> tickets);

/// Parses a log; throws util::CheckError on malformed input (including an
/// unknown cause name).
std::vector<FailureTicket> read_tickets_csv(std::istream& is);
std::vector<FailureTicket> tickets_from_csv(const std::string& csv);

void save_tickets_csv(std::span<const FailureTicket> tickets,
                      const std::string& path);
std::vector<FailureTicket> load_tickets_csv(const std::string& path);

/// Inverse of to_string(RootCause); throws on unknown names.
RootCause root_cause_from_string(const std::string& name);

}  // namespace rwc::tickets
