// Library identification for rwc_tickets.
namespace rwc::tickets {

/// Version string of the tickets subsystem (matches the top-level project).
const char* version() { return "1.0.0"; }

}  // namespace rwc::tickets
