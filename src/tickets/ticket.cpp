#include "tickets/ticket.hpp"

namespace rwc::tickets {

const char* to_string(RootCause cause) {
  switch (cause) {
    case RootCause::kMaintenanceCoincident:
      return "maintenance-coincident";
    case RootCause::kFiberCut:
      return "fiber-cut";
    case RootCause::kHardwareFailure:
      return "hardware-failure";
    case RootCause::kHumanError:
      return "human-error";
    case RootCause::kUndocumented:
      return "undocumented";
  }
  return "unknown";
}

}  // namespace rwc::tickets
