// Closed-loop demand estimation pipeline (rwc::demand).
//
// One DemandPipeline lives inside each estimated-mode controller
// (core::ControllerOptions::demand). Per TE round it:
//
//   1. builds the routing matrix of the PREVIOUS round's installed plan
//      (demand/routing_matrix.hpp);
//   2. synthesizes this round's link counters from the offered intent over
//      those routes (demand/counters.hpp — noise/loss/staleness knobs and
//      the `demand.counter` fault site live there), or consumes a queued
//      recorded CounterSet instead (replay-from-log, push_replay());
//   3. records the post-fault counters into the bounded CounterLog and
//      feeds the capacity cross-check (demand/capacity.hpp);
//   4. estimates the OD matrix (demand/estimator.hpp) and maintains the
//      EWMA history prior.
//
// Determinism contract (docs/DEMAND.md): the pipeline's outputs are a pure
// function of (config, round index, intent, previous assignment, armed
// fault plan). Faults and degradations land before recording, so replaying
// a live run's CounterLog through a fresh pipeline WITHOUT faults armed
// reproduces every estimate bit-identically (tests/prop/prop_demand.cpp).
// save_state()/restore_state() capture everything that evolves across
// rounds — the optional kDemand checkpoint section (docs/REPLAY.md).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "demand/capacity.hpp"
#include "demand/config.hpp"
#include "demand/counters.hpp"
#include "demand/estimator.hpp"
#include "te/demand.hpp"

namespace rwc::demand {

class DemandPipeline {
 public:
  DemandPipeline(std::size_t edge_count, DemandConfig config);

  struct Result {
    te::TrafficMatrix demands;  ///< estimated matrix (intent ODs, volumes
                                ///< replaced; finite and non-negative)
    EstimateStats stats;
  };

  /// Runs one estimation round. `intent` is the true offered matrix (used
  /// for counter synthesis and as the unobservable-OD fallback); `previous`
  /// is the controller's installed assignment from the prior round.
  Result round(const te::TrafficMatrix& intent,
               const te::FlowAssignment& previous);

  /// Queues a recorded CounterSet; the next round() consumes it instead of
  /// synthesizing (and no demand.counter faults fire — they already fired
  /// before the set was recorded).
  void push_replay(CounterSet counters) {
    replay_queue_.push_back(std::move(counters));
  }

  const CounterLog& log() const { return log_; }
  const te::TrafficMatrix& last_estimated() const { return last_estimated_; }
  const EstimateStats& last_stats() const { return last_stats_; }
  const DemandConfig& config() const { return config_; }
  std::uint64_t rounds() const { return round_; }
  const CapacityEstimator& capacity() const { return capacity_; }

  /// Everything that evolves across rounds (the kDemand checkpoint
  /// section's payload). The CounterLog and the replay queue are
  /// deliberately excluded: they are test/diagnostic substrate, never
  /// inputs to future rounds.
  struct State {
    std::uint64_t round = 0;
    bool ewma_warm = false;
    std::vector<double> ewma;
    std::vector<CounterSample> last_observed;
    std::vector<double> capacity_peak_gbps;

    friend bool operator==(const State&, const State&) = default;
  };
  State save_state() const;
  /// Restores a captured state; vector sizes must be empty or match this
  /// pipeline's topology.
  void restore_state(State state);

 private:
  DemandConfig config_;
  std::size_t edge_count_;
  std::uint64_t round_ = 0;
  bool ewma_warm_ = false;
  std::vector<double> ewma_;
  std::vector<CounterSample> last_observed_;
  std::deque<CounterSet> replay_queue_;
  CounterLog log_;
  CapacityEstimator capacity_;
  te::TrafficMatrix last_estimated_;
  EstimateStats last_stats_;
};

}  // namespace rwc::demand
