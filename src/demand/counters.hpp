// Synthetic per-link counter generation + the recorded counter log
// (rwc::demand).
//
// synthesize_counters models what a collection round would export per
// directed link: delivered bytes/packets and lost packets over the
// interval, derived from the true offered intent routed over the installed
// path splits (demand/routing_matrix.hpp), then degraded by the configured
// loss / noise / staleness and by any armed `demand.counter` fault plan
// (drop / garbage / nan / stale / duplicate, keyed by edge id —
// docs/FAULTS.md). Everything is a pure function of (config, round,
// inputs): the noise stream is util::Rng::stream(config.seed, round), so
// synthesis is deterministic under any thread-pool size.
//
// Faults and degradations apply BEFORE the sample is recorded — the same
// record-before-apply rule as serve's ingest log — so feeding a recorded
// CounterSet back through the estimator, without faults armed, reproduces
// the live run's estimates bit-identically (docs/DEMAND.md §5,
// tests/prop/prop_demand.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "demand/config.hpp"
#include "demand/routing_matrix.hpp"

namespace rwc::demand {

/// What one directed link exported for one collection interval. Doubles,
/// not integers: counters feed straight into the least-squares solve, and
/// fault injection needs to plant NaN/garbage values a sanitizer must catch.
struct CounterSample {
  double tx_bytes = 0.0;      ///< bytes delivered (post-loss) on the link
  double tx_packets = 0.0;    ///< packets delivered
  double lost_packets = 0.0;  ///< packets dropped on the link
  bool missing = false;       ///< collection dropped this link entirely

  friend bool operator==(const CounterSample&, const CounterSample&) = default;
};

/// One collection round: a sample per directed physical link.
struct CounterSet {
  std::uint64_t round = 0;
  std::vector<CounterSample> samples;

  friend bool operator==(const CounterSet&, const CounterSet&) = default;
};

/// Modeled MTU of the packet counters (bytes/packet).
inline constexpr double kPacketBytes = 1500.0;

/// Bytes exported for `gbps` sustained over `interval_seconds`.
inline double bytes_of(double gbps, double interval_seconds) {
  return gbps * (interval_seconds * 1e9 / 8.0);
}

/// Gbps carried by `bytes` over `interval_seconds`.
inline double gbps_of(double bytes, double interval_seconds) {
  return bytes * 8.0 / interval_seconds / 1e9;
}

/// Synthesizes round `round`'s counters from the true volumes (indexed by
/// OD, aligned with `matrix`) routed over `matrix`. `previous` holds the
/// prior round's recorded samples for the staleness model and the kStale
/// fault (pass an empty span on round 0: a stale round-0 link exports
/// zeros). The `demand.counter` fault site fires here, keyed by edge id.
CounterSet synthesize_counters(const RoutingMatrix& matrix,
                               std::span<const double> true_volumes,
                               std::span<const CounterSample> previous,
                               const DemandConfig& config,
                               std::uint64_t round);

/// One directed link as observed by a measurement dataplane
/// (dataplane::counter_observations — docs/DATAPLANE.md §6): measured
/// delivered/dropped rates over the measurement region, plus whether the
/// link *reconciles* — every OD crossing it delivered at its installed
/// analytic share (fraction * volume) with zero measured drops.
struct DataplaneLinkObservation {
  double delivered_gbps = 0.0;  ///< measured delivered rate on the link
  double dropped_gbps = 0.0;    ///< measured drop rate on the link
  bool reconcilable = false;    ///< measured == installed model, drop-free
};

/// Builds a counter round from dataplane link observations instead of the
/// synthetic model. Reconcilable links re-export the installed analytic
/// load — bytes_of(offered_load(row, installed_volumes)) in the
/// contractual row-entry order — so the estimator's exact-recovery
/// certificate can fire on byte-for-byte equality (a float sum measured
/// over thousands of ticks never reproduces the analytic sum bitwise).
/// Non-reconcilable links export their raw measured bytes and drops: the
/// estimator sees real congestion/fault signal, just not certified-exact.
CounterSet counters_from_observations(
    const RoutingMatrix& matrix, std::span<const double> installed_volumes,
    std::span<const DataplaneLinkObservation> observations,
    double interval_seconds, std::uint64_t round);

/// Bounded ring of recorded counter rounds (config.record_rounds).
class CounterLog {
 public:
  explicit CounterLog(std::size_t capacity) : capacity_(capacity) {}

  void append(CounterSet set) {
    if (capacity_ == 0) return;
    if (sets_.size() == capacity_) sets_.pop_front();
    sets_.push_back(std::move(set));
  }

  std::size_t size() const { return sets_.size(); }
  const CounterSet& at(std::size_t i) const { return sets_[i]; }

 private:
  std::size_t capacity_;
  std::deque<CounterSet> sets_;
};

}  // namespace rwc::demand
