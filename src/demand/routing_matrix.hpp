// Sparse routing matrix of the installed TE plan (rwc::demand).
//
// Row i = directed physical link i, column j = OD pair j of the traffic
// matrix; entry (i, j) is the fraction of OD j's routed volume that crosses
// link i under the previous round's path splits. This is the `route` matrix
// of the pseudoinverse OD-estimation technique (SNIPPETS.md snippet 1):
// link_load = R * od_volumes, so the estimator inverts R against observed
// link counters. ODs the previous plan did not route (routed == 0, or no
// plan yet) have empty columns and are UNOBSERVABLE — the estimator falls
// back to the offered intent for them (docs/DEMAND.md §3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "te/demand.hpp"

namespace rwc::demand {

struct RoutingMatrix {
  /// One sparse entry of a link's row: `fraction` of OD `od`'s volume.
  struct Entry {
    std::uint32_t od = 0;
    double fraction = 0.0;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// Per directed link, entries in ascending OD order. The entry order is
  /// CONTRACTUAL: counter synthesis and the estimator's exact-recovery
  /// certificate both accumulate link loads in exactly this order, so a
  /// bit-identical candidate reproduces bit-identical counters.
  std::vector<std::vector<Entry>> rows;
  /// Per OD: whether the previous plan routed a positive volume for it.
  std::vector<std::uint8_t> observable;
  std::size_t links = 0;
  std::size_t ods = 0;

  std::size_t observable_ods() const {
    std::size_t n = 0;
    for (std::uint8_t o : observable) n += o;
    return n;
  }
};

/// Builds the routing matrix of `previous` against the OD list `ods`.
/// The assignment must be positionally aligned with `ods` (same src/dst per
/// index — both built-in TE engines preserve demand order); a misaligned or
/// absent assignment yields an all-unobservable matrix (the round-0
/// bootstrap: no routes installed yet, nothing to invert).
RoutingMatrix build_routing_matrix(std::size_t edge_count,
                                   const te::TrafficMatrix& ods,
                                   const te::FlowAssignment& previous);

/// Offered load of one link row under per-OD volumes (Gbps), accumulated in
/// row-entry order — the shared arithmetic of counter synthesis and the
/// estimator's exact-recovery certificate.
inline double offered_load(std::span<const RoutingMatrix::Entry> row,
                           std::span<const double> od_volumes) {
  double load = 0.0;
  for (const RoutingMatrix::Entry& entry : row)
    load += entry.fraction * od_volumes[entry.od];
  return load;
}

}  // namespace rwc::demand
