// Configuration of the closed-loop demand estimation pipeline (rwc::demand).
//
// Every TE consumer (core controller, sim, replay, fleet, serve) carries a
// DemandConfig. With source == kOracle (the default) nothing changes: the
// controller consumes the demands it is handed, bit-for-bit, exactly as
// before the pipeline existed. With kEstimated the handed-in matrix becomes
// the OFFERED INTENT: the pipeline synthesizes per-link counters from it
// over the previously installed routing, corrupts them per the noise/loss/
// staleness knobs (and any armed `demand.counter` fault plan), infers an OD
// traffic matrix back from the counters, and the controller solves THAT.
// docs/DEMAND.md states the full contract.
#pragma once

#include <cstdint>

namespace rwc::demand {

enum class DemandSource {
  kOracle,     ///< consume handed-in demands directly (legacy behavior)
  kEstimated,  ///< infer demands from synthesized link counters
};

const char* to_string(DemandSource source);

struct DemandConfig {
  DemandSource source = DemandSource::kOracle;

  /// Relative stddev of the multiplicative counter noise (0 = byte-exact
  /// counters; 0.05 = 5% jitter). Applied per link per round from
  /// util::Rng::stream(seed, round), so synthesis is a pure function of
  /// (config, round) — independent of thread-pool size and call order.
  double noise = 0.0;
  /// Mean per-link packet loss probability; each link's per-round loss is
  /// drawn uniformly in [0, 2*loss_rate]. Losses surface as lost-packet
  /// counters, and the estimator divides them back out (loss-rate
  /// composition; a 100%-loss link becomes unobservable instead).
  double loss_rate = 0.0;
  /// Probability a link re-exports the previous interval's counters
  /// (collection staleness).
  double staleness = 0.0;
  /// Counter collection interval: the bytes<->Gbps conversion scale.
  double interval_seconds = 900.0;
  /// EWMA blend factor of the estimate history prior (regularizes damped
  /// solves on rank-deficient / under-determined instances).
  double ewma_alpha = 0.3;
  /// Relative ridge damping of the least-squares fallback.
  double damping = 1e-3;
  /// Stream family for the noise/loss/staleness draws.
  std::uint64_t seed = 1;
  /// Counter-log ring capacity in rounds (0 = no recording). The log is
  /// the replay contract's substrate: a faulted live run replays
  /// bit-identically from it (docs/DEMAND.md §5, tests/prop/prop_demand).
  std::size_t record_rounds = 0;

  bool estimated() const { return source == DemandSource::kEstimated; }

  friend bool operator==(const DemandConfig&, const DemandConfig&) = default;
};

}  // namespace rwc::demand
