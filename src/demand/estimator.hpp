// OD traffic-matrix inference from link counters (rwc::demand).
//
// The estimator inverts the installed routing matrix against one round of
// observed link counters — the pseudoinverse technique of SNIPPETS.md
// snippet 1 (estimate_od_data.py), reshaped for a closed control loop:
//
//   1. Sanitize: missing / non-finite / negative counters are excluded and
//      counted (demand.counters_*); a 100%-loss link is unobservable.
//   2. Loss composition: each usable link's offered load is its delivered
//      rate divided back by (1 - loss_rate), loss_rate from the packet
//      counters (0/0 -> 0: a zero-packet interval is a clean empty link).
//   3. Solve min ||R x - y||^2 over the observable ODs via undamped normal
//      equations first; on rank deficiency, retry ridge-damped toward the
//      EWMA/intent prior: min ||R x - y||^2 + lambda ||x - x0||^2.
//   4. Project onto x >= 0 and quantize to the 1e-6 Gbps grid; the
//      EXACT-RECOVERY CERTIFICATE re-synthesizes every link's byte counter
//      from the snapped candidate in the contractual row-entry order and
//      accepts the snapped solution iff every counter matches bit-for-bit.
//      On clean zero-noise rounds with on-grid true volumes the certificate
//      fires and the estimate IS the truth — which is what makes
//      estimated-demand rounds reproduce oracle round signatures exactly
//      (docs/DEMAND.md §4, tests/test_demand_differential.cpp).
//   5. Unobservable ODs (empty routing column) fall back to the offered
//      intent — the host-reported demand a real controller has anyway.
//
// The `demand.solve` fault site (kind kBudget) fires once per call: when
// the armed budget is smaller than the unknown count the solve is skipped
// and every OD falls back to its prior/intent (finite and non-negative by
// construction — the degraded mode the property harness pins).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "demand/config.hpp"
#include "demand/counters.hpp"
#include "demand/routing_matrix.hpp"

namespace rwc::demand {

/// 1e-6 Gbps (~1 kbit/s) estimate quantization grid.
inline constexpr double kVolumeGridGbps = 1e-6;

/// Snaps a volume onto the estimate grid (idempotent for the magnitudes the
/// ladder deals in).
double snap_to_grid(double gbps);

/// Per-round outcome accounting. Work/diagnostic data only — never part of
/// a round's result signature (the estimated volumes themselves are).
struct EstimateStats {
  bool estimated = false;         ///< a least-squares solve ran
  bool exact = false;             ///< exact-recovery certificate fired
  bool damped = false;            ///< ridge fallback engaged
  bool budget_exhausted = false;  ///< demand.solve budget fell back to prior
  std::uint64_t sanitized = 0;    ///< non-finite/negative samples excluded
  std::uint64_t dropped = 0;      ///< missing samples
  std::uint64_t lossy_unobservable = 0;  ///< 100%-loss links excluded
  std::uint64_t unobservable_ods = 0;    ///< ODs served from intent
  double residual = 0.0;  ///< RMS link-load residual of the estimate
};

struct EstimateResult {
  std::vector<double> volumes;  ///< per OD, finite and >= 0
  EstimateStats stats;
};

/// Estimates per-OD volumes from `counters` against `matrix`. `intent` is
/// the offered-intent fallback (per OD); `prior` is the EWMA history prior
/// (empty == cold, intent substitutes). Pure function of its arguments plus
/// the armed fault plan.
EstimateResult estimate_od_volumes(const RoutingMatrix& matrix,
                                   const CounterSet& counters,
                                   std::span<const double> intent,
                                   std::span<const double> prior,
                                   const DemandConfig& config);

}  // namespace rwc::demand
