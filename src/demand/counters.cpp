#include "demand/counters.hpp"

#include <algorithm>
#include <limits>

#include "fault/registry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rwc::demand {

CounterSet synthesize_counters(const RoutingMatrix& matrix,
                               std::span<const double> true_volumes,
                               std::span<const CounterSample> previous,
                               const DemandConfig& config,
                               std::uint64_t round) {
  CounterSet set;
  set.round = round;
  set.samples.resize(matrix.links);
  util::Rng rng = util::Rng::stream(config.seed, round);

  for (std::size_t i = 0; i < matrix.links; ++i) {
    CounterSample sample;
    // Offered load in the contractual row-entry order (the estimator's
    // exact-recovery certificate re-runs this sum bit-for-bit).
    const double offered = offered_load(matrix.rows[i], true_volumes);

    // Loss: a per-round per-link loss probability surfaces as lost-packet
    // counters; the delivered byte/packet counters shrink accordingly.
    double delivered = offered;
    double loss_fraction = 0.0;
    if (config.loss_rate > 0.0) {
      loss_fraction =
          std::clamp(rng.uniform(0.0, 2.0 * config.loss_rate), 0.0, 1.0);
      delivered = offered * (1.0 - loss_fraction);
    }
    sample.tx_bytes = bytes_of(delivered, config.interval_seconds);
    sample.tx_packets = sample.tx_bytes / kPacketBytes;
    if (loss_fraction > 0.0 && loss_fraction < 1.0) {
      sample.lost_packets =
          sample.tx_packets * loss_fraction / (1.0 - loss_fraction);
    } else if (loss_fraction >= 1.0) {
      sample.lost_packets =
          bytes_of(offered, config.interval_seconds) / kPacketBytes;
    }

    // Multiplicative export noise (skipped entirely at noise == 0 so the
    // zero-noise counters are byte-exact, not merely close).
    if (config.noise > 0.0) {
      const double factor = 1.0 + rng.normal(0.0, config.noise);
      sample.tx_bytes = std::max(0.0, sample.tx_bytes * factor);
      sample.tx_packets = sample.tx_bytes / kPacketBytes;
    }

    // Collection staleness: the link re-exports the previous interval.
    if (config.staleness > 0.0 && rng.bernoulli(config.staleness) &&
        i < previous.size()) {
      sample = previous[i];
    }

    // Fault injection (docs/FAULTS.md, site demand.counter): this link's
    // counters vanish, arrive corrupted, stale or double-counted. Keyed by
    // edge id, so injections are pool-size independent, and applied BEFORE
    // the sample is recorded (record-before-apply — replaying the log
    // without faults reproduces the faulted run).
    switch (fault::at("demand.counter", static_cast<std::uint64_t>(i)).kind) {
      case fault::Kind::kDrop:
        sample = CounterSample{};
        sample.missing = true;
        break;
      case fault::Kind::kNan:
        sample.tx_bytes = std::numeric_limits<double>::quiet_NaN();
        break;
      case fault::Kind::kGarbage:
        sample.tx_bytes = -1e18;
        break;
      case fault::Kind::kStale:
        sample = i < previous.size() ? previous[i] : CounterSample{};
        break;
      case fault::Kind::kDuplicate:
        sample.tx_bytes *= 2.0;
        sample.tx_packets *= 2.0;
        sample.lost_packets *= 2.0;
        break;
      default:
        break;
    }

    set.samples[i] = sample;
  }
  return set;
}

CounterSet counters_from_observations(
    const RoutingMatrix& matrix, std::span<const double> installed_volumes,
    std::span<const DataplaneLinkObservation> observations,
    double interval_seconds, std::uint64_t round) {
  RWC_CHECK_MSG(observations.size() == matrix.links,
                "counters_from_observations: observation/link count mismatch");
  RWC_CHECK_MSG(installed_volumes.size() == matrix.ods,
                "counters_from_observations: volume/OD count mismatch");
  CounterSet set;
  set.round = round;
  set.samples.resize(matrix.links);
  for (std::size_t i = 0; i < matrix.links; ++i) {
    const DataplaneLinkObservation& obs = observations[i];
    CounterSample sample;
    if (obs.reconcilable) {
      // Reconciled export: the dataplane delivered the installed model, so
      // export the model itself — bit-identical to what the certificate
      // will re-derive from a recovered candidate.
      sample.tx_bytes = bytes_of(offered_load(matrix.rows[i],
                                              installed_volumes),
                                 interval_seconds);
    } else {
      sample.tx_bytes = bytes_of(obs.delivered_gbps, interval_seconds);
      sample.lost_packets =
          bytes_of(obs.dropped_gbps, interval_seconds) / kPacketBytes;
    }
    sample.tx_packets = sample.tx_bytes / kPacketBytes;
    set.samples[i] = sample;
  }
  return set;
}

}  // namespace rwc::demand
