#include "demand/capacity.hpp"

#include <algorithm>
#include <cmath>

#include "obs/registry.hpp"

namespace rwc::demand {

CapacityEstimator::CapacityEstimator(std::size_t links, double decay,
                                     double tolerance)
    : decay_(decay), tolerance_(tolerance), peak_gbps_(links, 0.0) {}

void CapacityEstimator::observe(const CounterSet& counters,
                                double interval_seconds) {
  const std::size_t n = std::min(peak_gbps_.size(), counters.samples.size());
  for (std::size_t i = 0; i < n; ++i) {
    const CounterSample& sample = counters.samples[i];
    peak_gbps_[i] *= decay_;
    if (sample.missing) continue;
    const double rate = gbps_of(sample.tx_bytes, interval_seconds);
    if (!std::isfinite(rate) || rate < 0.0) continue;
    peak_gbps_[i] = std::max(peak_gbps_[i], rate);
  }
}

std::vector<CapacityEstimate> CapacityEstimator::estimates(
    const optical::ModulationTable& table, std::span<const util::Db> snr,
    util::Db margin) const {
  static auto& mismatches =
      obs::Registry::global().counter("demand.capacity.mismatch");
  std::vector<CapacityEstimate> result(peak_gbps_.size());
  for (std::size_t i = 0; i < result.size(); ++i) {
    result[i].measured_gbps = peak_gbps_[i];
    result[i].snr_gbps =
        i < snr.size() ? table.feasible_capacity(snr[i], margin).value : 0.0;
    result[i].consistent =
        result[i].measured_gbps <= result[i].snr_gbps * (1.0 + tolerance_);
    if (!result[i].consistent) mismatches.add();
  }
  return result;
}

}  // namespace rwc::demand
