#include "demand/estimator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "fault/registry.hpp"
#include "obs/registry.hpp"

namespace rwc::demand {

namespace {

/// Handles into the global registry (docs/OBSERVABILITY.md: demand.*).
struct EstimatorMetrics {
  obs::Counter& solves;
  obs::Counter& exact;
  obs::Counter& damped;
  obs::Counter& sanitized;
  obs::Counter& dropped;
  obs::Counter& lossy;
  obs::Counter& unobservable_ods;
  obs::Counter& budget_exhausted;
  obs::Gauge& residual;

  static EstimatorMetrics& instance() {
    static auto& registry = obs::Registry::global();
    static EstimatorMetrics metrics{
        registry.counter("demand.solves"),
        registry.counter("demand.estimates_exact"),
        registry.counter("demand.estimates_damped"),
        registry.counter("demand.counters_sanitized"),
        registry.counter("demand.counters_dropped"),
        registry.counter("demand.counters_lossy"),
        registry.counter("demand.unobservable_ods"),
        registry.counter("demand.solve.budget_exhausted"),
        registry.gauge("demand.residual"),
    };
    return metrics;
  }
};

struct UsableRow {
  std::size_t link = 0;
  double offered_gbps = 0.0;  ///< delivered rate divided back by (1 - loss)
};

bool finite_non_negative(double value) {
  return std::isfinite(value) && value >= 0.0;
}

/// In-place Cholesky LL^T of the dense symmetric `a` (n x n, row-major).
/// Returns false when a pivot falls below `tolerance` (rank deficiency).
bool cholesky(std::vector<double>& a, std::size_t n, double tolerance) {
  for (std::size_t k = 0; k < n; ++k) {
    double diag = a[k * n + k];
    for (std::size_t j = 0; j < k; ++j) diag -= a[k * n + j] * a[k * n + j];
    if (!(diag > tolerance)) return false;
    const double root = std::sqrt(diag);
    a[k * n + k] = root;
    for (std::size_t i = k + 1; i < n; ++i) {
      double value = a[i * n + k];
      for (std::size_t j = 0; j < k; ++j)
        value -= a[i * n + j] * a[k * n + j];
      a[i * n + k] = value / root;
    }
  }
  return true;
}

/// Solves L L^T x = b given the factor from cholesky().
std::vector<double> cholesky_solve(const std::vector<double>& l, std::size_t n,
                                   std::vector<double> b) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) b[i] -= l[i * n + j] * b[j];
    b[i] /= l[i * n + i];
  }
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = i + 1; j < n; ++j) b[i] -= l[j * n + i] * b[j];
    b[i] /= l[i * n + i];
  }
  return b;
}

bool bitwise_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

double snap_to_grid(double gbps) {
  return std::round(gbps / kVolumeGridGbps) * kVolumeGridGbps;
}

EstimateResult estimate_od_volumes(const RoutingMatrix& matrix,
                                   const CounterSet& counters,
                                   std::span<const double> intent,
                                   std::span<const double> prior,
                                   const DemandConfig& config) {
  auto& metrics = EstimatorMetrics::instance();
  EstimateResult result;
  result.volumes.assign(intent.begin(), intent.end());
  EstimateStats& stats = result.stats;

  // Sanitize + loss composition: one usable row per trustworthy link.
  std::vector<UsableRow> rows;
  bool all_links_clean = counters.samples.size() == matrix.links;
  rows.reserve(counters.samples.size());
  for (std::size_t i = 0;
       i < std::min(counters.samples.size(), matrix.links); ++i) {
    const CounterSample& sample = counters.samples[i];
    if (sample.missing) {
      ++stats.dropped;
      all_links_clean = false;
      continue;
    }
    if (!finite_non_negative(sample.tx_bytes) ||
        !finite_non_negative(sample.tx_packets) ||
        !finite_non_negative(sample.lost_packets)) {
      ++stats.sanitized;
      all_links_clean = false;
      continue;
    }
    const double total_packets = sample.tx_packets + sample.lost_packets;
    const double loss =
        total_packets > 0.0 ? sample.lost_packets / total_packets : 0.0;
    if (loss >= 1.0 - 1e-12) {  // 100% loss: offered load unrecoverable
      ++stats.lossy_unobservable;
      all_links_clean = false;
      continue;
    }
    double offered = gbps_of(sample.tx_bytes, config.interval_seconds);
    if (loss > 0.0) {
      offered /= (1.0 - loss);
      all_links_clean = false;  // lossy rounds never certify exact
    }
    rows.push_back({i, offered});
  }
  metrics.sanitized.add(stats.sanitized);
  metrics.dropped.add(stats.dropped);
  metrics.lossy.add(stats.lossy_unobservable);

  // Observable OD columns (compacted local index space).
  std::vector<std::uint32_t> cols;
  std::vector<std::int32_t> col_of(matrix.ods, -1);
  for (std::size_t j = 0; j < matrix.ods; ++j) {
    if (matrix.observable[j]) {
      col_of[j] = static_cast<std::int32_t>(cols.size());
      cols.push_back(static_cast<std::uint32_t>(j));
    }
  }
  stats.unobservable_ods = matrix.ods - cols.size();
  metrics.unobservable_ods.add(stats.unobservable_ods);

  // Bootstrap / nothing to invert: the offered intent is the estimate.
  if (cols.empty() || rows.empty()) return result;

  const auto prior_of = [&](std::uint32_t od) {
    return od < prior.size() ? prior[od] : intent[od];
  };

  // Fault injection (docs/FAULTS.md, site demand.solve): a solve budget
  // smaller than the unknown count aborts the inversion; every observable
  // OD falls back to its prior — finite and non-negative, never garbage.
  const fault::Action solve_fault = fault::next("demand.solve");
  if (solve_fault.kind == fault::Kind::kBudget &&
      static_cast<double>(cols.size()) > solve_fault.magnitude) {
    for (const std::uint32_t od : cols)
      result.volumes[od] = std::max(0.0, prior_of(od));
    stats.budget_exhausted = true;
    metrics.budget_exhausted.add();
    return result;
  }

  // Normal equations A = R^T R, b = R^T y over the usable rows.
  const std::size_t n = cols.size();
  std::vector<double> a(n * n, 0.0);
  std::vector<double> b(n, 0.0);
  for (const UsableRow& row : rows) {
    const auto& entries = matrix.rows[row.link];
    for (const RoutingMatrix::Entry& e1 : entries) {
      const auto c1 = static_cast<std::size_t>(col_of[e1.od]);
      b[c1] += e1.fraction * row.offered_gbps;
      for (const RoutingMatrix::Entry& e2 : entries) {
        const auto c2 = static_cast<std::size_t>(col_of[e2.od]);
        a[c1 * n + c2] += e1.fraction * e2.fraction;
      }
    }
  }
  double max_diag = 0.0;
  for (std::size_t c = 0; c < n; ++c) max_diag = std::max(max_diag, a[c * n + c]);

  // Undamped first; ridge-damped toward the EWMA/intent prior on rank
  // deficiency (under-determined instances, duplicated columns).
  std::vector<double> factor = a;
  std::vector<double> x;
  if (cholesky(factor, n, 1e-10 * std::max(max_diag, 1.0))) {
    x = cholesky_solve(factor, n, b);
  } else {
    const double lambda = config.damping * std::max(max_diag, 1.0);
    factor = a;
    for (std::size_t c = 0; c < n; ++c) factor[c * n + c] += lambda;
    std::vector<double> damped_b = b;
    for (std::size_t c = 0; c < n; ++c)
      damped_b[c] += lambda * prior_of(cols[c]);
    if (!cholesky(factor, n, 0.0)) {
      // Degenerate beyond repair (all-zero rows): fall back to the prior.
      for (const std::uint32_t od : cols)
        result.volumes[od] = std::max(0.0, prior_of(od));
      return result;
    }
    x = cholesky_solve(factor, n, damped_b);
    stats.damped = true;
    metrics.damped.add();
  }
  stats.estimated = true;
  metrics.solves.add();

  // Non-negativity projection.
  for (double& value : x) value = std::max(0.0, value);

  // Exact-recovery certificate: snap onto the grid and re-synthesize every
  // link's byte counter in the contractual arithmetic order; accept the
  // snapped candidate iff every counter matches bit-for-bit. Only clean
  // loss-free rounds with every link reporting are eligible.
  bool lost_free = true;
  for (const CounterSample& sample : counters.samples)
    if (sample.missing || sample.lost_packets != 0.0) lost_free = false;
  if (all_links_clean && lost_free) {
    std::vector<double> candidate(matrix.ods, 0.0);
    for (std::size_t c = 0; c < n; ++c) candidate[cols[c]] = snap_to_grid(x[c]);
    bool certified = true;
    for (std::size_t i = 0; i < matrix.links && certified; ++i) {
      const double bytes = bytes_of(offered_load(matrix.rows[i], candidate),
                                    config.interval_seconds);
      certified = bitwise_equal(bytes, counters.samples[i].tx_bytes);
    }
    if (certified) {
      for (std::size_t c = 0; c < n; ++c) x[c] = candidate[cols[c]];
      stats.exact = true;
      metrics.exact.add();
    }
  }

  for (std::size_t c = 0; c < n; ++c) result.volumes[cols[c]] = x[c];

  // RMS link-load residual of the returned estimate (observable part only;
  // unobservable ODs route nothing, so they cancel out of every row).
  std::vector<double> final_volumes(matrix.ods, 0.0);
  for (std::size_t c = 0; c < n; ++c) final_volumes[cols[c]] = x[c];
  double squares = 0.0;
  for (const UsableRow& row : rows) {
    const double delta =
        offered_load(matrix.rows[row.link], final_volumes) - row.offered_gbps;
    squares += delta * delta;
  }
  stats.residual = std::sqrt(squares / static_cast<double>(rows.size()));
  metrics.residual.set(stats.residual);
  return result;
}

}  // namespace rwc::demand
