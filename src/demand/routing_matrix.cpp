#include "demand/routing_matrix.hpp"

namespace rwc::demand {

RoutingMatrix build_routing_matrix(std::size_t edge_count,
                                   const te::TrafficMatrix& ods,
                                   const te::FlowAssignment& previous) {
  RoutingMatrix matrix;
  matrix.links = edge_count;
  matrix.ods = ods.size();
  matrix.rows.assign(edge_count, {});
  matrix.observable.assign(ods.size(), 0);

  if (previous.routings.size() != ods.size()) return matrix;
  for (std::size_t j = 0; j < ods.size(); ++j) {
    const auto& routing = previous.routings[j];
    if (routing.demand.src != ods[j].src || routing.demand.dst != ods[j].dst)
      return matrix;
  }

  for (std::size_t j = 0; j < ods.size(); ++j) {
    const auto& routing = previous.routings[j];
    if (!(routing.routed.value > 0.0)) continue;
    matrix.observable[j] = 1;
    for (const auto& [path, volume] : routing.paths) {
      const double fraction = volume.value / routing.routed.value;
      if (!(fraction > 0.0)) continue;
      for (const graph::EdgeId edge : path.edges) {
        const auto i = static_cast<std::size_t>(edge.value);
        if (i >= edge_count) continue;
        auto& row = matrix.rows[i];
        // OD indices ascend across the outer loop, so a same-OD entry (two
        // paths of OD j sharing this link) can only be the row's last.
        if (!row.empty() && row.back().od == j) {
          row.back().fraction += fraction;
        } else {
          row.push_back({static_cast<std::uint32_t>(j), fraction});
        }
      }
    }
  }

  return matrix;
}

}  // namespace rwc::demand
