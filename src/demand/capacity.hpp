// Measurement-based capacity estimation with an SNR cross-check
// (rwc::demand, CapEst-style — PAPERS.md, Jindal et al.).
//
// The counters already tell us what each link demonstrably carried; the SNR
// ladder tells us what it should be able to carry. CapacityEstimator keeps
// a decayed peak of the delivered rate per link (the measurement-based
// estimate: a lower bound that converges from below as traffic exercises
// the link) and cross-checks it against telemetry's SNR-derived feasible
// rate (optical::ModulationTable::feasible_capacity). A link measured ABOVE
// its SNR-feasible rate means the two telemetry planes disagree — counted
// under demand.capacity.mismatch, a diagnostic that never alters results.
#pragma once

#include <span>
#include <vector>

#include "demand/counters.hpp"
#include "optical/modulation.hpp"
#include "util/units.hpp"

namespace rwc::demand {

struct CapacityEstimate {
  double measured_gbps = 0.0;  ///< decayed peak delivered rate
  double snr_gbps = 0.0;       ///< ladder rate the SNR supports at margin
  /// measured <= snr * (1 + tolerance): the planes agree.
  bool consistent = true;
};

class CapacityEstimator {
 public:
  /// `decay` multiplies the running peak each round before the new sample
  /// competes with it; `tolerance` is the cross-check slack.
  explicit CapacityEstimator(std::size_t links, double decay = 0.98,
                             double tolerance = 0.05);

  /// Feeds one round of counters (missing/corrupt samples are skipped).
  void observe(const CounterSet& counters, double interval_seconds);

  /// Cross-checks against per-link SNR; counts demand.capacity.mismatch.
  std::vector<CapacityEstimate> estimates(const optical::ModulationTable& table,
                                          std::span<const util::Db> snr,
                                          util::Db margin) const;

  /// Decayed peak delivered rate per link (checkpointable state).
  const std::vector<double>& measured() const { return peak_gbps_; }
  void restore_measured(std::vector<double> peak) {
    peak_gbps_ = std::move(peak);
  }

 private:
  double decay_;
  double tolerance_;
  std::vector<double> peak_gbps_;
};

}  // namespace rwc::demand
