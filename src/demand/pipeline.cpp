#include "demand/pipeline.hpp"

#include <span>
#include <utility>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace rwc::demand {

const char* to_string(DemandSource source) {
  switch (source) {
    case DemandSource::kOracle:
      return "oracle";
    case DemandSource::kEstimated:
      return "estimated";
  }
  return "?";
}

DemandPipeline::DemandPipeline(std::size_t edge_count, DemandConfig config)
    : config_(config),
      edge_count_(edge_count),
      log_(config.record_rounds),
      capacity_(edge_count) {}

DemandPipeline::Result DemandPipeline::round(
    const te::TrafficMatrix& intent, const te::FlowAssignment& previous) {
  static auto& rounds_counter = obs::Registry::global().counter("demand.rounds");
  rounds_counter.add();

  std::vector<double> intent_volumes;
  intent_volumes.reserve(intent.size());
  for (const te::Demand& demand : intent)
    intent_volumes.push_back(demand.volume.value);

  const RoutingMatrix matrix =
      build_routing_matrix(edge_count_, intent, previous);

  CounterSet counters;
  if (!replay_queue_.empty()) {
    counters = std::move(replay_queue_.front());
    replay_queue_.pop_front();
    counters.round = round_;
  } else {
    counters = synthesize_counters(matrix, intent_volumes, last_observed_,
                                   config_, round_);
  }
  last_observed_ = counters.samples;
  capacity_.observe(counters, config_.interval_seconds);

  const std::span<const double> prior =
      ewma_warm_ && ewma_.size() == intent.size()
          ? std::span<const double>(ewma_)
          : std::span<const double>{};
  EstimateResult estimate = estimate_od_volumes(matrix, counters,
                                                intent_volumes, prior, config_);
  log_.append(std::move(counters));

  // EWMA history prior over the final estimate (the damped solve's anchor).
  if (!ewma_warm_ || ewma_.size() != estimate.volumes.size()) {
    ewma_ = estimate.volumes;
    ewma_warm_ = true;
  } else {
    for (std::size_t j = 0; j < ewma_.size(); ++j)
      ewma_[j] = config_.ewma_alpha * estimate.volumes[j] +
                 (1.0 - config_.ewma_alpha) * ewma_[j];
  }

  Result result;
  result.demands = intent;
  for (std::size_t j = 0; j < result.demands.size(); ++j)
    result.demands[j].volume = util::Gbps{estimate.volumes[j]};
  result.stats = estimate.stats;

  last_estimated_ = result.demands;
  last_stats_ = result.stats;
  ++round_;
  return result;
}

DemandPipeline::State DemandPipeline::save_state() const {
  State state;
  state.round = round_;
  state.ewma_warm = ewma_warm_;
  state.ewma = ewma_;
  state.last_observed = last_observed_;
  state.capacity_peak_gbps = capacity_.measured();
  return state;
}

void DemandPipeline::restore_state(State state) {
  RWC_EXPECTS(state.last_observed.empty() ||
              state.last_observed.size() == edge_count_);
  RWC_EXPECTS(state.capacity_peak_gbps.empty() ||
              state.capacity_peak_gbps.size() == edge_count_);
  round_ = state.round;
  ewma_warm_ = state.ewma_warm;
  ewma_ = std::move(state.ewma);
  last_observed_ = std::move(state.last_observed);
  if (state.capacity_peak_gbps.empty())
    state.capacity_peak_gbps.assign(edge_count_, 0.0);
  capacity_.restore_measured(std::move(state.capacity_peak_gbps));
  replay_queue_.clear();
}

}  // namespace rwc::demand
