#include "optical/modulation.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rwc::optical {

using util::Db;
using util::Gbps;

ModulationTable::ModulationTable(std::vector<ModulationFormat> formats)
    : formats_(std::move(formats)) {
  RWC_EXPECTS(!formats_.empty());
  std::sort(formats_.begin(), formats_.end(),
            [](const ModulationFormat& a, const ModulationFormat& b) {
              return a.capacity < b.capacity;
            });
  for (std::size_t i = 1; i < formats_.size(); ++i) {
    RWC_EXPECTS(formats_[i].capacity > formats_[i - 1].capacity);
    RWC_EXPECTS(formats_[i].min_snr > formats_[i - 1].min_snr);
  }
}

ModulationTable ModulationTable::standard() {
  using namespace util::literals;
  return ModulationTable({
      {"DP-BPSK", 50_Gbps, 3.0_dB, 1.0},
      {"DP-QPSK", 100_Gbps, 6.5_dB, 2.0},
      {"DP-QPSK/8QAM hybrid", 125_Gbps, 8.2_dB, 2.5},
      {"DP-8QAM", 150_Gbps, 9.8_dB, 3.0},
      {"DP-8QAM/16QAM hybrid", 175_Gbps, 11.4_dB, 3.5},
      {"DP-16QAM", 200_Gbps, 13.0_dB, 4.0},
  });
}

std::optional<ModulationFormat> ModulationTable::best_for_snr(
    Db snr, Db margin) const {
  const Db effective = snr - margin;
  std::optional<ModulationFormat> best;
  for (const ModulationFormat& f : formats_) {
    if (f.min_snr <= effective)
      best = f;
    else
      break;
  }
  return best;
}

Gbps ModulationTable::feasible_capacity(Db snr, Db margin) const {
  const auto best = best_for_snr(snr, margin);
  return best ? best->capacity : Gbps{0.0};
}

Db ModulationTable::threshold_for(Gbps capacity) const {
  return format_for(capacity).min_snr;
}

const ModulationFormat& ModulationTable::format_for(Gbps capacity) const {
  for (const ModulationFormat& f : formats_)
    if (f.capacity == capacity) return f;
  RWC_CHECK_MSG(false, "capacity not on the modulation ladder");
  // Unreachable; RWC_CHECK_MSG throws.
  return formats_.front();
}

bool ModulationTable::has_rate(Gbps capacity) const {
  return std::any_of(
      formats_.begin(), formats_.end(),
      [&](const ModulationFormat& f) { return f.capacity == capacity; });
}

}  // namespace rwc::optical
