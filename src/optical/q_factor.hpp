// Q-factor conversions. Operational optical telemetry (e.g. the Microsoft
// backbone studies the paper builds on) is often reported as Q² in dB rather
// than SNR; these helpers convert between Q, Q²(dB) and pre-FEC BER for
// binary-decision channels:  BER = Q(q) = 0.5 erfc(q / sqrt(2)).
#pragma once

#include "util/units.hpp"

namespace rwc::optical {

/// BER for a given linear Q factor.
double ber_from_q(double q);

/// Linear Q factor for a given BER (inverse of ber_from_q); requires
/// 0 < ber < 0.5.
double q_from_ber(double ber);

/// Q² expressed in dB: 20 log10(q).
util::Db q_squared_db(double q);

/// Linear Q from a Q²(dB) value.
double q_from_q_squared_db(util::Db q2);

}  // namespace rwc::optical
