// Library identification for rwc_optical.
namespace rwc::optical {

/// Version string of the optical subsystem (matches the top-level project).
const char* version() { return "1.0.0"; }

}  // namespace rwc::optical
