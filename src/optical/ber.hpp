// Textbook bit-error-rate and EVM approximations for coherent QAM formats.
// Used by the BVT simulator to validate that a requested modulation is
// actually viable at the link's SNR (pre-FEC BER below the FEC limit) and to
// annotate constellation diagrams (Figure 5).
#pragma once

#include "optical/modulation.hpp"
#include "util/units.hpp"

namespace rwc::optical {

/// Gaussian tail probability Q(x) = P(N(0,1) > x).
double q_function(double x);

/// Approximate pre-FEC BER of a square/cross M-QAM constellation at symbol
/// SNR `snr` (Es/N0). Uses the standard nearest-neighbour union bound with
/// Gray mapping; hybrid (fractional bits/symbol) formats interpolate
/// geometrically between the bracketing integer formats.
double approx_ber(const ModulationFormat& format, util::Db snr);

/// Error vector magnitude (RMS, as a fraction of RMS symbol power) expected
/// at symbol SNR `snr`: EVM = 1/sqrt(SNR_linear).
double expected_evm(util::Db snr);

/// Soft-decision FEC limit used for the viability check; chosen so every
/// ladder rate is viable exactly down to its published SNR threshold
/// (modern SD-FEC engines correct pre-FEC BER up to ~2.4e-2).
inline constexpr double kFecBerLimit = 2.4e-2;

/// True when the format's pre-FEC BER at `snr` clears the FEC limit.
bool format_viable(const ModulationFormat& format, util::Db snr);

}  // namespace rwc::optical
