#include "optical/link_budget.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rwc::optical {

using util::Db;
using util::Gbps;

namespace {
/// 10 log10 of (reference bandwidth 12.5 GHz) in the OSNR convention.
constexpr double kReferenceBandwidthGhz = 12.5;
constexpr double kOsnrConstantDb = 58.0;
}  // namespace

Db estimate_osnr(const LinkBudget& budget) {
  RWC_EXPECTS(budget.span_count >= 1);
  RWC_EXPECTS(budget.span.length_km > 0.0);
  RWC_EXPECTS(budget.span.attenuation_db_per_km > 0.0);
  const double span_loss_db =
      budget.span.length_km * budget.span.attenuation_db_per_km;
  return Db{kOsnrConstantDb + budget.launch_power_dbm - span_loss_db -
            budget.span.amplifier_noise_figure_db -
            10.0 * std::log10(static_cast<double>(budget.span_count))};
}

Db osnr_to_snr(Db osnr, double symbol_rate_gbaud) {
  RWC_EXPECTS(symbol_rate_gbaud > 0.0);
  return osnr -
         Db{10.0 * std::log10(symbol_rate_gbaud / kReferenceBandwidthGhz)};
}

Db estimate_snr(const LinkBudget& budget) {
  return osnr_to_snr(estimate_osnr(budget), budget.symbol_rate_gbaud);
}

Gbps feasible_capacity(const LinkBudget& budget,
                       const ModulationTable& table, Db margin) {
  return table.feasible_capacity(estimate_snr(budget), margin);
}

int max_reach_spans(LinkBudget budget, Db required_snr, Db margin) {
  // SNR decreases monotonically in span count: walk until violation.
  // (Closed form exists; the walk keeps the one formula authoritative.)
  int spans = 0;
  for (budget.span_count = 1; budget.span_count <= 10000;
       ++budget.span_count) {
    if (estimate_snr(budget) - margin < required_snr) break;
    spans = budget.span_count;
  }
  return spans;
}

}  // namespace rwc::optical
