// First-order optical link budget for an amplified WAN span chain.
//
// Gives the SNR model physical grounding: the paper's thresholds are
// "specific to our hardware, fiber length, fiber type, and wavelength"; this
// module lets a user derive a clear-sky SNR (and hence the feasible ladder
// rate and maximum reach) from route parameters instead of guessing.
//
// Standard engineering approximations:
//   OSNR[dB/0.1nm] = 58 + P_launch[dBm] - L_span[dB] - NF[dB]
//                    - 10 log10(N_spans)
//   SNR = OSNR - 10 log10(R_s / 12.5 GHz)      (per-symbol SNR at rate R_s)
// (58 dB folds h*nu*B_ref at 1550 nm; EDFA-only line, identical spans.)
#pragma once

#include "optical/modulation.hpp"
#include "util/units.hpp"

namespace rwc::optical {

struct SpanParams {
  double length_km = 80.0;
  double attenuation_db_per_km = 0.22;
  /// EDFA noise figure compensating this span.
  double amplifier_noise_figure_db = 5.0;
};

struct LinkBudget {
  int span_count = 1;
  SpanParams span;
  double launch_power_dbm = 0.0;
  double symbol_rate_gbaud = 32.0;

  double total_length_km() const {
    return span.length_km * span_count;
  }
};

/// OSNR (0.1 nm reference bandwidth) delivered at the receiver.
util::Db estimate_osnr(const LinkBudget& budget);

/// Converts OSNR to per-symbol SNR at the given symbol rate.
util::Db osnr_to_snr(util::Db osnr, double symbol_rate_gbaud);

/// Clear-sky per-symbol SNR of the link.
util::Db estimate_snr(const LinkBudget& budget);

/// Highest ladder rate the budget supports (with margin), or 0 Gbps.
util::Gbps feasible_capacity(const LinkBudget& budget,
                             const ModulationTable& table,
                             util::Db margin = util::Db{0.0});

/// Maximum number of identical spans before `required_snr` (plus margin) is
/// violated; 0 when even one span is infeasible.
int max_reach_spans(LinkBudget budget, util::Db required_snr,
                    util::Db margin = util::Db{0.0});

}  // namespace rwc::optical
