#include "optical/q_factor.hpp"

#include <cmath>

#include "optical/ber.hpp"
#include "util/check.hpp"

namespace rwc::optical {

double ber_from_q(double q) { return q_function(q); }

double q_from_ber(double ber) {
  RWC_EXPECTS(ber > 0.0 && ber < 0.5);
  // Invert Q(q) = ber by bisection: Q is strictly decreasing on [0, 40].
  double lo = 0.0;
  double hi = 40.0;
  for (int iteration = 0; iteration < 200; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (q_function(mid) > ber)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

util::Db q_squared_db(double q) {
  RWC_EXPECTS(q > 0.0);
  return util::Db{20.0 * std::log10(q)};
}

double q_from_q_squared_db(util::Db q2) {
  return std::pow(10.0, q2.value / 20.0);
}

}  // namespace rwc::optical
