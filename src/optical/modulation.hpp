// The modulation ladder: which line rate a wavelength can carry at a given
// SNR. The paper's anchors: 100 Gbps requires 6.5 dB; 3.0 dB still supports
// 50 Gbps; the hardware ladder is {100, 125, 150, 175, 200} Gbps (plus the
// 50 Gbps fallback used for availability). Thresholds between the anchors
// follow the flex-rate transceiver pattern (QPSK / 8QAM / 16QAM plus
// time-hybrid half-steps); the paper notes thresholds are hardware-specific,
// so ours are representative, not vendor-exact.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace rwc::optical {

/// One entry of the modulation ladder.
struct ModulationFormat {
  std::string name;
  util::Gbps capacity{0.0};
  util::Db min_snr{0.0};          // lowest SNR at which this format is viable
  double bits_per_symbol = 0.0;    // fractional for time-hybrid formats
};

/// Ordered modulation ladder (ascending capacity) with SNR lookups.
class ModulationTable {
 public:
  /// Builds a table from formats; they are sorted by capacity. Requires
  /// thresholds to be strictly increasing with capacity.
  explicit ModulationTable(std::vector<ModulationFormat> formats);

  /// The ladder used throughout the paper's analysis:
  ///   50 G @ 3.0 dB, 100 G @ 6.5 dB, 125 G @ 8.2 dB, 150 G @ 9.8 dB,
  ///   175 G @ 11.4 dB, 200 G @ 13.0 dB.
  static ModulationTable standard();

  std::span<const ModulationFormat> formats() const { return formats_; }

  /// Highest format whose threshold is <= snr - margin; nullopt when even
  /// the lowest format is infeasible (link down).
  std::optional<ModulationFormat> best_for_snr(
      util::Db snr, util::Db margin = util::Db{0.0}) const;

  /// Capacity of best_for_snr, or 0 Gbps when the link cannot run at all.
  util::Gbps feasible_capacity(util::Db snr,
                               util::Db margin = util::Db{0.0}) const;

  /// SNR threshold of the format with exactly this capacity; throws
  /// util::CheckError when the ladder has no such rate.
  util::Db threshold_for(util::Gbps capacity) const;

  /// Format with exactly this capacity; throws when absent.
  const ModulationFormat& format_for(util::Gbps capacity) const;

  /// True when `capacity` is a rate on this ladder.
  bool has_rate(util::Gbps capacity) const;

  util::Gbps max_capacity() const { return formats_.back().capacity; }
  util::Gbps min_capacity() const { return formats_.front().capacity; }

 private:
  std::vector<ModulationFormat> formats_;
};

}  // namespace rwc::optical
