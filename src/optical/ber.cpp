#include "optical/ber.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace rwc::optical {

double q_function(double x) { return 0.5 * std::erfc(x / std::numbers::sqrt2); }

namespace {

/// Union-bound BER for square M-QAM with Gray mapping at symbol SNR (linear).
double qam_ber(int constellation_size, double snr_linear) {
  const double m = constellation_size;
  const double k = std::log2(m);
  if (constellation_size == 2)  // BPSK
    return q_function(std::sqrt(2.0 * snr_linear));
  if (constellation_size == 4)  // QPSK
    return q_function(std::sqrt(snr_linear));
  // Square/cross M-QAM approximation.
  const double scale = 4.0 / k * (1.0 - 1.0 / std::sqrt(m));
  return scale * q_function(std::sqrt(3.0 * snr_linear / (m - 1.0)));
}

/// Maps bits/symbol (per polarization tributary) to constellation size.
int constellation_for_bits(double bits) {
  return static_cast<int>(std::lround(std::pow(2.0, bits)));
}

}  // namespace

double approx_ber(const ModulationFormat& format, util::Db snr) {
  RWC_EXPECTS(format.bits_per_symbol > 0.0);
  const double snr_linear = util::db_to_linear(snr);
  const double bits = format.bits_per_symbol;
  const double lower_bits = std::floor(bits);
  const double upper_bits = std::ceil(bits);
  if (lower_bits == upper_bits)
    return qam_ber(constellation_for_bits(bits), snr_linear);
  // Time-hybrid format: a fraction `t` of symbols use the denser format.
  const double t = bits - lower_bits;
  const double lower = qam_ber(constellation_for_bits(lower_bits), snr_linear);
  const double upper = qam_ber(constellation_for_bits(upper_bits), snr_linear);
  return (1.0 - t) * lower + t * upper;
}

double expected_evm(util::Db snr) {
  return 1.0 / std::sqrt(util::db_to_linear(snr));
}

bool format_viable(const ModulationFormat& format, util::Db snr) {
  return approx_ber(format, snr) <= kFecBerLimit;
}

}  // namespace rwc::optical
