#include "mgmt/mib.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace rwc::mgmt {

std::string to_string(const Oid& oid) {
  std::ostringstream os;
  for (std::size_t i = 0; i < oid.size(); ++i) {
    if (i > 0) os << '.';
    os << oid[i];
  }
  return os.str();
}

MibView::MibView(const core::DynamicCapacityController& controller,
                 const core::DeviceArray* devices)
    : controller_(controller), devices_(devices) {
  if (devices_ != nullptr)
    RWC_EXPECTS(devices_->size() ==
                controller_.physical_topology().edge_count());
}

std::vector<std::pair<Oid, MibValue>> MibView::snapshot() const {
  std::vector<std::pair<Oid, MibValue>> entries;
  auto emit = [&](std::initializer_list<int> suffix, MibValue value) {
    Oid oid = kRwcEnterpriseArc;
    oid.insert(oid.end(), suffix.begin(), suffix.end());
    entries.emplace_back(std::move(oid), std::move(value));
  };

  const graph::Graph& topology = controller_.physical_topology();
  emit({1, 1, 0}, MibValue::of(static_cast<long long>(topology.edge_count())));
  for (graph::EdgeId edge : topology.edge_ids()) {
    const int i = edge.value;
    emit({1, 2, i, 1},
         MibValue::of(topology.node_name(topology.edge(edge).src) + "->" +
                      topology.node_name(topology.edge(edge).dst)));
    emit({1, 2, i, 2},
         MibValue::of(static_cast<long long>(
             topology.edge(edge).capacity.value)));
    emit({1, 2, i, 3},
         MibValue::of(static_cast<long long>(
             controller_.configured_capacity(edge).value)));
    if (devices_ != nullptr) {
      const auto& device = (*devices_)[static_cast<std::size_t>(i)];
      emit({1, 2, i, 4},
           MibValue::of(static_cast<long long>(
               device.mdio_read(bvt::Register::kSnrCentiDb))));
      emit({1, 2, i, 5},
           MibValue::of(static_cast<long long>(
               device.mdio_read(bvt::Register::kStatus))));
      emit({1, 2, i, 6},
           MibValue::of(static_cast<long long>(device.reconfig_count())));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

std::optional<MibValue> MibView::get(const Oid& oid) const {
  for (auto& [candidate, value] : snapshot())
    if (candidate == oid) return value;
  return std::nullopt;
}

std::vector<std::pair<Oid, MibValue>> MibView::walk(const Oid& prefix) const {
  std::vector<std::pair<Oid, MibValue>> result;
  for (auto& entry : snapshot()) {
    const Oid& oid = entry.first;
    if (oid.size() < prefix.size()) continue;
    if (std::equal(prefix.begin(), prefix.end(), oid.begin()))
      result.push_back(std::move(entry));
  }
  return result;
}

}  // namespace rwc::mgmt
