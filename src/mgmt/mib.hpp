// SNMP-lite read-only MIB over the controller and (optionally) the per-link
// BVT devices: OID-addressed GET and lexicographic WALK, the way a
// monitoring system would poll the optical layer.
//
// OID layout under the rwc enterprise arc {1,3,6,1,4,1,53535}:
//   .1.1.0          link count                    (int)
//   .1.2.<i>.1      link name                     (string)
//   .1.2.<i>.2      nominal rate, Gbps            (int)
//   .1.2.<i>.3      configured rate, Gbps         (int)
//   .1.2.<i>.4      device SNR, centi-dB          (int; devices only)
//   .1.2.<i>.5      device status bits            (int; devices only)
//   .1.2.<i>.6      device reconfig count         (int; devices only)
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/controller.hpp"
#include "core/orchestrator.hpp"

namespace rwc::mgmt {

using Oid = std::vector<int>;

/// Renders "1.3.6.1.4.1.53535...." dotted form.
std::string to_string(const Oid& oid);

struct MibValue {
  enum class Kind { kInteger, kString };
  Kind kind = Kind::kInteger;
  long long integer = 0;
  std::string text;

  static MibValue of(long long value) {
    return MibValue{Kind::kInteger, value, {}};
  }
  static MibValue of(std::string value) {
    return MibValue{Kind::kString, 0, std::move(value)};
  }
};

inline const Oid kRwcEnterpriseArc = {1, 3, 6, 1, 4, 1, 53535};

class MibView {
 public:
  /// `devices` may be null (controller-only view); when provided it must be
  /// indexed like the controller's physical edges.
  explicit MibView(const core::DynamicCapacityController& controller,
                   const core::DeviceArray* devices = nullptr);

  /// Exact-match GET; nullopt for unknown OIDs.
  std::optional<MibValue> get(const Oid& oid) const;

  /// All registered (oid, value) pairs under `prefix`, in lexicographic OID
  /// order (SNMP walk semantics).
  std::vector<std::pair<Oid, MibValue>> walk(const Oid& prefix) const;

 private:
  std::vector<std::pair<Oid, MibValue>> snapshot() const;

  const core::DynamicCapacityController& controller_;
  const core::DeviceArray* devices_;
};

}  // namespace rwc::mgmt
