// Management-plane data model for the dynamic-capacity controller.
//
// Filer et al. (the paper's optical-backbone reference) name YANG/NETCONF
// and SNMP as the starting points for a standard interface between the
// optical layer and the WAN controller. This module provides both sides in
// miniature:
//   - a YANG-flavoured configuration/state snapshot with a deterministic
//     "path value" text encoding (config_model),
//   - an SNMP-lite, OID-addressed read-only MIB view (mib.hpp).
#pragma once

#include <string>
#include <vector>

#include "core/controller.hpp"

namespace rwc::mgmt {

/// Per-link configuration and state leafs.
struct LinkEntry {
  std::string name;             // "<src>-><dst>"
  double nominal_gbps = 0.0;    // provisioned rate (config)
  double configured_gbps = 0.0; // currently running rate (state)
};

/// The controller's management view.
struct NetworkConfig {
  std::string engine;
  double snr_margin_db = 0.0;
  bool consolidate = true;
  bool restore_to_nominal = true;
  bool hysteresis_enabled = false;
  double hysteresis_extra_margin_db = 0.0;
  int hysteresis_hold_rounds = 0;
  std::vector<LinkEntry> links;
};

/// Snapshot of a live controller.
NetworkConfig snapshot(const core::DynamicCapacityController& controller,
                       const std::string& engine_name);

/// Deterministic YANG-ish text encoding: one "path value" line per leaf,
/// e.g. `controller/snr-margin-db 0.5` and `links/3/configured-gbps 150`.
std::string to_text(const NetworkConfig& config);

/// Parses to_text output; throws util::CheckError on malformed input.
NetworkConfig from_text(const std::string& text);

}  // namespace rwc::mgmt
