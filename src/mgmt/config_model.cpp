#include "mgmt/config_model.hpp"

#include <map>
#include <sstream>

#include "util/check.hpp"
#include "util/table.hpp"

namespace rwc::mgmt {

NetworkConfig snapshot(const core::DynamicCapacityController& controller,
                       const std::string& engine_name) {
  NetworkConfig config;
  config.engine = engine_name;
  const core::ControllerOptions& options = controller.options();
  config.snr_margin_db = options.snr_margin.value;
  config.consolidate = options.consolidate;
  config.restore_to_nominal = options.restore_to_nominal;
  if (options.hysteresis.has_value()) {
    config.hysteresis_enabled = true;
    config.hysteresis_extra_margin_db =
        options.hysteresis->extra_up_margin.value;
    config.hysteresis_hold_rounds = options.hysteresis->up_hold_rounds;
  }
  const graph::Graph& topology = controller.physical_topology();
  for (graph::EdgeId edge : topology.edge_ids()) {
    LinkEntry entry;
    entry.name = topology.node_name(topology.edge(edge).src) + "->" +
                 topology.node_name(topology.edge(edge).dst);
    entry.nominal_gbps = topology.edge(edge).capacity.value;
    entry.configured_gbps = controller.configured_capacity(edge).value;
    config.links.push_back(std::move(entry));
  }
  return config;
}

std::string to_text(const NetworkConfig& config) {
  std::ostringstream os;
  os << "controller/engine " << config.engine << '\n';
  os << "controller/snr-margin-db "
     << util::format_double(config.snr_margin_db, 4) << '\n';
  os << "controller/consolidate " << (config.consolidate ? 1 : 0) << '\n';
  os << "controller/restore-to-nominal "
     << (config.restore_to_nominal ? 1 : 0) << '\n';
  os << "controller/hysteresis/enabled "
     << (config.hysteresis_enabled ? 1 : 0) << '\n';
  os << "controller/hysteresis/extra-margin-db "
     << util::format_double(config.hysteresis_extra_margin_db, 4) << '\n';
  os << "controller/hysteresis/hold-rounds " << config.hysteresis_hold_rounds
     << '\n';
  os << "links/count " << config.links.size() << '\n';
  for (std::size_t i = 0; i < config.links.size(); ++i) {
    const LinkEntry& link = config.links[i];
    os << "links/" << i << "/name " << link.name << '\n';
    os << "links/" << i << "/nominal-gbps "
       << util::format_double(link.nominal_gbps, 2) << '\n';
    os << "links/" << i << "/configured-gbps "
       << util::format_double(link.configured_gbps, 2) << '\n';
  }
  return os.str();
}

NetworkConfig from_text(const std::string& text) {
  std::map<std::string, std::string> leafs;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto space = line.find(' ');
    RWC_CHECK_MSG(space != std::string::npos && space > 0,
                  "config text: malformed line: " + line);
    leafs[line.substr(0, space)] = line.substr(space + 1);
  }
  auto require = [&](const std::string& path) -> const std::string& {
    const auto it = leafs.find(path);
    RWC_CHECK_MSG(it != leafs.end(), "config text: missing leaf " + path);
    return it->second;
  };

  NetworkConfig config;
  config.engine = require("controller/engine");
  config.snr_margin_db = std::stod(require("controller/snr-margin-db"));
  config.consolidate = require("controller/consolidate") == "1";
  config.restore_to_nominal =
      require("controller/restore-to-nominal") == "1";
  config.hysteresis_enabled =
      require("controller/hysteresis/enabled") == "1";
  config.hysteresis_extra_margin_db =
      std::stod(require("controller/hysteresis/extra-margin-db"));
  config.hysteresis_hold_rounds =
      std::stoi(require("controller/hysteresis/hold-rounds"));
  const auto count =
      static_cast<std::size_t>(std::stoul(require("links/count")));
  for (std::size_t i = 0; i < count; ++i) {
    const std::string prefix = "links/" + std::to_string(i) + "/";
    LinkEntry entry;
    entry.name = require(prefix + "name");
    entry.nominal_gbps = std::stod(require(prefix + "nominal-gbps"));
    entry.configured_gbps = std::stod(require(prefix + "configured-gbps"));
    config.links.push_back(std::move(entry));
  }
  return config;
}

}  // namespace rwc::mgmt
