// RAII wall-clock timing for the observability layer (rwc::obs).
//
// Two levels of API:
//   ScopedTimer — zero-lookup hot-path timer recording into a Histogram
//                 reference the caller obtained (and cached) beforehand.
//   Span        — nested tracing: spans opened while another span is alive
//                 on the same thread record under a dotted path joined from
//                 the enclosing span names, "<a>.<b>.seconds". The
//                 controller round is traced this way (see
//                 docs/OBSERVABILITY.md, "Tracing").
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "obs/registry.hpp"

namespace rwc::obs {

/// Monotonic wall-clock stopwatch.
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Records the lifetime of the scope into `histogram` (seconds). When
/// `accumulate_seconds` is non-null the elapsed time is also added there —
/// used to fill per-round stat structs alongside the global histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram,
                       double* accumulate_seconds = nullptr)
      : histogram_(histogram), accumulate_(accumulate_seconds) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const double elapsed = watch_.seconds();
    histogram_.observe(elapsed);
    if (accumulate_ != nullptr) *accumulate_ += elapsed;
  }

 private:
  Histogram& histogram_;
  double* accumulate_;
  StopWatch watch_;
};

/// Nested tracing span. On destruction, records its lifetime (seconds) into
/// the global registry's histogram named by the dotted join of all enclosing
/// span names plus ".seconds": a `Span("solve")` inside a
/// `Span("controller.round")` records into "controller.round.solve.seconds".
///
/// The span stack is per-thread; spans must be destroyed in LIFO order
/// (guaranteed by scoping). Prefer ScopedTimer in per-iteration hot loops —
/// a Span pays one registry lookup when it closes.
class Span {
 public:
  explicit Span(std::string_view name, double* accumulate_seconds = nullptr);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// The full dotted path of the span ("controller.round.solve").
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  double* accumulate_;
  StopWatch watch_;
};

}  // namespace rwc::obs
