// Exporters for the observability registry (rwc::obs).
//
// Two formats over the same data:
//   dump_table — human-readable aligned text (bench stdout, debugging);
//   dump_json  — machine-readable JSON for BENCH_*.json perf trajectories
//                (the `--json <path>` flag of every bench binary).
//
// The JSON schema is part of the stats contract (docs/OBSERVABILITY.md):
//
//   {
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <number>, ... },
//     "histograms": { "<name>": { "count": <uint>, "sum": <number>,
//                                 "min": ..., "max": ..., "mean": ...,
//                                 "p50": ..., "p90": ..., "p99": ...,
//                                 "buckets": [ { "le": <number>|"inf",
//                                                "count": <uint> }, ... ] },
//                     ... }
//   }
//
// parse_json reads exactly this schema back (round-trip tested), so later
// tooling can diff perf trajectories across commits without a JSON library.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace rwc::obs {

/// Point-in-time copy of one histogram as exported to JSON.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// (upper bound, count) per bucket; the final entry is the overflow
  /// bucket with an infinite upper bound.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

/// Point-in-time copy of a whole registry.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Copies the registry's current values.
Snapshot snapshot(const Registry& registry);

/// Renders the registry as aligned text tables (one per instrument kind).
std::string dump_table(const Registry& registry);

/// Renders the registry (or a snapshot of one) as the JSON schema above.
/// Output is deterministic: keys are name-sorted, numbers use shortest
/// round-trippable formatting.
std::string dump_json(const Registry& registry);
std::string dump_json(const Snapshot& snapshot);

/// Writes dump_json(registry) to `path` (throws util CheckError on IO
/// failure).
void write_json_file(const Registry& registry, const std::string& path);

/// Parses a dump_json document back into a Snapshot. Accepts exactly the
/// schema emitted by dump_json; throws util CheckError on malformed input.
Snapshot parse_json(const std::string& json);

}  // namespace rwc::obs
