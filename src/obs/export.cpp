#include "obs/export.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/check.hpp"
#include "util/table.hpp"

namespace rwc::obs {

namespace {

/// Shortest round-trippable formatting; JSON has no Infinity/NaN literals,
/// so non-finite values (possible only through Gauge::set) are clamped to 0.
std::string number(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // Prefer the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) return candidate;
  }
  return buffer;
}

void json_histogram(std::ostringstream& os, const HistogramSnapshot& h) {
  os << "{\"count\": " << h.count << ", \"sum\": " << number(h.sum)
     << ", \"min\": " << number(h.min) << ", \"max\": " << number(h.max)
     << ", \"mean\": " << number(h.mean) << ", \"p50\": " << number(h.p50)
     << ", \"p90\": " << number(h.p90) << ", \"p99\": " << number(h.p99)
     << ", \"buckets\": [";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"le\": ";
    if (std::isinf(h.buckets[i].first))
      os << "\"inf\"";
    else
      os << number(h.buckets[i].first);
    os << ", \"count\": " << h.buckets[i].second << "}";
  }
  os << "]}";
}

// ---- Minimal recursive-descent parser for the dump_json schema ----------

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_whitespace();
    RWC_CHECK_MSG(pos_ < text_.size() && text_[pos_] == c,
                  std::string("expected '") + c + "' in metrics JSON");
    ++pos_;
  }

  bool consume(char c) {
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      // dump_json never emits escapes in names, but tolerate \" anyway.
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out += text_[pos_++];
    }
    expect('"');
    return out;
  }

  double value_number() {
    skip_whitespace();
    // "inf" appears (quoted) as the overflow bucket bound.
    if (pos_ < text_.size() && text_[pos_] == '"') {
      const std::string word = string();
      RWC_CHECK_MSG(word == "inf", "unexpected string where number expected");
      return std::numeric_limits<double>::infinity();
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    RWC_CHECK_MSG(pos_ > start, "expected number in metrics JSON");
    double parsed = 0.0;
    const auto result = std::from_chars(text_.data() + start,
                                        text_.data() + pos_, parsed);
    RWC_CHECK_MSG(result.ec == std::errc{}, "bad number in metrics JSON");
    return parsed;
  }

  std::uint64_t value_uint() {
    const double v = value_number();
    RWC_CHECK_MSG(v >= 0.0, "expected unsigned value in metrics JSON");
    return static_cast<std::uint64_t>(v);
  }

  void finish() {
    skip_whitespace();
    RWC_CHECK_MSG(pos_ == text_.size(), "trailing data in metrics JSON");
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

HistogramSnapshot parse_histogram(JsonReader& reader) {
  HistogramSnapshot h;
  reader.expect('{');
  if (!reader.consume('}')) {
    do {
      const std::string key = reader.string();
      reader.expect(':');
      if (key == "count") {
        h.count = reader.value_uint();
      } else if (key == "sum") {
        h.sum = reader.value_number();
      } else if (key == "min") {
        h.min = reader.value_number();
      } else if (key == "max") {
        h.max = reader.value_number();
      } else if (key == "mean") {
        h.mean = reader.value_number();
      } else if (key == "p50") {
        h.p50 = reader.value_number();
      } else if (key == "p90") {
        h.p90 = reader.value_number();
      } else if (key == "p99") {
        h.p99 = reader.value_number();
      } else if (key == "buckets") {
        reader.expect('[');
        if (!reader.consume(']')) {
          do {
            reader.expect('{');
            double le = 0.0;
            std::uint64_t count = 0;
            do {
              const std::string field = reader.string();
              reader.expect(':');
              if (field == "le")
                le = reader.value_number();
              else if (field == "count")
                count = reader.value_uint();
              else
                RWC_CHECK_MSG(false, "unknown bucket field: " + field);
            } while (reader.consume(','));
            reader.expect('}');
            h.buckets.emplace_back(le, count);
          } while (reader.consume(','));
          reader.expect(']');
        }
      } else {
        RWC_CHECK_MSG(false, "unknown histogram field: " + key);
      }
    } while (reader.consume(','));
    reader.expect('}');
  }
  return h;
}

}  // namespace

Snapshot snapshot(const Registry& registry) {
  Snapshot snap;
  for (const auto& [name, counter] : registry.counters())
    snap.counters.emplace(name, counter->value());
  for (const auto& [name, gauge] : registry.gauges())
    snap.gauges.emplace(name, gauge->value());
  for (const auto& [name, histogram] : registry.histograms()) {
    HistogramSnapshot h;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.min = histogram->min();
    h.max = histogram->max();
    h.mean = histogram->mean();
    if (h.count > 0) {
      h.p50 = histogram->quantile(0.5);
      h.p90 = histogram->quantile(0.9);
      h.p99 = histogram->quantile(0.99);
    }
    const auto bounds = histogram->upper_bounds();
    h.buckets.reserve(bounds.size() + 1);
    for (std::size_t i = 0; i < bounds.size(); ++i)
      h.buckets.emplace_back(bounds[i], histogram->bucket_count(i));
    h.buckets.emplace_back(std::numeric_limits<double>::infinity(),
                           histogram->bucket_count(bounds.size()));
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

std::string dump_table(const Registry& registry) {
  const Snapshot snap = snapshot(registry);
  std::ostringstream os;
  if (!snap.counters.empty()) {
    util::TextTable table({"counter", "value"});
    for (const auto& [name, value] : snap.counters)
      table.add_row({name, std::to_string(value)});
    os << table.to_string() << "\n";
  }
  if (!snap.gauges.empty()) {
    util::TextTable table({"gauge", "value"});
    for (const auto& [name, value] : snap.gauges)
      table.add_row({name, util::format_double(value, 3)});
    os << table.to_string() << "\n";
  }
  if (!snap.histograms.empty()) {
    util::TextTable table(
        {"histogram", "count", "mean", "p50", "p90", "p99", "max"});
    for (const auto& [name, h] : snap.histograms)
      table.add_row({name, std::to_string(h.count),
                     util::format_double(h.mean, 6),
                     util::format_double(h.p50, 6),
                     util::format_double(h.p90, 6),
                     util::format_double(h.p99, 6),
                     util::format_double(h.max, 6)});
    os << table.to_string();
  }
  return os.str();
}

std::string dump_json(const Snapshot& snap) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << name
       << "\": " << number(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : snap.histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
    json_histogram(os, histogram);
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string dump_json(const Registry& registry) {
  return dump_json(snapshot(registry));
}

void write_json_file(const Registry& registry, const std::string& path) {
  std::ofstream out(path);
  RWC_CHECK_MSG(out.good(), "cannot open metrics JSON file: " + path);
  out << dump_json(registry);
  out.flush();
  RWC_CHECK_MSG(out.good(), "failed writing metrics JSON file: " + path);
}

Snapshot parse_json(const std::string& json) {
  Snapshot snap;
  JsonReader reader(json);
  reader.expect('{');
  do {
    const std::string section = reader.string();
    reader.expect(':');
    reader.expect('{');
    if (reader.consume('}')) continue;
    do {
      const std::string name = reader.string();
      reader.expect(':');
      if (section == "counters")
        snap.counters.emplace(name, reader.value_uint());
      else if (section == "gauges")
        snap.gauges.emplace(name, reader.value_number());
      else if (section == "histograms")
        snap.histograms.emplace(name, parse_histogram(reader));
      else
        RWC_CHECK_MSG(false, "unknown metrics JSON section: " + section);
    } while (reader.consume(','));
    reader.expect('}');
  } while (reader.consume(','));
  reader.expect('}');
  reader.finish();
  return snap;
}

}  // namespace rwc::obs
