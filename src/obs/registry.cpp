#include "obs/registry.hpp"

#include "util/check.hpp"

namespace rwc::obs {

namespace {

/// Finds `name` in `map` or inserts a value constructed by `make`.
template <typename Map, typename Make>
auto& find_or_create(Map& map, std::string_view name, Make make) {
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(std::string(name), make()).first;
  return *it->second;
}

template <typename Instrument, typename Map>
std::vector<std::pair<std::string, const Instrument*>> sorted_view(
    const Map& map) {
  std::vector<std::pair<std::string, const Instrument*>> view;
  view.reserve(map.size());
  for (const auto& [name, instrument] : map)
    view.emplace_back(name, instrument.get());
  return view;  // std::map iteration is already name-sorted
}

}  // namespace

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  RWC_EXPECTS(!name.empty());
  std::lock_guard lock(mutex_);
  return find_or_create(counters_, name,
                        [] { return std::make_unique<Counter>(); });
}

Gauge& Registry::gauge(std::string_view name) {
  RWC_EXPECTS(!name.empty());
  std::lock_guard lock(mutex_);
  return find_or_create(gauges_, name,
                        [] { return std::make_unique<Gauge>(); });
}

Histogram& Registry::histogram(std::string_view name) {
  return histogram(name, Histogram::default_latency_bounds());
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  RWC_EXPECTS(!name.empty());
  std::lock_guard lock(mutex_);
  return find_or_create(histograms_, name, [&] {
    return std::make_unique<Histogram>(std::move(upper_bounds));
  });
}

void Registry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::vector<std::pair<std::string, const Counter*>> Registry::counters()
    const {
  std::lock_guard lock(mutex_);
  return sorted_view<Counter>(counters_);
}

std::vector<std::pair<std::string, const Gauge*>> Registry::gauges() const {
  std::lock_guard lock(mutex_);
  return sorted_view<Gauge>(gauges_);
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms()
    const {
  std::lock_guard lock(mutex_);
  return sorted_view<Histogram>(histograms_);
}

}  // namespace rwc::obs
