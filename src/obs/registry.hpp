// Registry of named metrics (rwc::obs).
//
// The registry owns every Counter / Gauge / Histogram and hands out stable
// references: instruments are never destroyed or moved once created, so hot
// paths look a metric up once (typically into a function-local static) and
// afterwards touch only the instrument's atomics. reset_values() zeroes the
// values but keeps every registration alive, so cached references survive
// resets — this is what lets tests and benches start from a clean slate
// without invalidating instrumented code.
//
// Metric names are dotted lowercase paths ("flow.mincost.runs"); the full
// contract — every name, unit and bucket layout — lives in
// docs/OBSERVABILITY.md.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace rwc::obs {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry all built-in instrumentation records into.
  static Registry& global();

  /// Returns the counter named `name`, creating it on first use. The
  /// reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name);

  /// Returns the gauge named `name`, creating it on first use.
  Gauge& gauge(std::string_view name);

  /// Returns the histogram named `name`, creating it on first use with the
  /// default latency bucket layout (Histogram::default_latency_bounds).
  Histogram& histogram(std::string_view name);

  /// Returns the histogram named `name`, creating it with `upper_bounds` on
  /// first use. When the histogram already exists, the bounds argument is
  /// ignored (first registration wins).
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);

  /// Zeroes every metric value. Registrations (and therefore references
  /// previously returned) remain valid.
  void reset_values();

  /// Name-sorted views for exporters. The pointers stay valid for the
  /// registry's lifetime; values they expose are live.
  std::vector<std::pair<std::string, const Counter*>> counters() const;
  std::vector<std::pair<std::string, const Gauge*>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace rwc::obs
