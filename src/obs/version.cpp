// Library identification for rwc_obs.
namespace rwc::obs {

/// Version string of the obs subsystem (matches the top-level project).
const char* version() { return "1.0.0"; }

}  // namespace rwc::obs
