// Metric primitives of the observability layer (rwc::obs).
//
// Three instrument kinds, matching the stats contract in
// docs/OBSERVABILITY.md:
//   Counter   — monotonically increasing event count (uint64).
//   Gauge     — last-written floating-point value (also usable as an
//               accumulating sum via add()).
//   Histogram — fixed-bucket latency/size distribution with streaming
//               count/sum/min/max and interpolated quantile estimates.
//
// All mutation paths are lock-free (relaxed atomics); instruments are
// created through obs::Registry, which guarantees pointer stability, so hot
// paths cache a reference once and touch only atomics afterwards.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

namespace rwc::obs {

namespace detail {

/// Atomic add for doubles via compare-exchange (portable pre-P0020 path).
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed))
    ;
}

/// Atomic min/max update via compare-exchange.
template <typename Compare>
void atomic_extreme(std::atomic<double>& target, double value,
                    Compare better) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (better(value, expected) &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed))
    ;
}

}  // namespace detail

/// Monotonic event counter. add() is wait-free; value() is a relaxed read.
class Counter {
 public:
  /// Increments by `n` (default 1).
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Current value.
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Zeroes the counter (used by Registry::reset_values; handles stay valid).
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value instrument. set() overwrites; add() accumulates — a gauge used
/// only through add() behaves as a floating-point sum (documented per metric
/// in docs/OBSERVABILITY.md).
class Gauge {
 public:
  /// Overwrites the value.
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  /// Adds `delta` to the value.
  void add(double delta) noexcept { detail::atomic_add(value_, delta); }
  /// Current value.
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with streaming summary statistics.
///
/// Buckets are defined by a sorted list of upper bounds; one implicit
/// overflow bucket catches everything above the last bound. Observations
/// additionally update count/sum/min/max, so mean() is exact and quantile()
/// can clamp its bucket interpolation to the observed range.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty, strictly increasing and finite.
  explicit Histogram(std::vector<double> upper_bounds);

  /// The default latency bucket layout of the stats contract: 33 upper
  /// bounds 10^(-6 + k/4) seconds for k = 0..32 (1 us to 100 s, four
  /// buckets per decade), plus the implicit overflow bucket.
  static const std::vector<double>& default_latency_bounds();

  /// Records one observation (wait-free except for min/max CAS).
  void observe(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Exact mean of all observations; 0 when empty.
  double mean() const noexcept;
  /// Smallest / largest observation; 0 when empty.
  double min() const noexcept;
  double max() const noexcept;

  /// Quantile estimate (0 < q < 1) by linear interpolation inside the
  /// bucket containing the q-th observation, clamped to [min, max].
  /// Resolution is one bucket width; 0 when empty.
  double quantile(double q) const;

  /// The configured upper bounds (excluding the overflow bucket).
  std::span<const double> upper_bounds() const { return bounds_; }
  /// Count in bucket `index`; `index == upper_bounds().size()` addresses the
  /// overflow bucket.
  std::uint64_t bucket_count(std::size_t index) const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace rwc::obs
