#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rwc::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  RWC_EXPECTS(!bounds_.empty());
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    RWC_EXPECTS(std::isfinite(bounds_[i]));
    if (i > 0) RWC_EXPECTS(bounds_[i] > bounds_[i - 1]);
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

const std::vector<double>& Histogram::default_latency_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    b.reserve(33);
    for (int k = 0; k <= 32; ++k)
      b.push_back(std::pow(10.0, -6.0 + static_cast<double>(k) / 4.0));
    return b;
  }();
  return bounds;
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
  detail::atomic_extreme(min_, value, std::less<double>{});
  detail::atomic_extreme(max_, value, std::greater<double>{});
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t index) const {
  RWC_EXPECTS(index <= bounds_.size());
  return buckets_[index].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  RWC_EXPECTS(q > 0.0 && q < 1.0);
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const auto in_bucket = static_cast<double>(
        buckets_[i].load(std::memory_order_relaxed));
    if (cumulative + in_bucket < target || in_bucket == 0.0) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate inside bucket i. Lower edge: previous bound (or 0 for the
    // first bucket); upper edge: this bound (or the observed max for the
    // overflow bucket).
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = i == bounds_.size() ? max() : bounds_[i];
    const double fraction = (target - cumulative) / in_bucket;
    const double estimate = lower + fraction * (upper - lower);
    return std::clamp(estimate, min(), max());
  }
  return max();
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

}  // namespace rwc::obs
