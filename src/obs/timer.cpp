#include "obs/timer.hpp"

#include <vector>

#include "util/check.hpp"

namespace rwc::obs {

namespace {

/// Per-thread stack of open span paths (full dotted paths, innermost last).
std::vector<std::string>& span_stack() {
  thread_local std::vector<std::string> stack;
  return stack;
}

}  // namespace

Span::Span(std::string_view name, double* accumulate_seconds)
    : accumulate_(accumulate_seconds) {
  RWC_EXPECTS(!name.empty());
  auto& stack = span_stack();
  if (stack.empty()) {
    path_ = std::string(name);
  } else {
    path_ = stack.back();
    path_ += '.';
    path_ += name;
  }
  stack.push_back(path_);
}

Span::~Span() {
  const double elapsed = watch_.seconds();
  auto& stack = span_stack();
  // Scoping guarantees LIFO destruction; the top entry is this span.
  if (!stack.empty() && stack.back() == path_) stack.pop_back();
  Registry::global().histogram(path_ + ".seconds").observe(elapsed);
  if (accumulate_ != nullptr) *accumulate_ += elapsed;
}

}  // namespace rwc::obs
