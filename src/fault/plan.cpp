#include "fault/plan.hpp"

#include <charconv>
#include <cstdlib>
#include <utility>

#include "util/check.hpp"

namespace rwc::fault {

namespace {

constexpr std::pair<Kind, std::string_view> kKindNames[] = {
    {Kind::kNone, "none"},           {Kind::kFail, "fail"},
    {Kind::kStall, "stall"},         {Kind::kStale, "stale"},
    {Kind::kNan, "nan"},             {Kind::kGarbage, "garbage"},
    {Kind::kDuplicate, "duplicate"}, {Kind::kDrop, "drop"},
    {Kind::kBudget, "budget"},       {Kind::kInvalidate, "invalidate"},
    {Kind::kDelay, "delay"},
};

Kind parse_kind(std::string_view token, std::string_view clause) {
  for (const auto& [kind, name] : kKindNames)
    if (name == token) return kind;
  util::throw_check_failure("check", "known fault kind", __FILE__, __LINE__,
                            "unknown kind '" + std::string(token) +
                                "' in fault clause '" + std::string(clause) +
                                "'");
}

std::uint64_t parse_u64(std::string_view token, std::string_view clause) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  RWC_CHECK_MSG(ec == std::errc{} && ptr == token.data() + token.size(),
                "bad integer '" + std::string(token) + "' in fault clause '" +
                    std::string(clause) + "'");
  return value;
}

}  // namespace

std::string_view to_string(Kind kind) {
  for (const auto& [k, name] : kKindNames)
    if (k == kind) return name;
  return "none";
}

bool Injection::matches(std::string_view at_site, std::uint64_t key) const {
  if (site != at_site) return false;
  if (period == 0) return key == hit;
  return key % period == hit;
}

std::string Injection::to_string() const {
  std::string out = site;
  if (period != 0) out += "%" + std::to_string(period);
  out += "@" + std::to_string(hit);
  out += ":";
  out += fault::to_string(action.kind);
  if (action.magnitude != 0.0) {
    // Round-trippable without trailing-zero noise for integral magnitudes;
    // shortest exact round-trip form (std::to_chars) otherwise, so
    // to_string(parse(s)) == s and shrunk plans replay bit-identically.
    if (action.magnitude ==
        static_cast<double>(static_cast<long long>(action.magnitude))) {
      out += "=" + std::to_string(static_cast<long long>(action.magnitude));
    } else {
      char buffer[32];
      const auto [end, ec] =
          std::to_chars(buffer, buffer + sizeof buffer, action.magnitude);
      RWC_CHECK(ec == std::errc{});
      out += "=";
      out.append(buffer, end);
    }
  }
  return out;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const Injection& injection : injections) {
    if (!out.empty()) out += ";";
    out += injection.to_string();
  }
  return out;
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view clause = spec.substr(begin, end - begin);
    begin = end + 1;
    if (clause.empty()) continue;

    const std::size_t colon = clause.find(':');
    RWC_CHECK_MSG(colon != std::string_view::npos,
                  "missing ':' in fault clause '" + std::string(clause) + "'");
    std::string_view head = clause.substr(0, colon);
    std::string_view tail = clause.substr(colon + 1);

    Injection injection;
    const std::size_t at = head.rfind('@');
    RWC_CHECK_MSG(at != std::string_view::npos,
                  "missing '@' in fault clause '" + std::string(clause) + "'");
    injection.hit = parse_u64(head.substr(at + 1), clause);
    head = head.substr(0, at);
    const std::size_t percent = head.rfind('%');
    if (percent != std::string_view::npos) {
      injection.period = parse_u64(head.substr(percent + 1), clause);
      RWC_CHECK_MSG(injection.period != 0,
                    "zero period in fault clause '" + std::string(clause) +
                        "'");
      head = head.substr(0, percent);
    }
    RWC_CHECK_MSG(!head.empty(),
                  "empty site in fault clause '" + std::string(clause) + "'");
    injection.site = std::string(head);

    const std::size_t equals = tail.find('=');
    if (equals != std::string_view::npos) {
      const std::string magnitude(tail.substr(equals + 1));
      char* parsed_end = nullptr;
      injection.action.magnitude =
          std::strtod(magnitude.c_str(), &parsed_end);
      RWC_CHECK_MSG(parsed_end == magnitude.c_str() + magnitude.size() &&
                        !magnitude.empty(),
                    "bad magnitude '" + magnitude + "' in fault clause '" +
                        std::string(clause) + "'");
      tail = tail.substr(0, equals);
    }
    injection.action.kind = parse_kind(tail, clause);
    plan.injections.push_back(std::move(injection));
  }
  return plan;
}

FaultPlan FaultPlan::first_half() const {
  FaultPlan half;
  half.seed = seed;
  half.injections.assign(injections.begin(),
                         injections.begin() +
                             static_cast<std::ptrdiff_t>(injections.size() / 2));
  return half;
}

FaultPlan FaultPlan::second_half() const {
  FaultPlan half;
  half.seed = seed;
  half.injections.assign(injections.begin() +
                             static_cast<std::ptrdiff_t>(injections.size() / 2),
                         injections.end());
  return half;
}

}  // namespace rwc::fault
