#include "fault/registry.hpp"

#include <cstdlib>

#include "obs/registry.hpp"

namespace rwc::fault {

namespace {

/// Handles into the global obs registry (docs/OBSERVABILITY.md: fault.*).
struct FaultMetrics {
  obs::Gauge& armed;
  obs::Counter& evaluations;
  obs::Counter& injected;

  static FaultMetrics& instance() {
    static auto& registry = obs::Registry::global();
    static FaultMetrics metrics{
        registry.gauge("fault.armed"),
        registry.counter("fault.evaluations"),
        registry.counter("fault.injected"),
    };
    return metrics;
  }
};

}  // namespace

Registry& Registry::global() {
  static Registry* const registry = [] {
    auto* r = new Registry();
    if (const char* env = std::getenv("RWC_FAULTS"); env != nullptr && *env)
      r->arm(FaultPlan::parse(env));
    return r;
  }();
  return *registry;
}

void Registry::arm(FaultPlan plan) {
  std::lock_guard lock(mutex_);
  plan_ = std::move(plan);
  sites_.clear();
  FaultMetrics::instance().armed.set(1.0);
  armed_.store(true, std::memory_order_relaxed);
}

void Registry::disarm() {
  std::lock_guard lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  FaultMetrics::instance().armed.set(0.0);
  plan_ = FaultPlan{};
  sites_.clear();
}

std::string Registry::armed_spec() const {
  std::lock_guard lock(mutex_);
  return armed_.load(std::memory_order_relaxed) ? plan_.to_string()
                                                : std::string{};
}

Action Registry::match_locked(SiteState& state, std::string_view site,
                              std::uint64_t key) {
  ++state.evaluations;
  auto& metrics = FaultMetrics::instance();
  metrics.evaluations.add();
  for (const Injection& injection : plan_.injections) {
    if (!injection.matches(site, key)) continue;
    ++state.injected;
    metrics.injected.add();
    // Per-site injection counter, created lazily on first fire.
    obs::Registry::global()
        .counter("fault.site." + std::string(site))
        .add();
    return injection.action;
  }
  return {};
}

Action Registry::evaluate_next(std::string_view site) {
  std::lock_guard lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) return {};
  auto it = sites_.find(site);
  if (it == sites_.end())
    it = sites_.emplace(std::string(site), SiteState{}).first;
  const std::uint64_t key = it->second.next_hit++;
  return match_locked(it->second, site, key);
}

Action Registry::evaluate_at(std::string_view site, std::uint64_t key) {
  std::lock_guard lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) return {};
  auto it = sites_.find(site);
  if (it == sites_.end())
    it = sites_.emplace(std::string(site), SiteState{}).first;
  return match_locked(it->second, site, key);
}

std::uint64_t Registry::evaluations(std::string_view site) const {
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.evaluations;
}

std::uint64_t Registry::injected(std::string_view site) const {
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.injected;
}

}  // namespace rwc::fault
