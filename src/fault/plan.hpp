// Deterministic fault schedules (rwc::fault).
//
// A FaultPlan is a list of scheduled injections against *named sites*
// compiled into the library's hot paths (src/fault/registry.hpp holds the
// evaluation machinery, docs/FAULTS.md the site catalog). Plans are pure
// data: they can be built programmatically, parsed from the RWC_FAULTS
// environment variable, serialized back to the same spec string (how a
// failing property-test seed is reported), and shrunk by halving — the
// minimization strategy of tests/prop/.
//
// Every injection names a site, a matching rule on the site's evaluation
// key, and an action. Keys are deterministic by construction: serial sites
// use their own monotonically increasing hit counter, parallel sites pass
// an explicit key (link index, network fingerprint, edge id) that does not
// depend on thread interleaving — which is what lets the pool-size
// determinism invariants hold with faults active (docs/CONCURRENCY.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rwc::fault {

/// What an armed site does when an injection matches. Sites interpret the
/// kinds they understand and ignore the rest (docs/FAULTS.md maps sites to
/// kinds); `magnitude` is the kind's parameter (seconds, index, budget...).
enum class Kind {
  kNone,        ///< no fault (the disarmed value)
  kFail,        ///< operation fails / aborts mid-transition
  kStall,       ///< operation completes but takes `magnitude` extra seconds
  kStale,       ///< operation completes against stale state
  kNan,         ///< value replaced by quiet NaN
  kGarbage,     ///< value replaced by wildly out-of-range garbage
  kDuplicate,   ///< sample duplicated in place
  kDrop,        ///< sample/value dropped (arrived too late to use)
  kBudget,      ///< iteration/time budget clamped to `magnitude`
  kInvalidate,  ///< cache entry force-invalidated (treated as a miss)
  kDelay,       ///< execution delayed `magnitude` milliseconds
};

/// Spec token for `kind` ("fail", "stall", ...). kNone maps to "none".
std::string_view to_string(Kind kind);

/// The action an armed site receives: no-fault is the falsy default.
struct Action {
  Kind kind = Kind::kNone;
  double magnitude = 0.0;

  explicit operator bool() const { return kind != Kind::kNone; }
};

/// One scheduled injection. Matching rule on the site's evaluation key:
///   period == 0  ->  fires when key == hit (one-shot)
///   period  > 0  ->  fires when key % period == hit (repeating)
struct Injection {
  std::string site;
  std::uint64_t hit = 0;
  std::uint64_t period = 0;
  Action action;

  bool matches(std::string_view at_site, std::uint64_t key) const;
  /// Spec form, e.g. "bvt.reconfig@2:fail" or "flow.mincost%4@1:budget=3".
  std::string to_string() const;
};

/// A complete schedule plus the generator seed it came from (provenance for
/// reproducing property-test failures; 0 means hand-written).
struct FaultPlan {
  std::vector<Injection> injections;
  std::uint64_t seed = 0;

  bool empty() const { return injections.empty(); }

  /// Serializes to the spec grammar parse() accepts:
  ///   plan      := injection (';' injection)*
  ///   injection := site ['%' period] '@' hit ':' kind ['=' magnitude]
  /// Sites are dotted lowercase identifiers; magnitude defaults to 0.
  std::string to_string() const;

  /// Parses a spec string (the RWC_FAULTS format). Throws util::CheckError
  /// on malformed input with the offending clause in the message.
  static FaultPlan parse(std::string_view spec);

  /// Shrinking by halving: the first / second half of the injection list.
  /// tests/prop/ bisects a failing schedule with these until neither half
  /// reproduces the violation.
  FaultPlan first_half() const;
  FaultPlan second_half() const;
};

}  // namespace rwc::fault
