// Fault-injection registry (rwc::fault).
//
// Hot paths declare *sites* — named points where an armed FaultPlan may
// perturb behavior — by calling fault::next("site") (serial sites, keyed by
// the site's own hit counter) or fault::at("site", key) (parallel sites,
// keyed by a caller-supplied deterministic value such as a link index or a
// network fingerprint). Both return the Action to apply, or a falsy Action
// when nothing is scheduled.
//
// Cost contract: when no plan is armed — production and every test that
// does not opt in — a site evaluation is one relaxed atomic load. All
// bookkeeping (hit counters, per-site obs counters under fault.*) happens
// only while armed.
//
// Arming:
//   * programmatic — Registry::global().arm(plan) / disarm(), or the RAII
//     ScopedPlan used by tests;
//   * environment — RWC_FAULTS holds a plan spec (fault/plan.hpp grammar),
//     parsed and armed on first Registry::global() use.
//
// The site catalog and per-site action semantics live in docs/FAULTS.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "fault/plan.hpp"

namespace rwc::fault {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in site evaluates against.
  /// First use arms from RWC_FAULTS when the variable is set.
  static Registry& global();

  /// Installs `plan` and resets every site's hit counter, so the same plan
  /// armed twice injects identically (reproducibility).
  void arm(FaultPlan plan);

  /// Removes the plan; sites return to the one-atomic-load fast path.
  void disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// The armed plan ("" when disarmed) — for failure reports.
  std::string armed_spec() const;

  /// Evaluates `site` against the armed plan with the site's next hit
  /// counter value as the key. Call only when armed() (the inline helpers
  /// below guard this).
  Action evaluate_next(std::string_view site);

  /// Evaluates `site` with an explicit deterministic key.
  Action evaluate_at(std::string_view site, std::uint64_t key);

  /// Evaluations seen / injections fired at `site` since the last arm().
  std::uint64_t evaluations(std::string_view site) const;
  std::uint64_t injected(std::string_view site) const;

 private:
  struct SiteState {
    std::uint64_t next_hit = 0;
    std::uint64_t evaluations = 0;
    std::uint64_t injected = 0;
  };

  Action match_locked(SiteState& state, std::string_view site,
                      std::uint64_t key);

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::map<std::string, SiteState, std::less<>> sites_;
};

/// Serial-site evaluation: key = the site's own 0-based hit counter.
inline Action next(std::string_view site) {
  Registry& registry = Registry::global();
  if (!registry.armed()) return {};
  return registry.evaluate_next(site);
}

/// Parallel-site evaluation: key supplied by the caller and required to be
/// deterministic across thread interleavings (index, id, fingerprint).
inline Action at(std::string_view site, std::uint64_t key) {
  Registry& registry = Registry::global();
  if (!registry.armed()) return {};
  return registry.evaluate_at(site, key);
}

/// RAII arm/disarm for tests: arms `plan` on the global registry for the
/// scope's lifetime, restoring the disarmed state on exit.
class ScopedPlan {
 public:
  explicit ScopedPlan(FaultPlan plan) { Registry::global().arm(std::move(plan)); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
  ~ScopedPlan() { Registry::global().disarm(); }
};

}  // namespace rwc::fault
