// Library identification for rwc_fault.
namespace rwc::fault {

/// Version string of the fault subsystem (matches the top-level project).
const char* version() { return "1.0.0"; }

}  // namespace rwc::fault
