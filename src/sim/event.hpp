// Minimal discrete-event core: a time-ordered queue of callbacks with
// stable FIFO ordering for simultaneous events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace rwc::sim {

class EventQueue {
 public:
  using Callback = std::function<void(util::Seconds now)>;

  /// Schedules `callback` at absolute time `time` (>= now).
  void schedule(util::Seconds time, Callback callback);

  /// Schedules `callback` `delay` seconds from now.
  void schedule_in(util::Seconds delay, Callback callback);

  bool empty() const { return heap_.empty(); }
  util::Seconds now() const { return now_; }

  /// Processes events with time <= horizon (advancing now()); returns the
  /// number of events executed. Events may schedule further events.
  std::size_t run_until(util::Seconds horizon);

 private:
  struct Item {
    util::Seconds time;
    std::uint64_t sequence;
    Callback callback;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  util::Seconds now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace rwc::sim
