// Traffic workload generation: gravity-model demand matrices (the standard
// WAN assumption) with diurnal modulation and uniform scaling for sweeps.
#pragma once

#include "graph/graph.hpp"
#include "te/demand.hpp"
#include "util/rng.hpp"

namespace rwc::sim {

struct GravityParams {
  /// Sum of all demand volumes.
  util::Gbps total{1000.0};
  /// Spread of node masses (log-normal sigma); 0 = uniform masses.
  double mass_log_sigma = 0.6;
  /// Fraction of node pairs with no demand at all.
  double sparsity = 0.0;
  /// Priority assigned to all demands.
  int priority = 0;
};

/// Gravity demand matrix: volume(i->j) proportional to mass_i * mass_j.
te::TrafficMatrix gravity_matrix(const graph::Graph& graph,
                                 const GravityParams& params, util::Rng& rng);

/// Uniformly scales all volumes by `factor`.
te::TrafficMatrix scale_matrix(const te::TrafficMatrix& base, double factor);

/// Demand-aware reconfigurable-topology workload (Hanauer et al.,
/// "Dynamic Demand-Aware Link Scheduling for Reconfigurable Datacenters"
/// — PAPERS.md): unlike the gravity model's near-uniform spread, most of
/// the volume concentrates on a few *elephant* OD pairs (the demand the
/// reconfigurable fabric would dedicate links to) over a thin mouse-flow
/// background. rotate_elephants shifts which pairs are hot — successive
/// epochs of the same matrix stress WCMP re-splits and the update
/// scheduler with large coordinated demand swings.
struct DemandAwareParams {
  /// Sum of all demand volumes.
  util::Gbps total{1000.0};
  /// Number of elephant OD pairs (clamped to the available pairs).
  std::size_t elephants = 6;
  /// Fraction of `total` carried by the elephants together.
  double elephant_share = 0.7;
  /// Zipf-like skew among the elephants themselves: elephant k carries
  /// weight (k+1)^-skew. 0 = equal elephants.
  double skew = 1.0;
  /// Fraction of non-elephant pairs with no demand at all.
  double sparsity = 0.5;
  /// Priority assigned to all demands.
  int priority = 0;
};

/// Builds a demand-aware matrix: every ordered node pair is a candidate;
/// `elephants` of them (drawn by `rng`) split `elephant_share` of the
/// total with Zipf weights, the surviving mice split the rest uniformly.
/// ODs with zero volume are kept (volume 0) so rotations preserve the
/// OD-slot order a DataplaneSim or estimator is built against.
te::TrafficMatrix demand_aware_matrix(const graph::Graph& graph,
                                      const DemandAwareParams& params,
                                      util::Rng& rng);

/// Rotates which pairs are hot: epoch e advances every elephant by
/// `step * e` positions through the OD list (volumes permute, the OD-slot
/// order is untouched). Epoch 0 returns `base` unchanged.
te::TrafficMatrix rotate_elephants(const te::TrafficMatrix& base,
                                   std::size_t epoch, std::size_t step = 1);

/// Diurnal multiplier in [trough, 1]: sinusoid with a 24 h period peaking at
/// `peak_hour` local time.
double diurnal_factor(util::Seconds t, double trough = 0.5,
                      double peak_hour = 20.0);

}  // namespace rwc::sim
