// Traffic workload generation: gravity-model demand matrices (the standard
// WAN assumption) with diurnal modulation and uniform scaling for sweeps.
#pragma once

#include "graph/graph.hpp"
#include "te/demand.hpp"
#include "util/rng.hpp"

namespace rwc::sim {

struct GravityParams {
  /// Sum of all demand volumes.
  util::Gbps total{1000.0};
  /// Spread of node masses (log-normal sigma); 0 = uniform masses.
  double mass_log_sigma = 0.6;
  /// Fraction of node pairs with no demand at all.
  double sparsity = 0.0;
  /// Priority assigned to all demands.
  int priority = 0;
};

/// Gravity demand matrix: volume(i->j) proportional to mass_i * mass_j.
te::TrafficMatrix gravity_matrix(const graph::Graph& graph,
                                 const GravityParams& params, util::Rng& rng);

/// Uniformly scales all volumes by `factor`.
te::TrafficMatrix scale_matrix(const te::TrafficMatrix& base, double factor);

/// Diurnal multiplier in [trough, 1]: sinusoid with a 24 h period peaking at
/// `peak_hour` local time.
double diurnal_factor(util::Seconds t, double trough = 0.5,
                      double peak_hour = 20.0);

}  // namespace rwc::sim
