// Discrete-event WAN simulator: drives SNR telemetry, a capacity policy and
// a TE engine over a time horizon, accounting delivered traffic,
// availability, failures/flaps and reconfiguration downtime.
//
// Policies:
//   kStatic           — today's networks: fixed rate, binary up/down on the
//                       rate's SNR threshold.
//   kStaticAggressive — fixed HIGHER rate chosen at provisioning time (the
//                       Section 2.1 strawman that trades failures for rate).
//   kDynamic          — the paper's proposal with laser-cycling BVTs (~68 s
//                       per change).
//   kDynamicHitless   — the paper's proposal with efficient reconfiguration
//                       (~35 ms per change).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bvt/latency.hpp"
#include "demand/config.hpp"
#include "graph/graph.hpp"
#include "sim/event.hpp"
#include "te/algorithm.hpp"
#include "telemetry/snr_model.hpp"

namespace rwc::exec {
class ThreadPool;
}

namespace rwc::sim {

enum class CapacityPolicy {
  kStatic,
  kStaticAggressive,
  kDynamic,
  kDynamicHitless,
};

const char* to_string(CapacityPolicy policy);

struct SimulationConfig {
  util::Seconds horizon = 3.0 * util::kDay;
  util::Seconds te_interval = 15.0 * util::kMinute;
  util::Db snr_margin{0.5};
  CapacityPolicy policy = CapacityPolicy::kDynamic;
  /// Rate for the static policies (must be on the ladder).
  util::Gbps static_capacity{100.0};
  /// Scale demands by the diurnal curve.
  bool diurnal = true;
  /// Dynamic policies only: execute every round's plan through per-link BVT
  /// devices and the reconfiguration orchestrator (register-level fidelity;
  /// lock failures become link outages) instead of the analytic
  /// latency-sampling account.
  bool device_backed = false;
  telemetry::SnrModelParams snr_model;
  bvt::LatencyModelParams latency;
  std::uint64_t seed = 1;
  /// Thread pool for the fleet trace generation and the controller's
  /// consolidation pass; nullptr selects exec::ThreadPool::global().
  /// Results are bit-identical at every pool size (docs/CONCURRENCY.md) —
  /// the knob exists so embedders (rwc::fleet shards, rwc::serve) can keep
  /// a simulation off the global pool instead of contending on it.
  exec::ThreadPool* pool = nullptr;
  /// Demand source for the dynamic policies (docs/DEMAND.md). kOracle feeds
  /// the true matrix to TE (historical behavior); kEstimated infers it from
  /// synthetic link counters each round, and delivered accounting caps each
  /// OD at its true offered volume. Static policies always see the oracle
  /// matrix — they model today's networks, which the paper's measurement
  /// loop does not touch.
  demand::DemandConfig demand;
};

struct SimulationMetrics {
  double offered_gbps_hours = 0.0;
  double delivered_gbps_hours = 0.0;
  /// Mean over ticks of the fraction of links with non-zero capacity.
  double availability = 0.0;
  std::size_t link_failures = 0;  // capacity transitions to 0
  std::size_t link_flaps = 0;     // reductions to a non-zero rate
  std::size_t upgrades = 0;       // TE-driven capacity increases
  std::size_t restorations = 0;   // SNR-recovery restorations to nominal
  /// Device-backed mode: modulation changes whose carrier failed to lock.
  std::size_t lock_failures = 0;
  double reconfig_downtime_hours = 0.0;
  std::size_t te_rounds = 0;

  double delivered_fraction() const {
    return offered_gbps_hours > 0.0
               ? delivered_gbps_hours / offered_gbps_hours
               : 0.0;
  }
};

class WanSimulator {
 public:
  /// `topology` must be built from bidirectional pairs (edges 2k, 2k+1 form
  /// one physical link). The engine must outlive the simulator.
  WanSimulator(graph::Graph topology, const te::TeAlgorithm& engine,
               SimulationConfig config);

  /// Runs the simulation against `base_demands` (scaled by the diurnal curve
  /// when enabled).
  SimulationMetrics run(const te::TrafficMatrix& base_demands);

  const graph::Graph& topology() const { return topology_; }

 private:
  graph::Graph topology_;
  const te::TeAlgorithm& engine_;
  SimulationConfig config_;
};

/// One simulation configuration in a sweep (e.g. one policy arm).
struct Scenario {
  std::string name;
  SimulationConfig config;
};

struct ScenarioResult {
  std::string name;
  SimulationMetrics metrics;
};

/// Runs every scenario against the shared topology/engine/demands,
/// distributing whole scenarios over `pool` (nullptr selects
/// exec::ThreadPool::global()). Each scenario's simulation is
/// self-contained, so results are positionally ordered and bit-identical
/// at every pool size. The engine's solve() must be safe to call
/// concurrently (both built-in engines are).
std::vector<ScenarioResult> run_scenarios(const graph::Graph& topology,
                                          const te::TeAlgorithm& engine,
                                          const te::TrafficMatrix& base_demands,
                                          std::span<const Scenario> scenarios,
                                          exec::ThreadPool* pool = nullptr);

}  // namespace rwc::sim
