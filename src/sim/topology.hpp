// Built-in WAN topologies: the paper's Fig. 7 square, an Abilene-like 11
// node US research backbone, a 24-node continental WAN, and Waxman random
// graphs for scaling studies. All links are bidirectional pairs of directed
// edges at a configurable base rate (default 100 Gbps, the paper's fleet).
#pragma once

#include <string>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rwc::sim {

/// Fig. 7: square A,B,C,D with links A-B, C-D, A-C, B-D.
graph::Graph fig7_square(util::Gbps capacity = util::Gbps{100.0});

/// Abilene-like 11-node / 14-link US topology.
graph::Graph abilene(util::Gbps capacity = util::Gbps{100.0});

/// Synthetic 24-node / 43-link North-American backbone.
graph::Graph us_wan24(util::Gbps capacity = util::Gbps{100.0});

/// GEANT-like 22-node / 36-link European research backbone.
graph::Graph europe22(util::Gbps capacity = util::Gbps{100.0});

/// Waxman random topology over `nodes` points in the unit square: an edge
/// u-v appears with probability alpha * exp(-dist/(beta * sqrt(2))); a
/// random spanning tree guarantees connectivity.
graph::Graph waxman(int nodes, util::Rng& rng, double alpha = 0.4,
                    double beta = 0.35,
                    util::Gbps capacity = util::Gbps{100.0});

/// Number of undirected links (edge pairs) in a topology built by the
/// helpers above (edge_count / 2).
std::size_t link_count(const graph::Graph& graph);

}  // namespace rwc::sim
