#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace rwc::sim {

using util::Gbps;

te::TrafficMatrix gravity_matrix(const graph::Graph& graph,
                                 const GravityParams& params,
                                 util::Rng& rng) {
  RWC_EXPECTS(params.total.value >= 0.0);
  RWC_EXPECTS(params.sparsity >= 0.0 && params.sparsity < 1.0);
  const std::size_t n = graph.node_count();
  RWC_EXPECTS(n >= 2);

  std::vector<double> mass(n, 1.0);
  if (params.mass_log_sigma > 0.0)
    for (double& m : mass) m = rng.lognormal(0.0, params.mass_log_sigma);

  te::TrafficMatrix demands;
  double weight_sum = 0.0;
  std::vector<double> weights;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (params.sparsity > 0.0 && rng.bernoulli(params.sparsity)) continue;
      const double w = mass[i] * mass[j];
      weights.push_back(w);
      weight_sum += w;
      demands.push_back(te::Demand{
          graph::NodeId{static_cast<std::int32_t>(i)},
          graph::NodeId{static_cast<std::int32_t>(j)},
          Gbps{0.0},
          params.priority,
      });
    }
  }
  RWC_CHECK(weight_sum > 0.0);
  for (std::size_t k = 0; k < demands.size(); ++k)
    demands[k].volume = Gbps{params.total.value * weights[k] / weight_sum};
  return demands;
}

te::TrafficMatrix scale_matrix(const te::TrafficMatrix& base, double factor) {
  RWC_EXPECTS(factor >= 0.0);
  te::TrafficMatrix scaled = base;
  for (te::Demand& d : scaled) d.volume = d.volume * factor;
  return scaled;
}

te::TrafficMatrix demand_aware_matrix(const graph::Graph& graph,
                                      const DemandAwareParams& params,
                                      util::Rng& rng) {
  RWC_EXPECTS(params.total.value >= 0.0);
  RWC_EXPECTS(params.elephant_share >= 0.0 && params.elephant_share <= 1.0);
  RWC_EXPECTS(params.sparsity >= 0.0 && params.sparsity < 1.0);
  const std::size_t n = graph.node_count();
  RWC_EXPECTS(n >= 2);

  te::TrafficMatrix demands;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      demands.push_back(te::Demand{
          graph::NodeId{static_cast<std::int32_t>(i)},
          graph::NodeId{static_cast<std::int32_t>(j)},
          Gbps{0.0},
          params.priority,
      });
    }

  // Draw the elephant pairs without replacement (partial Fisher-Yates on
  // the pair indices).
  const std::size_t pairs = demands.size();
  const std::size_t elephants = std::min(params.elephants, pairs);
  std::vector<std::size_t> order(pairs);
  for (std::size_t k = 0; k < pairs; ++k) order[k] = k;
  for (std::size_t k = 0; k < elephants; ++k) {
    const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(k), static_cast<std::int64_t>(pairs - 1)));
    std::swap(order[k], order[pick]);
  }

  // Zipf weights among the elephants.
  double zipf_sum = 0.0;
  std::vector<double> zipf(elephants, 0.0);
  for (std::size_t k = 0; k < elephants; ++k) {
    zipf[k] = std::pow(static_cast<double>(k + 1), -params.skew);
    zipf_sum += zipf[k];
  }
  const double elephant_total =
      elephants > 0 ? params.total.value * params.elephant_share : 0.0;
  for (std::size_t k = 0; k < elephants; ++k)
    demands[order[k]].volume = Gbps{elephant_total * zipf[k] / zipf_sum};

  // Mouse background: surviving non-elephant pairs split the remainder.
  std::vector<std::size_t> mice;
  for (std::size_t k = elephants; k < pairs; ++k)
    if (!(params.sparsity > 0.0 && rng.bernoulli(params.sparsity)))
      mice.push_back(order[k]);
  const double mouse_total = params.total.value - elephant_total;
  if (!mice.empty() && mouse_total > 0.0) {
    const double each = mouse_total / static_cast<double>(mice.size());
    for (const std::size_t k : mice) demands[k].volume = Gbps{each};
  }
  return demands;
}

te::TrafficMatrix rotate_elephants(const te::TrafficMatrix& base,
                                   std::size_t epoch, std::size_t step) {
  if (epoch == 0 || base.empty()) return base;
  const std::size_t shift = (epoch * step) % base.size();
  te::TrafficMatrix rotated = base;
  for (std::size_t k = 0; k < base.size(); ++k)
    rotated[(k + shift) % base.size()].volume = base[k].volume;
  return rotated;
}

double diurnal_factor(util::Seconds t, double trough, double peak_hour) {
  RWC_EXPECTS(trough >= 0.0 && trough <= 1.0);
  const double hour = std::fmod(t / util::kHour, 24.0);
  const double phase =
      2.0 * std::numbers::pi * (hour - peak_hour) / 24.0;
  // cos(phase) = 1 at the peak hour.
  return trough + (1.0 - trough) * 0.5 * (1.0 + std::cos(phase));
}

}  // namespace rwc::sim
