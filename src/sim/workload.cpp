#include "sim/workload.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "util/check.hpp"

namespace rwc::sim {

using util::Gbps;

te::TrafficMatrix gravity_matrix(const graph::Graph& graph,
                                 const GravityParams& params,
                                 util::Rng& rng) {
  RWC_EXPECTS(params.total.value >= 0.0);
  RWC_EXPECTS(params.sparsity >= 0.0 && params.sparsity < 1.0);
  const std::size_t n = graph.node_count();
  RWC_EXPECTS(n >= 2);

  std::vector<double> mass(n, 1.0);
  if (params.mass_log_sigma > 0.0)
    for (double& m : mass) m = rng.lognormal(0.0, params.mass_log_sigma);

  te::TrafficMatrix demands;
  double weight_sum = 0.0;
  std::vector<double> weights;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (params.sparsity > 0.0 && rng.bernoulli(params.sparsity)) continue;
      const double w = mass[i] * mass[j];
      weights.push_back(w);
      weight_sum += w;
      demands.push_back(te::Demand{
          graph::NodeId{static_cast<std::int32_t>(i)},
          graph::NodeId{static_cast<std::int32_t>(j)},
          Gbps{0.0},
          params.priority,
      });
    }
  }
  RWC_CHECK(weight_sum > 0.0);
  for (std::size_t k = 0; k < demands.size(); ++k)
    demands[k].volume = Gbps{params.total.value * weights[k] / weight_sum};
  return demands;
}

te::TrafficMatrix scale_matrix(const te::TrafficMatrix& base, double factor) {
  RWC_EXPECTS(factor >= 0.0);
  te::TrafficMatrix scaled = base;
  for (te::Demand& d : scaled) d.volume = d.volume * factor;
  return scaled;
}

double diurnal_factor(util::Seconds t, double trough, double peak_hour) {
  RWC_EXPECTS(trough >= 0.0 && trough <= 1.0);
  const double hour = std::fmod(t / util::kHour, 24.0);
  const double phase =
      2.0 * std::numbers::pi * (hour - peak_hour) / 24.0;
  // cos(phase) = 1 at the peak hour.
  return trough + (1.0 - trough) * 0.5 * (1.0 + std::cos(phase));
}

}  // namespace rwc::sim
