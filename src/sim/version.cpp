// Library identification for rwc_sim.
namespace rwc::sim {

/// Version string of the sim subsystem (matches the top-level project).
const char* version() { return "1.0.0"; }

}  // namespace rwc::sim
