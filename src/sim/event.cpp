#include "sim/event.hpp"

#include "util/check.hpp"

namespace rwc::sim {

void EventQueue::schedule(util::Seconds time, Callback callback) {
  RWC_EXPECTS(time >= now_);
  heap_.push(Item{time, next_sequence_++, std::move(callback)});
}

void EventQueue::schedule_in(util::Seconds delay, Callback callback) {
  RWC_EXPECTS(delay >= 0.0);
  schedule(now_ + delay, std::move(callback));
}

std::size_t EventQueue::run_until(util::Seconds horizon) {
  std::size_t processed = 0;
  while (!heap_.empty() && heap_.top().time <= horizon) {
    // Copy out before pop: the callback may schedule new events.
    Item item = heap_.top();
    heap_.pop();
    now_ = item.time;
    item.callback(now_);
    ++processed;
  }
  now_ = std::max(now_, horizon);
  return processed;
}

}  // namespace rwc::sim
