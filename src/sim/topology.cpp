#include "sim/topology.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace rwc::sim {

using graph::Graph;
using graph::NodeId;
using util::Gbps;

namespace {

/// Adds named nodes and the given undirected links.
Graph build(const std::vector<std::string>& names,
            const std::vector<std::pair<int, int>>& links, Gbps capacity) {
  Graph g;
  std::vector<NodeId> nodes;
  nodes.reserve(names.size());
  for (const std::string& name : names) nodes.push_back(g.add_node(name));
  for (const auto& [a, b] : links)
    g.add_bidirectional(nodes[static_cast<std::size_t>(a)],
                        nodes[static_cast<std::size_t>(b)], capacity);
  return g;
}

}  // namespace

Graph fig7_square(Gbps capacity) {
  return build({"A", "B", "C", "D"}, {{0, 1}, {2, 3}, {0, 2}, {1, 3}},
               capacity);
}

Graph abilene(Gbps capacity) {
  // Nodes: 0 SEA, 1 SNV, 2 LAX, 3 DEN, 4 KSC, 5 HOU, 6 CHI, 7 IND, 8 ATL,
  //        9 WDC, 10 NYC
  return build(
      {"SEA", "SNV", "LAX", "DEN", "KSC", "HOU", "CHI", "IND", "ATL", "WDC",
       "NYC"},
      {{0, 1},   // SEA-SNV
       {0, 3},   // SEA-DEN
       {1, 2},   // SNV-LAX
       {1, 3},   // SNV-DEN
       {2, 5},   // LAX-HOU
       {3, 4},   // DEN-KSC
       {4, 5},   // KSC-HOU
       {4, 7},   // KSC-IND
       {5, 8},   // HOU-ATL
       {6, 7},   // CHI-IND
       {6, 10},  // CHI-NYC
       {7, 8},   // IND-ATL
       {8, 9},   // ATL-WDC
       {9, 10}},  // WDC-NYC
      capacity);
}

Graph us_wan24(Gbps capacity) {
  // A denser continental backbone in the style of large provider WANs.
  return build(
      {"SEA", "PDX", "SFO", "SJC", "LAX", "SAN", "PHX", "LAS", "SLC", "DEN",
       "ABQ", "DFW", "HOU", "SAT", "MCI", "MSP", "ORD", "STL", "MEM", "ATL",
       "MIA", "CLT", "IAD", "NYC"},
      {
          {0, 1},  {0, 8},   {0, 16},  // SEA-PDX, SEA-SLC, SEA-ORD
          {1, 2},  {2, 3},   {2, 8},   // PDX-SFO, SFO-SJC, SFO-SLC
          {3, 4},  {3, 7},            // SJC-LAX, SJC-LAS
          {4, 5},  {4, 6},   {4, 11},  // LAX-SAN, LAX-PHX, LAX-DFW
          {5, 6},                      // SAN-PHX
          {6, 10}, {6, 7},             // PHX-ABQ, PHX-LAS
          {7, 8},                      // LAS-SLC
          {8, 9},                      // SLC-DEN
          {9, 10}, {9, 14},  {9, 15},  // DEN-ABQ, DEN-MCI, DEN-MSP
          {10, 11},                    // ABQ-DFW
          {11, 12}, {11, 13}, {11, 18},  // DFW-HOU, DFW-SAT, DFW-MEM
          {12, 13}, {12, 19},            // HOU-SAT, HOU-ATL
          {14, 15}, {14, 16}, {14, 17},  // MCI-MSP, MCI-ORD, MCI-STL
          {15, 16},                      // MSP-ORD
          {16, 17}, {16, 23},            // ORD-STL, ORD-NYC
          {17, 18},                      // STL-MEM
          {18, 19},                      // MEM-ATL
          {19, 20}, {19, 21},            // ATL-MIA, ATL-CLT
          {20, 21},                      // MIA-CLT
          {21, 22},                      // CLT-IAD
          {22, 23},                      // IAD-NYC
          {16, 22},                      // ORD-IAD
          {9, 11},                       // DEN-DFW
          {2, 4},                        // SFO-LAX
          {19, 22},                      // ATL-IAD
      },
      capacity);
}

Graph europe22(Gbps capacity) {
  // GEANT-flavoured European backbone.
  return build(
      {"LIS", "MAD", "POR", "LON", "PAR", "BRU", "AMS", "LUX", "GVA", "MIL",
       "ROM", "VIE", "PRG", "BER", "HAM", "CPH", "OSL", "STO", "HEL", "WAW",
       "BUD", "ATH"},
      {
          {0, 1},   // LIS-MAD
          {0, 2},   // LIS-POR
          {1, 2},   // MAD-POR (ring closure via Porto)
          {1, 4},   // MAD-PAR
          {1, 9},   // MAD-MIL
          {3, 4},   // LON-PAR
          {3, 6},   // LON-AMS
          {3, 16},  // LON-OSL
          {4, 5},   // PAR-BRU
          {4, 8},   // PAR-GVA
          {5, 6},   // BRU-AMS
          {5, 7},   // BRU-LUX
          {6, 14},  // AMS-HAM
          {6, 13},  // AMS-BER
          {7, 13},  // LUX-BER
          {8, 9},   // GVA-MIL
          {8, 11},  // GVA-VIE
          {9, 10},  // MIL-ROM
          {10, 21}, // ROM-ATH
          {11, 12}, // VIE-PRG
          {11, 20}, // VIE-BUD
          {11, 9},  // VIE-MIL
          {12, 13}, // PRG-BER
          {12, 19}, // PRG-WAW
          {13, 14}, // BER-HAM
          {13, 19}, // BER-WAW
          {14, 15}, // HAM-CPH
          {15, 16}, // CPH-OSL
          {15, 17}, // CPH-STO
          {16, 17}, // OSL-STO
          {17, 18}, // STO-HEL
          {18, 19}, // HEL-WAW
          {19, 20}, // WAW-BUD
          {20, 21}, // BUD-ATH
          {4, 3},   // PAR-LON second pair (express)
          {9, 21},  // MIL-ATH
      },
      capacity);
}

Graph waxman(int nodes, util::Rng& rng, double alpha, double beta,
             Gbps capacity) {
  RWC_EXPECTS(nodes >= 2);
  RWC_EXPECTS(alpha > 0.0 && beta > 0.0);
  struct Point {
    double x, y;
  };
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i)
    points.push_back({rng.uniform(), rng.uniform()});

  Graph g;
  for (int i = 0; i < nodes; ++i) g.add_node("w" + std::to_string(i));

  auto distance = [&](int a, int b) {
    const double dx = points[static_cast<std::size_t>(a)].x -
                      points[static_cast<std::size_t>(b)].x;
    const double dy = points[static_cast<std::size_t>(a)].y -
                      points[static_cast<std::size_t>(b)].y;
    return std::sqrt(dx * dx + dy * dy);
  };

  std::vector<std::vector<bool>> linked(
      static_cast<std::size_t>(nodes),
      std::vector<bool>(static_cast<std::size_t>(nodes), false));
  auto connect = [&](int a, int b) {
    if (linked[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)])
      return;
    linked[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
    linked[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = true;
    g.add_bidirectional(NodeId{a}, NodeId{b}, capacity);
  };

  // Random spanning tree first (guarantees connectivity).
  std::vector<int> order(static_cast<std::size_t>(nodes));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  for (int i = 1; i < nodes; ++i) {
    const int prev = order[static_cast<std::size_t>(
        rng.uniform_int(0, i - 1))];
    connect(order[static_cast<std::size_t>(i)], prev);
  }
  // Waxman extra edges.
  const double scale = std::numbers::sqrt2 * beta;
  for (int a = 0; a < nodes; ++a)
    for (int b = a + 1; b < nodes; ++b)
      if (rng.bernoulli(
              std::min(1.0, alpha * std::exp(-distance(a, b) / scale))))
        connect(a, b);
  return g;
}

std::size_t link_count(const Graph& graph) { return graph.edge_count() / 2; }

}  // namespace rwc::sim
