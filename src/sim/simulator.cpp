#include "sim/simulator.hpp"

#include <algorithm>
#include <vector>

#include "core/controller.hpp"
#include "core/orchestrator.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "sim/workload.hpp"
#include "util/check.hpp"

namespace rwc::sim {

using graph::EdgeId;
using util::Db;
using util::Gbps;
using util::Seconds;

const char* to_string(CapacityPolicy policy) {
  switch (policy) {
    case CapacityPolicy::kStatic:
      return "static-100";
    case CapacityPolicy::kStaticAggressive:
      return "static-aggressive";
    case CapacityPolicy::kDynamic:
      return "dynamic";
    case CapacityPolicy::kDynamicHitless:
      return "dynamic-hitless";
  }
  return "unknown";
}

WanSimulator::WanSimulator(graph::Graph topology,
                           const te::TeAlgorithm& engine,
                           SimulationConfig config)
    : topology_(std::move(topology)), engine_(engine), config_(config) {
  RWC_EXPECTS(topology_.edge_count() % 2 == 0);
  RWC_EXPECTS(config_.horizon > 0.0);
  RWC_EXPECTS(config_.te_interval > 0.0);
}

SimulationMetrics WanSimulator::run(const te::TrafficMatrix& base_demands) {
  const auto table = optical::ModulationTable::standard();
  const std::size_t edges = topology_.edge_count();

  // One fiber per bidirectional pair, one wavelength per direction.
  telemetry::SnrFleetGenerator::FleetParams fleet_params;
  fleet_params.fiber_count = static_cast<int>(edges / 2);
  fleet_params.wavelengths_per_fiber = 2;
  fleet_params.duration = config_.horizon + config_.te_interval;
  fleet_params.interval = config_.te_interval;
  fleet_params.model = config_.snr_model;
  telemetry::SnrFleetGenerator fleet(fleet_params, config_.seed);
  // Traces are pure per (fiber, lambda), so the fleet can be generated in
  // parallel with results landing in edge order — identical to the serial
  // loop at every pool size.
  exec::ThreadPool& pool =
      config_.pool != nullptr ? *config_.pool : exec::ThreadPool::global();
  const std::vector<telemetry::SnrTrace> traces = exec::parallel_map(
      pool, edges, [&](std::size_t e) {
        return fleet.generate_trace(static_cast<int>(e / 2),
                                    static_cast<int>(e % 2));
      });

  const bool dynamic = config_.policy == CapacityPolicy::kDynamic ||
                       config_.policy == CapacityPolicy::kDynamicHitless;
  const bvt::Procedure procedure =
      config_.policy == CapacityPolicy::kDynamicHitless
          ? bvt::Procedure::kEfficient
          : bvt::Procedure::kStandard;
  const bvt::LatencyModel latency(config_.latency);
  util::Rng latency_rng(config_.seed ^ 0x1A7E9C5ull);

  // Dynamic policies share one controller across rounds.
  core::ControllerOptions controller_options;
  controller_options.snr_margin = config_.snr_margin;
  controller_options.pool = config_.pool;
  controller_options.demand = config_.demand;
  core::DynamicCapacityController controller(topology_, table, engine_,
                                             controller_options);

  // Device-backed mode: per-link transceivers plus the orchestrator.
  core::DeviceArray devices;
  if (dynamic && config_.device_backed)
    devices = core::make_device_array(topology_, table,
                                      config_.seed ^ 0xDEC1CEull);
  core::ReconfigurationOrchestrator::Options orchestration;
  orchestration.procedure = procedure;
  const core::ReconfigurationOrchestrator orchestrator(orchestration);

  // Static policies track binary link state themselves.
  graph::Graph static_topology = topology_;
  const Gbps static_rate = config_.policy == CapacityPolicy::kStatic
                               ? Gbps{100.0}
                               : config_.static_capacity;
  if (!dynamic) RWC_EXPECTS(table.has_rate(static_rate));
  std::vector<bool> static_up(edges, true);

  SimulationMetrics metrics;
  const double tick_hours = config_.te_interval / util::kHour;

  EventQueue queue;
  const auto ticks = static_cast<std::size_t>(config_.horizon /
                                              config_.te_interval);
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    queue.schedule(static_cast<double>(tick) * config_.te_interval,
                   [&, tick](Seconds now) {
      // Demands at this instant.
      te::TrafficMatrix demands =
          config_.diurnal
              ? scale_matrix(base_demands, diurnal_factor(now))
              : base_demands;
      metrics.offered_gbps_hours +=
          te::total_demand(demands).value * tick_hours;
      ++metrics.te_rounds;

      // Per-edge SNR for this tick.
      std::vector<Db> snr(edges);
      for (std::size_t e = 0; e < edges; ++e)
        snr[e] = traces[e].at(std::min(tick, traces[e].size() - 1));

      double routed = 0.0;
      double lost = 0.0;
      std::size_t links_up = 0;

      if (dynamic) {
        const te::FlowAssignment previous = controller.last_assignment();
        if (config_.device_backed)
          for (std::size_t e = 0; e < edges; ++e)
            devices[e].set_link_snr(snr[e]);
        const auto report = controller.run_round(snr, demands);
        routed = report.total_routed.value;
        // Honest delivered account in estimated mode: TE routed the
        // ESTIMATED matrix; cap each OD's delivered at its TRUE offered
        // volume (docs/DEMAND.md).
        if (controller.demand_pipeline() != nullptr) {
          routed = 0.0;
          const auto& routings = report.plan.physical_assignment.routings;
          for (std::size_t j = 0; j < routings.size(); ++j) {
            const double truth = j < demands.size()
                                     ? demands[j].volume.value
                                     : routings[j].routed.value;
            routed += std::min(routings[j].routed.value, truth);
          }
        }
        metrics.upgrades += report.plan.upgrades.size();

        // Analytic account: each capacity change takes the link out for a
        // sampled duration; traffic newly assigned to it is lost meanwhile.
        auto account_change = [&](EdgeId edge) {
          const Seconds downtime =
              latency.sample_downtime(procedure, latency_rng);
          metrics.reconfig_downtime_hours += downtime / util::kHour;
          const double load =
              report.plan.physical_assignment
                  .edge_load_gbps[static_cast<std::size_t>(edge.value)];
          lost += load *
                  std::min(downtime, config_.te_interval) / util::kHour;
          queue.schedule_in(std::min(downtime, config_.te_interval),
                            [](Seconds) {});  // reconfig-complete event
        };
        // Device-backed account: drive the link's transceiver and charge
        // the actual downtime; a failed lock loses the tick's traffic.
        auto device_change = [&](EdgeId edge, util::Gbps to) {
          auto& device = devices[static_cast<std::size_t>(edge.value)];
          if (to.value <= 0.0) {
            device.power_off();
            return;
          }
          if (!device.laser_on())
            metrics.reconfig_downtime_hours += device.power_on() / util::kHour;
          const auto result = device.change_modulation(to, procedure);
          metrics.reconfig_downtime_hours += result.downtime / util::kHour;
          const double load =
              report.plan.physical_assignment
                  .edge_load_gbps[static_cast<std::size_t>(edge.value)];
          lost += load *
                  std::min(result.downtime, config_.te_interval) /
                  util::kHour;
          if (!result.success) {
            ++metrics.lock_failures;
            lost += load * tick_hours;
          }
        };
        auto apply_change = [&](EdgeId edge, util::Gbps to) {
          if (config_.device_backed)
            device_change(edge, to);
          else
            account_change(edge);
        };

        for (const auto& restoration : report.restorations) {
          ++metrics.restorations;
          apply_change(restoration.edge, restoration.to);
        }
        for (const auto& flap : report.reductions) {
          if (flap.to.value > 0.0) {
            ++metrics.link_flaps;
            apply_change(flap.edge, flap.to);
          } else {
            ++metrics.link_failures;
            if (config_.device_backed)
              devices[static_cast<std::size_t>(flap.edge.value)].power_off();
          }
        }
        if (config_.device_backed) {
          // Upgrades execute through the orchestrator: drain, parallel
          // modulation changes over MDIO, restore.
          const auto execution =
              orchestrator.execute(controller.current_topology(), previous,
                                   report.plan, devices);
          metrics.reconfig_downtime_hours +=
              execution.makespan / util::kHour;
          lost += execution.parked_gbps_seconds / util::kHour;
          if (!execution.success) {
            for (const auto& event : execution.timeline)
              if (event.kind ==
                  core::OrchestratorEvent::Kind::kReconfigureFailed) {
                ++metrics.lock_failures;
                lost += report.plan.physical_assignment.edge_load_gbps
                            [static_cast<std::size_t>(event.edge.value)] *
                        tick_hours;
              }
          }
        } else {
          for (const auto& change : report.plan.upgrades)
            account_change(change.edge);
        }
        for (EdgeId edge : topology_.edge_ids())
          if (controller.configured_capacity(edge).value > 0.0) ++links_up;
      } else {
        // Static policy: binary up/down at the fixed rate's threshold.
        const Db threshold = table.threshold_for(static_rate);
        for (std::size_t e = 0; e < edges; ++e) {
          const bool up =
              snr[e] >= threshold + config_.snr_margin;
          if (!up && static_up[e]) ++metrics.link_failures;
          static_up[e] = up;
          if (up) ++links_up;
          static_topology.edge(EdgeId{static_cast<std::int32_t>(e)})
              .capacity = up ? static_rate : Gbps{0.0};
        }
        const auto assignment = engine_.solve(static_topology, demands);
        routed = assignment.total_routed.value;
      }

      metrics.delivered_gbps_hours +=
          std::max(0.0, routed * tick_hours - lost);
      metrics.availability += static_cast<double>(links_up) /
                              static_cast<double>(edges);
    });
  }
  queue.run_until(config_.horizon);
  if (metrics.te_rounds > 0)
    metrics.availability /= static_cast<double>(metrics.te_rounds);
  return metrics;
}

std::vector<ScenarioResult> run_scenarios(const graph::Graph& topology,
                                          const te::TeAlgorithm& engine,
                                          const te::TrafficMatrix& base_demands,
                                          std::span<const Scenario> scenarios,
                                          exec::ThreadPool* pool) {
  exec::ThreadPool& effective =
      pool != nullptr ? *pool : exec::ThreadPool::global();
  return exec::parallel_map(
      effective, scenarios.size(), [&](std::size_t i) {
        WanSimulator simulator(topology, engine, scenarios[i].config);
        return ScenarioResult{scenarios[i].name,
                              simulator.run(base_demands)};
      });
}

}  // namespace rwc::sim
