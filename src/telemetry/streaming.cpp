#include "telemetry/streaming.hpp"

#include "telemetry/analysis.hpp"
#include "util/check.hpp"

namespace rwc::telemetry {

using util::Db;

StreamingLinkAnalyzer::StreamingLinkAnalyzer(double coverage)
    : coverage_(coverage),
      lower_((1.0 - coverage) / 2.0),
      upper_((1.0 + coverage) / 2.0) {
  RWC_EXPECTS(coverage > 0.0 && coverage < 1.0);
}

void StreamingLinkAnalyzer::add(Db snr) {
  // Same sanitization as the batch path (analyze_link): a NaN or negative
  // sample must degrade the estimate toward the 0 dB floor, not poison the
  // running summary and quantile sketches for the rest of the stream.
  const double value = sanitize_sample_db(snr.value);
  summary_.add(value);
  lower_.add(value);
  upper_.add(value);
}

void StreamingLinkAnalyzer::add(const SnrTrace& trace) {
  for (float s : trace.samples_db) add(Db{static_cast<double>(s)});
}

LinkSnrStats StreamingLinkAnalyzer::stats(
    const optical::ModulationTable& table) const {
  RWC_EXPECTS(count() > 0);
  LinkSnrStats stats;
  stats.min_snr = Db{summary_.min()};
  stats.max_snr = Db{summary_.max()};
  stats.range_db = summary_.max() - summary_.min();
  stats.hdr = util::Interval{lower_.value(), upper_.value()};
  stats.hdr_width_db = stats.hdr.width();
  stats.hdr_lower = Db{stats.hdr.lo};
  stats.feasible_capacity = table.feasible_capacity(stats.hdr_lower);
  return stats;
}

}  // namespace rwc::telemetry
