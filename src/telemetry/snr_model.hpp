// Stochastic SNR model for WAN optical links.
//
// Substitutes for the paper's proprietary telemetry (2000+ links sampled
// every 15 minutes for 2.5 years). The process is:
//
//   snr(t) = fiber_baseline + lambda_offset + seasonal_drift(t)
//            + jitter(t) - sum(active event depths)
//
// with three event classes:
//   shallow dips  — amplifier aging, maintenance wiggle (small depth, common)
//   deep dips     — hardware failures, botched maintenance (large depth)
//   fiber cuts    — loss of light: SNR collapses to the noise floor
// Fiber-level events hit every wavelength of the cable (with per-wavelength
// depth variation), which reproduces the correlated dips of Figure 1.
//
// Default parameters are calibrated against the paper's published population
// statistics (see DESIGN.md section 6); calibration tests assert them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace rwc::telemetry {

/// What caused an SNR-degrading event (used for ground-truth joins in
/// tests; the analyses themselves only look at samples, like the paper).
enum class EventKind { kShallowDip, kDeepDip, kFiberCut };

const char* to_string(EventKind kind);

/// One SNR-degrading event on a fiber or a single wavelength.
struct SnrEvent {
  util::Seconds start = 0.0;
  util::Seconds duration = 0.0;
  util::Db depth{0.0};  // nominal depth; per-wavelength realizations vary
  EventKind kind = EventKind::kShallowDip;
};

/// Tunable parameters of the SNR process. Rates are per year.
struct SnrModelParams {
  // Population of clear-sky SNR across fibers / wavelengths.
  util::Db fiber_baseline_mean{13.2};
  util::Db fiber_baseline_sigma{1.0};
  util::Db fiber_baseline_min{8.5};
  util::Db fiber_baseline_max{17.5};
  util::Db lambda_offset_sigma{0.5};

  // Fast per-sample jitter: per-wavelength sigma is lognormal so a tail of
  // links is "noisy" (drives the HDR-width distribution of Fig. 2a).
  double jitter_sigma_median_db = 0.22;
  double jitter_sigma_log_sigma = 0.5;
  double noisy_lambda_fraction = 0.05;
  double noisy_jitter_multiplier = 3.0;

  // Slow seasonal drift.
  double drift_amplitude_mean_db = 0.30;  // exponential
  util::Seconds drift_period_min = 60.0 * util::kDay;
  util::Seconds drift_period_max = 240.0 * util::kDay;

  // Shallow dips.
  double fiber_shallow_rate_per_year = 4.0;
  double lambda_shallow_rate_per_year = 2.0;
  double shallow_depth_median_db = 1.3;
  double shallow_depth_log_sigma = 0.6;
  double shallow_duration_mean_hours = 2.0;
  double shallow_duration_sd_hours = 2.0;

  // Deep dips.
  double fiber_deep_rate_per_year = 0.8;
  double lambda_deep_rate_per_year = 0.4;
  double deep_depth_median_db = 12.0;
  double deep_depth_log_sigma = 0.5;
  double deep_duration_mean_hours = 6.0;
  double deep_duration_sd_hours = 5.0;

  // Fiber cuts (loss of light).
  double fiber_cut_rate_per_year = 0.15;
  double cut_duration_mean_hours = 14.0;
  double cut_duration_sd_hours = 8.0;

  // Per-wavelength multiplicative variation of a fiber event's depth.
  double event_depth_lambda_log_sigma = 0.2;

  // Receiver noise floor: reported SNR never drops below ~this.
  util::Db noise_floor{0.2};
};

/// A sampled SNR time series for one link (wavelength).
struct SnrTrace {
  util::Seconds interval = 15.0 * util::kMinute;
  std::vector<float> samples_db;

  std::size_t size() const { return samples_db.size(); }
  util::Db at(std::size_t i) const {
    return util::Db{static_cast<double>(samples_db[i])};
  }
  util::Seconds duration() const {
    return interval * static_cast<double>(samples_db.size());
  }
};

/// Deterministic per-fiber event plan shared by all wavelengths of a cable.
struct FiberPlan {
  util::Db baseline{0.0};
  std::vector<SnrEvent> events;
};

/// Generates SNR traces for a fleet of fibers, each carrying a fixed number
/// of wavelengths (= IP links). Deterministic per (fiber, lambda): trace
/// generation is pure given the seed, so a 2000-link fleet can be analyzed
/// streaming one link at a time.
class SnrFleetGenerator {
 public:
  struct FleetParams {
    int fiber_count = 50;
    int wavelengths_per_fiber = 40;
    util::Seconds duration = 2.5 * 365.0 * util::kDay;
    util::Seconds interval = 15.0 * util::kMinute;
    SnrModelParams model;
  };

  SnrFleetGenerator(FleetParams params, std::uint64_t seed);

  int fiber_count() const { return params_.fiber_count; }
  int wavelengths_per_fiber() const { return params_.wavelengths_per_fiber; }
  int link_count() const {
    return params_.fiber_count * params_.wavelengths_per_fiber;
  }
  const FleetParams& params() const { return params_; }
  std::uint64_t seed() const { return seed_; }

  /// The event plan of one fiber (same result on every call).
  FiberPlan fiber_plan(int fiber) const;

  /// The SNR trace of wavelength `lambda` on `fiber`. Equivalent to
  /// draining an SnrTraceCursor in one call (it is implemented that way).
  SnrTrace generate_trace(int fiber, int lambda) const;

  /// Convenience: trace for a flat link index in [0, link_count).
  SnrTrace generate_trace(int link_index) const;

 private:
  FleetParams params_;
  std::uint64_t seed_;
};

/// Streaming generator for one link's SNR trace: produces the exact sample
/// sequence of SnrFleetGenerator::generate_trace(fiber, lambda) in
/// caller-sized chunks, holding only O(events) state instead of the full
/// multi-year sample vector. The position is checkpointable: state()
/// captures the sample index and per-sample Rng position, and a cursor
/// reconstructed from the same (generator, fiber, lambda) plus restore()
/// continues bit-identically — the substrate of rwc::replay's long-horizon
/// driver (docs/REPLAY.md).
class SnrTraceCursor {
 public:
  SnrTraceCursor(const SnrFleetGenerator& fleet, int fiber, int lambda);

  /// Total samples in the underlying trace (floor(duration / interval)).
  std::size_t total_samples() const { return total_samples_; }
  /// Samples produced so far.
  std::size_t position() const { return position_; }
  bool done() const { return position_ >= total_samples_; }

  /// Fills `out` with the next samples; returns how many were produced
  /// (less than out.size() only at the end of the trace).
  std::size_t next(std::span<float> out);

  /// Checkpointable position: everything that is not a pure function of
  /// (seed, fiber, lambda). The event schedule and per-wavelength statics
  /// are reconstructed by the constructor.
  struct State {
    std::uint64_t position = 0;
    util::RngState rng;

    friend bool operator==(const State&, const State&) = default;
  };
  State state() const;
  /// Repositions the cursor. Must be called on a cursor built from the
  /// same (generator params, seed, fiber, lambda) as the captured one;
  /// position is clamped to the trace length.
  void restore(const State& state);

 private:
  /// One entry of the sparse event-depth difference array: the summed
  /// depth delta taking effect at `index` (same accumulation order as the
  /// dense array of the original batch generator, so sampling is
  /// bit-identical).
  struct DepthDelta {
    std::size_t index = 0;
    double delta_db = 0.0;
  };

  /// Re-derives delta_cursor_ / active_depth_ for position_.
  void reseek();

  util::Seconds interval_ = 0.0;
  double noise_floor_db_ = 0.0;
  double baseline_db_ = 0.0;
  double jitter_sigma_ = 0.0;
  double drift_amplitude_ = 0.0;
  util::Seconds drift_period_ = 1.0;
  double drift_phase_ = 0.0;
  std::vector<DepthDelta> deltas_;  // sorted by index
  std::size_t total_samples_ = 0;

  util::Rng rng_{0};
  std::size_t position_ = 0;
  std::size_t delta_cursor_ = 0;
  double active_depth_ = 0.0;
};

}  // namespace rwc::telemetry
