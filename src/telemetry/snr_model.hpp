// Stochastic SNR model for WAN optical links.
//
// Substitutes for the paper's proprietary telemetry (2000+ links sampled
// every 15 minutes for 2.5 years). The process is:
//
//   snr(t) = fiber_baseline + lambda_offset + seasonal_drift(t)
//            + jitter(t) - sum(active event depths)
//
// with three event classes:
//   shallow dips  — amplifier aging, maintenance wiggle (small depth, common)
//   deep dips     — hardware failures, botched maintenance (large depth)
//   fiber cuts    — loss of light: SNR collapses to the noise floor
// Fiber-level events hit every wavelength of the cable (with per-wavelength
// depth variation), which reproduces the correlated dips of Figure 1.
//
// Default parameters are calibrated against the paper's published population
// statistics (see DESIGN.md section 6); calibration tests assert them.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace rwc::telemetry {

/// What caused an SNR-degrading event (used for ground-truth joins in
/// tests; the analyses themselves only look at samples, like the paper).
enum class EventKind { kShallowDip, kDeepDip, kFiberCut };

const char* to_string(EventKind kind);

/// One SNR-degrading event on a fiber or a single wavelength.
struct SnrEvent {
  util::Seconds start = 0.0;
  util::Seconds duration = 0.0;
  util::Db depth{0.0};  // nominal depth; per-wavelength realizations vary
  EventKind kind = EventKind::kShallowDip;
};

/// Tunable parameters of the SNR process. Rates are per year.
struct SnrModelParams {
  // Population of clear-sky SNR across fibers / wavelengths.
  util::Db fiber_baseline_mean{13.2};
  util::Db fiber_baseline_sigma{1.0};
  util::Db fiber_baseline_min{8.5};
  util::Db fiber_baseline_max{17.5};
  util::Db lambda_offset_sigma{0.5};

  // Fast per-sample jitter: per-wavelength sigma is lognormal so a tail of
  // links is "noisy" (drives the HDR-width distribution of Fig. 2a).
  double jitter_sigma_median_db = 0.22;
  double jitter_sigma_log_sigma = 0.5;
  double noisy_lambda_fraction = 0.05;
  double noisy_jitter_multiplier = 3.0;

  // Slow seasonal drift.
  double drift_amplitude_mean_db = 0.30;  // exponential
  util::Seconds drift_period_min = 60.0 * util::kDay;
  util::Seconds drift_period_max = 240.0 * util::kDay;

  // Shallow dips.
  double fiber_shallow_rate_per_year = 4.0;
  double lambda_shallow_rate_per_year = 2.0;
  double shallow_depth_median_db = 1.3;
  double shallow_depth_log_sigma = 0.6;
  double shallow_duration_mean_hours = 2.0;
  double shallow_duration_sd_hours = 2.0;

  // Deep dips.
  double fiber_deep_rate_per_year = 0.8;
  double lambda_deep_rate_per_year = 0.4;
  double deep_depth_median_db = 12.0;
  double deep_depth_log_sigma = 0.5;
  double deep_duration_mean_hours = 6.0;
  double deep_duration_sd_hours = 5.0;

  // Fiber cuts (loss of light).
  double fiber_cut_rate_per_year = 0.15;
  double cut_duration_mean_hours = 14.0;
  double cut_duration_sd_hours = 8.0;

  // Per-wavelength multiplicative variation of a fiber event's depth.
  double event_depth_lambda_log_sigma = 0.2;

  // Receiver noise floor: reported SNR never drops below ~this.
  util::Db noise_floor{0.2};
};

/// A sampled SNR time series for one link (wavelength).
struct SnrTrace {
  util::Seconds interval = 15.0 * util::kMinute;
  std::vector<float> samples_db;

  std::size_t size() const { return samples_db.size(); }
  util::Db at(std::size_t i) const {
    return util::Db{static_cast<double>(samples_db[i])};
  }
  util::Seconds duration() const {
    return interval * static_cast<double>(samples_db.size());
  }
};

/// Deterministic per-fiber event plan shared by all wavelengths of a cable.
struct FiberPlan {
  util::Db baseline{0.0};
  std::vector<SnrEvent> events;
};

/// Generates SNR traces for a fleet of fibers, each carrying a fixed number
/// of wavelengths (= IP links). Deterministic per (fiber, lambda): trace
/// generation is pure given the seed, so a 2000-link fleet can be analyzed
/// streaming one link at a time.
class SnrFleetGenerator {
 public:
  struct FleetParams {
    int fiber_count = 50;
    int wavelengths_per_fiber = 40;
    util::Seconds duration = 2.5 * 365.0 * util::kDay;
    util::Seconds interval = 15.0 * util::kMinute;
    SnrModelParams model;
  };

  SnrFleetGenerator(FleetParams params, std::uint64_t seed);

  int fiber_count() const { return params_.fiber_count; }
  int wavelengths_per_fiber() const { return params_.wavelengths_per_fiber; }
  int link_count() const {
    return params_.fiber_count * params_.wavelengths_per_fiber;
  }
  const FleetParams& params() const { return params_; }

  /// The event plan of one fiber (same result on every call).
  FiberPlan fiber_plan(int fiber) const;

  /// The SNR trace of wavelength `lambda` on `fiber`.
  SnrTrace generate_trace(int fiber, int lambda) const;

  /// Convenience: trace for a flat link index in [0, link_count).
  SnrTrace generate_trace(int link_index) const;

 private:
  FleetParams params_;
  std::uint64_t seed_;
};

}  // namespace rwc::telemetry
