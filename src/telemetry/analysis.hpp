// The paper's Section 2 analyses over SNR traces: variation statistics
// (range, highest-density region), feasible-capacity estimation, and
// hypothetical failure counting at each modulation ladder rate.
#pragma once

#include <vector>

#include "optical/modulation.hpp"
#include "telemetry/snr_model.hpp"
#include "util/stats.hpp"

namespace rwc::exec {
class ThreadPool;
}

namespace rwc::telemetry {

/// Per-link SNR variation and capacity statistics (Fig. 2a / 2b inputs).
struct LinkSnrStats {
  util::Db min_snr{0.0};
  util::Db max_snr{0.0};
  double range_db = 0.0;            // max - min
  util::Interval hdr;               // highest density region (95% default)
  double hdr_width_db = 0.0;
  util::Db hdr_lower{0.0};          // lower edge of the HDR
  util::Gbps feasible_capacity{0.0};  // ladder rate at the HDR lower edge
};

/// Clamps one raw SNR sample to the physically representable range:
/// NaN/infinite and negative readings (telemetry corruption, loss-of-light
/// garbage) become 0 dB — the receiver floor — instead of propagating into
/// capacity tables. Every clamp is counted under the
/// `telemetry.samples_clamped` obs counter.
double sanitize_sample_db(double raw_db);

/// Analyzes one link's trace. The feasible capacity follows the paper: the
/// highest ladder rate whose threshold lies at or below the lower SNR limit
/// of the link's highest density region. Samples pass through
/// sanitize_sample_db first, so corrupted telemetry degrades the estimate
/// toward 0 dB instead of poisoning it with NaN.
LinkSnrStats analyze_link(const SnrTrace& trace,
                          const optical::ModulationTable& table,
                          double hdr_coverage = 0.95);

/// A maximal run of consecutive samples below a threshold.
struct FailureEpisode {
  std::size_t start_index = 0;
  std::size_t length = 0;  // in samples
  util::Db lowest_snr{0.0};

  util::Seconds duration(const SnrTrace& trace) const {
    return static_cast<double>(length) * trace.interval;
  }
};

/// Failure episodes the link would experience when operated at a capacity
/// requiring `threshold` SNR.
std::vector<FailureEpisode> failure_episodes(const SnrTrace& trace,
                                             util::Db threshold);

/// Episode count per ladder rate (Fig. 3a row for one link).
std::vector<std::size_t> failures_per_capacity(
    const SnrTrace& trace, const optical::ModulationTable& table);

/// Fleet-wide aggregation (streams one link at a time; memory O(links), not
/// O(links * samples)).
struct FleetCapacityReport {
  std::vector<double> range_db;       // per link
  std::vector<double> hdr_width_db;   // per link
  std::vector<double> feasible_gbps;  // per link
  util::Gbps total_feasible{0.0};
  /// Sum of positive per-link gains over the current static capacity.
  util::Gbps total_gain{0.0};
};

/// `pool` drives the per-link fan-out; nullptr selects
/// exec::ThreadPool::global(). The report is bit-identical at every pool
/// size (docs/CONCURRENCY.md).
FleetCapacityReport analyze_fleet(const SnrFleetGenerator& fleet,
                                  const optical::ModulationTable& table,
                                  util::Gbps current_static_capacity,
                                  double hdr_coverage = 0.95,
                                  exec::ThreadPool* pool = nullptr);

}  // namespace rwc::telemetry
