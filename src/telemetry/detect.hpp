// Online SNR anomaly detection.
//
// The controller needs a trigger: re-running TE every 15 minutes on a quiet
// network is wasted churn, but a dip must be caught within a sample or two.
// A two-sided CUSUM detector over the SNR stream fires on sustained shifts
// away from a slowly-adapting baseline while ignoring sample jitter; the
// detected episodes can be compared against the generator's ground-truth
// event plan in tests.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "telemetry/snr_model.hpp"
#include "util/units.hpp"

namespace rwc::telemetry {

struct DetectorParams {
  /// Allowed slack around the baseline before deviations accumulate, in dB
  /// (CUSUM "k", typically ~0.5 sigma of jitter... set for SNR scales).
  double slack_db = 0.5;
  /// Accumulated deviation (dB-samples) that fires the detector ("h").
  double threshold_db = 3.0;
  /// EWMA factor for the baseline while the signal is healthy.
  double baseline_alpha = 0.02;
};

/// One detected anomaly episode.
struct DetectedEvent {
  std::size_t start_index = 0;  // first sample of the episode
  std::size_t end_index = 0;    // first healthy sample after it (exclusive)
  util::Db deepest{0.0};        // lowest SNR seen during the episode
  bool downward = true;         // dip (true) or recovery/improvement (false)
};

/// Streaming two-sided CUSUM detector.
class SnrAnomalyDetector {
 public:
  explicit SnrAnomalyDetector(DetectorParams params = {});

  /// Feeds one sample; returns the completed episode when one ENDS at this
  /// sample (detectors report on recovery so the episode has an extent).
  std::optional<DetectedEvent> add(util::Db snr);

  /// True while inside an un-ended anomaly episode.
  bool in_anomaly() const { return in_anomaly_; }
  /// Current adaptive baseline.
  util::Db baseline() const { return util::Db{baseline_}; }
  std::size_t samples_seen() const { return index_; }

  /// Flushes an in-progress episode (e.g. at end of trace).
  std::optional<DetectedEvent> finish();

 private:
  DetectorParams params_;
  std::size_t index_ = 0;
  double baseline_ = 0.0;
  bool primed_ = false;
  double cusum_low_ = 0.0;   // accumulates downward deviations
  double cusum_high_ = 0.0;  // accumulates upward deviations
  bool in_anomaly_ = false;
  DetectedEvent current_;
};

/// Convenience: all episodes in a trace (including a trailing open one).
std::vector<DetectedEvent> detect_events(const SnrTrace& trace,
                                         DetectorParams params = {});

}  // namespace rwc::telemetry
