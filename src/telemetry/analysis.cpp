#include "telemetry/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace rwc::telemetry {

using util::Db;
using util::Gbps;

double sanitize_sample_db(double raw_db) {
  if (std::isfinite(raw_db) && raw_db >= 0.0) [[likely]]
    return raw_db;
  static auto& clamped =
      obs::Registry::global().counter("telemetry.samples_clamped");
  clamped.add();
  return 0.0;
}

LinkSnrStats analyze_link(const SnrTrace& trace,
                          const optical::ModulationTable& table,
                          double hdr_coverage) {
  RWC_EXPECTS(trace.size() > 0);
  LinkSnrStats stats;
  std::vector<double> samples;
  samples.reserve(trace.size());
  for (const float raw : trace.samples_db)
    samples.push_back(sanitize_sample_db(static_cast<double>(raw)));
  const auto summary = util::summarize(samples);
  stats.min_snr = Db{summary.min};
  stats.max_snr = Db{summary.max};
  stats.range_db = summary.max - summary.min;
  stats.hdr = util::highest_density_region(samples, hdr_coverage);
  stats.hdr_width_db = stats.hdr.width();
  stats.hdr_lower = Db{stats.hdr.lo};
  stats.feasible_capacity = table.feasible_capacity(stats.hdr_lower);
  return stats;
}

std::vector<FailureEpisode> failure_episodes(const SnrTrace& trace,
                                             Db threshold) {
  std::vector<FailureEpisode> episodes;
  bool in_episode = false;
  FailureEpisode current;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Db snr{sanitize_sample_db(trace.at(i).value)};
    if (snr < threshold) {
      if (!in_episode) {
        in_episode = true;
        current = FailureEpisode{i, 0, snr};
      }
      ++current.length;
      current.lowest_snr = std::min(current.lowest_snr, snr);
    } else if (in_episode) {
      episodes.push_back(current);
      in_episode = false;
    }
  }
  if (in_episode) episodes.push_back(current);
  return episodes;
}

std::vector<std::size_t> failures_per_capacity(
    const SnrTrace& trace, const optical::ModulationTable& table) {
  std::vector<std::size_t> counts;
  counts.reserve(table.formats().size());
  for (const auto& format : table.formats())
    counts.push_back(failure_episodes(trace, format.min_snr).size());
  return counts;
}

FleetCapacityReport analyze_fleet(const SnrFleetGenerator& fleet,
                                  const optical::ModulationTable& table,
                                  Gbps current_static_capacity,
                                  double hdr_coverage,
                                  exec::ThreadPool* pool) {
  FleetCapacityReport report;
  const auto links = static_cast<std::size_t>(fleet.link_count());
  // Trace generation + per-link analysis is pure per link index, so it
  // fans out over the pool; the reduction below runs serially in link
  // order, keeping the report bit-identical at every pool size.
  exec::ThreadPool& map_pool =
      pool != nullptr ? *pool : exec::ThreadPool::global();
  const std::vector<LinkSnrStats> per_link = exec::parallel_map(
      map_pool, links, [&](std::size_t link) {
        const SnrTrace trace = fleet.generate_trace(static_cast<int>(link));
        return analyze_link(trace, table, hdr_coverage);
      });
  report.range_db.reserve(links);
  report.hdr_width_db.reserve(links);
  report.feasible_gbps.reserve(links);
  for (const LinkSnrStats& stats : per_link) {
    report.range_db.push_back(stats.range_db);
    report.hdr_width_db.push_back(stats.hdr_width_db);
    report.feasible_gbps.push_back(stats.feasible_capacity.value);
    report.total_feasible += stats.feasible_capacity;
    if (stats.feasible_capacity > current_static_capacity)
      report.total_gain += stats.feasible_capacity - current_static_capacity;
  }
  return report;
}

}  // namespace rwc::telemetry
