#include "telemetry/detect.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rwc::telemetry {

using util::Db;

SnrAnomalyDetector::SnrAnomalyDetector(DetectorParams params)
    : params_(params) {
  RWC_EXPECTS(params_.slack_db >= 0.0);
  RWC_EXPECTS(params_.threshold_db > 0.0);
  RWC_EXPECTS(params_.baseline_alpha > 0.0 && params_.baseline_alpha <= 1.0);
}

std::optional<DetectedEvent> SnrAnomalyDetector::add(Db snr) {
  const std::size_t here = index_++;
  if (!primed_) {
    baseline_ = snr.value;
    primed_ = true;
    return std::nullopt;
  }

  const double deviation = snr.value - baseline_;
  cusum_low_ = std::max(0.0, cusum_low_ - deviation - params_.slack_db);
  cusum_high_ = std::max(0.0, cusum_high_ + deviation - params_.slack_db);

  const bool fired_low = cusum_low_ > params_.threshold_db;
  const bool fired_high = cusum_high_ > params_.threshold_db;

  if (!in_anomaly_) {
    if (fired_low || fired_high) {
      in_anomaly_ = true;
      current_ = DetectedEvent{};
      current_.start_index = here;
      current_.deepest = snr;
      current_.downward = fired_low;
    } else {
      // Healthy: let the baseline drift with the signal.
      baseline_ += params_.baseline_alpha * deviation;
    }
    return std::nullopt;
  }

  // Inside an episode: track the extremum; end when the signal returns to
  // the (frozen) baseline band.
  current_.deepest = std::min(current_.deepest, snr);
  const bool recovered = std::abs(deviation) <= params_.slack_db;
  if (!recovered) return std::nullopt;

  in_anomaly_ = false;
  cusum_low_ = 0.0;
  cusum_high_ = 0.0;
  current_.end_index = here;
  return current_;
}

std::optional<DetectedEvent> SnrAnomalyDetector::finish() {
  if (!in_anomaly_) return std::nullopt;
  in_anomaly_ = false;
  current_.end_index = index_;
  return current_;
}

std::vector<DetectedEvent> detect_events(const SnrTrace& trace,
                                         DetectorParams params) {
  SnrAnomalyDetector detector(params);
  std::vector<DetectedEvent> events;
  for (std::size_t i = 0; i < trace.size(); ++i)
    if (auto event = detector.add(trace.at(i))) events.push_back(*event);
  if (auto event = detector.finish()) events.push_back(*event);
  return events;
}

}  // namespace rwc::telemetry
