// O(1)-memory per-link SNR analysis for production telemetry pipelines.
//
// analyze_link (analysis.hpp) buffers a link's full history to compute the
// exact minimal-width HDR; at 2.5 years x 15 minutes x thousands of links
// that is gigabytes. The streaming analyzer instead keeps Welford moments
// plus two P-square quantile sketches and reports the CENTRAL
// ((1-coverage)/2, (1+coverage)/2) interval — an upper bound on the
// minimal-width HDR that coincides with it for symmetric sample
// distributions (the common case for stable links).
#pragma once

#include "optical/modulation.hpp"
#include "telemetry/analysis.hpp"
#include "util/p2_quantile.hpp"

namespace rwc::telemetry {

class StreamingLinkAnalyzer {
 public:
  explicit StreamingLinkAnalyzer(double coverage = 0.95);

  /// Feeds one SNR sample.
  void add(util::Db snr);
  /// Feeds a whole trace.
  void add(const SnrTrace& trace);

  std::size_t count() const { return summary_.count(); }

  /// Current statistics. `hdr` holds the central interval approximation.
  LinkSnrStats stats(const optical::ModulationTable& table) const;

 private:
  double coverage_;
  util::StreamingSummary summary_;
  util::P2Quantile lower_;
  util::P2Quantile upper_;
};

}  // namespace rwc::telemetry
