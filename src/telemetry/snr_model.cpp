#include "telemetry/snr_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numbers>

#include "fault/registry.hpp"
#include "util/check.hpp"

namespace rwc::telemetry {

using util::Db;
using util::Rng;
using util::Seconds;

namespace {

constexpr double kYear = 365.0 * util::kDay;

/// Draws a Poisson-process event schedule over [0, duration).
template <typename MakeEvent>
void draw_events(Rng& rng, double rate_per_year, Seconds duration,
                 std::vector<SnrEvent>& out, MakeEvent make_event) {
  if (rate_per_year <= 0.0) return;
  const double mean_gap = kYear / rate_per_year;
  Seconds t = rng.exponential(mean_gap);
  while (t < duration) {
    out.push_back(make_event(t));
    t += rng.exponential(mean_gap);
  }
}

Seconds hours(double h) { return h * util::kHour; }

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kShallowDip:
      return "shallow-dip";
    case EventKind::kDeepDip:
      return "deep-dip";
    case EventKind::kFiberCut:
      return "fiber-cut";
  }
  return "unknown";
}

SnrFleetGenerator::SnrFleetGenerator(FleetParams params, std::uint64_t seed)
    : params_(std::move(params)), seed_(seed) {
  RWC_EXPECTS(params_.fiber_count >= 1);
  RWC_EXPECTS(params_.wavelengths_per_fiber >= 1);
  RWC_EXPECTS(params_.duration > 0.0);
  RWC_EXPECTS(params_.interval > 0.0);
}

FiberPlan SnrFleetGenerator::fiber_plan(int fiber) const {
  RWC_EXPECTS(fiber >= 0 && fiber < params_.fiber_count);
  const SnrModelParams& m = params_.model;
  Rng rng = Rng(seed_).fork(0x0F1BE000u + static_cast<std::uint64_t>(fiber));

  FiberPlan plan;
  plan.baseline = Db{std::clamp(
      rng.normal(m.fiber_baseline_mean.value, m.fiber_baseline_sigma.value),
      m.fiber_baseline_min.value, m.fiber_baseline_max.value)};

  draw_events(rng, m.fiber_shallow_rate_per_year, params_.duration,
              plan.events, [&](Seconds t) {
                return SnrEvent{
                    t,
                    hours(std::max(0.1, rng.lognormal_from_moments(
                                            m.shallow_duration_mean_hours,
                                            m.shallow_duration_sd_hours))),
                    Db{rng.lognormal(std::log(m.shallow_depth_median_db),
                                     m.shallow_depth_log_sigma)},
                    EventKind::kShallowDip};
              });
  draw_events(rng, m.fiber_deep_rate_per_year, params_.duration, plan.events,
              [&](Seconds t) {
                return SnrEvent{
                    t,
                    hours(std::max(0.25, rng.lognormal_from_moments(
                                             m.deep_duration_mean_hours,
                                             m.deep_duration_sd_hours))),
                    Db{rng.lognormal(std::log(m.deep_depth_median_db),
                                     m.deep_depth_log_sigma)},
                    EventKind::kDeepDip};
              });
  draw_events(rng, m.fiber_cut_rate_per_year, params_.duration, plan.events,
              [&](Seconds t) {
                return SnrEvent{
                    t,
                    hours(std::max(0.5, rng.lognormal_from_moments(
                                            m.cut_duration_mean_hours,
                                            m.cut_duration_sd_hours))),
                    Db{1000.0},  // loss of light: below any threshold
                    EventKind::kFiberCut};
              });
  std::sort(plan.events.begin(), plan.events.end(),
            [](const SnrEvent& a, const SnrEvent& b) {
              return a.start < b.start;
            });
  return plan;
}

SnrTraceCursor::SnrTraceCursor(const SnrFleetGenerator& fleet, int fiber,
                               int lambda) {
  const SnrFleetGenerator::FleetParams& params = fleet.params();
  RWC_EXPECTS(lambda >= 0 && lambda < params.wavelengths_per_fiber);
  const SnrModelParams& m = params.model;
  const FiberPlan plan = fleet.fiber_plan(fiber);
  Rng rng = Rng(fleet.seed())
                .fork(0x7A3B0000u + static_cast<std::uint64_t>(fiber) * 4096u +
                      static_cast<std::uint64_t>(lambda));

  // Per-wavelength statics.
  const double baseline =
      plan.baseline.value + rng.normal(0.0, m.lambda_offset_sigma.value);
  double jitter_sigma = rng.lognormal(std::log(m.jitter_sigma_median_db),
                                      m.jitter_sigma_log_sigma);
  if (rng.bernoulli(m.noisy_lambda_fraction))
    jitter_sigma *= m.noisy_jitter_multiplier;
  const double drift_amplitude = rng.exponential(m.drift_amplitude_mean_db);
  const Seconds drift_period =
      rng.uniform(m.drift_period_min, m.drift_period_max);
  const double drift_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);

  // Merge fiber events (per-wavelength depth realization) with
  // wavelength-local events (transceiver-side dips).
  struct ActiveEvent {
    std::size_t start_index;
    std::size_t end_index;  // exclusive
    double depth_db;
  };
  const auto n_samples = static_cast<std::size_t>(
      std::floor(params.duration / params.interval));
  std::vector<ActiveEvent> events;
  auto materialize = [&](const SnrEvent& e, double depth) {
    const auto start = static_cast<std::size_t>(
        std::max(0.0, std::floor(e.start / params.interval)));
    auto end = static_cast<std::size_t>(
        std::ceil((e.start + e.duration) / params.interval));
    end = std::min(end, n_samples);
    if (start < end) events.push_back(ActiveEvent{start, end, depth});
  };
  for (const SnrEvent& e : plan.events) {
    const double lambda_scale =
        rng.lognormal(0.0, m.event_depth_lambda_log_sigma);
    materialize(e, e.depth.value * lambda_scale);
  }
  std::vector<SnrEvent> local;
  draw_events(rng, m.lambda_shallow_rate_per_year, params.duration, local,
              [&](Seconds t) {
                return SnrEvent{
                    t,
                    hours(std::max(0.1, rng.lognormal_from_moments(
                                            m.shallow_duration_mean_hours,
                                            m.shallow_duration_sd_hours))),
                    Db{rng.lognormal(std::log(m.shallow_depth_median_db),
                                     m.shallow_depth_log_sigma)},
                    EventKind::kShallowDip};
              });
  draw_events(rng, m.lambda_deep_rate_per_year, params.duration, local,
              [&](Seconds t) {
                return SnrEvent{
                    t,
                    hours(std::max(0.25, rng.lognormal_from_moments(
                                             m.deep_duration_mean_hours,
                                             m.deep_duration_sd_hours))),
                    Db{rng.lognormal(std::log(m.deep_depth_median_db),
                                     m.deep_depth_log_sigma)},
                    EventKind::kDeepDip};
              });
  for (const SnrEvent& e : local) materialize(e, e.depth.value);

  // Sparse difference array of active event depth. Per-index accumulation
  // happens in the same (event, sign) order the dense array used, and
  // sampling applies at most one summed delta per index — exactly the
  // dense loop's `active_depth += depth_delta[i]` — so the produced
  // samples are bit-identical to the former batch implementation.
  std::map<std::size_t, double> delta_map;
  for (const ActiveEvent& e : events) {
    delta_map[e.start_index] += e.depth_db;
    delta_map[e.end_index] -= e.depth_db;
  }
  deltas_.reserve(delta_map.size());
  for (const auto& [index, delta] : delta_map)
    if (index < n_samples) deltas_.push_back(DepthDelta{index, delta});

  interval_ = params.interval;
  noise_floor_db_ = m.noise_floor.value;
  baseline_db_ = baseline;
  jitter_sigma_ = jitter_sigma;
  drift_amplitude_ = drift_amplitude;
  drift_period_ = drift_period;
  drift_phase_ = drift_phase;
  total_samples_ = n_samples;
  rng_ = rng;
}

std::size_t SnrTraceCursor::next(std::span<float> out) {
  const double two_pi = 2.0 * std::numbers::pi;
  std::size_t produced = 0;
  while (produced < out.size() && position_ < total_samples_) {
    while (delta_cursor_ < deltas_.size() &&
           deltas_[delta_cursor_].index == position_)
      active_depth_ += deltas_[delta_cursor_++].delta_db;
    const double t = static_cast<double>(position_) * interval_;
    const double drift =
        drift_amplitude_ *
        std::sin(two_pi * t / drift_period_ + drift_phase_);
    double snr = baseline_db_ + drift + rng_.normal(0.0, jitter_sigma_) -
                 active_depth_;
    // Receiver reporting floor: a dead link reads as noise-floor SNR.
    if (snr < noise_floor_db_)
      snr = noise_floor_db_ + std::abs(rng_.normal(0.0, 0.05));
    out[produced++] = static_cast<float>(snr);
    ++position_;
  }
  return produced;
}

SnrTraceCursor::State SnrTraceCursor::state() const {
  return State{position_, rng_.state()};
}

void SnrTraceCursor::restore(const State& state) {
  position_ = std::min(static_cast<std::size_t>(state.position),
                       total_samples_);
  rng_ = Rng::from_state(state.rng);
  reseek();
}

void SnrTraceCursor::reseek() {
  // Summing the sorted deltas below the position replays the exact
  // addition sequence of sequential generation, so the re-derived depth is
  // bit-identical to the captured cursor's.
  delta_cursor_ = 0;
  active_depth_ = 0.0;
  while (delta_cursor_ < deltas_.size() &&
         deltas_[delta_cursor_].index < position_)
    active_depth_ += deltas_[delta_cursor_++].delta_db;
}

SnrTrace SnrFleetGenerator::generate_trace(int fiber, int lambda) const {
  SnrTraceCursor cursor(*this, fiber, lambda);
  SnrTrace trace;
  trace.interval = params_.interval;
  trace.samples_db.resize(cursor.total_samples());
  cursor.next(trace.samples_db);
  return trace;
}

SnrTrace SnrFleetGenerator::generate_trace(int link_index) const {
  RWC_EXPECTS(link_index >= 0 && link_index < link_count());
  SnrTrace trace = generate_trace(link_index / params_.wavelengths_per_fiber,
                                  link_index % params_.wavelengths_per_fiber);
  // Fault injection (docs/FAULTS.md, site telemetry.trace): a sample that
  // arrives corrupted (nan/garbage), duplicated, or not at all (drop).
  // Keyed by link index, so the corruption is deterministic per link and
  // identical at every pool size in analyze_fleet.
  if (const fault::Action action = fault::at(
          "telemetry.trace", static_cast<std::uint64_t>(link_index));
      action && !trace.samples_db.empty()) {
    const std::size_t index =
        std::min(static_cast<std::size_t>(std::max(action.magnitude, 0.0)),
                 trace.samples_db.size() - 1);
    const auto at = trace.samples_db.begin() +
                    static_cast<std::ptrdiff_t>(index);
    switch (action.kind) {
      case fault::Kind::kNan:
        *at = std::numeric_limits<float>::quiet_NaN();
        break;
      case fault::Kind::kGarbage:
        *at = -1e9f;
        break;
      case fault::Kind::kDuplicate:
        trace.samples_db.insert(at, *at);
        break;
      case fault::Kind::kDrop:
        trace.samples_db.erase(at);
        break;
      default:
        break;  // other kinds do not apply to traces
    }
  }
  return trace;
}

}  // namespace rwc::telemetry
