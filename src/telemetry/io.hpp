// CSV import/export of SNR traces, so real telemetry can replace the
// synthetic generator without touching any analysis or control code.
//
// Format: header "interval_seconds,<value>" then one "snr_db" sample per
// line in time order.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/snr_model.hpp"

namespace rwc::telemetry {

/// Serializes a trace to CSV.
void write_trace_csv(const SnrTrace& trace, std::ostream& os);
std::string trace_to_csv(const SnrTrace& trace);

/// Parses a trace from CSV; throws util::CheckError on malformed input.
SnrTrace read_trace_csv(std::istream& is);
SnrTrace trace_from_csv(const std::string& csv);

/// File helpers (throw util::CheckError when the file cannot be opened).
void save_trace_csv(const SnrTrace& trace, const std::string& path);
SnrTrace load_trace_csv(const std::string& path);

}  // namespace rwc::telemetry
