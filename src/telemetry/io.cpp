#include "telemetry/io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace rwc::telemetry {

void write_trace_csv(const SnrTrace& trace, std::ostream& os) {
  // max_digits10 keeps the float samples bit-exact across a round-trip.
  os << std::setprecision(std::numeric_limits<float>::max_digits10);
  os << "interval_seconds,"
     << std::setprecision(std::numeric_limits<double>::max_digits10)
     << trace.interval
     << std::setprecision(std::numeric_limits<float>::max_digits10) << '\n';
  os << "snr_db\n";
  for (float s : trace.samples_db) os << s << '\n';
}

std::string trace_to_csv(const SnrTrace& trace) {
  std::ostringstream os;
  write_trace_csv(trace, os);
  return os.str();
}

SnrTrace read_trace_csv(std::istream& is) {
  SnrTrace trace;
  std::string line;
  RWC_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                "trace csv: missing header");
  const auto comma = line.find(',');
  RWC_CHECK_MSG(comma != std::string::npos &&
                    line.substr(0, comma) == "interval_seconds",
                "trace csv: bad interval header");
  trace.interval = std::stod(line.substr(comma + 1));
  RWC_CHECK_MSG(trace.interval > 0.0, "trace csv: non-positive interval");
  RWC_CHECK_MSG(static_cast<bool>(std::getline(is, line)) &&
                    line == "snr_db",
                "trace csv: missing column header");
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::size_t consumed = 0;
    const float value = std::stof(line, &consumed);
    RWC_CHECK_MSG(consumed == line.size(), "trace csv: malformed sample");
    trace.samples_db.push_back(value);
  }
  return trace;
}

SnrTrace trace_from_csv(const std::string& csv) {
  std::istringstream is(csv);
  return read_trace_csv(is);
}

void save_trace_csv(const SnrTrace& trace, const std::string& path) {
  std::ofstream os(path);
  RWC_CHECK_MSG(os.good(), "cannot open trace file for writing: " + path);
  write_trace_csv(trace, os);
  RWC_CHECK_MSG(os.good(), "error writing trace file: " + path);
}

SnrTrace load_trace_csv(const std::string& path) {
  std::ifstream is(path);
  RWC_CHECK_MSG(is.good(), "cannot open trace file: " + path);
  return read_trace_csv(is);
}

}  // namespace rwc::telemetry
