// Library identification for rwc_telemetry.
namespace rwc::telemetry {

/// Version string of the telemetry subsystem (matches the top-level project).
const char* version() { return "1.0.0"; }

}  // namespace rwc::telemetry
