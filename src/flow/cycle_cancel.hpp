// Negative-cycle detection and cycle-cancelling:
//  - an independent optimality check for the SSP solver (a min-cost flow is
//    optimal iff the residual network has no negative-cost cycle), and
//  - a standalone min-cost-max-flow solver used to cross-validate results.
#pragma once

#include <optional>
#include <vector>

#include "flow/network.hpp"

namespace rwc::flow {

/// Finds a negative-cost cycle of positive residual capacity; nullopt when
/// none exists. Returned as the arc sequence around the cycle.
std::optional<std::vector<int>> find_negative_cycle(
    const ResidualNetwork& net, double tolerance = 1e-7);

/// Cancels negative cycles until none remain (the flow value is preserved).
/// Returns the total cost reduction achieved. Intended for small/medium
/// networks (verification and cross-checks).
double cancel_negative_cycles(ResidualNetwork& net, double tolerance = 1e-7);

/// Max flow (Dinic) followed by cycle cancelling: an SSP-independent
/// min-cost max-flow used in tests.
double min_cost_max_flow_by_cancelling(ResidualNetwork& net, int source,
                                       int sink);

}  // namespace rwc::flow
