#include "flow/mincost.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace rwc::flow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Bellman-Ford distances from `source` over positive-residual arcs; used to
/// initialize potentials when negative costs are present.
std::vector<double> bellman_ford(const ResidualNetwork& net, int source) {
  std::vector<double> dist(net.node_count(), kInf);
  dist[static_cast<std::size_t>(source)] = 0.0;
  const auto n = net.node_count();
  for (std::size_t round = 0; round + 1 < n || round == 0; ++round) {
    bool changed = false;
    for (std::size_t arc = 0; arc < net.arc_count(); ++arc) {
      if (net.residual(static_cast<int>(arc)) <= kFlowEps) continue;
      const int from = net.source(static_cast<int>(arc));
      const int to = net.target(static_cast<int>(arc));
      const double from_dist = dist[static_cast<std::size_t>(from)];
      if (from_dist == kInf) continue;
      const double candidate = from_dist + net.cost(static_cast<int>(arc));
      if (candidate < dist[static_cast<std::size_t>(to)] - 1e-12) {
        dist[static_cast<std::size_t>(to)] = candidate;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

struct DijkstraResult {
  std::vector<double> distance;
  std::vector<int> parent_arc;
  bool reached_sink = false;
};

/// Dijkstra over reduced costs cost(arc) + pot[src] - pot[dst] (>= 0).
DijkstraResult dijkstra_reduced(const ResidualNetwork& net, int source,
                                int sink,
                                const std::vector<double>& potential) {
  DijkstraResult result;
  result.distance.assign(net.node_count(), kInf);
  result.parent_arc.assign(net.node_count(), -1);
  result.distance[static_cast<std::size_t>(source)] = 0.0;

  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, node] = heap.top();
    heap.pop();
    if (dist > result.distance[static_cast<std::size_t>(node)] + 1e-12)
      continue;
    for (int arc : net.arcs_from(node)) {
      if (net.residual(arc) <= kFlowEps) continue;
      const int next = net.target(arc);
      if (potential[static_cast<std::size_t>(next)] == kInf) continue;
      double reduced = net.cost(arc) +
                       potential[static_cast<std::size_t>(node)] -
                       potential[static_cast<std::size_t>(next)];
      // Clamp tiny negative values from floating-point drift.
      if (reduced < 0.0) {
        RWC_CHECK_MSG(reduced > -1e-6, "negative reduced cost in SSP");
        reduced = 0.0;
      }
      const double candidate = dist + reduced;
      if (candidate <
          result.distance[static_cast<std::size_t>(next)] - 1e-12) {
        result.distance[static_cast<std::size_t>(next)] = candidate;
        result.parent_arc[static_cast<std::size_t>(next)] = arc;
        heap.emplace(candidate, next);
      }
    }
  }
  result.reached_sink =
      result.distance[static_cast<std::size_t>(sink)] != kInf;
  return result;
}

}  // namespace

MinCostFlowResult min_cost_max_flow(ResidualNetwork& net, int source,
                                    int sink, double flow_limit) {
  RWC_EXPECTS(source != sink);
  RWC_EXPECTS(flow_limit >= 0.0);

  // Potentials: zero when all costs are non-negative, else Bellman-Ford.
  bool has_negative = false;
  for (std::size_t arc = 0; arc < net.arc_count(); arc += 2)
    if (net.cost(static_cast<int>(arc)) < 0.0 &&
        net.residual(static_cast<int>(arc)) > kFlowEps)
      has_negative = true;
  std::vector<double> potential(net.node_count(), 0.0);
  if (has_negative) {
    potential = bellman_ford(net, source);
    // Unreachable nodes keep an infinite potential; dijkstra skips them.
  }

  MinCostFlowResult result;
  std::uint64_t augmenting_paths = 0;
  while (result.flow + kFlowEps < flow_limit) {
    const auto sp = dijkstra_reduced(net, source, sink, potential);
    if (!sp.reached_sink) break;

    // Update potentials with the new distances.
    for (std::size_t node = 0; node < net.node_count(); ++node) {
      if (sp.distance[node] == kInf || potential[node] == kInf) continue;
      potential[node] += sp.distance[node];
    }

    // Bottleneck along the shortest path.
    double bottleneck = flow_limit - result.flow;
    for (int node = sink; node != source;
         node = net.source(sp.parent_arc[static_cast<std::size_t>(node)])) {
      const int arc = sp.parent_arc[static_cast<std::size_t>(node)];
      bottleneck = std::min(bottleneck, net.residual(arc));
    }
    if (bottleneck <= kFlowEps) break;

    double path_cost = 0.0;
    for (int node = sink; node != source;
         node = net.source(sp.parent_arc[static_cast<std::size_t>(node)])) {
      const int arc = sp.parent_arc[static_cast<std::size_t>(node)];
      path_cost += net.cost(arc);
      net.push(arc, bottleneck);
    }
    result.flow += bottleneck;
    result.cost += bottleneck * path_cost;
    ++augmenting_paths;
  }

  // One registry flush per solve keeps the augmenting loop atomic-free
  // (docs/OBSERVABILITY.md: flow.mincost.*).
  static auto& runs = obs::Registry::global().counter("flow.mincost.runs");
  static auto& paths = obs::Registry::global().counter("flow.mincost.paths");
  runs.add();
  paths.add(augmenting_paths);
  return result;
}

}  // namespace rwc::flow
