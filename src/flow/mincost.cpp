#include "flow/mincost.hpp"

#include <algorithm>
#include <bit>
#include <queue>
#include <unordered_map>
#include <vector>

#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace rwc::flow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Bellman-Ford distances from `source` over positive-residual arcs; used to
/// initialize potentials when negative costs are present.
std::vector<double> bellman_ford(const ResidualNetwork& net, int source) {
  std::vector<double> dist(net.node_count(), kInf);
  dist[static_cast<std::size_t>(source)] = 0.0;
  const auto n = net.node_count();
  for (std::size_t round = 0; round + 1 < n || round == 0; ++round) {
    bool changed = false;
    for (std::size_t arc = 0; arc < net.arc_count(); ++arc) {
      if (net.residual(static_cast<int>(arc)) <= kFlowEps) continue;
      const int from = net.source(static_cast<int>(arc));
      const int to = net.target(static_cast<int>(arc));
      const double from_dist = dist[static_cast<std::size_t>(from)];
      if (from_dist == kInf) continue;
      const double candidate = from_dist + net.cost(static_cast<int>(arc));
      if (candidate < dist[static_cast<std::size_t>(to)] - 1e-12) {
        dist[static_cast<std::size_t>(to)] = candidate;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

struct DijkstraResult {
  std::vector<double> distance;
  std::vector<int> parent_arc;
  bool reached_sink = false;
};

/// Dijkstra over reduced costs cost(arc) + pot[src] - pot[dst] (>= 0).
DijkstraResult dijkstra_reduced(const ResidualNetwork& net, int source,
                                int sink,
                                const std::vector<double>& potential) {
  DijkstraResult result;
  result.distance.assign(net.node_count(), kInf);
  result.parent_arc.assign(net.node_count(), -1);
  result.distance[static_cast<std::size_t>(source)] = 0.0;

  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, node] = heap.top();
    heap.pop();
    if (dist > result.distance[static_cast<std::size_t>(node)] + 1e-12)
      continue;
    for (int arc : net.arcs_from(node)) {
      if (net.residual(arc) <= kFlowEps) continue;
      const int next = net.target(arc);
      if (potential[static_cast<std::size_t>(next)] == kInf) continue;
      double reduced = net.cost(arc) +
                       potential[static_cast<std::size_t>(node)] -
                       potential[static_cast<std::size_t>(next)];
      // Clamp tiny negative values from floating-point drift.
      if (reduced < 0.0) {
        RWC_CHECK_MSG(reduced > -1e-6, "negative reduced cost in SSP");
        reduced = 0.0;
      }
      const double candidate = dist + reduced;
      if (candidate <
          result.distance[static_cast<std::size_t>(next)] - 1e-12) {
        result.distance[static_cast<std::size_t>(next)] = candidate;
        result.parent_arc[static_cast<std::size_t>(next)] = arc;
        heap.emplace(candidate, next);
      }
    }
  }
  result.reached_sink =
      result.distance[static_cast<std::size_t>(sink)] != kInf;
  return result;
}

/// Word-at-a-time mixer (murmur3-finalizer style). The fingerprint runs
/// once per warm-capable solve over every arc, so it must cost one
/// multiply chain per 64-bit word, not one per byte.
inline std::uint64_t mix64(std::uint64_t hash, std::uint64_t value) {
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  hash = (hash ^ value) * 0x2545f4914f6cdd1dULL;
  return hash ^ (hash >> 29);
}

}  // namespace

std::uint64_t network_fingerprint(const ResidualNetwork& net, int source,
                                  int sink) {
  return network_fingerprints(net, source, sink).exact;
}

NetworkFingerprints network_fingerprints(const ResidualNetwork& net,
                                         int source, int sink) {
  std::uint64_t exact = 0xcbf29ce484222325ULL;
  std::uint64_t structural = 0x9e3779b97f4a7c15ULL;
  const auto mix_both = [&](std::uint64_t value) {
    exact = mix64(exact, value);
    structural = mix64(structural, value);
  };
  mix_both(net.node_count());
  mix_both(net.arc_count());
  mix_both(static_cast<std::uint64_t>(source));
  mix_both(static_cast<std::uint64_t>(sink));
  for (std::size_t arc = 0; arc < net.arc_count(); ++arc) {
    const int a = static_cast<int>(arc);
    mix_both(static_cast<std::uint64_t>(net.target(a)));
    // Residual magnitudes are the one input the structural fingerprint
    // skips: equal structural fingerprints + differing residuals is the
    // dirty-link perturbation the repair path handles.
    exact = mix64(exact, std::bit_cast<std::uint64_t>(net.residual(a)));
    mix_both(std::bit_cast<std::uint64_t>(net.cost(a)));
  }
  // Reserve 0 as the "no recording" sentinel on both keys.
  return NetworkFingerprints{exact == 0 ? 1 : exact,
                             structural == 0 ? 1 : structural};
}

MinCostFlowResult min_cost_max_flow(ResidualNetwork& net, int source,
                                    int sink, double flow_limit,
                                    MinCostWarmStart* warm,
                                    std::uint64_t max_augmentations) {
  RWC_EXPECTS(source != sink);
  RWC_EXPECTS(flow_limit >= 0.0);

  // One registry flush per solve keeps the augmenting loop atomic-free
  // (docs/OBSERVABILITY.md: flow.mincost.*, solver.warm_*).
  static auto& runs = obs::Registry::global().counter("flow.mincost.runs");
  static auto& paths = obs::Registry::global().counter("flow.mincost.paths");
  static auto& budget_stops =
      obs::Registry::global().counter("flow.mincost.budget_stops");
  static auto& warm_hits =
      obs::Registry::global().counter("solver.warm_starts");
  static auto& warm_misses =
      obs::Registry::global().counter("solver.warm_misses");
  static auto& partial_repairs =
      obs::Registry::global().counter("solver.partial_repairs");
  static auto& partial_rollbacks =
      obs::Registry::global().counter("solver.partial_rollbacks");

  // The fingerprint doubles as the warm-start key and the deterministic
  // fault key: it only depends on the solver inputs, never on scheduling,
  // so injected budgets hit the same solves at every pool size.
  const bool fault_armed = fault::Registry::global().armed();
  NetworkFingerprints prints;
  if (warm != nullptr || fault_armed)
    prints = network_fingerprints(net, source, sink);
  const std::uint64_t fingerprint = prints.exact;
  std::uint64_t budget = max_augmentations;
  if (fault_armed) {
    const fault::Action action = fault::at("flow.mincost", fingerprint);
    if (action.kind == fault::Kind::kBudget)
      budget = std::min(
          budget, static_cast<std::uint64_t>(std::max(action.magnitude, 0.0)));
  }

  MinCostFlowResult result;
  std::uint64_t augmenting_paths = 0;
  std::vector<double> potential;
  const bool recording = warm != nullptr;
  bool budget_exhausted = false;
  bool replay_complete = false;  // replay alone satisfied this solve
  bool resumed = false;          // replay done, continue live from potentials

  // Resets *warm to a fresh about-to-record state for this network.
  const auto start_fresh_recording = [&]() {
    warm->fingerprint = fingerprint;
    warm->struct_fingerprint = prints.structural;
    warm->initial_residuals = net.residuals();
    warm->augmentations.clear();
    warm->exhausted = false;
    warm->final_potential.clear();
  };

  if (warm != nullptr) {
    if (!warm->empty() && warm->fingerprint == fingerprint) {
      warm_hits.add();
      // Replay: push the recorded augmenting paths. The sequence is
      // limit-independent (see header), so only the truncation of the
      // final push depends on flow_limit.
      bool limit_bound = false;
      for (const MinCostWarmStart::Augmentation& aug : warm->augmentations) {
        if (!(result.flow + kFlowEps < flow_limit)) {
          limit_bound = true;
          break;
        }
        if (augmenting_paths >= budget) {
          // Checked after the flow limit, in the cold loop's order, so the
          // budget binds at the same point and with the same status as it
          // would on the cold solve — replays stay bit-identical.
          budget_exhausted = true;
          break;
        }
        const double amount =
            std::min(aug.bottleneck, flow_limit - result.flow);
        if (amount <= kFlowEps) {
          // Mirrors the cold solve's `bottleneck <= eps` break when the
          // remaining limit (not the residuals) is the binding term.
          limit_bound = true;
          break;
        }
        for (int arc : aug.arcs) net.push(arc, amount);
        result.flow += amount;
        result.cost += amount * aug.path_cost;
        ++augmenting_paths;
        if (amount < aug.bottleneck) {  // limit truncated this push
          limit_bound = true;
          break;
        }
      }
      // The cold loop re-checks the flow limit after its last push; mirror
      // that so the reported status matches the cold solve's.
      if (!budget_exhausted && !(result.flow + kFlowEps < flow_limit))
        limit_bound = true;
      if (budget_exhausted || limit_bound || warm->exhausted) {
        replay_complete = true;
        if (warm->exhausted && !limit_bound && !budget_exhausted)
          result.status = SolveStatus::kOptimal;
        else if (!budget_exhausted)
          result.status = SolveStatus::kFlowLimitReached;
      } else {
        // The recording ended on its own flow limit; resume live SSP from
        // the recorded potentials to route the remainder (and extend the
        // recording for next time).
        potential = warm->final_potential;
        resumed = true;
      }
    } else if (!warm->empty() && warm->repairable() &&
               warm->struct_fingerprint == prints.structural &&
               warm->initial_residuals.size() == net.arc_count()) {
      // ---- Partial repair: same structure/costs/terminals, perturbed
      // residuals. Dijkstra over Johnson-reduced costs reads residual
      // SUPPORT (residual > kFlowEps per arc), costs, structure and
      // potentials — never residual magnitudes — so as long as the support
      // pattern every recorded Dijkstra could have observed is unchanged,
      // the cold solve on this network would choose the exact same
      // augmenting paths. Replay them while tracking, in a shadow map, the
      // recorded-trajectory residuals of every arc whose recorded and live
      // trajectories may differ; verify support equality over that map
      // before consuming each path. Any mismatch rolls the network back to
      // the pre-repair snapshot and escalates to a cold solve.
      const std::vector<double>& live0 = net.residuals();
      const std::vector<double>& rec0 = warm->initial_residuals;
      std::size_t dirty = 0;
      for (std::size_t i = 0; i < live0.size(); ++i)
        if (std::bit_cast<std::uint64_t>(live0[i]) !=
            std::bit_cast<std::uint64_t>(rec0[i]))
          ++dirty;
      if (dirty == 0 ||
          static_cast<double>(dirty) >
              kMaxRepairDirtyFraction * static_cast<double>(net.arc_count())) {
        // Too much of the network moved (or a fingerprint anomaly): the
        // verification overhead would approach a cold solve — escalate.
        warm_misses.add();
        start_fresh_recording();
      } else {
        std::vector<double> snapshot = live0;  // rollback + new recording
        std::unordered_map<int, double> shadow;
        shadow.reserve(dirty * 4);
        for (std::size_t i = 0; i < live0.size(); ++i)
          if (std::bit_cast<std::uint64_t>(live0[i]) !=
              std::bit_cast<std::uint64_t>(rec0[i]))
            shadow.emplace(static_cast<int>(i), rec0[i]);
        const auto support_equal = [&]() {
          for (const auto& [arc, rec_res] : shadow)
            if ((rec_res > kFlowEps) != (net.residual(arc) > kFlowEps))
              return false;
          return true;
        };

        bool diverged = false;
        bool limit_bound = false;
        std::size_t replayed = 0;
        std::vector<double> live_bottlenecks;
        live_bottlenecks.reserve(warm->augmentations.size());
        for (const MinCostWarmStart::Augmentation& aug :
             warm->augmentations) {
          // Same check order as the cold loop (flow limit, then budget) so
          // both bind at the same point with the same status.
          if (!(result.flow + kFlowEps < flow_limit)) {
            limit_bound = true;
            break;
          }
          if (augmenting_paths >= budget) {
            budget_exhausted = true;
            break;
          }
          if (!support_equal()) {
            diverged = true;
            break;
          }
          // Live residual bottleneck along the recorded path (the recorded
          // one may differ — residual magnitudes moved).
          double residual_bottleneck = kInf;
          for (int arc : aug.arcs)
            residual_bottleneck =
                std::min(residual_bottleneck, net.residual(arc));
          const double bottleneck =
              std::min(flow_limit - result.flow, residual_bottleneck);
          // Support equality guarantees residual_bottleneck > kFlowEps
          // (every recorded path arc has positive support), so a tiny
          // bottleneck means the remaining limit binds — the cold break.
          if (bottleneck <= kFlowEps) {
            limit_bound = true;
            break;
          }
          const bool divergent_amount =
              std::bit_cast<std::uint64_t>(residual_bottleneck) !=
              std::bit_cast<std::uint64_t>(aug.bottleneck);
          for (int arc : aug.arcs) {
            if (divergent_amount || shadow.contains(arc) ||
                shadow.contains(arc ^ 1)) {
              // This arc pair's recorded and live trajectories (now)
              // differ: track the recorded side. A missing entry means the
              // trajectories were equal until this push, so the live
              // pre-push residual doubles as the recorded one.
              double& fwd = shadow.try_emplace(arc, net.residual(arc))
                                .first->second;
              double& rev = shadow.try_emplace(arc ^ 1, net.residual(arc ^ 1))
                                .first->second;
              fwd -= aug.bottleneck;
              if (fwd < 0.0) fwd = 0.0;  // mirror ResidualNetwork::push
              rev += aug.bottleneck;
            }
            net.push(arc, bottleneck);
          }
          result.flow += bottleneck;
          result.cost += bottleneck * aug.path_cost;
          ++augmenting_paths;
          ++replayed;
          live_bottlenecks.push_back(residual_bottleneck);
          if (bottleneck < residual_bottleneck) {  // limit truncated
            limit_bound = true;
            break;
          }
        }
        if (!diverged && !budget_exhausted &&
            !(result.flow + kFlowEps < flow_limit))
          limit_bound = true;
        const bool consumed_all = replayed == warm->augmentations.size();
        bool exhausted_verified = false;
        if (!diverged && consumed_all && warm->exhausted && !limit_bound &&
            !budget_exhausted) {
          // The recorded solve ended because the sink became unreachable —
          // a support-determined outcome. One final check proves the same
          // (failing) Dijkstra outcome here, i.e. true optimality.
          if (support_equal())
            exhausted_verified = true;
          else
            diverged = true;
        }

        if (diverged) {
          partial_rollbacks.add();
          warm_misses.add();
          net.restore_residuals(std::move(snapshot));
          result = MinCostFlowResult{};
          augmenting_paths = 0;
          budget_exhausted = false;
          start_fresh_recording();
        } else {
          partial_repairs.add();
          if (consumed_all && !limit_bound && !budget_exhausted) {
            // Every recorded path was verified and replayed: rewrite the
            // recording against this network (same paths and costs, live
            // bottlenecks, this network's initial residuals). The recorded
            // final_potential carries over — potentials after the last
            // successful Dijkstra are identical by the support argument.
            warm->fingerprint = fingerprint;
            warm->initial_residuals = std::move(snapshot);
            for (std::size_t t = 0; t < live_bottlenecks.size(); ++t)
              warm->augmentations[t].bottleneck = live_bottlenecks[t];
            warm->exhausted = exhausted_verified;
            if (!exhausted_verified) {
              // More flow requested than the recording covers: resume live
              // SSP from the recorded potentials, extending the rewritten
              // recording exactly as an exact-fingerprint resume would.
              potential = warm->final_potential;
              resumed = true;
            } else {
              replay_complete = true;
              result.status = SolveStatus::kOptimal;
            }
          } else {
            // The flow limit or budget bound the replay — possibly by
            // truncating the final recorded augmentation, in which case
            // consumed_all is true but the live pushes no longer reflect
            // the limit-free trajectory. The result is already what the
            // cold solve would return; leave the old network's recording
            // untouched (its fingerprint no longer matches, so callers
            // will not store it).
            replay_complete = true;
            if (!budget_exhausted)
              result.status = SolveStatus::kFlowLimitReached;
          }
        }
      }
    } else {
      warm_misses.add();
      start_fresh_recording();
    }
  }

  if (!replay_complete) {
    if (!resumed) {
      // Potentials: zero when all costs are non-negative, else Bellman-Ford.
      bool has_negative = false;
      for (std::size_t arc = 0; arc < net.arc_count(); arc += 2)
        if (net.cost(static_cast<int>(arc)) < 0.0 &&
            net.residual(static_cast<int>(arc)) > kFlowEps)
          has_negative = true;
      potential.assign(net.node_count(), 0.0);
      if (has_negative) {
        potential = bellman_ford(net, source);
        // Unreachable nodes keep an infinite potential; dijkstra skips them.
      }
    }

    bool exhausted = false;
    while (result.flow + kFlowEps < flow_limit) {
      if (augmenting_paths >= budget) {
        budget_exhausted = true;
        break;
      }
      const auto sp = dijkstra_reduced(net, source, sink, potential);
      if (!sp.reached_sink) {
        exhausted = true;
        break;
      }

      // Update potentials with the new distances.
      for (std::size_t node = 0; node < net.node_count(); ++node) {
        if (sp.distance[node] == kInf || potential[node] == kInf) continue;
        potential[node] += sp.distance[node];
      }

      // Bottleneck along the shortest path. The residual-only minimum is
      // tracked separately: it is what a warm-start recording must store
      // (the flow limit of a future replay may differ).
      double residual_bottleneck = kInf;
      for (int node = sink; node != source;
           node = net.source(sp.parent_arc[static_cast<std::size_t>(node)])) {
        const int arc = sp.parent_arc[static_cast<std::size_t>(node)];
        residual_bottleneck = std::min(residual_bottleneck, net.residual(arc));
      }
      const double bottleneck =
          std::min(flow_limit - result.flow, residual_bottleneck);
      if (bottleneck <= kFlowEps) {
        exhausted = residual_bottleneck <= kFlowEps;
        break;
      }

      MinCostWarmStart::Augmentation aug;
      double path_cost = 0.0;
      for (int node = sink; node != source;
           node = net.source(sp.parent_arc[static_cast<std::size_t>(node)])) {
        const int arc = sp.parent_arc[static_cast<std::size_t>(node)];
        path_cost += net.cost(arc);
        net.push(arc, bottleneck);
        if (recording) aug.arcs.push_back(arc);
      }
      result.flow += bottleneck;
      result.cost += bottleneck * path_cost;
      ++augmenting_paths;
      if (recording) {
        aug.bottleneck = residual_bottleneck;
        aug.path_cost = path_cost;
        warm->augmentations.push_back(std::move(aug));
      }
    }
    result.status = exhausted ? SolveStatus::kOptimal
                              : SolveStatus::kFlowLimitReached;
    if (recording) {
      // A budget-truncated recording is stored non-exhausted: a later
      // replay with a larger budget resumes live SSP from the potentials.
      warm->exhausted = exhausted;
      warm->final_potential = std::move(potential);
    }
  }

  if (budget_exhausted) {
    result.status = SolveStatus::kBudgetExhausted;
    budget_stops.add();
  }
  result.augmenting_paths = augmenting_paths;
  runs.add();
  paths.add(augmenting_paths);
  return result;
}

WarmStartCache::WarmStartCache(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::shared_ptr<const MinCostWarmStart> WarmStartCache::find(
    std::uint64_t fingerprint) const {
  // Forced miss under fault injection: the entry is treated as invalidated
  // and the solver runs cold (then re-records). Safe mid-round because
  // replay only ever changes timing, never results.
  if (fault::at("cache.warm.find", fingerprint)) return nullptr;
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(fingerprint);
  return it == entries_.end() ? nullptr : it->second;
}

std::shared_ptr<const MinCostWarmStart> WarmStartCache::find_structural(
    std::uint64_t struct_fingerprint) const {
  std::uint64_t exact = 0;
  {
    std::lock_guard lock(mutex_);
    const auto it = structural_.find(struct_fingerprint);
    if (it == structural_.end()) return nullptr;
    exact = it->second;
  }
  // Same forced-miss fault keying as the exact lookup, so an injected
  // invalidation cannot be resurrected through the structural index.
  if (fault::at("cache.warm.find", exact)) return nullptr;
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(exact);
  return it == entries_.end() ? nullptr : it->second;
}

void WarmStartCache::insert_locked(
    std::shared_ptr<const MinCostWarmStart> recording) {
  const std::uint64_t key = recording->fingerprint;
  const std::uint64_t struct_key = recording->repairable()
                                       ? recording->struct_fingerprint
                                       : 0;
  const auto [it, inserted] = entries_.insert_or_assign(key,
                                                        std::move(recording));
  (void)it;
  if (struct_key != 0) structural_[struct_key] = key;
  if (inserted) insertion_order_.push_back(key);
  while (entries_.size() > max_entries_ && !insertion_order_.empty()) {
    const std::uint64_t victim = insertion_order_.front();
    insertion_order_.pop_front();
    const auto entry = entries_.find(victim);
    if (entry == entries_.end()) continue;
    const std::uint64_t victim_struct = entry->second->struct_fingerprint;
    entries_.erase(entry);
    // The structural index must never point at an evicted recording.
    const auto sit = structural_.find(victim_struct);
    if (sit != structural_.end() && sit->second == victim)
      structural_.erase(sit);
  }
}

void WarmStartCache::store(
    std::shared_ptr<const MinCostWarmStart> recording) {
  RWC_EXPECTS(recording != nullptr && !recording->empty());
  std::lock_guard lock(mutex_);
  insert_locked(std::move(recording));
  // hits/misses are counted at the solver (solver.warm_*); the cache only
  // tracks occupancy.
}

std::size_t WarmStartCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::vector<std::shared_ptr<const MinCostWarmStart>>
WarmStartCache::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<std::shared_ptr<const MinCostWarmStart>> out;
  out.reserve(insertion_order_.size());
  for (const std::uint64_t key : insertion_order_) {
    const auto it = entries_.find(key);
    if (it != entries_.end()) out.push_back(it->second);
  }
  return out;
}

void WarmStartCache::restore(
    std::vector<std::shared_ptr<const MinCostWarmStart>> recordings) {
  std::lock_guard lock(mutex_);
  entries_.clear();
  insertion_order_.clear();
  structural_.clear();
  for (auto& recording : recordings) {
    if (recording == nullptr || recording->empty()) continue;
    insert_locked(std::move(recording));
  }
}

}  // namespace rwc::flow
