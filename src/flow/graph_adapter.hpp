// Bridges rwc::graph::Graph topologies to ResidualNetwork solver instances,
// preserving the EdgeId <-> arc mapping so solver results can be read back
// onto graph edges.
#pragma once

#include <vector>

#include "flow/network.hpp"
#include "graph/graph.hpp"

namespace rwc::flow {

/// A solver network plus the edge->arc index mapping. Graph node ids map
/// one-to-one onto network node indices; extra nodes (super source/sink) may
/// be appended after the graph's nodes.
struct NetworkView {
  ResidualNetwork net;
  std::vector<int> arc_of_edge;  // forward arc per graph EdgeId

  explicit NetworkView(std::size_t node_count) : net(node_count) {}

  double edge_flow(graph::EdgeId id) const {
    return net.flow(arc_of_edge[static_cast<std::size_t>(id.value)]);
  }
};

/// Builds a network with one arc per graph edge (capacity and cost taken
/// from the edge attributes) and `extra_nodes` appended nodes for super
/// source/sink constructions.
NetworkView make_network(const graph::Graph& graph,
                         std::size_t extra_nodes = 0);

/// Per-edge flows after a solver run, indexed by EdgeId.
std::vector<double> edge_flows(const graph::Graph& graph,
                               const NetworkView& view);

}  // namespace rwc::flow
