#include "flow/network.hpp"

#include "util/check.hpp"

namespace rwc::flow {

ResidualNetwork::ResidualNetwork(std::size_t node_count)
    : adjacency_(node_count) {}

int ResidualNetwork::add_arc(int src, int dst, double capacity, double cost) {
  RWC_EXPECTS(src >= 0 && static_cast<std::size_t>(src) < node_count());
  RWC_EXPECTS(dst >= 0 && static_cast<std::size_t>(dst) < node_count());
  RWC_EXPECTS(capacity >= 0.0);
  const int forward = static_cast<int>(targets_.size());
  targets_.push_back(dst);
  residuals_.push_back(capacity);
  initial_.push_back(capacity);
  costs_.push_back(cost);
  targets_.push_back(src);
  residuals_.push_back(0.0);
  initial_.push_back(0.0);
  costs_.push_back(-cost);
  adjacency_[static_cast<std::size_t>(src)].push_back(forward);
  adjacency_[static_cast<std::size_t>(dst)].push_back(forward + 1);
  return forward;
}

void ResidualNetwork::push(int arc, double amount) {
  auto& fwd = residuals_[static_cast<std::size_t>(arc)];
  auto& rev = residuals_[static_cast<std::size_t>(arc ^ 1)];
  RWC_EXPECTS(amount <= fwd + kFlowEps);
  fwd -= amount;
  if (fwd < 0.0) fwd = 0.0;
  rev += amount;
}

void ResidualNetwork::reset() { residuals_ = initial_; }

void ResidualNetwork::restore_residuals(std::vector<double> residuals) {
  RWC_EXPECTS(residuals.size() == residuals_.size());
  residuals_ = std::move(residuals);
}

double ResidualNetwork::total_cost() const {
  double total = 0.0;
  for (std::size_t arc = 0; arc < targets_.size(); arc += 2) {
    const double f = initial_[arc] - residuals_[arc];
    if (f > kFlowEps) total += f * costs_[arc];
  }
  return total;
}

double ResidualNetwork::net_outflow(int node) const {
  double net = 0.0;
  for (int arc : arcs_from(node)) {
    if (is_forward(arc))
      net += flow(arc);
    else
      net -= flow(arc ^ 1);
  }
  return net;
}

}  // namespace rwc::flow
