#include "flow/decompose.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace rwc::flow {

Decomposition decompose_flow(const ResidualNetwork& net, int source,
                             int sink) {
  RWC_EXPECTS(source != sink);
  // Remaining flow per forward arc.
  std::vector<double> remaining(net.arc_count() / 2, 0.0);
  for (std::size_t arc = 0; arc < net.arc_count(); arc += 2) {
    const double f = net.flow(static_cast<int>(arc));
    if (f > kFlowEps) remaining[arc / 2] = f;
  }
  auto first_outgoing = [&](int node) -> int {
    for (int arc : net.arcs_from(node)) {
      if (!ResidualNetwork::is_forward(arc)) continue;
      if (remaining[static_cast<std::size_t>(arc) / 2] > kFlowEps) return arc;
    }
    return -1;
  };

  Decomposition result;
  while (true) {
    std::vector<int> path;                       // arc sequence
    std::vector<int> position(net.node_count(), -1);  // node -> index in path
    int node = source;
    position[static_cast<std::size_t>(node)] = 0;
    bool found_sink = false;
    while (true) {
      if (node == sink) {
        found_sink = true;
        break;
      }
      const int arc = first_outgoing(node);
      if (arc < 0) break;  // dead end (only possible at the very start)
      const int next = net.target(arc);
      const int seen_at = position[static_cast<std::size_t>(next)];
      if (seen_at >= 0) {
        // Cycle detected: cancel it and continue from `next`.
        double bottleneck = std::numeric_limits<double>::infinity();
        for (std::size_t i = static_cast<std::size_t>(seen_at);
             i < path.size(); ++i)
          bottleneck = std::min(
              bottleneck, remaining[static_cast<std::size_t>(path[i]) / 2]);
        bottleneck = std::min(
            bottleneck, remaining[static_cast<std::size_t>(arc) / 2]);
        for (std::size_t i = static_cast<std::size_t>(seen_at);
             i < path.size(); ++i)
          remaining[static_cast<std::size_t>(path[i]) / 2] -= bottleneck;
        remaining[static_cast<std::size_t>(arc) / 2] -= bottleneck;
        result.cancelled_cycle_flow += bottleneck;
        // Unwind path back to `next`.
        for (std::size_t i = static_cast<std::size_t>(seen_at);
             i < path.size(); ++i) {
          const int dropped_node = net.target(path[i]);
          position[static_cast<std::size_t>(dropped_node)] = -1;
        }
        path.resize(static_cast<std::size_t>(seen_at));
        node = next;
        position[static_cast<std::size_t>(node)] =
            static_cast<int>(path.size());
        continue;
      }
      path.push_back(arc);
      node = next;
      position[static_cast<std::size_t>(node)] = static_cast<int>(path.size());
    }
    if (!found_sink) {
      RWC_CHECK_MSG(path.empty(), "flow decomposition hit a dead end");
      break;
    }
    double bottleneck = std::numeric_limits<double>::infinity();
    for (int arc : path)
      bottleneck =
          std::min(bottleneck, remaining[static_cast<std::size_t>(arc) / 2]);
    if (path.empty() || bottleneck <= kFlowEps) break;
    for (int arc : path)
      remaining[static_cast<std::size_t>(arc) / 2] -= bottleneck;
    result.paths.push_back(PathFlow{std::move(path), bottleneck});
  }
  return result;
}

}  // namespace rwc::flow
