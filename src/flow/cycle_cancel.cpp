#include "flow/cycle_cancel.hpp"

#include <algorithm>
#include <limits>

#include "flow/maxflow.hpp"
#include "util/check.hpp"

namespace rwc::flow {

std::optional<std::vector<int>> find_negative_cycle(
    const ResidualNetwork& net, double tolerance) {
  const auto n = net.node_count();
  if (n == 0) return std::nullopt;
  // Bellman-Ford from a virtual super-source (all distances start at 0).
  std::vector<double> dist(n, 0.0);
  std::vector<int> parent_arc(n, -1);
  int updated_node = -1;
  for (std::size_t round = 0; round < n; ++round) {
    updated_node = -1;
    for (std::size_t arc = 0; arc < net.arc_count(); ++arc) {
      if (net.residual(static_cast<int>(arc)) <= kFlowEps) continue;
      const int from = net.source(static_cast<int>(arc));
      const int to = net.target(static_cast<int>(arc));
      const double candidate =
          dist[static_cast<std::size_t>(from)] + net.cost(static_cast<int>(arc));
      if (candidate < dist[static_cast<std::size_t>(to)] - tolerance) {
        dist[static_cast<std::size_t>(to)] = candidate;
        parent_arc[static_cast<std::size_t>(to)] = static_cast<int>(arc);
        updated_node = to;
      }
    }
    if (updated_node == -1) return std::nullopt;
  }

  // A node updated in round n lies on or reaches a negative cycle; walk back
  // n steps to land inside the cycle, then collect it.
  int node = updated_node;
  for (std::size_t i = 0; i < n; ++i)
    node = net.source(parent_arc[static_cast<std::size_t>(node)]);
  std::vector<int> cycle;
  int current = node;
  do {
    const int arc = parent_arc[static_cast<std::size_t>(current)];
    RWC_CHECK(arc >= 0);
    cycle.push_back(arc);
    current = net.source(arc);
  } while (current != node);
  std::reverse(cycle.begin(), cycle.end());
  return cycle;
}

double cancel_negative_cycles(ResidualNetwork& net, double tolerance) {
  double saved = 0.0;
  while (auto cycle = find_negative_cycle(net, tolerance)) {
    double bottleneck = std::numeric_limits<double>::infinity();
    double cycle_cost = 0.0;
    for (int arc : *cycle) {
      bottleneck = std::min(bottleneck, net.residual(arc));
      cycle_cost += net.cost(arc);
    }
    RWC_CHECK(bottleneck > kFlowEps);
    RWC_CHECK(cycle_cost < 0.0);
    for (int arc : *cycle) net.push(arc, bottleneck);
    saved += -cycle_cost * bottleneck;
  }
  return saved;
}

double min_cost_max_flow_by_cancelling(ResidualNetwork& net, int source,
                                       int sink) {
  const double flow = max_flow_dinic(net, source, sink);
  cancel_negative_cycles(net);
  return flow;
}

}  // namespace rwc::flow
