// Min-cost flow: successive shortest paths with Johnson potentials.
// This is the solver Theorem 1's reduction targets — min-cost max-flow on
// the augmented topology G'.
//
// Warm starts: a solve can record its augmenting-path sequence into a
// MinCostWarmStart; a later solve on a bit-identical initial network (same
// arcs, capacities, costs, terminals — verified by fingerprint) replays the
// recording instead of re-running Bellman-Ford and one Dijkstra per path.
// Replay is EXACT, not approximate: the augmenting-path sequence of the SSP
// algorithm depends only on the initial network, never on `flow_limit`
// (the limit only truncates the final augmentation and stops the loop), so
// the replayed result is bit-identical to the cold solve — including for a
// different flow_limit, where replay truncates or resumes live SSP from the
// recorded potentials. On any fingerprint mismatch the solver falls back to
// a cold solve and re-records. See docs/CONCURRENCY.md ("Warm starts").
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "flow/network.hpp"

namespace rwc::flow {

/// Why a min-cost solve stopped.
enum class SolveStatus {
  /// Sink unreachable (or path saturated): the flow is a true min-cost
  /// max flow below the requested limit.
  kOptimal,
  /// The requested flow_limit was routed in full.
  kFlowLimitReached,
  /// The augmenting-path budget ran out first: the result is a valid
  /// partial flow (every routed unit is min-cost), but more flow may have
  /// been routable. Callers degrade gracefully by using the partial flow.
  kBudgetExhausted,
};

/// Default augmenting-path budget: far beyond any real workload (the WAN
/// rounds of bench/ run thousands of paths), but bounded, so adversarial
/// inputs with pathological bottleneck patterns cannot spin the SSP loop
/// unboundedly.
inline constexpr std::uint64_t kDefaultMaxAugmentations = 1ull << 22;

struct MinCostFlowResult {
  double flow = 0.0;
  double cost = 0.0;
  SolveStatus status = SolveStatus::kOptimal;
  /// Augmenting paths pushed (replayed + live) by this solve.
  std::uint64_t augmenting_paths = 0;
};

/// Fingerprint of a solve's inputs: node/arc structure, initial residuals,
/// costs and terminals, hashed over exact bit patterns. Two equal
/// fingerprints mean the solver inputs are bit-identical for all practical
/// purposes (64-bit collisions are vanishingly unlikely; a collision could
/// only replay a recording whose first infeasible push trips the
/// ResidualNetwork push contract rather than silently corrupting results).
std::uint64_t network_fingerprint(const ResidualNetwork& net, int source,
                                  int sink);

/// Recording of one solve's augmenting-path sequence, replayable on a
/// network with the same fingerprint. Value-semantic and cheap to copy
/// relative to the solve it replaces.
struct MinCostWarmStart {
  std::uint64_t fingerprint = 0;

  struct Augmentation {
    /// Arcs of the path in the solver's traversal order (sink -> source).
    std::vector<int> arcs;
    /// Min residual along the path at this point, ignoring the flow limit.
    double bottleneck = 0.0;
    /// Sum of arc costs (accumulated in traversal order).
    double path_cost = 0.0;
  };
  std::vector<Augmentation> augmentations;
  /// True when the recorded solve ended because the sink became
  /// unreachable (or the path saturated): the sequence is complete for any
  /// flow limit. False when it ended on its own limit; a replay asking for
  /// more flow resumes live SSP from `final_potential`.
  bool exhausted = false;
  /// Johnson potentials after the recorded solve's last Dijkstra.
  std::vector<double> final_potential;

  bool empty() const { return fingerprint == 0; }
};

/// Computes a minimum-cost maximum flow from source to sink (mutating
/// residuals). When `flow_limit` is finite, stops once that much flow is
/// routed (min-cost flow of a given value). Costs may be negative as long as
/// the initial network has no negative-cost cycle of positive capacity.
///
/// When `warm` is non-null: if it holds a recording matching this network,
/// the solve replays it (bit-identical result, counted under
/// solver.warm_starts); otherwise the solve runs cold and overwrites *warm
/// with a fresh recording for next time.
///
/// `max_augmentations` bounds the augmenting-path count (replayed paths
/// included); when it binds, the result carries
/// SolveStatus::kBudgetExhausted and the flow routed so far. The budget
/// binds identically on cold, replayed and resumed solves of the same
/// network, so warm results stay bit-identical to cold ones. The
/// `flow.mincost` fault site (docs/FAULTS.md) can clamp the budget further,
/// keyed by the network fingerprint.
MinCostFlowResult min_cost_max_flow(
    ResidualNetwork& net, int source, int sink,
    double flow_limit = std::numeric_limits<double>::infinity(),
    MinCostWarmStart* warm = nullptr,
    std::uint64_t max_augmentations = kDefaultMaxAugmentations);

/// Thread-safe fingerprint-keyed store of warm-start recordings with FIFO
/// eviction. Shared by repeated solves (e.g. one per TE demand per round);
/// safe under concurrent solvers because replay output is bit-identical to
/// a cold solve — a lost or duplicated store changes timing, never results.
class WarmStartCache {
 public:
  explicit WarmStartCache(std::size_t max_entries = 512);

  /// The recording for `fingerprint`, or nullptr.
  std::shared_ptr<const MinCostWarmStart> find(
      std::uint64_t fingerprint) const;

  /// Stores (or refreshes) the recording under its own fingerprint.
  void store(std::shared_ptr<const MinCostWarmStart> recording);

  std::size_t size() const;

  /// Every recording in FIFO-insertion order, for checkpointing
  /// (rwc::replay). The shared_ptrs alias the live entries — cheap, and
  /// safe because recordings are immutable once stored.
  std::vector<std::shared_ptr<const MinCostWarmStart>> snapshot() const;

  /// Replaces the cache contents with `recordings` (oldest first),
  /// re-establishing the same FIFO eviction order. Empty recordings are
  /// skipped; an empty vector restores the explicit cold-cache state.
  void restore(
      std::vector<std::shared_ptr<const MinCostWarmStart>> recordings);

 private:
  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const MinCostWarmStart>>
      entries_;
  std::deque<std::uint64_t> insertion_order_;  // FIFO eviction queue
};

}  // namespace rwc::flow
