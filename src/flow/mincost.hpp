// Min-cost flow: successive shortest paths with Johnson potentials.
// This is the solver Theorem 1's reduction targets — min-cost max-flow on
// the augmented topology G'.
//
// Warm starts: a solve can record its augmenting-path sequence into a
// MinCostWarmStart; a later solve on a bit-identical initial network (same
// arcs, capacities, costs, terminals — verified by fingerprint) replays the
// recording instead of re-running Bellman-Ford and one Dijkstra per path.
// Replay is EXACT, not approximate: the augmenting-path sequence of the SSP
// algorithm depends only on the initial network, never on `flow_limit`
// (the limit only truncates the final augmentation and stops the loop), so
// the replayed result is bit-identical to the cold solve — including for a
// different flow_limit, where replay truncates or resumes live SSP from the
// recorded potentials. On any fingerprint mismatch the solver falls back to
// a cold solve and re-records. See docs/CONCURRENCY.md ("Warm starts").
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "flow/network.hpp"

namespace rwc::flow {

/// Why a min-cost solve stopped.
enum class SolveStatus {
  /// Sink unreachable (or path saturated): the flow is a true min-cost
  /// max flow below the requested limit.
  kOptimal,
  /// The requested flow_limit was routed in full.
  kFlowLimitReached,
  /// The augmenting-path budget ran out first: the result is a valid
  /// partial flow (every routed unit is min-cost), but more flow may have
  /// been routable. Callers degrade gracefully by using the partial flow.
  kBudgetExhausted,
};

/// Default augmenting-path budget: far beyond any real workload (the WAN
/// rounds of bench/ run thousands of paths), but bounded, so adversarial
/// inputs with pathological bottleneck patterns cannot spin the SSP loop
/// unboundedly.
inline constexpr std::uint64_t kDefaultMaxAugmentations = 1ull << 22;

struct MinCostFlowResult {
  double flow = 0.0;
  double cost = 0.0;
  SolveStatus status = SolveStatus::kOptimal;
  /// Augmenting paths pushed (replayed + live) by this solve.
  std::uint64_t augmenting_paths = 0;
};

/// Fingerprint of a solve's inputs: node/arc structure, initial residuals,
/// costs and terminals, hashed over exact bit patterns. Two equal
/// fingerprints mean the solver inputs are bit-identical for all practical
/// purposes (64-bit collisions are vanishingly unlikely; a collision could
/// only replay a recording whose first infeasible push trips the
/// ResidualNetwork push contract rather than silently corrupting results).
std::uint64_t network_fingerprint(const ResidualNetwork& net, int source,
                                  int sink);

/// Exact + structural fingerprints, computed in one pass over the arcs.
/// The structural fingerprint hashes everything the exact one does EXCEPT
/// residual magnitudes: node/arc structure, per-arc targets, costs and
/// terminals. Two networks with equal structural fingerprints differ (if at
/// all) only in how much residual capacity each arc carries — exactly the
/// perturbation a dirty-link round produces — which is what makes the
/// partial-repair path below sound (docs/SOLVERS.md).
struct NetworkFingerprints {
  std::uint64_t exact = 0;
  std::uint64_t structural = 0;
};
NetworkFingerprints network_fingerprints(const ResidualNetwork& net,
                                         int source, int sink);

/// Repair is only attempted while the dirty fraction (arcs whose initial
/// residual differs from the recording's) stays at or below this bound;
/// beyond it the verification overhead approaches a cold solve's cost and
/// the solver escalates to a full solve instead (docs/SOLVERS.md).
inline constexpr double kMaxRepairDirtyFraction = 0.25;

/// Recording of one solve's augmenting-path sequence, replayable on a
/// network with the same fingerprint. Value-semantic and cheap to copy
/// relative to the solve it replaces.
struct MinCostWarmStart {
  std::uint64_t fingerprint = 0;

  struct Augmentation {
    /// Arcs of the path in the solver's traversal order (sink -> source).
    std::vector<int> arcs;
    /// Min residual along the path at this point, ignoring the flow limit.
    double bottleneck = 0.0;
    /// Sum of arc costs (accumulated in traversal order).
    double path_cost = 0.0;
  };
  std::vector<Augmentation> augmentations;
  /// True when the recorded solve ended because the sink became
  /// unreachable (or the path saturated): the sequence is complete for any
  /// flow limit. False when it ended on its own limit; a replay asking for
  /// more flow resumes live SSP from `final_potential`.
  bool exhausted = false;
  /// Johnson potentials after the recorded solve's last Dijkstra.
  std::vector<double> final_potential;

  /// Structural fingerprint (structure + costs + terminals, residual
  /// magnitudes excluded) and the initial residuals the recording was made
  /// against. Together they enable the partial-repair path: a solve whose
  /// exact fingerprint misses but whose structural fingerprint matches can
  /// diff its residuals against `initial_residuals` and replay the recorded
  /// paths under support verification (see min_cost_max_flow). Zero /
  /// empty on recordings restored from checkpoints — the fields are
  /// deliberately never serialized (docs/REPLAY.md: warm bases are
  /// observational; restored recordings are repair-ineligible, so the first
  /// perturbed round after a restore solves cold).
  std::uint64_t struct_fingerprint = 0;
  std::vector<double> initial_residuals;

  bool empty() const { return fingerprint == 0; }
  bool repairable() const {
    return struct_fingerprint != 0 && !initial_residuals.empty();
  }
};

/// Computes a minimum-cost maximum flow from source to sink (mutating
/// residuals). When `flow_limit` is finite, stops once that much flow is
/// routed (min-cost flow of a given value). Costs may be negative as long as
/// the initial network has no negative-cost cycle of positive capacity.
///
/// When `warm` is non-null: if it holds a recording matching this network,
/// the solve replays it (bit-identical result, counted under
/// solver.warm_starts); if the recording matches structurally but not
/// exactly and is repairable(), the solve attempts a PARTIAL REPAIR —
/// replay the recorded augmenting paths on the perturbed residuals while
/// verifying, before every path, that the support pattern (residual >
/// kFlowEps per arc) any recorded Dijkstra could have observed is
/// unchanged on the arcs whose residual trajectories may differ. Dijkstra
/// over Johnson-reduced costs reads residual SUPPORT, costs, structure and
/// potentials — never residual magnitudes — so verified support equality
/// proves the cold path sequence on the perturbed network equals the
/// recorded one, and the repaired result (flow, cost, status, final
/// residuals) is bit-identical to a cold solve. On any verification
/// failure the solver rolls the residuals back to the pre-repair snapshot
/// and runs cold (counted under solver.partial_rollbacks; successful
/// repairs under solver.partial_repairs). Otherwise the solve runs cold
/// and overwrites *warm with a fresh recording for next time.
///
/// `max_augmentations` bounds the augmenting-path count (replayed paths
/// included); when it binds, the result carries
/// SolveStatus::kBudgetExhausted and the flow routed so far. The budget
/// binds identically on cold, replayed and resumed solves of the same
/// network, so warm results stay bit-identical to cold ones. The
/// `flow.mincost` fault site (docs/FAULTS.md) can clamp the budget further,
/// keyed by the network fingerprint.
MinCostFlowResult min_cost_max_flow(
    ResidualNetwork& net, int source, int sink,
    double flow_limit = std::numeric_limits<double>::infinity(),
    MinCostWarmStart* warm = nullptr,
    std::uint64_t max_augmentations = kDefaultMaxAugmentations);

/// Thread-safe fingerprint-keyed store of warm-start recordings with FIFO
/// eviction. Shared by repeated solves (e.g. one per TE demand per round);
/// safe under concurrent solvers because replay output is bit-identical to
/// a cold solve — a lost or duplicated store changes timing, never results.
class WarmStartCache {
 public:
  explicit WarmStartCache(std::size_t max_entries = 512);

  /// The recording for `fingerprint`, or nullptr.
  std::shared_ptr<const MinCostWarmStart> find(
      std::uint64_t fingerprint) const;

  /// The latest repairable recording whose structural fingerprint matches,
  /// or nullptr. Feeds the partial-repair path on an exact-fingerprint
  /// miss; recordings without repair data (struct_fingerprint == 0, e.g.
  /// restored from a checkpoint) are never returned.
  std::shared_ptr<const MinCostWarmStart> find_structural(
      std::uint64_t struct_fingerprint) const;

  /// Stores (or refreshes) the recording under its own fingerprint.
  void store(std::shared_ptr<const MinCostWarmStart> recording);

  std::size_t size() const;

  /// Every recording in FIFO-insertion order, for checkpointing
  /// (rwc::replay). The shared_ptrs alias the live entries — cheap, and
  /// safe because recordings are immutable once stored.
  std::vector<std::shared_ptr<const MinCostWarmStart>> snapshot() const;

  /// Replaces the cache contents with `recordings` (oldest first),
  /// re-establishing the same FIFO eviction order. Empty recordings are
  /// skipped; an empty vector restores the explicit cold-cache state.
  void restore(
      std::vector<std::shared_ptr<const MinCostWarmStart>> recordings);

 private:
  void insert_locked(std::shared_ptr<const MinCostWarmStart> recording);

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const MinCostWarmStart>>
      entries_;
  std::deque<std::uint64_t> insertion_order_;  // FIFO eviction queue
  /// struct fingerprint -> exact fingerprint of the latest repairable
  /// recording with that structure; entries leave with their recordings.
  std::unordered_map<std::uint64_t, std::uint64_t> structural_;
};

}  // namespace rwc::flow
