// Min-cost flow: successive shortest paths with Johnson potentials.
// This is the solver Theorem 1's reduction targets — min-cost max-flow on
// the augmented topology G'.
#pragma once

#include <limits>

#include "flow/network.hpp"

namespace rwc::flow {

struct MinCostFlowResult {
  double flow = 0.0;
  double cost = 0.0;
};

/// Computes a minimum-cost maximum flow from source to sink (mutating
/// residuals). When `flow_limit` is finite, stops once that much flow is
/// routed (min-cost flow of a given value). Costs may be negative as long as
/// the initial network has no negative-cost cycle of positive capacity.
MinCostFlowResult min_cost_max_flow(
    ResidualNetwork& net, int source, int sink,
    double flow_limit = std::numeric_limits<double>::infinity());

}  // namespace rwc::flow
