// Decomposes an s-t flow into path flows (plus cancelled cycles). The
// abstraction's translation step uses this to hand the TE controller concrete
// flow-paths for the current demands (Theorem 1, step 3b).
#pragma once

#include <vector>

#include "flow/network.hpp"

namespace rwc::flow {

/// One flow-carrying path: forward arc indices from source to sink.
struct PathFlow {
  std::vector<int> arcs;
  double amount = 0.0;
};

struct Decomposition {
  std::vector<PathFlow> paths;
  /// Flow removed because it circulated on cycles (0 for min-cost solutions
  /// with strictly positive costs).
  double cancelled_cycle_flow = 0.0;
};

/// Decomposes the current flow in `net` (read-only; works on a copy of the
/// per-arc flow values) into source->sink paths. The sum of path amounts
/// equals the net flow out of `source`.
Decomposition decompose_flow(const ResidualNetwork& net, int source,
                             int sink);

}  // namespace rwc::flow
