// Dinic's max-flow and min-cut extraction.
#pragma once

#include <vector>

#include "flow/network.hpp"

namespace rwc::flow {

/// Computes a maximum s-t flow in `net` (mutating residuals) and returns its
/// value. Requires s != t.
double max_flow_dinic(ResidualNetwork& net, int source, int sink);

/// After a max-flow run, the source side of a minimum cut: nodes reachable
/// from `source` in the residual network.
std::vector<bool> min_cut_source_side(const ResidualNetwork& net, int source);

/// Capacity of the cut separating `source_side` (sum of initial capacities of
/// forward arcs crossing out of the set).
double cut_capacity(const ResidualNetwork& net,
                    const std::vector<bool>& source_side);

}  // namespace rwc::flow
