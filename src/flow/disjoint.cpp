#include "flow/disjoint.hpp"

#include <algorithm>

#include "flow/decompose.hpp"
#include "flow/mincost.hpp"
#include "flow/network.hpp"
#include "util/check.hpp"

namespace rwc::flow {
using graph::Edge;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;
using graph::Path;

std::optional<std::pair<Path, Path>> edge_disjoint_pair(const Graph& graph,
                                                        NodeId source,
                                                        NodeId target) {
  RWC_EXPECTS(source != target);
  // Unit capacity per edge, cost = weight: a min-cost flow of value 2 is a
  // minimum-total-weight pair of edge-disjoint paths.
  ResidualNetwork net(graph.node_count());
  for (EdgeId e : graph.edge_ids()) {
    const Edge& edge = graph.edge(e);
    net.add_arc(edge.src.value, edge.dst.value, 1.0, edge.weight);
  }
  const auto result =
      min_cost_max_flow(net, source.value, target.value, 2.0);
  if (result.flow < 2.0 - kFlowEps) return std::nullopt;

  const auto decomposition =
      decompose_flow(net, source.value, target.value);
  RWC_CHECK(decomposition.paths.size() == 2);

  std::pair<Path, Path> pair;
  Path* outputs[2] = {&pair.first, &pair.second};
  for (std::size_t p = 0; p < 2; ++p) {
    for (int arc : decomposition.paths[p].arcs) {
      const EdgeId edge{arc / 2};
      outputs[p]->edges.push_back(edge);
      outputs[p]->weight += graph.edge(edge).weight;
    }
  }
  if (pair.second.weight < pair.first.weight)
    std::swap(pair.first, pair.second);
  return pair;
}

}  // namespace rwc::flow
