// Residual flow network shared by the max-flow and min-cost-flow solvers.
//
// Arcs are stored in forward/backward pairs: arc i and arc (i ^ 1) are each
// other's residual complements. Capacities and costs are doubles (Gbps and
// penalty units); all solvers use a common epsilon for "empty" arcs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rwc::flow {

/// Tolerance below which residual capacity is treated as zero.
inline constexpr double kFlowEps = 1e-9;

class ResidualNetwork {
 public:
  explicit ResidualNetwork(std::size_t node_count);

  /// Adds a directed arc src -> dst. Returns the forward arc index; the
  /// paired reverse arc is (index ^ 1). Requires capacity >= 0.
  int add_arc(int src, int dst, double capacity, double cost = 0.0);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t arc_count() const { return targets_.size(); }

  int target(int arc) const { return targets_[static_cast<std::size_t>(arc)]; }
  int source(int arc) const { return targets_[static_cast<std::size_t>(arc ^ 1)]; }
  double residual(int arc) const {
    return residuals_[static_cast<std::size_t>(arc)];
  }
  double cost(int arc) const { return costs_[static_cast<std::size_t>(arc)]; }
  /// Original (pre-flow) capacity of the arc.
  double initial_capacity(int arc) const {
    return initial_[static_cast<std::size_t>(arc)];
  }
  /// Net flow currently pushed through the arc (negative on reverse arcs).
  double flow(int arc) const {
    return initial_[static_cast<std::size_t>(arc)] -
           residuals_[static_cast<std::size_t>(arc)];
  }

  /// Pushes `amount` along the arc, updating the paired reverse arc.
  /// Requires amount <= residual(arc) + kFlowEps.
  void push(int arc, double amount);

  /// Arc indices leaving `node` (both forward and reverse arcs).
  std::span<const int> arcs_from(int node) const {
    return adjacency_[static_cast<std::size_t>(node)];
  }

  /// True for forward arcs (even index).
  static bool is_forward(int arc) { return (arc & 1) == 0; }

  /// Resets all arcs to their initial capacities (drops all flow).
  void reset();

  /// All residuals in arc-index order. Pair with restore_residuals() for
  /// exact rollback of a partially applied solve (the min-cost repair path
  /// snapshots before replaying: re-deriving residuals by inverse pushes is
  /// not bitwise-safe in floating point, restoring the saved vector is).
  const std::vector<double>& residuals() const { return residuals_; }

  /// Restores residuals previously obtained from residuals(). The vector
  /// must come from this network (same arc count).
  void restore_residuals(std::vector<double> residuals);

  /// Sum over forward arcs of flow * cost.
  double total_cost() const;

  /// Net flow out of `node` minus flow into it (over forward arcs).
  double net_outflow(int node) const;

 private:
  std::vector<int> targets_;
  std::vector<double> residuals_;
  std::vector<double> initial_;
  std::vector<double> costs_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace rwc::flow
