#include "flow/maxflow.hpp"

#include <limits>
#include <queue>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace rwc::flow {

namespace {

/// BFS level graph; returns true when the sink is reachable.
bool build_levels(const ResidualNetwork& net, int source, int sink,
                  std::vector<int>& level) {
  level.assign(net.node_count(), -1);
  std::queue<int> frontier;
  level[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop();
    for (int arc : net.arcs_from(node)) {
      if (net.residual(arc) <= kFlowEps) continue;
      const int next = net.target(arc);
      if (level[static_cast<std::size_t>(next)] != -1) continue;
      level[static_cast<std::size_t>(next)] =
          level[static_cast<std::size_t>(node)] + 1;
      frontier.push(next);
    }
  }
  return level[static_cast<std::size_t>(sink)] != -1;
}

/// DFS blocking-flow augmentation with the "current arc" optimization.
double augment(ResidualNetwork& net, const std::vector<int>& level,
               std::vector<std::size_t>& next_arc, int node, int sink,
               double limit) {
  if (node == sink) return limit;
  auto arcs = net.arcs_from(node);
  for (auto& i = next_arc[static_cast<std::size_t>(node)]; i < arcs.size();
       ++i) {
    const int arc = arcs[i];
    if (net.residual(arc) <= kFlowEps) continue;
    const int next = net.target(arc);
    if (level[static_cast<std::size_t>(next)] !=
        level[static_cast<std::size_t>(node)] + 1)
      continue;
    const double pushed =
        augment(net, level, next_arc, next, sink,
                std::min(limit, net.residual(arc)));
    if (pushed > kFlowEps) {
      net.push(arc, pushed);
      return pushed;
    }
  }
  return 0.0;
}

}  // namespace

double max_flow_dinic(ResidualNetwork& net, int source, int sink) {
  RWC_EXPECTS(source != sink);
  double total = 0.0;
  std::uint64_t phase_count = 0;
  std::uint64_t augmentation_count = 0;
  std::vector<int> level;
  while (build_levels(net, source, sink, level)) {
    ++phase_count;
    std::vector<std::size_t> next_arc(net.node_count(), 0);
    while (true) {
      const double pushed =
          augment(net, level, next_arc, source, sink,
                  std::numeric_limits<double>::infinity());
      if (pushed <= kFlowEps) break;
      total += pushed;
      ++augmentation_count;
    }
  }

  // One registry flush per solve (docs/OBSERVABILITY.md: flow.maxflow.*).
  static auto& runs = obs::Registry::global().counter("flow.maxflow.runs");
  static auto& phases =
      obs::Registry::global().counter("flow.maxflow.phases");
  static auto& augmentations =
      obs::Registry::global().counter("flow.maxflow.augmentations");
  runs.add();
  phases.add(phase_count);
  augmentations.add(augmentation_count);
  return total;
}

std::vector<bool> min_cut_source_side(const ResidualNetwork& net,
                                      int source) {
  std::vector<bool> side(net.node_count(), false);
  std::queue<int> frontier;
  side[static_cast<std::size_t>(source)] = true;
  frontier.push(source);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop();
    for (int arc : net.arcs_from(node)) {
      if (net.residual(arc) <= kFlowEps) continue;
      const int next = net.target(arc);
      if (!side[static_cast<std::size_t>(next)]) {
        side[static_cast<std::size_t>(next)] = true;
        frontier.push(next);
      }
    }
  }
  return side;
}

double cut_capacity(const ResidualNetwork& net,
                    const std::vector<bool>& source_side) {
  RWC_EXPECTS(source_side.size() == net.node_count());
  double total = 0.0;
  for (std::size_t arc = 0; arc < net.arc_count(); arc += 2) {
    const int from = net.source(static_cast<int>(arc));
    const int to = net.target(static_cast<int>(arc));
    if (source_side[static_cast<std::size_t>(from)] &&
        !source_side[static_cast<std::size_t>(to)])
      total += net.initial_capacity(static_cast<int>(arc));
  }
  return total;
}

}  // namespace rwc::flow
