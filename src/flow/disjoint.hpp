// Minimum-total-weight pair of edge-disjoint paths (Suurballe's problem),
// solved as a min-cost flow of value 2 with unit edge capacities. Used for
// 1+1 protected services: a primary and a backup that no single link
// failure can take down together.
#pragma once

#include <optional>
#include <utility>

#include "graph/graph.hpp"

namespace rwc::flow {

/// Two edge-disjoint source->target paths minimizing total weight, or
/// nullopt when the graph has no two edge-disjoint paths between them.
/// The pair is ordered: first is the shorter (primary) path.
std::optional<std::pair<graph::Path, graph::Path>> edge_disjoint_pair(
    const graph::Graph& graph, graph::NodeId source, graph::NodeId target);

}  // namespace rwc::flow
