#include "flow/graph_adapter.hpp"

namespace rwc::flow {

NetworkView make_network(const graph::Graph& graph, std::size_t extra_nodes) {
  NetworkView view(graph.node_count() + extra_nodes);
  view.arc_of_edge.reserve(graph.edge_count());
  for (graph::EdgeId id : graph.edge_ids()) {
    const graph::Edge& e = graph.edge(id);
    view.arc_of_edge.push_back(
        view.net.add_arc(e.src.value, e.dst.value, e.capacity.value, e.cost));
  }
  return view;
}

std::vector<double> edge_flows(const graph::Graph& graph,
                               const NetworkView& view) {
  std::vector<double> flows(graph.edge_count(), 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i)
    flows[i] = view.net.flow(view.arc_of_edge[i]);
  return flows;
}

}  // namespace rwc::flow
