#include "update/schedule.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace rwc::update {

using util::Gbps;

namespace {

constexpr double kEps = 1e-6;
/// Stream id base for per-edge reconfig-duration sampling: XORed with the
/// edge id so durations are independent of scheduling order and pool size.
constexpr std::uint64_t kDurationStream = 0x75706474'00000000ULL;  // "updt"

std::map<RouteKey, double> path_volumes(const te::FlowAssignment& assignment) {
  std::map<RouteKey, double> volumes;
  for (std::size_t d = 0; d < assignment.routings.size(); ++d)
    for (const auto& [path, volume] : assignment.routings[d].paths)
      if (volume.value > kEps) volumes[{d, path.edges}] += volume.value;
  return volumes;
}

graph::Path make_path(const graph::Graph& graph,
                      const std::vector<graph::EdgeId>& edges) {
  graph::Path path;
  path.edges = edges;
  for (graph::EdgeId edge : edges) path.weight += graph.edge(edge).weight;
  return path;
}

double drain_limit_for(bvt::Procedure procedure, double from, double to,
                       double headroom) {
  if (procedure == bvt::Procedure::kStandard) return 0.0;
  return std::min(from, to) * (1.0 + headroom);
}

/// One pending BVT reconfiguration.
struct PendingReconfig {
  graph::EdgeId edge;
  double from = 0.0;
  double to = 0.0;
  double duration = 0.0;
  double drain_limit = 0.0;
};

struct UpdateMetrics {
  obs::Counter& schedules;
  obs::Counter& route_moves;
  obs::Counter& reconfigs;
  obs::Counter& forced_churn;
  obs::Counter& infeasible;
  obs::Histogram& rounds;
  obs::Histogram& makespan;

  static UpdateMetrics& instance() {
    static UpdateMetrics metrics{
        obs::Registry::global().counter("update.schedules"),
        obs::Registry::global().counter("update.route_moves"),
        obs::Registry::global().counter("update.reconfigs"),
        obs::Registry::global().counter("update.forced_churn"),
        obs::Registry::global().counter("update.infeasible"),
        obs::Registry::global().histogram("update.schedule.rounds"),
        obs::Registry::global().histogram("update.schedule.makespan.seconds"),
    };
    return metrics;
  }
};

}  // namespace

UpdateSchedule plan_schedule(const graph::Graph& topology,
                             std::span<const util::Gbps> before_capacity,
                             std::span<const util::Gbps> after_capacity,
                             const te::FlowAssignment& before,
                             const te::FlowAssignment& after,
                             const SchedulerConfig& config) {
  const std::size_t edge_count = topology.edge_count();
  RWC_CHECK_MSG(before_capacity.size() == edge_count,
                "plan_schedule: before_capacity size mismatch");
  RWC_CHECK_MSG(after_capacity.size() == edge_count,
                "plan_schedule: after_capacity size mismatch");
  RWC_CHECK_MSG(config.headroom >= 0.0, "plan_schedule: negative headroom");

  UpdateSchedule schedule;
  schedule.headroom = config.headroom;
  schedule.procedure = config.procedure;

  // Demand endpoints (for the loop-freedom oracle). Same matrix on both
  // sides in the controller; tolerate a size mismatch by taking the union.
  const std::size_t demand_count =
      std::max(before.routings.size(), after.routings.size());
  schedule.demand_endpoints.reserve(demand_count);
  for (std::size_t d = 0; d < demand_count; ++d) {
    const te::Demand& demand = d < after.routings.size()
                                   ? after.routings[d].demand
                                   : before.routings[d].demand;
    schedule.demand_endpoints.emplace_back(demand.src, demand.dst);
  }

  // Initial dataplane state, rebuilt from the route set (not the cached
  // edge_load_gbps) so state and routes are consistent by construction.
  const std::map<RouteKey, double> old_routes = path_volumes(before);
  const std::map<RouteKey, double> new_routes = path_volumes(after);
  DataplaneState state;
  state.load_gbps.assign(edge_count, 0.0);
  state.capacity_gbps.resize(edge_count);
  state.limit_gbps.resize(edge_count);
  for (std::size_t e = 0; e < edge_count; ++e) {
    state.capacity_gbps[e] = before_capacity[e].value;
    state.limit_gbps[e] = before_capacity[e].value * (1.0 + config.headroom);
  }
  state.routes = old_routes;
  for (const auto& [key, volume] : old_routes)
    for (graph::EdgeId edge : key.second)
      state.load_gbps[static_cast<std::size_t>(edge.value)] += volume;
  schedule.initial = state;

  // Static overload floor: load already above the limit when the schedule
  // starts (SNR-forced flaps land under live traffic) may persist until
  // drained, but must never grow.
  schedule.overload_floor_gbps.assign(edge_count, 0.0);
  for (std::size_t e = 0; e < edge_count; ++e)
    if (state.load_gbps[e] > state.limit_gbps[e] + kEps)
      schedule.overload_floor_gbps[e] = state.load_gbps[e];

  // Route diff: per-key shrink -> removal delta, growth -> addition delta.
  std::map<RouteKey, double> removals;
  std::map<RouteKey, double> additions;
  for (const auto& [key, old_volume] : old_routes) {
    const auto it = new_routes.find(key);
    const double new_volume = it == new_routes.end() ? 0.0 : it->second;
    if (new_volume < old_volume - kEps)
      removals[key] = old_volume - new_volume;
  }
  for (const auto& [key, new_volume] : new_routes) {
    const auto it = old_routes.find(key);
    const double old_volume = it == old_routes.end() ? 0.0 : it->second;
    if (new_volume > old_volume + kEps)
      additions[key] = new_volume - old_volume;
  }

  // BVT reconfigurations for every rate change. Durations are sampled per
  // edge on an independent RNG stream keyed by the edge id, so they do not
  // depend on how many other edges reconfigure or in what order.
  bvt::LatencyModel latency(config.latency);
  std::vector<PendingReconfig> reconfigs;
  for (std::size_t e = 0; e < edge_count; ++e) {
    const double from = before_capacity[e].value;
    const double to = after_capacity[e].value;
    if (from == to) continue;
    PendingReconfig reconfig;
    reconfig.edge = graph::EdgeId{static_cast<std::int32_t>(e)};
    reconfig.from = from;
    reconfig.to = to;
    if (config.sampled_durations) {
      util::Rng rng = util::Rng::stream(
          config.seed, kDurationStream ^ static_cast<std::uint64_t>(e));
      reconfig.duration = latency.transition_downtime(
          config.procedure, Gbps{from}, Gbps{to}, &rng);
    } else {
      reconfig.duration = latency.transition_downtime(config.procedure,
                                                      Gbps{from}, Gbps{to});
    }
    reconfig.drain_limit =
        drain_limit_for(config.procedure, from, to, config.headroom);
    reconfigs.push_back(reconfig);
  }

  // Forced-churn pre-pass: kept traffic crossing a reconfiguring edge
  // above its drain limit must step aside — remove the whole old volume,
  // re-add the whole new volume after the reconfig. Iterating edges in id
  // order keeps the pass deterministic; churn on one edge also lightens
  // every other edge the churned path crosses.
  std::set<RouteKey> churned;
  for (const PendingReconfig& reconfig : reconfigs) {
    const auto e = static_cast<std::size_t>(reconfig.edge.value);
    double kept_load = 0.0;
    std::vector<const RouteKey*> crossing;
    for (const auto& [key, old_volume] : old_routes) {
      if (churned.contains(key)) continue;
      if (std::find(key.second.begin(), key.second.end(), reconfig.edge) ==
          key.second.end())
        continue;
      const auto it = new_routes.find(key);
      const double kept =
          std::min(old_volume, it == new_routes.end() ? 0.0 : it->second);
      if (kept > kEps) {
        kept_load += kept;
        crossing.push_back(&key);
      }
    }
    if (kept_load <= reconfig.drain_limit + kEps) continue;
    for (const RouteKey* key : crossing) {
      churned.insert(*key);
      removals[*key] = old_routes.at(*key);
      const auto it = new_routes.find(*key);
      if (it != new_routes.end() && it->second > kEps)
        additions[*key] = it->second;
    }
    (void)e;
  }
  schedule.forced_churn = churned.size();

  // Dependency-DAG size (reporting only — the wave construction below
  // linearizes it implicitly): each reconfig waits on every removal
  // crossing its edge; each addition waits on every reconfig on its path.
  for (const PendingReconfig& reconfig : reconfigs)
    for (const auto& [key, volume] : removals)
      if (std::find(key.second.begin(), key.second.end(), reconfig.edge) !=
          key.second.end())
        ++schedule.dependency_edges;
  for (const auto& [key, volume] : additions)
    for (const PendingReconfig& reconfig : reconfigs)
      if (std::find(key.second.begin(), key.second.end(), reconfig.edge) !=
          key.second.end())
        ++schedule.dependency_edges;

  // Greedy wave construction. Each round: every pending removal; then
  // every reconfig whose edge is drained at round start and untouched by
  // this round's route moves; then additions, admitted in key order under
  // the worst-case-interleaving load bound (round-start load plus all
  // batched adds, no same-round removals credited).
  std::set<graph::EdgeId> pending_reconfig_edges;
  for (const PendingReconfig& reconfig : reconfigs)
    pending_reconfig_edges.insert(reconfig.edge);

  bool pending_removals = !removals.empty();
  while (pending_removals || !reconfigs.empty() || !additions.empty()) {
    if (schedule.rounds.size() >= config.max_rounds) {
      schedule.feasible = false;
      break;
    }
    UpdateRound round;
    const std::vector<double> round_start_load = state.load_gbps;
    std::set<graph::EdgeId> route_touched;
    std::set<graph::EdgeId> reconfiguring_now;

    // 1. Removals: always safe (load only drops), so batch them all.
    for (const auto& [key, volume] : removals) {
      Move move;
      move.kind = Move::Kind::kRouteRemove;
      move.demand_index = key.first;
      move.path = make_path(topology, key.second);
      move.volume = Gbps{volume};
      for (graph::EdgeId edge : key.second) {
        state.load_gbps[static_cast<std::size_t>(edge.value)] -= volume;
        route_touched.insert(edge);
      }
      auto it = state.routes.find(key);
      if (it != state.routes.end()) {
        it->second -= volume;
        if (it->second <= kEps) state.routes.erase(it);
      }
      round.moves.push_back(std::move(move));
    }
    removals.clear();
    pending_removals = false;

    // 2. Reconfigs: eligible when the edge started the round at or below
    // its drain limit and no route move this round races it.
    std::vector<PendingReconfig> deferred;
    for (const PendingReconfig& reconfig : reconfigs) {
      const auto e = static_cast<std::size_t>(reconfig.edge.value);
      if (round_start_load[e] > reconfig.drain_limit + kEps ||
          route_touched.contains(reconfig.edge)) {
        deferred.push_back(reconfig);
        continue;
      }
      Move move;
      move.kind = Move::Kind::kReconfig;
      move.edge = reconfig.edge;
      move.from = Gbps{reconfig.from};
      move.to = Gbps{reconfig.to};
      move.duration_seconds = reconfig.duration;
      state.capacity_gbps[e] = reconfig.to;
      state.limit_gbps[e] = reconfig.to * (1.0 + config.headroom);
      reconfiguring_now.insert(reconfig.edge);
      pending_reconfig_edges.erase(reconfig.edge);
      round.moves.push_back(std::move(move));
    }
    reconfigs = std::move(deferred);

    // 3. Additions: never onto an edge still awaiting (or mid-) reconfig;
    // the worst case — all batched adds landing before any same-round
    // removal completes — must respect the limit on every path edge.
    std::vector<double> round_added(edge_count, 0.0);
    std::map<RouteKey, double> deferred_adds;
    for (const auto& [key, volume] : additions) {
      bool eligible = true;
      for (graph::EdgeId edge : key.second) {
        const auto e = static_cast<std::size_t>(edge.value);
        if (pending_reconfig_edges.contains(edge) ||
            reconfiguring_now.contains(edge) ||
            round_start_load[e] + round_added[e] + volume >
                state.limit_gbps[e] + kEps) {
          eligible = false;
          break;
        }
      }
      if (!eligible) {
        deferred_adds.emplace(key, volume);
        continue;
      }
      Move move;
      move.kind = Move::Kind::kRouteAdd;
      move.demand_index = key.first;
      move.path = make_path(topology, key.second);
      move.volume = Gbps{volume};
      for (graph::EdgeId edge : key.second) {
        const auto e = static_cast<std::size_t>(edge.value);
        state.load_gbps[e] += volume;
        round_added[e] += volume;
        route_touched.insert(edge);
      }
      state.routes[key] += volume;
      round.moves.push_back(std::move(move));
    }
    additions = std::move(deferred_adds);

    if (round.moves.empty()) {
      // Nothing could be placed but work remains: the wave construction is
      // stuck (possible only when the target assignment itself violates
      // the limits). Mark infeasible instead of spinning.
      schedule.feasible = false;
      break;
    }
    for (const Move& move : round.moves) {
      round.duration_seconds =
          std::max(round.duration_seconds, move.kind == Move::Kind::kReconfig
                                               ? move.duration_seconds
                                               : config.route_step_seconds);
      if (move.kind == Move::Kind::kReconfig)
        ++schedule.reconfigs;
      else
        ++schedule.route_moves;
    }
    schedule.makespan_seconds += round.duration_seconds;
    schedule.rounds.push_back(std::move(round));
  }

  UpdateMetrics& metrics = UpdateMetrics::instance();
  metrics.schedules.add();
  metrics.route_moves.add(schedule.route_moves);
  metrics.reconfigs.add(schedule.reconfigs);
  metrics.forced_churn.add(schedule.forced_churn);
  if (!schedule.feasible) metrics.infeasible.add();
  metrics.rounds.observe(static_cast<double>(schedule.rounds.size()));
  metrics.makespan.observe(schedule.makespan_seconds);
  return schedule;
}

bool check_dataplane(const graph::Graph& topology,
                     const UpdateSchedule& schedule,
                     const DataplaneState& state, std::string* violation) {
  const std::size_t edge_count = topology.edge_count();
  const auto fail = [&](const std::string& what) {
    if (violation != nullptr) *violation = what;
    return false;
  };
  if (state.load_gbps.size() != edge_count ||
      state.capacity_gbps.size() != edge_count ||
      state.limit_gbps.size() != edge_count)
    return fail("dataplane state vectors do not match the topology");

  std::vector<double> recomputed(edge_count, 0.0);
  for (const auto& [key, volume] : state.routes) {
    const auto& [demand_index, edges] = key;
    if (volume < -kEps) {
      std::ostringstream os;
      os << "negative volume " << volume << " on demand " << demand_index;
      return fail(os.str());
    }
    if (demand_index >= schedule.demand_endpoints.size())
      return fail("route references an unknown demand");
    if (edges.empty()) return fail("empty route path");
    const auto [src, dst] = schedule.demand_endpoints[demand_index];
    // Loop-freedom: the path must be a simple, contiguous src->dst walk —
    // no black-hole (it terminates at dst) and no forwarding loop (no node
    // repeats).
    std::set<graph::NodeId> visited;
    graph::NodeId at = src;
    visited.insert(at);
    for (graph::EdgeId edge : edges) {
      const graph::Edge& e = topology.edge(edge);
      if (e.src != at) {
        std::ostringstream os;
        os << "discontiguous path for demand " << demand_index;
        return fail(os.str());
      }
      at = e.dst;
      if (!visited.insert(at).second) {
        std::ostringstream os;
        os << "forwarding loop through " << topology.node_name(at)
           << " for demand " << demand_index;
        return fail(os.str());
      }
      recomputed[static_cast<std::size_t>(edge.value)] += volume;
    }
    if (at != dst) {
      std::ostringstream os;
      os << "path for demand " << demand_index << " ends at "
         << topology.node_name(at) << ", not its destination";
      return fail(os.str());
    }
  }

  for (std::size_t e = 0; e < edge_count; ++e) {
    if (std::abs(recomputed[e] - state.load_gbps[e]) > 1e-4) {
      std::ostringstream os;
      os << "edge " << e << " load " << state.load_gbps[e]
         << " inconsistent with its routes (" << recomputed[e] << ")";
      return fail(os.str());
    }
    // The static overload floor only excuses load while the edge runs at
    // its normal limit; a drained/dark edge (limit below capacity*(1+h))
    // gets no credit — traffic there would be a transient black-hole.
    const double normal_limit =
        state.capacity_gbps[e] * (1.0 + schedule.headroom);
    double allowed = state.limit_gbps[e];
    if (state.limit_gbps[e] >= normal_limit - kEps &&
        e < schedule.overload_floor_gbps.size())
      allowed = std::max(allowed, schedule.overload_floor_gbps[e]);
    if (state.load_gbps[e] > allowed + 1e-4) {
      std::ostringstream os;
      os << "edge " << e << " over-subscribed: " << state.load_gbps[e]
         << " Gbps > allowed " << allowed << " Gbps (limit "
         << state.limit_gbps[e] << ")";
      return fail(os.str());
    }
  }
  return true;
}

bool validate_schedule(const graph::Graph& topology,
                       const UpdateSchedule& schedule,
                       std::span<const util::Gbps> after_capacity,
                       const te::FlowAssignment& after,
                       std::string* violation) {
  const std::size_t edge_count = topology.edge_count();
  const auto fail = [&](const std::string& what) {
    if (violation != nullptr) *violation = what;
    return false;
  };
  if (!schedule.feasible) return fail("schedule is marked infeasible");
  if (after_capacity.size() != edge_count)
    return fail("after_capacity size mismatch");

  DataplaneState state = schedule.initial;
  if (!check_dataplane(topology, schedule, state, violation)) return false;

  for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
    const UpdateRound& round = schedule.rounds[r];
    const std::vector<double> round_start = state.load_gbps;
    std::set<graph::EdgeId> route_edges;
    std::set<graph::EdgeId> reconfig_edges;
    std::vector<double> added(edge_count, 0.0);

    for (const Move& move : round.moves) {
      if (move.kind == Move::Kind::kReconfig) {
        if (!reconfig_edges.insert(move.edge).second) {
          std::ostringstream os;
          os << "round " << r << " reconfigures edge " << move.edge.value
             << " twice";
          return fail(os.str());
        }
        const auto e = static_cast<std::size_t>(move.edge.value);
        const double drain = drain_limit_for(schedule.procedure,
                                             move.from.value, move.to.value,
                                             schedule.headroom);
        if (round_start[e] > drain + kEps) {
          std::ostringstream os;
          os << "round " << r << " reconfigures edge " << move.edge.value
             << " carrying " << round_start[e] << " Gbps above its drain "
             << "limit " << drain << " Gbps";
          return fail(os.str());
        }
      } else {
        for (graph::EdgeId edge : move.path.edges) {
          route_edges.insert(edge);
          if (move.kind == Move::Kind::kRouteAdd)
            added[static_cast<std::size_t>(edge.value)] += move.volume.value;
        }
      }
    }
    for (graph::EdgeId edge : route_edges)
      if (reconfig_edges.contains(edge)) {
        std::ostringstream os;
        os << "round " << r << " races a route move against the reconfig "
           << "of edge " << edge.value;
        return fail(os.str());
      }

    // Worst-case interleaving: every batched add lands before any batched
    // removal completes. Adds must fit the true limit; an edge without
    // same-round adds may ride its pre-existing overload floor down.
    for (std::size_t e = 0; e < edge_count; ++e) {
      const double worst = round_start[e] + added[e];
      double allowed = state.limit_gbps[e];
      if (added[e] <= kEps && e < schedule.overload_floor_gbps.size())
        allowed = std::max(allowed, schedule.overload_floor_gbps[e]);
      if (worst > allowed + 1e-4) {
        std::ostringstream os;
        os << "round " << r << " worst-case load on edge " << e << " is "
           << worst << " Gbps > allowed " << allowed << " Gbps";
        return fail(os.str());
      }
    }

    // Apply the round and re-run the single-state oracle.
    for (const Move& move : round.moves) {
      if (move.kind == Move::Kind::kReconfig) {
        const auto e = static_cast<std::size_t>(move.edge.value);
        state.capacity_gbps[e] = move.to.value;
        state.limit_gbps[e] = move.to.value * (1.0 + schedule.headroom);
        continue;
      }
      const double sign =
          move.kind == Move::Kind::kRouteRemove ? -1.0 : 1.0;
      const RouteKey key{move.demand_index, move.path.edges};
      for (graph::EdgeId edge : move.path.edges)
        state.load_gbps[static_cast<std::size_t>(edge.value)] +=
            sign * move.volume.value;
      state.routes[key] += sign * move.volume.value;
      if (state.routes[key] <= kEps) state.routes.erase(key);
    }
    if (!check_dataplane(topology, schedule, state, violation)) return false;
  }

  // Terminal state must be exactly the target (capacities bitwise, routes
  // and loads within accumulation tolerance).
  for (std::size_t e = 0; e < edge_count; ++e)
    if (state.capacity_gbps[e] != after_capacity[e].value) {
      std::ostringstream os;
      os << "terminal capacity of edge " << e << " is "
         << state.capacity_gbps[e] << " Gbps, target "
         << after_capacity[e].value << " Gbps";
      return fail(os.str());
    }
  const std::map<RouteKey, double> target = path_volumes(after);
  for (const auto& [key, volume] : target) {
    const auto it = state.routes.find(key);
    const double got = it == state.routes.end() ? 0.0 : it->second;
    if (std::abs(got - volume) > 1e-4) {
      std::ostringstream os;
      os << "terminal volume for demand " << key.first << " is " << got
         << " Gbps, target " << volume << " Gbps";
      return fail(os.str());
    }
  }
  for (const auto& [key, volume] : state.routes)
    if (!target.contains(key) && volume > 1e-4) {
      std::ostringstream os;
      os << "terminal state carries " << volume
         << " Gbps on a route absent from the target (demand " << key.first
         << ")";
      return fail(os.str());
    }
  return true;
}

}  // namespace rwc::update
