// Consistent-update scheduler (rwc::update) — docs/UPDATE.md.
//
// Each controller round decides a new (capacities, routing) pair; this
// module turns the transition from the previous pair into an ordered
// sequence of *update rounds*. Every round batches moves that are safe to
// execute concurrently — route-weight removals/additions and BVT capacity
// reconfigurations (durations from rwc::bvt's 68 s laser-cycling vs 35 ms
// hitless latency models) — such that EVERY intermediate state is
//
//   * congestion-free: no link loaded beyond `capacity * (1 + headroom)`
//     (pre-existing overload from SNR-forced flaps is tolerated but may
//     never grow — the static overload floor);
//   * black-hole-free: no traffic ever rides a link that is dark or
//     drained below its load mid-reconfiguration;
//   * loop-free: every routed path is a simple, contiguous src->dst path.
//
// The `headroom` knob is the augmentation of PAPERS.md's "The
// Augmentation-Speed Tradeoff for Consistent Network Updates" (Henzinger &
// Pourdamghani): spare capacity admits moves into earlier rounds, so added
// headroom shortens the schedule. bench/update_schedule reproduces the
// curve; bench/update_schedule --selfcheck gates it.
//
// Planning is a pure deterministic function of its inputs (reconfig
// durations come from Rng::stream(seed, kDurationStream ^ edge), so they
// are order- and pool-size-independent). Execution with commit/rollback
// and fault injection lives in update/executor.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bvt/latency.hpp"
#include "graph/graph.hpp"
#include "te/demand.hpp"
#include "util/units.hpp"

namespace rwc::update {

/// Identity of one routed (demand, path) pair across assignments.
using RouteKey = std::pair<std::size_t, std::vector<graph::EdgeId>>;

/// The dataplane state an update schedule evolves. `limit_gbps` is the load
/// each link may carry RIGHT NOW: normally `capacity * (1 + headroom)`,
/// but the drain limit while the link's BVT reconfigures (0 for the
/// laser-cycling procedure — the link is dark). Comparing two states with
/// == is the bit-identity oracle the differential tests use.
struct DataplaneState {
  std::vector<double> load_gbps;      // per physical edge
  std::vector<double> capacity_gbps;  // per physical edge (configured rate)
  std::vector<double> limit_gbps;     // per physical edge (allowed load now)
  std::map<RouteKey, double> routes;  // (demand, path) -> volume

  friend bool operator==(const DataplaneState&,
                         const DataplaneState&) = default;
};

/// One scheduled move. Route moves shift `volume` of demand
/// `demand_index` onto/off `path`; reconfigs drive edge `edge` from rate
/// `from` to `to` with a modulation-change downtime of
/// `duration_seconds`.
struct Move {
  enum class Kind { kRouteRemove = 0, kReconfig = 1, kRouteAdd = 2 };
  Kind kind = Kind::kRouteRemove;

  // Route moves.
  std::size_t demand_index = 0;
  graph::Path path;
  util::Gbps volume{0.0};

  // Reconfigs.
  graph::EdgeId edge;
  util::Gbps from{0.0};
  util::Gbps to{0.0};
  double duration_seconds = 0.0;
};

/// One update round: moves safe to run concurrently (the scheduler's
/// worst-case interleaving analysis holds for any completion order).
/// `duration_seconds` is the round's barrier-to-barrier time: the longest
/// move in the batch.
struct UpdateRound {
  std::vector<Move> moves;
  double duration_seconds = 0.0;
};

struct SchedulerConfig {
  /// Augmentation knob: links may carry up to capacity * (1 + headroom)
  /// during the transition. 0 = strictly congestion-free.
  double headroom = 0.0;
  /// BVT modulation-change procedure: kStandard darkens the link for ~68 s
  /// (full drain required); kEfficient keeps the laser on (~35 ms, traffic
  /// up to min(from, to) * (1 + headroom) may stay).
  bvt::Procedure procedure = bvt::Procedure::kEfficient;
  bvt::LatencyModelParams latency{};
  /// Sample per-edge reconfig downtimes from the latency model
  /// (Rng::stream(seed, kDurationStream ^ edge) — order-independent) or
  /// charge the deterministic expected downtime.
  bool sampled_durations = true;
  std::uint64_t seed = 1;
  /// Dataplane latency of one batched route-update round.
  double route_step_seconds = 0.005;
  /// Planner bail-out; the greedy wave construction needs at most a
  /// handful of rounds (docs/UPDATE.md §3), so hitting this marks the
  /// schedule infeasible instead of looping.
  std::size_t max_rounds = 64;

  friend bool operator==(const SchedulerConfig&,
                         const SchedulerConfig&) = default;
};

/// A complete transition plan plus everything needed to execute and audit
/// it: the initial dataplane state, the per-demand endpoints (for the
/// loop-freedom checks) and the static overload floors (pre-existing
/// over-subscription from forced flaps that may persist but never grow).
struct UpdateSchedule {
  std::vector<UpdateRound> rounds;
  DataplaneState initial;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> demand_endpoints;
  std::vector<double> overload_floor_gbps;

  // Config echo (what the validator and executor need to re-derive
  // limits).
  double headroom = 0.0;
  bvt::Procedure procedure = bvt::Procedure::kEfficient;

  // Aggregates.
  double makespan_seconds = 0.0;  ///< fault-free sum of round durations
  bool feasible = true;           ///< every move was placed
  std::size_t route_moves = 0;
  std::size_t reconfigs = 0;
  /// Kept paths force-churned (removed + re-added) to drain a link below
  /// its reconfiguration limit.
  std::size_t forced_churn = 0;
  /// Edges of the implicit dependency DAG the wave construction
  /// linearizes: reconfig-waits-for-drain plus add-waits-for-reconfig.
  std::size_t dependency_edges = 0;
};

/// Plans the transition from (`before_capacity`, `before`) to
/// (`after_capacity`, `after`) on `topology` (which supplies edge
/// endpoints; capacities travel in the spans). Deterministic: equal inputs
/// produce bit-identical schedules at every pool size.
UpdateSchedule plan_schedule(const graph::Graph& topology,
                             std::span<const util::Gbps> before_capacity,
                             std::span<const util::Gbps> after_capacity,
                             const te::FlowAssignment& before,
                             const te::FlowAssignment& after,
                             const SchedulerConfig& config);

/// One-state invariant check (the observer-side oracle of tests/prop/
/// prop_update.cpp): route volumes non-negative, paths simple and
/// contiguous src->dst for their demand, per-edge load consistent with the
/// route set, and load within max(limit, overload floor) everywhere.
bool check_dataplane(const graph::Graph& topology,
                     const UpdateSchedule& schedule,
                     const DataplaneState& state,
                     std::string* violation = nullptr);

/// Static worst-case audit of a schedule: per round, no route move shares
/// an edge with a same-round reconfig, the all-adds-no-removals worst case
/// stays within limits, reconfiguring links start the round at or below
/// their drain limit, and the terminal state matches (`after_capacity`,
/// `after`) exactly. Fills `violation` (when non-null) with the first
/// failure. The mutation checks in tests/test_update_schedule.cpp prove
/// every clause can fire.
bool validate_schedule(const graph::Graph& topology,
                       const UpdateSchedule& schedule,
                       std::span<const util::Gbps> after_capacity,
                       const te::FlowAssignment& after,
                       std::string* violation = nullptr);

}  // namespace rwc::update
