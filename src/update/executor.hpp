// Commit/rollback executor for update schedules (docs/UPDATE.md §4).
//
// Drives an UpdateSchedule round by round against a live DataplaneState.
// Each round is transactional: the moves apply in canonical order
// (removals, then reconfigs — drain phase observable — then adds), an
// `update.commit` fault-site evaluation decides the round's fate, and a
// kFail injection rolls every move back (inverse moves in reverse order,
// themselves observable and subject to `update.rollback` timing faults)
// before retrying. Progress is monotone: the dataplane state between
// rounds is always the prefix of committed rounds, never a torn round —
// the property tests/prop/prop_update.cpp proves under random mid-update
// fault plans.
//
// Faults only ever perturb timing (kStall/kDelay inflate the reported
// makespan) or force retries/aborts at round boundaries; the committed
// state sequence is bit-identical to a fault-free run of the same prefix.
// Execution is checkpointable: save_state() captures a tiny cursor
// (committed-round count + timing/attempt counters) and restore_state()
// rebuilds the dataplane deterministically by re-applying the committed
// prefix — restore-then-continue is bit-identical at every pool size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "update/schedule.hpp"

namespace rwc::update {

struct ExecutorOptions {
  /// Commit attempts per round before the executor aborts the schedule at
  /// the current round boundary (bounds livelock under periodic kFail
  /// plans). Must be >= 1.
  std::size_t max_attempts_per_round = 8;
};

struct ExecutionResult {
  bool completed = false;  ///< every round committed
  bool aborted = false;    ///< gave up after max_attempts_per_round
  std::size_t rounds_committed = 0;
  std::uint64_t commit_attempts = 0;
  std::uint64_t rollbacks = 0;
  /// Committed round durations plus injected stall/delay time. Timing
  /// only — excluded from signatures, like RoundStats.
  double makespan_seconds = 0.0;

  friend bool operator==(const ExecutionResult&,
                         const ExecutionResult&) = default;
};

/// Observer invoked after every individual state mutation (each route
/// move applied or reverted, each reconfig's drain and commit step). The
/// state passed is the live intermediate dataplane — the hook the
/// invariant properties use to audit every transient.
using StateObserver = std::function<void(const DataplaneState&)>;

class ScheduleExecutor {
 public:
  ScheduleExecutor(const graph::Graph& topology, const UpdateSchedule& schedule,
                   ExecutorOptions options = {});

  /// Executes every remaining round (or until abort). Returns the final
  /// result; `observer` (optional) sees every intermediate state.
  const ExecutionResult& run(const StateObserver& observer = {});

  /// Executes up to `count` further rounds (for mid-schedule checkpoint
  /// tests). No-op once done() or aborted().
  const ExecutionResult& run_rounds(std::size_t count,
                                    const StateObserver& observer = {});

  const DataplaneState& state() const { return state_; }
  const ExecutionResult& result() const { return result_; }
  std::size_t next_round() const { return next_round_; }
  bool done() const {
    return next_round_ >= schedule_->rounds.size() || result_.aborted;
  }
  bool aborted() const { return result_.aborted; }

  /// Serializes the execution cursor (committed-round count, attempt and
  /// timing counters) via replay::wire. The dataplane itself is not
  /// serialized: it is a pure function of the schedule and the cursor,
  /// and restore_state() re-derives it bit-identically.
  std::vector<std::byte> save_state() const;

  /// Restores a cursor produced by save_state() against the same
  /// schedule. Returns false (state unchanged) on a malformed payload or
  /// a cursor that does not fit this schedule.
  bool restore_state(std::span<const std::byte> payload);

 private:
  bool attempt_round(const UpdateRound& round, const StateObserver& observer);
  void apply_move(const Move& move, const StateObserver& observer);
  void revert_move(const Move& move, const StateObserver& observer);

  const graph::Graph* topology_;
  const UpdateSchedule* schedule_;
  ExecutorOptions options_;
  DataplaneState state_;
  std::size_t next_round_ = 0;
  ExecutionResult result_;
};

}  // namespace rwc::update
