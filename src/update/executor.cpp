#include "update/executor.hpp"

#include <algorithm>

#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "replay/wire.hpp"
#include "util/check.hpp"

namespace rwc::update {

namespace {

constexpr double kEps = 1e-6;
constexpr std::uint32_t kExecutorStateVersion = 1;

struct ExecMetrics {
  obs::Counter& rounds_committed;
  obs::Counter& commit_attempts;
  obs::Counter& rollbacks;
  obs::Counter& aborts;

  static ExecMetrics& instance() {
    static ExecMetrics metrics{
        obs::Registry::global().counter("update.exec.rounds_committed"),
        obs::Registry::global().counter("update.exec.commit_attempts"),
        obs::Registry::global().counter("update.exec.rollbacks"),
        obs::Registry::global().counter("update.exec.aborts"),
    };
    return metrics;
  }
};

double drain_limit_for(bvt::Procedure procedure, double from, double to,
                       double headroom) {
  if (procedure == bvt::Procedure::kStandard) return 0.0;
  return std::min(from, to) * (1.0 + headroom);
}

/// Injected stall/delay time in seconds (kDelay magnitudes travel in
/// milliseconds — fault/plan.hpp).
double injected_seconds(const fault::Action& action) {
  if (action.kind == fault::Kind::kStall) return action.magnitude;
  if (action.kind == fault::Kind::kDelay) return action.magnitude / 1000.0;
  return 0.0;
}

}  // namespace

ScheduleExecutor::ScheduleExecutor(const graph::Graph& topology,
                                   const UpdateSchedule& schedule,
                                   ExecutorOptions options)
    : topology_(&topology),
      schedule_(&schedule),
      options_(options),
      state_(schedule.initial) {
  RWC_CHECK_MSG(options_.max_attempts_per_round >= 1,
                "ScheduleExecutor: max_attempts_per_round must be >= 1");
  RWC_CHECK_MSG(state_.load_gbps.size() == topology.edge_count(),
                "ScheduleExecutor: schedule does not match the topology");
}

void ScheduleExecutor::apply_move(const Move& move,
                                  const StateObserver& observer) {
  if (move.kind == Move::Kind::kReconfig) {
    const auto e = static_cast<std::size_t>(move.edge.value);
    // Drain phase: the link's admissible load collapses to the drain limit
    // (0 when the laser power-cycles) for the duration of the modulation
    // change. Observable so the invariant layer audits the dark window.
    state_.limit_gbps[e] =
        drain_limit_for(schedule_->procedure, move.from.value, move.to.value,
                        schedule_->headroom);
    if (observer) observer(state_);
    // Commit: the BVT now runs at the target rate.
    state_.capacity_gbps[e] = move.to.value;
    state_.limit_gbps[e] = move.to.value * (1.0 + schedule_->headroom);
    if (observer) observer(state_);
    return;
  }
  const double sign = move.kind == Move::Kind::kRouteRemove ? -1.0 : 1.0;
  const RouteKey key{move.demand_index, move.path.edges};
  for (graph::EdgeId edge : move.path.edges)
    state_.load_gbps[static_cast<std::size_t>(edge.value)] +=
        sign * move.volume.value;
  state_.routes[key] += sign * move.volume.value;
  if (state_.routes[key] <= kEps) state_.routes.erase(key);
  if (observer) observer(state_);
}

void ScheduleExecutor::revert_move(const Move& move,
                                   const StateObserver& observer) {
  if (move.kind == Move::Kind::kReconfig) {
    const auto e = static_cast<std::size_t>(move.edge.value);
    // Safe in one step: the edge's load was at or below the drain limit
    // when the reconfig applied, and every later same-round move has
    // already been reverted, so the pre-move limit re-admits it.
    state_.capacity_gbps[e] = move.from.value;
    state_.limit_gbps[e] = move.from.value * (1.0 + schedule_->headroom);
    if (observer) observer(state_);
    return;
  }
  const double sign = move.kind == Move::Kind::kRouteRemove ? 1.0 : -1.0;
  const RouteKey key{move.demand_index, move.path.edges};
  for (graph::EdgeId edge : move.path.edges)
    state_.load_gbps[static_cast<std::size_t>(edge.value)] +=
        sign * move.volume.value;
  state_.routes[key] += sign * move.volume.value;
  if (state_.routes[key] <= kEps) state_.routes.erase(key);
  if (observer) observer(state_);
}

bool ScheduleExecutor::attempt_round(const UpdateRound& round,
                                     const StateObserver& observer) {
  ++result_.commit_attempts;
  ExecMetrics::instance().commit_attempts.add();
  // Round-start snapshot: rollback restores it verbatim, so a failed
  // attempt leaves the state BIT-identical to before (inverse floating-
  // point arithmetic alone would drift in the last ulp).
  const DataplaneState checkpoint = state_;
  for (const Move& move : round.moves) apply_move(move, observer);

  // Fault site: the round's commit barrier. kFail forces a full rollback
  // and retry; kStall/kDelay are timing-only (inflate makespan, commit
  // anyway); anything else commits untouched.
  const fault::Action action = fault::next("update.commit");
  result_.makespan_seconds += injected_seconds(action);
  if (action.kind != fault::Kind::kFail) {
    result_.makespan_seconds += round.duration_seconds;
    return true;
  }

  ++result_.rollbacks;
  ExecMetrics::instance().rollbacks.add();
  // The failed attempt and its rollback each cost a round's wall time.
  result_.makespan_seconds += 2.0 * round.duration_seconds;
  for (auto it = round.moves.rbegin(); it != round.moves.rend(); ++it)
    revert_move(*it, observer);
  state_ = checkpoint;  // exact restore (see snapshot note above)
  if (observer) observer(state_);
  // Fault site: rollback path. Contractually timing-only — state motion
  // is the deterministic inverse replay above.
  result_.makespan_seconds += injected_seconds(fault::next("update.rollback"));
  return false;
}

const ExecutionResult& ScheduleExecutor::run(const StateObserver& observer) {
  return run_rounds(schedule_->rounds.size(), observer);
}

const ExecutionResult& ScheduleExecutor::run_rounds(
    std::size_t count, const StateObserver& observer) {
  for (std::size_t i = 0; i < count && !done(); ++i) {
    const UpdateRound& round = schedule_->rounds[next_round_];
    bool committed = false;
    for (std::size_t attempt = 0;
         attempt < options_.max_attempts_per_round && !committed; ++attempt)
      committed = attempt_round(round, observer);
    if (!committed) {
      // Clean abort at the round boundary: the dataplane is exactly the
      // committed prefix (monotone progress — never a torn round).
      result_.aborted = true;
      ExecMetrics::instance().aborts.add();
      break;
    }
    ++next_round_;
    ++result_.rounds_committed;
    ExecMetrics::instance().rounds_committed.add();
  }
  result_.completed =
      !result_.aborted && next_round_ >= schedule_->rounds.size();
  return result_;
}

std::vector<std::byte> ScheduleExecutor::save_state() const {
  replay::wire::ByteWriter writer;
  writer.u32(kExecutorStateVersion);
  writer.u8(result_.aborted ? 1 : 0);
  writer.u8(result_.completed ? 1 : 0);
  writer.u32(static_cast<std::uint32_t>(next_round_));
  writer.u64(result_.rounds_committed);
  writer.u64(result_.commit_attempts);
  writer.u64(result_.rollbacks);
  writer.f64(result_.makespan_seconds);
  return writer.take();
}

bool ScheduleExecutor::restore_state(std::span<const std::byte> payload) {
  replay::wire::ByteReader reader(payload);
  if (reader.u32() != kExecutorStateVersion) return false;
  ExecutionResult restored;
  restored.aborted = reader.u8() != 0;
  restored.completed = reader.u8() != 0;
  const std::uint32_t next_round = reader.u32();
  restored.rounds_committed = reader.u64();
  restored.commit_attempts = reader.u64();
  restored.rollbacks = reader.u64();
  restored.makespan_seconds = reader.f64();
  if (reader.failed() || !reader.exhausted()) return false;
  if (next_round > schedule_->rounds.size()) return false;
  if (restored.rounds_committed != next_round) return false;
  if (restored.completed &&
      (restored.aborted || next_round != schedule_->rounds.size()))
    return false;

  // The dataplane is a pure function of (schedule, committed prefix):
  // re-apply rounds [0, next_round) in canonical order, fault-free and
  // unobserved, for a bit-identical rebuild.
  DataplaneState state = schedule_->initial;
  for (std::uint32_t r = 0; r < next_round; ++r) {
    for (const Move& move : schedule_->rounds[r].moves) {
      if (move.kind == Move::Kind::kReconfig) {
        const auto e = static_cast<std::size_t>(move.edge.value);
        state.capacity_gbps[e] = move.to.value;
        state.limit_gbps[e] = move.to.value * (1.0 + schedule_->headroom);
        continue;
      }
      const double sign =
          move.kind == Move::Kind::kRouteRemove ? -1.0 : 1.0;
      const RouteKey key{move.demand_index, move.path.edges};
      for (graph::EdgeId edge : move.path.edges)
        state.load_gbps[static_cast<std::size_t>(edge.value)] +=
            sign * move.volume.value;
      state.routes[key] += sign * move.volume.value;
      if (state.routes[key] <= kEps) state.routes.erase(key);
    }
  }
  state_ = std::move(state);
  next_round_ = next_round;
  result_ = restored;
  return true;
}

}  // namespace rwc::update
