// Library identification for rwc_update.
namespace rwc::update {

/// Version string of the update subsystem (matches the top-level project).
const char* version() { return "1.0.0"; }

}  // namespace rwc::update
