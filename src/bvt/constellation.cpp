#include "bvt/constellation.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace rwc::bvt {

using util::Db;

std::vector<IqPoint> ideal_constellation(int points) {
  std::vector<IqPoint> ideal;
  switch (points) {
    case 2:
      ideal = {{-1.0, 0.0}, {1.0, 0.0}};
      break;
    case 4: {
      const double a = 1.0 / std::numbers::sqrt2;
      ideal = {{a, a}, {-a, a}, {-a, -a}, {a, -a}};
      break;
    }
    case 8: {
      // Star 8QAM: two QPSK rings, outer rotated 45 degrees, radius ratio
      // chosen for equal minimum distance (1 + sqrt(3) ratio is common; we
      // use the simpler 2x ratio used by several coherent DSPs).
      const double r1 = 1.0;
      const double r2 = 2.0;
      for (int k = 0; k < 4; ++k) {
        const double angle = std::numbers::pi / 2.0 * k;
        ideal.push_back({r1 * std::cos(angle), r1 * std::sin(angle)});
        const double outer = angle + std::numbers::pi / 4.0;
        ideal.push_back({r2 * std::cos(outer), r2 * std::sin(outer)});
      }
      break;
    }
    case 16: {
      for (double i : {-3.0, -1.0, 1.0, 3.0})
        for (double q : {-3.0, -1.0, 1.0, 3.0}) ideal.push_back({i, q});
      break;
    }
    default:
      RWC_CHECK_MSG(false, "unsupported constellation size");
  }
  // Normalize to unit average power.
  double power = 0.0;
  for (const IqPoint& p : ideal) power += p.i * p.i + p.q * p.q;
  power /= static_cast<double>(ideal.size());
  const double scale = 1.0 / std::sqrt(power);
  for (IqPoint& p : ideal) {
    p.i *= scale;
    p.q *= scale;
  }
  return ideal;
}

std::vector<IqPoint> sample_constellation(int points, Db snr,
                                          std::size_t symbols,
                                          util::Rng& rng) {
  const auto ideal = ideal_constellation(points);
  const double snr_linear = util::db_to_linear(snr);
  // Unit signal power; noise power 1/snr split over the two quadratures.
  const double noise_sigma = std::sqrt(0.5 / snr_linear);
  std::vector<IqPoint> received;
  received.reserve(symbols);
  for (std::size_t s = 0; s < symbols; ++s) {
    const auto& p = ideal[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ideal.size()) - 1))];
    received.push_back({p.i + rng.normal(0.0, noise_sigma),
                        p.q + rng.normal(0.0, noise_sigma)});
  }
  return received;
}

double measure_evm(std::span<const IqPoint> received,
                   std::span<const IqPoint> ideal) {
  RWC_EXPECTS(!received.empty() && !ideal.empty());
  double error_power = 0.0;
  double reference_power = 0.0;
  for (const IqPoint& r : received) {
    double best = std::numeric_limits<double>::infinity();
    double best_power = 0.0;
    for (const IqPoint& p : ideal) {
      const double di = r.i - p.i;
      const double dq = r.q - p.q;
      const double d2 = di * di + dq * dq;
      if (d2 < best) {
        best = d2;
        best_power = p.i * p.i + p.q * p.q;
      }
    }
    error_power += best;
    reference_power += best_power;
  }
  RWC_CHECK(reference_power > 0.0);
  return std::sqrt(error_power / reference_power);
}

std::string render_constellation(std::span<const IqPoint> symbols,
                                 std::size_t grid) {
  RWC_EXPECTS(grid >= 9);
  double radius = 0.0;
  for (const IqPoint& p : symbols)
    radius = std::max({radius, std::abs(p.i), std::abs(p.q)});
  if (radius <= 0.0) radius = 1.0;
  radius *= 1.05;

  std::vector<std::size_t> counts(grid * grid, 0);
  for (const IqPoint& p : symbols) {
    const auto col = static_cast<std::size_t>(std::clamp(
        (p.i + radius) / (2.0 * radius) * static_cast<double>(grid - 1) + 0.5,
        0.0, static_cast<double>(grid - 1)));
    const auto row = static_cast<std::size_t>(std::clamp(
        (radius - p.q) / (2.0 * radius) * static_cast<double>(grid - 1) + 0.5,
        0.0, static_cast<double>(grid - 1)));
    ++counts[row * grid + col];
  }
  std::size_t max_count = 1;
  for (std::size_t c : counts) max_count = std::max(max_count, c);

  static constexpr char kRamp[] = " .:+*#@";
  constexpr std::size_t kLevels = sizeof kRamp - 2;
  std::string out;
  out.reserve((grid + 3) * (grid + 2));
  out += '+' + std::string(grid, '-') + "+\n";
  for (std::size_t row = 0; row < grid; ++row) {
    out += '|';
    for (std::size_t col = 0; col < grid; ++col) {
      const std::size_t c = counts[row * grid + col];
      if (c == 0) {
        // Axis cross-hairs for orientation.
        const bool on_axis = row == grid / 2 || col == grid / 2;
        out += on_axis ? '.' : ' ';
        continue;
      }
      const double level = std::log1p(static_cast<double>(c)) /
                           std::log1p(static_cast<double>(max_count));
      const auto index = static_cast<std::size_t>(
          std::clamp(level * kLevels, 1.0, static_cast<double>(kLevels)));
      out += kRamp[index];
    }
    out += "|\n";
  }
  out += '+' + std::string(grid, '-') + "+\n";
  return out;
}

}  // namespace rwc::bvt
