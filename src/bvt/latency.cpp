#include "bvt/latency.hpp"

namespace rwc::bvt {

const char* to_string(Procedure procedure) {
  switch (procedure) {
    case Procedure::kStandard:
      return "standard";
    case Procedure::kEfficient:
      return "efficient";
  }
  return "unknown";
}

LatencyModel::LatencyModel(LatencyModelParams params) : params_(params) {}

util::Seconds LatencyModel::sample_downtime(Procedure procedure,
                                            util::Rng& rng) const {
  const LatencyModelParams& p = params_;
  if (procedure == Procedure::kStandard) {
    return rng.lognormal_from_moments(p.laser_shutdown_mean,
                                      p.laser_shutdown_sd) +
           rng.lognormal_from_moments(p.register_program_mean,
                                      p.register_program_sd) +
           rng.lognormal_from_moments(p.laser_warmup_mean, p.laser_warmup_sd) +
           rng.lognormal_from_moments(p.dsp_relock_mean, p.dsp_relock_sd);
  }
  return rng.lognormal_from_moments(p.fast_program_mean, p.fast_program_sd) +
         rng.lognormal_from_moments(p.dsp_relock_mean, p.dsp_relock_sd);
}

util::Seconds LatencyModel::expected_downtime(Procedure procedure) const {
  const LatencyModelParams& p = params_;
  if (procedure == Procedure::kStandard) {
    return p.laser_shutdown_mean + p.register_program_mean +
           p.laser_warmup_mean + p.dsp_relock_mean;
  }
  return p.fast_program_mean + p.dsp_relock_mean;
}

util::Seconds LatencyModel::transition_downtime(Procedure procedure,
                                                util::Gbps from, util::Gbps to,
                                                util::Rng* rng) const {
  if (from == to) return 0.0;
  if (rng == nullptr) return expected_downtime(procedure);
  return sample_downtime(procedure, *rng);
}

}  // namespace rwc::bvt
