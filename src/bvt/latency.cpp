#include "bvt/latency.hpp"

namespace rwc::bvt {

const char* to_string(Procedure procedure) {
  switch (procedure) {
    case Procedure::kStandard:
      return "standard";
    case Procedure::kEfficient:
      return "efficient";
  }
  return "unknown";
}

LatencyModel::LatencyModel(LatencyModelParams params) : params_(params) {}

util::Seconds LatencyModel::sample_downtime(Procedure procedure,
                                            util::Rng& rng) const {
  const LatencyModelParams& p = params_;
  if (procedure == Procedure::kStandard) {
    return rng.lognormal_from_moments(p.laser_shutdown_mean,
                                      p.laser_shutdown_sd) +
           rng.lognormal_from_moments(p.register_program_mean,
                                      p.register_program_sd) +
           rng.lognormal_from_moments(p.laser_warmup_mean, p.laser_warmup_sd) +
           rng.lognormal_from_moments(p.dsp_relock_mean, p.dsp_relock_sd);
  }
  return rng.lognormal_from_moments(p.fast_program_mean, p.fast_program_sd) +
         rng.lognormal_from_moments(p.dsp_relock_mean, p.dsp_relock_sd);
}

}  // namespace rwc::bvt
