// Library identification for rwc_bvt.
namespace rwc::bvt {

/// Version string of the bvt subsystem (matches the top-level project).
const char* version() { return "1.0.0"; }

}  // namespace rwc::bvt
