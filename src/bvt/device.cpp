#include "bvt/device.hpp"

#include <algorithm>
#include <cmath>

#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "optical/ber.hpp"
#include "util/check.hpp"

namespace rwc::bvt {

using util::Db;
using util::Gbps;
using util::Seconds;

BvtDevice::BvtDevice(optical::ModulationTable table, std::uint64_t seed,
                     LatencyModelParams latency)
    : table_(std::move(table)), latency_(latency), rng_(seed) {
  // Default to the ladder's 100 Gbps rate when present (today's deployments),
  // otherwise the lowest rate.
  selected_index_ = 0;
  const auto formats = table_.formats();
  for (std::size_t i = 0; i < formats.size(); ++i)
    if (formats[i].capacity == Gbps{100.0}) selected_index_ = i;
  active_index_ = selected_index_;
}

void BvtDevice::set_link_snr(Db snr) {
  snr_ = snr;
  update_lock();
}

void BvtDevice::update_lock() {
  const auto& format = table_.formats()[active_index_];
  carrier_locked_ =
      laser_on_ && tx_enabled_ && optical::format_viable(format, snr_);
  fault_ = laser_on_ && !carrier_locked_;
}

std::uint16_t BvtDevice::mdio_read(Register reg) const {
  switch (reg) {
    case Register::kDeviceId:
      return kBvtDeviceId;
    case Register::kControl: {
      std::uint16_t v = 0;
      if (laser_on_) v |= control::kLaserEnable;
      if (tx_enabled_) v |= control::kTxEnable;
      if (hitless_mode_) v |= control::kHitlessMode;
      return v;  // kApplyConfig is self-clearing and always reads 0
    }
    case Register::kStatus: {
      std::uint16_t v = 0;
      if (laser_on_) v |= status::kLaserOn;
      if (carrier_locked_) v |= status::kCarrierLocked;
      if (fault_) v |= status::kFault;
      return v;
    }
    case Register::kModulationSelect:
      return static_cast<std::uint16_t>(selected_index_);
    case Register::kModulationActive:
      return static_cast<std::uint16_t>(active_index_);
    case Register::kActiveRateGbps:
      return static_cast<std::uint16_t>(
          table_.formats()[active_index_].capacity.value);
    case Register::kSnrCentiDb:
      return static_cast<std::uint16_t>(
          std::clamp(snr_.value * 100.0, 0.0, 65535.0));
    case Register::kReconfigCount:
      return static_cast<std::uint16_t>(reconfig_count_ & 0xFFFF);
    case Register::kLastReconfigMs:
      return static_cast<std::uint16_t>(
          std::clamp(last_reconfig_ * 1000.0, 0.0, 65535.0));
  }
  return 0;
}

void BvtDevice::mdio_write(Register reg, std::uint16_t value) {
  switch (reg) {
    case Register::kControl: {
      laser_on_ = (value & control::kLaserEnable) != 0;
      tx_enabled_ = (value & control::kTxEnable) != 0;
      hitless_mode_ = (value & control::kHitlessMode) != 0;
      if ((value & control::kApplyConfig) != 0) {
        active_index_ = selected_index_;
        ++reconfig_count_;
      }
      update_lock();
      return;
    }
    case Register::kModulationSelect:
      RWC_EXPECTS(value < table_.formats().size());
      selected_index_ = value;
      return;
    default:
      // Writes to RO registers are ignored (like real hardware).
      return;
  }
}

Seconds BvtDevice::power_on() {
  if (laser_on_) return 0.0;
  const Seconds warmup = rng_.lognormal_from_moments(
      latency_.params().laser_warmup_mean, latency_.params().laser_warmup_sd);
  mdio_write(Register::kControl,
             static_cast<std::uint16_t>(mdio_read(Register::kControl) |
                                        control::kLaserEnable));
  return warmup;
}

void BvtDevice::power_off() {
  mdio_write(Register::kControl,
             static_cast<std::uint16_t>(mdio_read(Register::kControl) &
                                        ~control::kLaserEnable));
}

ReconfigReport BvtDevice::change_modulation(Gbps target,
                                            Procedure procedure) {
  RWC_EXPECTS(table_.has_rate(target));
  ReconfigReport report;
  report.procedure = procedure;
  report.from = table_.formats()[active_index_].capacity;
  report.to = target;

  std::size_t target_index = 0;
  const auto formats = table_.formats();
  for (std::size_t i = 0; i < formats.size(); ++i)
    if (formats[i].capacity == target) target_index = i;

  // Fault injection (docs/FAULTS.md, site bvt.reconfig): the change may
  // abort mid-laser-transition (fail), take extra time (stall), or
  // complete with the old constellation still active (stale).
  const fault::Action fault_action = fault::next("bvt.reconfig");
  const bool aborted = fault_action.kind == fault::Kind::kFail;
  // A stale apply: the DSP acks the procedure but the modulation change
  // never takes — active state (constellation, rate) stays at the old
  // format while the driver believes the sequence completed.
  const std::uint16_t apply_bit =
      fault_action.kind == fault::Kind::kStale
          ? 0
          : static_cast<std::uint16_t>(control::kApplyConfig);

  // Register sequence a driver would issue.
  const std::uint16_t base_control =
      static_cast<std::uint16_t>(control::kTxEnable | control::kLaserEnable);
  mdio_write(Register::kModulationSelect,
             static_cast<std::uint16_t>(target_index));
  if (aborted) {
    // Mid-laser-transition abort: the laser went down for the power-cycle
    // bracket and the procedure died before the apply — the laser stays
    // off, nothing was applied, the carrier is unlocked.
    mdio_write(Register::kControl,
               static_cast<std::uint16_t>(control::kTxEnable));
  } else if (procedure == Procedure::kStandard) {
    // Laser power-cycle bracket around the apply.
    mdio_write(Register::kControl,
               static_cast<std::uint16_t>(control::kTxEnable));  // laser off
    mdio_write(Register::kControl,
               static_cast<std::uint16_t>(base_control | apply_bit));
  } else {
    mdio_write(Register::kControl,
               static_cast<std::uint16_t>(base_control | control::kHitlessMode |
                                          apply_bit));
    mdio_write(Register::kControl, base_control);  // clear hitless latch
  }

  report.downtime = latency_.sample_downtime(procedure, rng_);
  if (fault_action.kind == fault::Kind::kStall)
    report.downtime += std::max(fault_action.magnitude, 0.0);
  last_reconfig_ = report.downtime;
  update_lock();
  report.success = carrier_locked_;
  if (!report.success) fault_ = true;

  // Per-procedure downtime distribution — the §3.1 68 s vs 35 ms split
  // (docs/OBSERVABILITY.md: bvt.reconfig.*).
  static auto& changes =
      obs::Registry::global().counter("bvt.reconfig.count");
  static auto& lock_failures =
      obs::Registry::global().counter("bvt.reconfig.lock_failures");
  static auto& standard_downtime = obs::Registry::global().histogram(
      "bvt.reconfig.standard_downtime_seconds");
  static auto& efficient_downtime = obs::Registry::global().histogram(
      "bvt.reconfig.efficient_downtime_seconds");
  changes.add();
  if (!report.success) lock_failures.add();
  (procedure == Procedure::kStandard ? standard_downtime
                                     : efficient_downtime)
      .observe(report.downtime);
  return report;
}

Gbps BvtDevice::active_capacity() const {
  if (!carrier_locked_) return Gbps{0.0};
  return table_.formats()[active_index_].capacity;
}

const optical::ModulationFormat& BvtDevice::active_format() const {
  return table_.formats()[active_index_];
}

}  // namespace rwc::bvt
