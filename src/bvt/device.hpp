// Simulated bandwidth-variable transceiver.
//
// The device exposes the MDIO register file of registers.hpp and a
// convenience driver (`change_modulation`) that performs the same register
// sequence a controller would: select modulation, optionally power-cycle the
// laser, apply, wait for DSP lock. Durations are sampled from LatencyModel;
// lock success depends on the link SNR via the optical BER model.
#pragma once

#include <cstdint>

#include "bvt/latency.hpp"
#include "bvt/registers.hpp"
#include "optical/modulation.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace rwc::bvt {

/// Outcome of one modulation change.
struct ReconfigReport {
  bool success = false;            // carrier locked at the target rate
  Procedure procedure = Procedure::kStandard;
  util::Gbps from{0.0};
  util::Gbps to{0.0};
  /// Time the link carried no traffic during the change.
  util::Seconds downtime = 0.0;
};

class BvtDevice {
 public:
  BvtDevice(optical::ModulationTable table, std::uint64_t seed,
            LatencyModelParams latency = {});

  // --- Physical environment -------------------------------------------
  /// Updates the SNR the receiver sees; re-evaluates carrier lock.
  void set_link_snr(util::Db snr);
  util::Db link_snr() const { return snr_; }

  // --- MDIO access ------------------------------------------------------
  std::uint16_t mdio_read(Register reg) const;
  void mdio_write(Register reg, std::uint16_t value);

  // --- High-level driver -------------------------------------------------
  /// Drives a modulation change to `target` (must be a ladder rate) with the
  /// given procedure. Returns the sampled downtime and whether the carrier
  /// locked (it fails when the SNR cannot sustain the target format).
  ReconfigReport change_modulation(util::Gbps target, Procedure procedure);

  /// Turns the laser on (no-op when already on); returns the warm-up time.
  util::Seconds power_on();
  void power_off();

  bool laser_on() const { return laser_on_; }
  bool carrier_locked() const { return carrier_locked_; }
  /// Traffic-carrying rate: active rate when locked, else 0.
  util::Gbps active_capacity() const;
  const optical::ModulationFormat& active_format() const;
  std::uint32_t reconfig_count() const { return reconfig_count_; }
  const optical::ModulationTable& table() const { return table_; }

 private:
  void update_lock();

  optical::ModulationTable table_;
  LatencyModel latency_;
  util::Rng rng_;
  util::Db snr_{0.0};
  std::size_t selected_index_ = 0;  // kModulationSelect
  std::size_t active_index_ = 0;    // kModulationActive
  bool laser_on_ = false;
  bool tx_enabled_ = true;
  bool hitless_mode_ = false;
  bool carrier_locked_ = false;
  bool fault_ = false;
  std::uint32_t reconfig_count_ = 0;
  util::Seconds last_reconfig_ = 0.0;
};

}  // namespace rwc::bvt
