// MDIO register map of the simulated bandwidth-variable transceiver (BVT).
//
// The paper programs modulation changes over the transceiver's MDIO
// interface; we model a compatible 16-bit register file so the controller
// code path (program registers -> apply -> wait for lock) matches how a real
// flex-rate module is driven.
#pragma once

#include <cstdint>

namespace rwc::bvt {

/// Register addresses (clause-45 style flat 16-bit space).
enum class Register : std::uint16_t {
  kDeviceId = 0x0000,          // RO: constant kBvtDeviceId
  kControl = 0x0001,           // RW: control bits
  kStatus = 0x0002,            // RO: status bits
  kModulationSelect = 0x0010,  // RW: requested ladder index
  kModulationActive = 0x0011,  // RO: currently active ladder index
  kActiveRateGbps = 0x0012,    // RO: active line rate in Gbps
  kSnrCentiDb = 0x0020,        // RO: reported SNR in 0.01 dB units
  kReconfigCount = 0x0030,     // RO: lifetime modulation changes
  kLastReconfigMs = 0x0031,    // RO: last change duration in ms (saturating)
};

inline constexpr std::uint16_t kBvtDeviceId = 0xACC1;

/// Control register bits.
namespace control {
inline constexpr std::uint16_t kLaserEnable = 1u << 0;
inline constexpr std::uint16_t kTxEnable = 1u << 1;
/// Self-clearing: latches kModulationSelect into the datapath.
inline constexpr std::uint16_t kApplyConfig = 1u << 2;
/// When set, kApplyConfig performs an efficient (laser kept on) change.
inline constexpr std::uint16_t kHitlessMode = 1u << 3;
}  // namespace control

/// Status register bits.
namespace status {
inline constexpr std::uint16_t kLaserOn = 1u << 0;
inline constexpr std::uint16_t kCarrierLocked = 1u << 1;
inline constexpr std::uint16_t kFault = 1u << 2;
}  // namespace status

}  // namespace rwc::bvt
