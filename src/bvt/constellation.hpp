// Constellation generation and measurement (paper Fig. 5): ideal symbol
// grids for the coherent formats, AWGN sampling at a given SNR, EVM
// measurement, and an ASCII renderer for bench output.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace rwc::bvt {

/// One complex symbol (in-phase / quadrature).
struct IqPoint {
  double i = 0.0;
  double q = 0.0;
};

/// Ideal constellation for a format with 2^bits points, normalized to unit
/// average symbol power. Supported: 2 (BPSK), 4 (QPSK), 8 (star 8QAM),
/// 16 (square 16QAM).
std::vector<IqPoint> ideal_constellation(int points);

/// Draws `symbols` received symbols: uniformly random ideal points plus
/// complex AWGN at symbol SNR `snr`.
std::vector<IqPoint> sample_constellation(int points, util::Db snr,
                                          std::size_t symbols,
                                          util::Rng& rng);

/// RMS error-vector magnitude of received symbols against the nearest ideal
/// point, as a fraction of RMS reference power.
double measure_evm(std::span<const IqPoint> received,
                   std::span<const IqPoint> ideal);

/// Renders the symbols as an ASCII density plot (darker glyph = more hits).
std::string render_constellation(std::span<const IqPoint> symbols,
                                 std::size_t grid = 33);

}  // namespace rwc::bvt
