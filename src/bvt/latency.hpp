// Latency model of a BVT modulation change (paper Section 3.1 / Fig. 6b).
//
// State-of-the-art modules power-cycle the laser around a modulation change;
// the warm-up dominates and yields ~68 s average downtime. Keeping the laser
// on ("efficient" / hitless-leaning procedure) leaves only register
// programming and DSP re-lock: ~35 ms average.
#pragma once

#include "util/rng.hpp"
#include "util/units.hpp"

namespace rwc::bvt {

/// How a modulation change is executed.
enum class Procedure {
  kStandard,   // laser power-cycled (today's firmware default)
  kEfficient,  // laser kept on; only the DSP path reconfigures
};

const char* to_string(Procedure procedure);

struct LatencyModelParams {
  // Standard procedure components (seconds).
  double laser_shutdown_mean = 1.5;
  double laser_shutdown_sd = 0.4;
  double laser_warmup_mean = 65.0;
  double laser_warmup_sd = 22.0;
  double register_program_mean = 0.8;  // full reprogram incl. firmware table
  double register_program_sd = 0.3;

  // Efficient procedure components (seconds).
  double fast_program_mean = 0.004;
  double fast_program_sd = 0.002;
  double dsp_relock_mean = 0.030;
  double dsp_relock_sd = 0.012;
};

/// Samples per-component and total reconfiguration durations.
class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelParams params = {});

  /// Total traffic-affecting downtime of one modulation change.
  util::Seconds sample_downtime(Procedure procedure, util::Rng& rng) const;

  /// Deterministic downtime: the sum of the component means (the lognormal
  /// components are parameterized by their moments, so this is the exact
  /// expectation of sample_downtime).
  util::Seconds expected_downtime(Procedure procedure) const;

  /// Downtime of a rate transition `from` -> `to`. A no-op transition
  /// (from == to) costs nothing — no laser cycling, no DSP relock; any real
  /// rate change pays the full procedure cost (sampled when `rng` is
  /// non-null, expected otherwise). The modulation-format granularity of
  /// the paper's Fig. 6b makes every 25G step a format change, so cost does
  /// not scale with |from - to|.
  util::Seconds transition_downtime(Procedure procedure, util::Gbps from,
                                    util::Gbps to,
                                    util::Rng* rng = nullptr) const;

  const LatencyModelParams& params() const { return params_; }

 private:
  LatencyModelParams params_;
};

}  // namespace rwc::bvt
