#include "dataplane/timeline.hpp"

#include <algorithm>
#include <cmath>

#include "bvt/latency.hpp"
#include "util/check.hpp"

namespace rwc::dataplane {

double CapacityTimeline::capacity_gbps(std::size_t edge,
                                       std::size_t tick) const {
  RWC_CHECK_MSG(edge < edges.size(), "timeline: edge out of range");
  const std::vector<Event>& events = edges[edge];
  double gbps = 0.0;
  for (const Event& event : events) {
    if (event.tick > tick) break;
    gbps = event.gbps;
  }
  return gbps;
}

bool CapacityTimeline::in_window(std::size_t tick) const {
  for (const auto& [begin, end] : windows)
    if (tick >= begin && tick < end) return true;
  return false;
}

std::uint32_t CapacityTimeline::last_window_end() const {
  std::uint32_t last = 0;
  for (const auto& [begin, end] : windows) last = std::max(last, end);
  return last;
}

void CapacityTimeline::add_event(std::size_t edge, std::uint32_t tick,
                                 double gbps) {
  RWC_CHECK_MSG(edge < edges.size(), "timeline: edge out of range");
  std::vector<Event>& events = edges[edge];
  auto it = std::lower_bound(
      events.begin(), events.end(), tick,
      [](const Event& event, std::uint32_t t) { return event.tick < t; });
  if (it != events.end() && it->tick == tick) {
    it->gbps = gbps;
  } else {
    events.insert(it, Event{tick, gbps});
  }
}

CapacityTimeline build_timeline(std::span<const util::Gbps> before,
                                std::span<const util::Gbps> after,
                                const update::UpdateSchedule* schedule,
                                std::size_t ticks, double tick_seconds) {
  RWC_CHECK_MSG(before.size() == after.size(),
                "timeline: before/after capacity size mismatch");
  RWC_CHECK_MSG(ticks >= 8, "timeline: need at least 8 ticks per round");
  CapacityTimeline timeline;
  timeline.ticks = ticks;
  timeline.tick_seconds = tick_seconds;
  timeline.edges.resize(before.size());

  const bool usable = schedule != nullptr && schedule->feasible &&
                      !schedule->rounds.empty();
  if (!usable) {
    // No executable schedule: capacities jump to `after` at tick 0. If
    // anything actually changed, charge a synthetic transient window so
    // the oracle does not score the settling ticks as steady state.
    bool changed = false;
    for (std::size_t e = 0; e < before.size(); ++e) {
      timeline.edges[e].push_back({0, after[e].value});
      if (before[e].value != after[e].value) changed = true;
    }
    if (changed)
      timeline.windows.emplace_back(
          0, static_cast<std::uint32_t>(std::max<std::size_t>(1, ticks / 8)));
    return timeline;
  }

  // Compress the schedule's rounds into the leading half of the tick
  // budget, each round's window proportional to its share of the makespan
  // (minimum one tick so every window exists).
  const std::size_t budget = std::max<std::size_t>(ticks / 2,
                                                   schedule->rounds.size());
  double makespan = 0.0;
  for (const update::UpdateRound& round : schedule->rounds)
    makespan += round.duration_seconds;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> round_window(
      schedule->rounds.size());
  std::uint32_t cursor = 0;
  for (std::size_t k = 0; k < schedule->rounds.size(); ++k) {
    const double share =
        makespan > 0.0
            ? schedule->rounds[k].duration_seconds / makespan
            : 1.0 / static_cast<double>(schedule->rounds.size());
    std::uint32_t width = static_cast<std::uint32_t>(std::max(
        1.0, std::floor(share * static_cast<double>(budget))));
    const std::uint32_t remaining_rounds =
        static_cast<std::uint32_t>(schedule->rounds.size() - k);
    const std::uint32_t cap = static_cast<std::uint32_t>(budget) - cursor;
    // Leave at least one tick for every remaining round.
    width = std::min(width, cap >= remaining_rounds
                                ? cap - (remaining_rounds - 1)
                                : 1u);
    round_window[k] = {cursor, cursor + width};
    cursor += width;
  }
  timeline.windows.emplace_back(0, cursor);

  // Per edge: `before` until its reconfig window, the drain limit inside
  // it, `to` afterwards. Edges without a reconfig move hold `after` from
  // tick 0 (their before == after when the schedule validated).
  for (std::size_t e = 0; e < before.size(); ++e)
    timeline.edges[e].push_back({0, before[e].value});
  for (std::size_t k = 0; k < schedule->rounds.size(); ++k) {
    for (const update::Move& move : schedule->rounds[k].moves) {
      if (move.kind != update::Move::Kind::kReconfig) continue;
      const std::size_t e = static_cast<std::size_t>(move.edge.value);
      RWC_CHECK_MSG(e < before.size(), "timeline: reconfig edge out of range");
      const double limit =
          schedule->procedure == bvt::Procedure::kStandard
              ? 0.0
              : std::min(move.from.value, move.to.value);
      const auto [begin, end] = round_window[k];
      CapacityTimeline& t = timeline;
      t.add_event(e, begin, limit);
      t.add_event(e, end, move.to.value);
    }
  }
  // Whatever the schedule did, the round must end at the configured
  // capacities (validate_schedule guarantees the terminal state; this
  // also covers edges the planner never touched).
  for (std::size_t e = 0; e < after.size(); ++e) {
    if (timeline.capacity_gbps(e, ticks - 1) != after[e].value)
      timeline.add_event(e, cursor, after[e].value);
  }
  return timeline;
}

}  // namespace rwc::dataplane
