// WCMP flowlet placement (rwc::dataplane) — docs/DATAPLANE.md §3.
//
// Each OD pair's traffic is carried by a fixed set of flowlets (hash
// units); every flowlet independently picks one of the OD's installed
// tunnel paths by weighted rendezvous (highest-random-weight) hashing:
// for each candidate path the flowlet draws a deterministic uniform from
// hash(flowlet key, path identity, salt) and scores it -ln(u) / weight;
// the minimum score wins. Rendezvous hashing is what makes re-splits
// minimal: when one path's weight changes, only flowlets whose winning
// score involved that path can change their pick — everything else keeps
// both its score set and its argmin, so a weight change migrates only the
// flowlet mass that must move (tests/test_dataplane_unit.cpp pins this).
//
// Placement is pure arithmetic on (key, weights, path identities): no RNG
// state, no iteration order — bit-identical at every pool size. The
// `dataplane.hash` fault site perturbs the salt (kGarbage) or freezes the
// previous pick (kStale) per flowlet; see docs/FAULTS.md.
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.hpp"

namespace rwc::dataplane {

/// Stable 64-bit identity of a tunnel path: a mix of its edge id sequence.
/// Paths compare by identity across rounds (path objects are rebuilt every
/// round; their edge sequences are what persists).
std::uint64_t path_identity(std::span<const graph::EdgeId> edges);

/// The flowlet's stable hash key within the family rooted at `salt`.
std::uint64_t flowlet_key(std::uint32_t od, std::uint32_t flowlet,
                          std::uint64_t salt);

/// Weighted rendezvous pick: index of the winning path among `weights`
/// (> 0 entries only compete; zero/negative weights never win unless all
/// are). Requires weights.size() == identities.size() and at least one
/// entry. Deterministic in (key, weights, identities).
std::size_t wcmp_pick(std::uint64_t key, std::span<const double> weights,
                      std::span<const std::uint64_t> identities);

}  // namespace rwc::dataplane
