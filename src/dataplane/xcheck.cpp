#include "dataplane/xcheck.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <utility>

#include "core/controller.hpp"
#include "exec/thread_pool.hpp"
#include "optical/modulation.hpp"
#include "sim/topology.hpp"
#include "sim/workload.hpp"
#include "te/mcf_te.hpp"
#include "te/swan.hpp"
#include "util/rng.hpp"

namespace rwc::dataplane {

namespace {

inline std::uint64_t mix64(std::uint64_t hash, std::uint64_t value) {
  hash ^= value + 0x9e3779b97f4a7c15ull + (hash << 6) + (hash >> 2);
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  return hash;
}

/// Relative conservation slack: long rounds accumulate ulp-level error in
/// the byte ledgers.
constexpr double kConservationRelTol = 1e-9;
constexpr double kConservationAbsTolBytes = 1.0;

struct Fixture {
  graph::Graph topology;
  te::TrafficMatrix demands;
  std::vector<std::vector<util::Db>> snr_rounds;
};

Fixture make_fixture(const XcheckConfig& config) {
  Fixture fixture;
  util::Rng topo_rng = util::Rng::stream(config.seed, 810);
  fixture.topology = sim::waxman(config.nodes, topo_rng);
  util::Rng demand_rng = util::Rng::stream(config.seed, 811);
  const util::Gbps total{fixture.topology.total_capacity().value *
                         config.demand_load};
  if (config.demand_aware) {
    sim::DemandAwareParams params;
    params.total = total;
    fixture.demands =
        sim::demand_aware_matrix(fixture.topology, params, demand_rng);
  } else {
    sim::GravityParams gravity;
    gravity.total = total;
    fixture.demands =
        sim::gravity_matrix(fixture.topology, gravity, demand_rng);
  }
  // SNR random walk between deep fade and strong headroom: rounds carry
  // flaps, restorations and TE upgrades — real transition material.
  util::Rng snr_rng = util::Rng::stream(config.seed, 812);
  const std::size_t edges = fixture.topology.edge_count();
  std::vector<util::Db> snr(edges, util::Db{20.0});
  for (std::size_t r = 0; r < config.rounds; ++r) {
    for (std::size_t e = 0; e < edges; ++e) {
      double db = snr[e].value + snr_rng.uniform(-3.0, 3.0);
      snr[e] = util::Db{std::clamp(db, 8.0, 24.0)};
    }
    fixture.snr_rounds.push_back(snr);
  }
  return fixture;
}

void fail(XcheckOutcome& outcome, std::string message) {
  if (outcome.pass) {
    outcome.pass = false;
    outcome.failure = std::move(message);
  }
}

}  // namespace

XcheckOutcome run_xcheck(const XcheckConfig& config) {
  const Fixture fixture = make_fixture(config);
  const std::size_t edges = fixture.topology.edge_count();

  core::ControllerOptions options;
  options.pool = config.pool;
  if (config.schedule_updates) {
    update::SchedulerConfig update;
    update.headroom = 0.1;
    update.seed = config.seed;
    options.update = update;
  }
  const te::McfTe mcf;
  const te::SwanTe swan;
  const te::TeAlgorithm& engine =
      config.engine == XcheckEngine::kMcf
          ? static_cast<const te::TeAlgorithm&>(mcf)
          : static_cast<const te::TeAlgorithm&>(swan);
  auto controller = std::make_unique<core::DynamicCapacityController>(
      fixture.topology, optical::ModulationTable::standard(), engine,
      options);

  DataplaneConfig dp_config = config.dataplane;
  dp_config.pool = config.pool;
  auto sim = std::make_unique<DataplaneSim>(
      fixture.topology, fixture.demands.size(), dp_config);

  XcheckOutcome outcome;
  outcome.chain = 0x78636865636bull;  // "xcheck"
  for (std::size_t r = 0; r < config.rounds; ++r) {
    if (r == config.checkpoint_round) {
      // Restore-then-continue must be invisible: rebuild both the
      // controller and the dataplane from their captured state.
      core::DynamicCapacityController::PersistentState ctrl_state =
          controller->save_state();
      const std::vector<std::byte> dp_state = sim->save_state();
      controller = std::make_unique<core::DynamicCapacityController>(
          fixture.topology, optical::ModulationTable::standard(), engine,
          options);
      controller->restore_state(std::move(ctrl_state));
      sim = std::make_unique<DataplaneSim>(
          fixture.topology, fixture.demands.size(), dp_config);
      sim->restore_state(dp_state);
    }

    const std::span<const util::Gbps> configured =
        controller->configured_capacities();
    const std::vector<util::Gbps> before(configured.begin(),
                                         configured.end());
    const core::DynamicCapacityController::RoundReport report =
        controller->run_round(fixture.snr_rounds[r], fixture.demands);
    const std::span<const util::Gbps> after =
        controller->configured_capacities();

    const update::UpdateSchedule* schedule =
        report.update.has_value() && report.update_valid
            ? &*report.update
            : nullptr;
    CapacityTimeline timeline = build_timeline(
        before, after, schedule, dp_config.ticks_per_round,
        dp_config.tick_seconds);

    XcheckRound round;
    round.scheduled = schedule != nullptr;
    if (r == config.downshift_round && edges > 0) {
      // Force an UNSCHEDULED mid-round downshift of the busiest link:
      // the HPCC reaction leg. The tick sits inside the measurement
      // region on purpose — the shortfall clause is exempted below.
      const std::vector<double>& load =
          controller->last_assignment().edge_load_gbps;
      std::size_t busiest = 0;
      for (std::size_t e = 1; e < load.size(); ++e)
        if (load[e] > load[busiest]) busiest = e;
      const double now = timeline.capacity_gbps(
          busiest, dp_config.ticks_per_round - 1);
      timeline.add_event(
          busiest,
          static_cast<std::uint32_t>(dp_config.ticks_per_round * 5 / 8),
          now * config.downshift_factor);
      round.downshifted = true;
    }

    const RoundResult result =
        sim->run_round(controller->last_assignment(), timeline);

    // Gap oracle against the solver allocation.
    const te::FlowAssignment& assignment = controller->last_assignment();
    for (std::size_t i = 0; i < assignment.routings.size(); ++i) {
      const double alloc = assignment.routings[i].routed.value;
      if (alloc < config.min_alloc_gbps) continue;
      const double goodput = result.od_goodput_gbps[i];
      round.total_alloc_gbps += alloc;
      round.total_goodput_gbps += goodput;
      round.max_shortfall =
          std::max(round.max_shortfall, (alloc - goodput) / alloc);
      round.max_overshoot =
          std::max(round.max_overshoot, (goodput - alloc) / alloc);
    }
    round.capacity_violations = result.capacity_violations;
    round.window_violations = result.window_violations;
    round.migrations = result.migrations;
    round.rate_cuts = result.rate_cuts;
    round.delivered_bytes = result.delivered_bytes;
    round.dropped_bytes = result.dropped_bytes;
    for (const LinkRoundStats& link : result.links)
      round.max_queued_bytes =
          std::max(round.max_queued_bytes, link.max_queued_bytes);
    round.signature = result.signature;

    if (!round.downshifted && round.max_shortfall > config.gap_tolerance)
      fail(outcome, "round " + std::to_string(r) + ": goodput shortfall " +
                        std::to_string(round.max_shortfall) + " > " +
                        std::to_string(config.gap_tolerance));
    if (round.max_overshoot > config.overshoot_tolerance)
      fail(outcome, "round " + std::to_string(r) + ": goodput overshoot " +
                        std::to_string(round.max_overshoot) + " > " +
                        std::to_string(config.overshoot_tolerance));
    if (round.capacity_violations > 0)
      fail(outcome, "round " + std::to_string(r) +
                        ": capacity violated outside update windows");
    if (round.downshifted && round.rate_cuts == 0)
      fail(outcome, "round " + std::to_string(r) +
                        ": forced downshift produced no HPCC rate cuts");
    const double ledger = result.delivered_bytes + result.dropped_bytes +
                          result.inflight_bytes;
    if (std::abs(ledger - result.injected_bytes) >
        result.injected_bytes * kConservationRelTol +
            kConservationAbsTolBytes)
      fail(outcome, "round " + std::to_string(r) +
                        ": byte conservation broken (injected " +
                        std::to_string(result.injected_bytes) +
                        " vs accounted " + std::to_string(ledger) + ")");

    outcome.max_shortfall =
        std::max(outcome.max_shortfall, round.downshifted
                                            ? 0.0
                                            : round.max_shortfall);
    outcome.max_overshoot =
        std::max(outcome.max_overshoot, round.max_overshoot);
    outcome.capacity_violations += round.capacity_violations;
    outcome.window_violations += round.window_violations;
    outcome.migrations += round.migrations;
    outcome.chain = mix64(outcome.chain, round.signature);
    outcome.chain = mix64(
        outcome.chain, std::bit_cast<std::uint64_t>(round.max_shortfall));
    outcome.rounds.push_back(round);
  }
  return outcome;
}

}  // namespace rwc::dataplane
