// Solver-vs-dataplane differential oracle (rwc::dataplane) —
// docs/DATAPLANE.md §5.
//
// run_xcheck drives the full pipeline on one seeded WAN instance: a
// Waxman (or Hanauer-style demand-aware) workload through the real
// DynamicCapacityController — SNR flaps, TE solve, consistent-update
// schedule — and then replays every round's installed plan through the
// DataplaneSim. The oracle per round:
//
//   * per-OD goodput within `gap_tolerance` of the solver allocation
//     (shortfall), and never above it beyond `overshoot_tolerance`
//     (WCMP hash granularity + transition-backlog drain);
//   * zero capacity-safety violations outside scheduled update windows
//     (and, with the proportional-service discipline, inside them too);
//   * conservation: injected == delivered + dropped + in-flight.
//
// Rounds with a forced unscheduled downshift (`downshift_round`) exempt
// the shortfall clause — capacity vanished mid-round with no schedule —
// and instead require the HPCC reaction to have fired (rate cuts > 0)
// with capacity safety intact. Everything is a pure function of
// (config, pool-independent): bench/dataplane_xcheck --selfcheck pins
// bit-identity across pool sizes {1,2,8} and checkpoint restore.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/dataplane.hpp"

namespace rwc::exec {
class ThreadPool;
}

namespace rwc::dataplane {

enum class XcheckEngine { kMcf, kSwan };

struct XcheckConfig {
  std::uint64_t seed = 1;
  int nodes = 10;
  std::size_t rounds = 4;
  XcheckEngine engine = XcheckEngine::kMcf;
  /// Demand total as a fraction of topology capacity.
  double demand_load = 0.4;
  /// Hanauer-style demand-aware (elephant-skewed) workload instead of the
  /// gravity model (sim/workload.hpp).
  bool demand_aware = false;
  /// Plan consistent-update schedules (core's update stage) so the
  /// timeline carries real reconfig windows.
  bool schedule_updates = true;
  /// Max tolerated relative goodput shortfall vs the solver allocation.
  double gap_tolerance = 0.02;
  /// Max tolerated relative overshoot (hash granularity + backlog drain).
  double overshoot_tolerance = 0.02;
  /// Allocation below which an OD is not scored (Gbps).
  double min_alloc_gbps = 1e-3;
  /// Round on which to force an unscheduled mid-round downshift of the
  /// most-loaded link to `downshift_factor` of its capacity (SIZE_MAX =
  /// never) — the HPCC reaction leg.
  std::size_t downshift_round = static_cast<std::size_t>(-1);
  double downshift_factor = 0.25;
  /// Round before which to checkpoint + rebuild + restore both the
  /// controller and the dataplane (SIZE_MAX = never). The outcome must be
  /// bit-identical to an uninterrupted run — the restore-then-continue
  /// gate of bench/dataplane_xcheck --selfcheck.
  std::size_t checkpoint_round = static_cast<std::size_t>(-1);
  DataplaneConfig dataplane;
  /// Pool for controller + dataplane; nullptr = exec::ThreadPool::global().
  exec::ThreadPool* pool = nullptr;
};

struct XcheckRound {
  double max_shortfall = 0.0;  ///< max over scored ODs, relative
  double max_overshoot = 0.0;
  double total_alloc_gbps = 0.0;
  double total_goodput_gbps = 0.0;
  std::uint64_t capacity_violations = 0;
  std::uint64_t window_violations = 0;
  std::uint64_t migrations = 0;
  std::uint64_t rate_cuts = 0;
  double delivered_bytes = 0.0;
  double dropped_bytes = 0.0;
  double max_queued_bytes = 0.0;
  bool scheduled = false;   ///< a feasible update schedule shaped the round
  bool downshifted = false; ///< forced unscheduled downshift fired
  std::uint64_t signature = 0;  ///< dataplane state fold after the round
};

struct XcheckOutcome {
  bool pass = true;
  std::string failure;  ///< first violated clause (empty when pass)
  std::vector<XcheckRound> rounds;
  double max_shortfall = 0.0;
  double max_overshoot = 0.0;
  std::uint64_t capacity_violations = 0;  ///< outside update windows
  std::uint64_t window_violations = 0;
  std::uint64_t migrations = 0;
  /// Fold of every round's signature in round order: two runs agree on
  /// every dataplane round iff the chains agree.
  std::uint64_t chain = 0;
};

/// Runs the differential oracle on one seeded instance. Bit-identical at
/// every pool size and across checkpoint restore-then-continue.
XcheckOutcome run_xcheck(const XcheckConfig& config);

}  // namespace rwc::dataplane
