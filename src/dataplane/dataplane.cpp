#include "dataplane/dataplane.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "dataplane/wcmp.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "fault/registry.hpp"
#include "obs/registry.hpp"
#include "replay/wire.hpp"
#include "util/check.hpp"

namespace rwc::dataplane {

namespace {

inline std::uint64_t mix64(std::uint64_t hash, std::uint64_t value) {
  hash ^= value + 0x9e3779b97f4a7c15ull + (hash << 6) + (hash >> 2);
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  return hash;
}

inline std::uint64_t mix64(std::uint64_t hash, double value) {
  return mix64(hash, std::bit_cast<std::uint64_t>(value));
}

/// Utilization stand-in for a dark link with queued bytes: large enough
/// that one multiplicative cut collapses the rate, small enough to keep
/// the arithmetic finite.
constexpr double kDarkUtilization = 1e6;
/// Rate floor as a fraction of the flowlet's allocated rate.
constexpr double kMinRateFraction = 0x1.0p-20;
/// FP tolerance of the per-tick capacity-safety audit (relative + bytes).
constexpr double kServiceRelTol = 1e-9;
constexpr double kServiceAbsTolBytes = 1e-3;

constexpr std::uint32_t kStateMagic = 0x52574344u;  // "RWCD"
constexpr std::uint32_t kStateVersion = 1;

struct Metrics {
  obs::Counter& rounds;
  obs::Counter& ticks;
  obs::Counter& migrations;
  obs::Counter& rate_cuts;
  obs::Counter& delivered_bytes;
  obs::Counter& dropped_bytes;
  obs::Counter& capacity_violations;
  obs::Gauge& inflight_bytes;

  static Metrics& get() {
    static Metrics metrics{
        obs::Registry::global().counter("dataplane.rounds"),
        obs::Registry::global().counter("dataplane.ticks"),
        obs::Registry::global().counter("dataplane.migrations"),
        obs::Registry::global().counter("dataplane.rate_cuts"),
        obs::Registry::global().counter("dataplane.delivered_bytes"),
        obs::Registry::global().counter("dataplane.dropped_bytes"),
        obs::Registry::global().counter("dataplane.capacity_violations"),
        obs::Registry::global().gauge("dataplane.inflight_bytes"),
    };
    return metrics;
  }
};

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

DataplaneSim::DataplaneSim(const graph::Graph& topology, std::size_t ods,
                           DataplaneConfig config)
    : config_(config),
      edge_count_(topology.edge_count()),
      ods_(ods) {
  RWC_CHECK_MSG(config_.tick_seconds > 0.0, "dataplane: tick_seconds <= 0");
  RWC_CHECK_MSG(config_.ticks_per_round >= 8 &&
                    is_pow2(config_.ticks_per_round),
                "dataplane: ticks_per_round must be a power of two >= 8");
  RWC_CHECK_MSG(is_pow2(config_.flowlets_per_od),
                "dataplane: flowlets_per_od must be a power of two");
  flowlets_.resize(ods_ * config_.flowlets_per_od);
  for (std::size_t i = 0; i < ods_; ++i)
    for (std::size_t j = 0; j < config_.flowlets_per_od; ++j)
      flowlets_[i * config_.flowlets_per_od + j].od =
          static_cast<std::uint32_t>(i);
  link_queued_.assign(edge_count_, 0.0);
  link_util_.assign(edge_count_, 0.0);
}

void DataplaneSim::install(const te::FlowAssignment& assignment,
                           RoundResult& result) {
  RWC_CHECK_MSG(assignment.routings.size() == ods_,
                "dataplane: assignment OD count mismatch");
  const std::size_t kF = config_.flowlets_per_od;
  std::vector<double> weights;
  std::vector<std::uint64_t> identities;
  std::vector<const graph::Path*> paths;
  std::vector<std::uint32_t> counts;
  std::vector<std::size_t> picks(kF);

  for (std::size_t i = 0; i < ods_; ++i) {
    const te::FlowAssignment::DemandRouting& routing = assignment.routings[i];
    weights.clear();
    identities.clear();
    paths.clear();
    for (const auto& [path, volume] : routing.paths) {
      if (!(volume.value > 0.0) || path.empty()) continue;
      weights.push_back(volume.value);
      identities.push_back(path_identity(path.edges));
      paths.push_back(&path);
    }

    Flowlet* base = &flowlets_[i * kF];
    if (paths.empty()) {
      // Unrouted OD: sources stop injecting; in-flight bytes keep
      // draining on their old paths.
      for (std::size_t j = 0; j < kF; ++j) {
        Flowlet& fl = base[j];
        fl.offered_gbps = 0.0;
        fl.rate_gbps = 0.0;
        if (!fl.active.hops.empty()) {
          if (fl.active.inflight() > 0.0)
            fl.draining.push_back(std::move(fl.active));
          fl.active = Pipeline{};
        }
      }
      continue;
    }

    // WCMP placement (dataplane.hash faults perturb per flowlet).
    counts.assign(paths.size(), 0);
    for (std::size_t j = 0; j < kF; ++j) {
      Flowlet& fl = base[j];
      std::uint64_t salt = config_.hash_salt;
      bool stale = false;
      if (const fault::Action action = fault::at(
              "dataplane.hash", static_cast<std::uint64_t>(i * kF + j))) {
        if (action.kind == fault::Kind::kGarbage)
          salt = mix64(salt, action.magnitude + static_cast<double>(j));
        else if (action.kind == fault::Kind::kStale)
          stale = true;
      }
      std::size_t pick = wcmp_pick(
          flowlet_key(static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(j), salt),
          weights, identities);
      if (stale && fl.active.path_id != 0) {
        for (std::size_t p = 0; p < identities.size(); ++p)
          if (identities[p] == fl.active.path_id) {
            pick = p;
            break;
          }
      }
      picks[j] = pick;
      ++counts[pick];
    }
    // Coverage fixup: a path the solver loaded must carry at least one
    // flowlet, or its volume would be silently unroutable. Steal from the
    // most-loaded path (lowest index on ties) deterministically.
    for (std::size_t p = 0; p < paths.size(); ++p) {
      if (counts[p] != 0) continue;
      std::size_t donor = 0;
      for (std::size_t q = 1; q < counts.size(); ++q)
        if (counts[q] > counts[donor]) donor = q;
      if (counts[donor] < 2) continue;  // nothing to steal
      for (std::size_t j = kF; j-- > 0;)
        if (picks[j] == donor) {
          picks[j] = p;
          break;
        }
      --counts[donor];
      ++counts[p];
    }

    // Install: shape each path's flowlets to an equal share of the
    // installed path volume, so per-path offered load equals the solver's
    // split exactly (goodput can never exceed the allocation except by
    // transient queue drain — docs/DATAPLANE.md §5).
    for (std::size_t j = 0; j < kF; ++j) {
      Flowlet& fl = base[j];
      const std::size_t pick = picks[j];
      const double offered =
          weights[pick] / static_cast<double>(counts[pick]);
      const std::uint64_t path_id = identities[pick];
      if (fl.active.path_id != path_id) {
        if (fl.active.path_id != 0) ++result.migrations;
        if (fl.active.inflight() > 0.0)
          fl.draining.push_back(std::move(fl.active));
        fl.active = Pipeline{};
        fl.active.path_id = path_id;
        fl.active.hops.reserve(paths[pick]->edges.size());
        for (const graph::EdgeId edge : paths[pick]->edges)
          fl.active.hops.push_back(Hop{edge.value, 0.0, 0.0, 0.0});
        fl.rate_gbps = offered;
      } else if (fl.offered_gbps != offered) {
        // Same path, new allocation: the controller re-shapes the source.
        fl.rate_gbps = offered;
      }
      fl.offered_gbps = offered;
    }
  }
}

RoundResult DataplaneSim::run_round(const te::FlowAssignment& assignment,
                                    const CapacityTimeline& timeline) {
  RWC_CHECK_MSG(timeline.edges.size() == edge_count_,
                "dataplane: timeline edge count mismatch");
  RWC_CHECK_MSG(timeline.ticks == config_.ticks_per_round &&
                    timeline.tick_seconds == config_.tick_seconds,
                "dataplane: timeline tick geometry mismatch");
  exec::ThreadPool& pool =
      config_.pool != nullptr ? *config_.pool : exec::ThreadPool::global();
  Metrics& metrics = Metrics::get();

  const std::size_t ticks = config_.ticks_per_round;
  const double dt = config_.tick_seconds;
  const double bytes_per_gbps_tick = dt * 1e9 / 8.0;
  const double buffer_seconds = config_.buffer_ms / 1e3;
  const double eta = config_.target_utilization;

  RoundResult result;
  result.od_goodput_gbps.assign(ods_, 0.0);
  result.od_delivered_bytes.assign(ods_, 0.0);
  result.links.assign(edge_count_, LinkRoundStats{});
  result.link_od_measured_bytes.assign(edge_count_ * ods_, 0.0);

  install(assignment, result);

  // Measurement region: after the last scheduled window plus a settling
  // margin, and never before mid-round — transition backlog must drain
  // before goodput is scored against the allocation.
  const std::uint32_t settle = static_cast<std::uint32_t>(ticks / 8);
  result.measure_begin = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(ticks - 1),
      std::max<std::uint32_t>(timeline.last_window_end() + settle,
                              static_cast<std::uint32_t>(ticks / 2)));
  result.measure_seconds =
      static_cast<double>(ticks - result.measure_begin) * dt;

  for (Flowlet& fl : flowlets_) {
    fl.measured_bytes = 0.0;
    fl.round_delivered = 0.0;
    fl.cuts_scratch = 0;
  }

  const std::size_t nf = flowlets_.size();
  std::vector<double> cap_bytes(edge_count_, 0.0);
  std::vector<double> buffer_bytes(edge_count_, 0.0);
  std::vector<double> frac(edge_count_, 1.0);
  std::vector<double> tick_serviced(edge_count_, 0.0);
  std::vector<std::size_t> event_cursor(edge_count_, 0);

  const bool faults_armed = fault::Registry::global().armed();

  for (std::size_t tick = 0; tick < ticks; ++tick) {
    const bool measuring = tick >= result.measure_begin;
    const bool in_window = timeline.in_window(tick);

    // Capacity breakpoints for this tick.
    for (std::size_t e = 0; e < edge_count_; ++e) {
      const std::vector<CapacityTimeline::Event>& events = timeline.edges[e];
      std::size_t& cursor = event_cursor[e];
      while (cursor < events.size() && events[cursor].tick <= tick) {
        cap_bytes[e] = events[cursor].gbps * bytes_per_gbps_tick;
        ++cursor;
      }
      buffer_bytes[e] =
          std::max(cap_bytes[e] / bytes_per_gbps_tick,
                   config_.min_buffer_gbps) *
          buffer_seconds * 1e9 / 8.0;
    }

    // Phase A (parallel): HPCC-style rate control + injection amounts.
    exec::parallel_for(pool, nf, [&](std::size_t f) {
      Flowlet& fl = flowlets_[f];
      if (fl.offered_gbps > 0.0 && !fl.active.hops.empty()) {
        double util = 0.0;
        for (const Hop& hop : fl.active.hops)
          util = std::max(util,
                          link_util_[static_cast<std::size_t>(hop.edge)]);
        // Congested when some path link's standing queue exceeds 1/eta
        // ticks' worth of service. util == 1 is the steady state of a
        // link the solver fills to capacity (each tick's arrivals are
        // exactly one tick's service) — NOT congestion; only backlog
        // growth beyond that margin cuts.
        if (util * eta > 1.0) {
          fl.rate_gbps = std::max(fl.rate_gbps * (eta / util),
                                  fl.offered_gbps * kMinRateFraction);
          ++fl.cuts_scratch;
        } else {
          fl.rate_gbps =
              std::min(fl.offered_gbps,
                       fl.rate_gbps +
                           config_.additive_increase * fl.offered_gbps);
        }
      } else {
        fl.rate_gbps = 0.0;
      }
      double attempt =
          fl.rate_gbps * bytes_per_gbps_tick + fl.deferred_bytes;
      fl.deferred_bytes = 0.0;
      fl.inject_scratch = attempt;
      // The ledger charges bytes when the source GENERATES them (bytes
      // pulled back out of deferred were charged on their original
      // tick), so kDelay parking balances against the inflight term:
      // cumulative injected == delivered + dropped + inflight holds
      // under every fault plan, not just clean runs.
      fl.injected_bytes += fl.rate_gbps * bytes_per_gbps_tick;
      if (faults_armed && attempt > 0.0) {
        if (const fault::Action action = fault::at(
                "dataplane.packet",
                static_cast<std::uint64_t>(tick) * nf + f)) {
          switch (action.kind) {
            case fault::Kind::kDrop:
              // Lost before entering the network: dropped at the source
              // (the generation charge above keeps the ledger balanced).
              fl.dropped_bytes += attempt;
              fl.inject_scratch = 0.0;
              break;
            case fault::Kind::kDuplicate:
              // The duplicated copies are new bytes on the wire.
              fl.injected_bytes += attempt;
              fl.inject_scratch = attempt * 2.0;
              break;
            case fault::Kind::kDelay:
              fl.deferred_bytes = attempt;
              fl.inject_scratch = 0.0;
              break;
            default:
              break;
          }
        }
      }
    });

    // Phase B (serial, flowlet order): arrivals + injections land against
    // per-link buffer budgets; tail-drop beyond. The landing order is the
    // flowlet index order — deterministic at every pool size.
    for (std::size_t f = 0; f < nf; ++f) {
      Flowlet& fl = flowlets_[f];
      auto land = [&](Pipeline& pipeline, double inject) {
        for (std::size_t h = 0; h < pipeline.hops.size(); ++h) {
          Hop& hop = pipeline.hops[h];
          double incoming = hop.arriving;
          hop.arriving = 0.0;
          if (h == 0) incoming += inject;
          if (incoming <= 0.0) continue;
          const std::size_t e = static_cast<std::size_t>(hop.edge);
          const double room =
              std::max(0.0, buffer_bytes[e] - link_queued_[e]);
          const double accepted = std::min(incoming, room);
          const double dropped = incoming - accepted;
          hop.queued += accepted;
          link_queued_[e] += accepted;
          if (dropped > 0.0) {
            fl.dropped_bytes += dropped;
            result.links[e].dropped_bytes += dropped;
            if (measuring)
              result.links[e].measured_dropped_bytes += dropped;
          }
          result.links[e].max_queued_bytes =
              std::max(result.links[e].max_queued_bytes, link_queued_[e]);
        }
      };
      // Already charged at generation; a flowlet with no installed path
      // parks its bytes back at the source instead of leaking them.
      if (fl.active.hops.empty() && fl.inject_scratch > 0.0)
        fl.deferred_bytes += fl.inject_scratch;
      land(fl.active, fl.active.hops.empty() ? 0.0 : fl.inject_scratch);
      fl.inject_scratch = 0.0;
      for (Pipeline& pipeline : fl.draining) land(pipeline, 0.0);
    }

    // Phase C (parallel over links): proportional service fraction and
    // the utilization signal the NEXT tick's rate control reads.
    exec::parallel_for(pool, edge_count_, [&](std::size_t e) {
      const double queued = link_queued_[e];
      frac[e] = queued > cap_bytes[e] && queued > 0.0
                    ? cap_bytes[e] / queued
                    : 1.0;
      link_util_[e] = cap_bytes[e] > 0.0
                          ? queued / cap_bytes[e]
                          : (queued > 0.0 ? kDarkUtilization : 0.0);
    });

    // Phase D (parallel over flowlets): apply service, store-and-forward
    // serviced bytes to the next hop (they land next tick in phase B).
    exec::parallel_for(pool, nf, [&](std::size_t f) {
      Flowlet& fl = flowlets_[f];
      auto service = [&](Pipeline& pipeline) {
        for (std::size_t h = 0; h < pipeline.hops.size(); ++h) {
          Hop& hop = pipeline.hops[h];
          if (hop.queued <= 0.0) {
            hop.serviced = 0.0;
            continue;
          }
          const double serviced =
              hop.queued * frac[static_cast<std::size_t>(hop.edge)];
          hop.queued -= serviced;
          hop.serviced = serviced;
          if (h + 1 < pipeline.hops.size()) {
            pipeline.hops[h + 1].arriving += serviced;
          } else {
            fl.delivered_bytes += serviced;
            fl.round_delivered += serviced;
            if (measuring) fl.measured_bytes += serviced;
          }
        }
      };
      service(fl.active);
      for (Pipeline& pipeline : fl.draining) service(pipeline);
    });

    // Phase E (serial, flowlet order): per-link and per-OD accounting,
    // drained-pipeline retirement, capacity-safety audit.
    std::fill(tick_serviced.begin(), tick_serviced.end(), 0.0);
    for (std::size_t f = 0; f < nf; ++f) {
      Flowlet& fl = flowlets_[f];
      auto account = [&](Pipeline& pipeline) {
        for (std::size_t h = 0; h < pipeline.hops.size(); ++h) {
          Hop& hop = pipeline.hops[h];
          const double s = hop.serviced;
          if (s <= 0.0) continue;
          hop.serviced = 0.0;
          const std::size_t e = static_cast<std::size_t>(hop.edge);
          link_queued_[e] = std::max(0.0, link_queued_[e] - s);
          tick_serviced[e] += s;
          result.links[e].serviced_bytes += s;
          if (measuring) {
            result.links[e].measured_bytes += s;
            result.link_od_measured_bytes[e * ods_ + fl.od] += s;
          }
        }
      };
      account(fl.active);
      for (Pipeline& pipeline : fl.draining) account(pipeline);
      std::erase_if(fl.draining, [](const Pipeline& pipeline) {
        return pipeline.inflight() <= 0.0;
      });
    }
    for (std::size_t e = 0; e < edge_count_; ++e) {
      if (tick_serviced[e] >
          cap_bytes[e] * (1.0 + kServiceRelTol) + kServiceAbsTolBytes) {
        if (in_window)
          ++result.window_violations;
        else
          ++result.capacity_violations;
      }
    }
  }

  // Round aggregation (serial, flowlet order).
  double inflight = 0.0;
  for (const Flowlet& fl : flowlets_) {
    result.od_goodput_gbps[fl.od] += fl.measured_bytes;
    result.od_delivered_bytes[fl.od] += fl.round_delivered;
    result.injected_bytes += fl.injected_bytes;
    result.delivered_bytes += fl.delivered_bytes;
    result.dropped_bytes += fl.dropped_bytes;
    result.rate_cuts += fl.cuts_scratch;
    inflight += fl.active.inflight() + fl.deferred_bytes;
    for (const Pipeline& pipeline : fl.draining)
      inflight += pipeline.inflight();
  }
  result.inflight_bytes = inflight;
  for (double& goodput : result.od_goodput_gbps)
    goodput = goodput * 8.0 / result.measure_seconds / 1e9;
  result.signature = state_signature();
  ++round_;

  metrics.rounds.add(1);
  metrics.ticks.add(static_cast<std::uint64_t>(ticks));
  metrics.migrations.add(result.migrations);
  metrics.rate_cuts.add(result.rate_cuts);
  metrics.delivered_bytes.add(
      static_cast<std::uint64_t>(result.delivered_bytes));
  metrics.dropped_bytes.add(
      static_cast<std::uint64_t>(result.dropped_bytes));
  metrics.capacity_violations.add(result.capacity_violations);
  metrics.inflight_bytes.set(result.inflight_bytes);
  return result;
}

std::uint64_t DataplaneSim::state_signature() const {
  std::uint64_t hash = 0x64617461706c616eull;  // "dataplan"
  hash = mix64(hash, round_);
  for (const Flowlet& fl : flowlets_) {
    hash = mix64(hash, static_cast<std::uint64_t>(fl.od));
    hash = mix64(hash, fl.offered_gbps);
    hash = mix64(hash, fl.rate_gbps);
    hash = mix64(hash, fl.deferred_bytes);
    hash = mix64(hash, fl.injected_bytes);
    hash = mix64(hash, fl.delivered_bytes);
    hash = mix64(hash, fl.dropped_bytes);
    auto fold_pipeline = [&hash](const Pipeline& pipeline) {
      hash = mix64(hash, pipeline.path_id);
      for (const Hop& hop : pipeline.hops) {
        hash = mix64(hash, static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(hop.edge)));
        hash = mix64(hash, hop.queued);
        hash = mix64(hash, hop.arriving);
      }
    };
    fold_pipeline(fl.active);
    hash = mix64(hash, static_cast<std::uint64_t>(fl.draining.size()));
    for (const Pipeline& pipeline : fl.draining) fold_pipeline(pipeline);
  }
  for (const double queued : link_queued_) hash = mix64(hash, queued);
  for (const double util : link_util_) hash = mix64(hash, util);
  return hash;
}

void DataplaneSim::encode_pipeline(const Pipeline& pipeline,
                                   replay::wire::ByteWriter& writer) const {
  writer.u64(pipeline.path_id);
  writer.u32(static_cast<std::uint32_t>(pipeline.hops.size()));
  for (const Hop& hop : pipeline.hops) {
    writer.i32(hop.edge);
    writer.f64(hop.queued);
    writer.f64(hop.arriving);
  }
}

std::vector<std::byte> DataplaneSim::save_state() const {
  replay::wire::ByteWriter writer;
  writer.u32(kStateMagic);
  writer.u32(kStateVersion);
  writer.u64(static_cast<std::uint64_t>(edge_count_));
  writer.u64(static_cast<std::uint64_t>(ods_));
  writer.u64(static_cast<std::uint64_t>(config_.flowlets_per_od));
  writer.u64(round_);
  for (const Flowlet& fl : flowlets_) {
    writer.u32(fl.od);
    writer.f64(fl.offered_gbps);
    writer.f64(fl.rate_gbps);
    writer.f64(fl.deferred_bytes);
    writer.f64(fl.injected_bytes);
    writer.f64(fl.delivered_bytes);
    writer.f64(fl.dropped_bytes);
    encode_pipeline(fl.active, writer);
    writer.u32(static_cast<std::uint32_t>(fl.draining.size()));
    for (const Pipeline& pipeline : fl.draining)
      encode_pipeline(pipeline, writer);
  }
  for (const double queued : link_queued_) writer.f64(queued);
  for (const double util : link_util_) writer.f64(util);
  // Trailing integrity fold: restore_state recomputes the signature of the
  // decoded state and rejects any payload whose bytes were disturbed —
  // framing checks alone cannot catch a flipped bit inside a double.
  writer.u64(state_signature());
  return writer.take();
}

void DataplaneSim::restore_state(std::span<const std::byte> payload) {
  replay::wire::ByteReader reader(payload);
  RWC_CHECK_MSG(reader.u32() == kStateMagic && reader.u32() == kStateVersion,
                "dataplane: unrecognized state payload");
  RWC_CHECK_MSG(reader.u64() == edge_count_ && reader.u64() == ods_ &&
                    reader.u64() == config_.flowlets_per_od,
                "dataplane: state payload shape mismatch");
  const std::uint64_t round = reader.u64();
  std::vector<Flowlet> flowlets(flowlets_.size());
  auto read_pipeline = [&reader](Pipeline& pipeline) {
    pipeline.path_id = reader.u64();
    const std::uint32_t hops = reader.u32();
    pipeline.hops.resize(hops);
    for (Hop& hop : pipeline.hops) {
      hop.edge = reader.i32();
      hop.queued = reader.f64();
      hop.arriving = reader.f64();
      hop.serviced = 0.0;
    }
  };
  for (Flowlet& fl : flowlets) {
    fl.od = reader.u32();
    fl.offered_gbps = reader.f64();
    fl.rate_gbps = reader.f64();
    fl.deferred_bytes = reader.f64();
    fl.injected_bytes = reader.f64();
    fl.delivered_bytes = reader.f64();
    fl.dropped_bytes = reader.f64();
    read_pipeline(fl.active);
    const std::uint32_t draining = reader.u32();
    RWC_CHECK_MSG(!reader.failed() && draining <= 1u << 20,
                  "dataplane: corrupt state payload");
    fl.draining.resize(draining);
    for (Pipeline& pipeline : fl.draining) read_pipeline(pipeline);
  }
  std::vector<double> link_queued(edge_count_);
  std::vector<double> link_util(edge_count_);
  for (double& queued : link_queued) queued = reader.f64();
  for (double& util : link_util) util = reader.f64();
  const std::uint64_t stored_signature = reader.u64();
  RWC_CHECK_MSG(!reader.failed() && reader.exhausted(),
                "dataplane: truncated state payload");
  std::uint64_t restored_round = round;
  std::swap(round_, restored_round);
  std::swap(flowlets_, flowlets);
  std::swap(link_queued_, link_queued);
  std::swap(link_util_, link_util);
  if (state_signature() != stored_signature) {
    // Strong guarantee: put the pre-restore state back before rejecting.
    std::swap(round_, restored_round);
    std::swap(flowlets_, flowlets);
    std::swap(link_queued_, link_queued);
    std::swap(link_util_, link_util);
    RWC_CHECK_MSG(false, "dataplane: state payload signature mismatch");
  }
}

}  // namespace rwc::dataplane
