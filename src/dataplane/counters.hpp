// Dataplane-backed demand counter source (rwc::dataplane) —
// docs/DATAPLANE.md §6.
//
// counter_observations reconciles one measured dataplane round against the
// installed analytic model: a link is *reconcilable* when every OD
// crossing it delivered its installed share (routing-matrix fraction times
// the installed volume) within `rel_tol`, the link's whole-link measured
// rate matches the analytic offered load, and the measurement region saw
// zero drops on the link. demand::counters_from_observations then exports
// the analytic bytes for reconcilable links (byte-for-byte what the
// estimator's exact-recovery certificate re-derives) and the raw measured
// bytes/drops for the rest — so a clean dataplane still certifies exact
// recovery, while congestion and faults surface as real counter signal.
#pragma once

#include <span>
#include <vector>

#include "dataplane/dataplane.hpp"
#include "demand/counters.hpp"
#include "demand/routing_matrix.hpp"

namespace rwc::dataplane {

/// Reconciles `result` (one measured round) against `matrix` and the
/// per-OD `installed_volumes` the estimator will invert for. `rel_tol`
/// bounds the relative gap between a measured rate and its analytic
/// share; it is loose enough for tick-summation noise (~1e-12) and tight
/// enough that a single faulted packet (~1/(flowlets*ticks) of a share)
/// breaks reconciliation.
std::vector<demand::DataplaneLinkObservation> counter_observations(
    const RoundResult& result, const demand::RoutingMatrix& matrix,
    std::span<const double> installed_volumes, double rel_tol = 1e-6);

}  // namespace rwc::dataplane
