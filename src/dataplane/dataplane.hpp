// Deterministic discrete-event flowlet dataplane (rwc::dataplane) —
// docs/DATAPLANE.md is the contract.
//
// The flow-level solvers *promise* rates; this module checks the promise
// against a dataplane that actually moves bytes. Each controller round the
// simulator installs the round's FlowAssignment as WCMP flowlet tables
// (dataplane/wcmp.hpp), drives per-link fluid FIFO queues from the round's
// CapacityTimeline (dataplane/timeline.hpp — mid-round BVT downshifts and
// reconfig dark windows included), and runs an HPCC-style end-host rate
// controller per flowlet: sources shape to their allocated share, cut
// multiplicatively when a path link's utilization exceeds the target, and
// recover additively. The per-tick schedule is
//
//   A (parallel over flowlets)  rate control + injection amounts
//                               (`dataplane.packet` faults fire here);
//   B (serial, flowlet order)   arrivals + injections land, tail-drop
//                               against per-link buffer budgets;
//   C (parallel over links)     service fraction min(1, cap*dt / queued)
//                               + the next tick's utilization signal;
//   D (parallel over flowlets)  proportional service, store-and-forward
//                               to the next hop;
//   E (serial, flowlet order)   per-link/per-OD accounting + the
//                               capacity-safety audit.
//
// Parallel phases write only flowlet-owned state and read only serial-
// phase outputs, and every serial reduction runs in flowlet index order —
// so a round is bit-identical at every pool size (the {1,2,8} gate of
// bench/dataplane_xcheck --selfcheck). No RNG runs in the tick loop:
// randomness is hashing (wcmp.hpp), so determinism needs no stream
// bookkeeping. save_state()/restore_state() capture everything that
// carries across rounds (the kDataplane checkpoint section,
// docs/REPLAY.md): restore-then-continue is bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dataplane/timeline.hpp"
#include "graph/graph.hpp"
#include "te/demand.hpp"

namespace rwc::exec {
class ThreadPool;
}

namespace rwc::replay::wire {
class ByteWriter;
}

namespace rwc::dataplane {

struct DataplaneConfig {
  /// Tick length. 5 ms resolves the 35 ms hitless reconfig windows.
  double tick_seconds = 0.005;
  /// Ticks per controller round. Power of two; >= 8.
  std::size_t ticks_per_round = 256;
  /// Flowlets (hash units) per OD pair. Power of two so the per-flowlet
  /// share volume/F and its re-aggregation are exact in binary floating
  /// point — what lets the demand counter source certify exact recovery
  /// (docs/DATAPLANE.md §6).
  std::size_t flowlets_per_od = 32;
  /// Per-link buffer: capacity * buffer_ms of bytes (tail-drop beyond).
  double buffer_ms = 25.0;
  /// Dark links still buffer this much Gbps-worth so in-flight bytes can
  /// survive a reconfig window instead of being dropped wholesale.
  double min_buffer_gbps = 1.0;
  /// HPCC-style utilization target eta: a flowlet cuts its rate
  /// multiplicatively while some path link's standing queue exceeds
  /// 1/eta ticks' worth of service (util == 1 is the steady state of a
  /// fully-allocated link, not congestion), and recovers additively
  /// toward its allocated share below that margin.
  double target_utilization = 0.95;
  /// Additive recovery per tick as a fraction of the flowlet's allocated
  /// rate.
  double additive_increase = 0.05;
  /// Flowlet hash family (per-run WCMP salt).
  std::uint64_t hash_salt = 0x52574321ull;
  /// Pool for the parallel phases; nullptr = exec::ThreadPool::global().
  exec::ThreadPool* pool = nullptr;

  friend bool operator==(const DataplaneConfig&,
                         const DataplaneConfig&) = default;
};

/// Per directed link, per round.
struct LinkRoundStats {
  double serviced_bytes = 0.0;   ///< bytes the link transmitted
  double dropped_bytes = 0.0;    ///< tail-dropped at this link's buffer
  double max_queued_bytes = 0.0; ///< peak buffer occupancy
  /// Serviced bytes and drops restricted to the measurement ticks
  /// (outside every update window), for the counter source.
  double measured_bytes = 0.0;
  double measured_dropped_bytes = 0.0;
};

/// What one dataplane round produced. Everything is a pure function of
/// (installed assignment, timeline, carried-over state, armed fault plan).
struct RoundResult {
  /// Per OD: goodput over the measurement ticks (after the last update
  /// window; at least the trailing half of the round), Gbps.
  std::vector<double> od_goodput_gbps;
  /// Per OD: bytes delivered across the whole round.
  std::vector<double> od_delivered_bytes;
  std::vector<LinkRoundStats> links;
  /// Per (link, od) delivered bytes over the measurement ticks, dense
  /// row-major [link * ods + od] — the counter source's raw material.
  std::vector<double> link_od_measured_bytes;
  /// Measurement region [measure_begin, ticks) and its length in seconds.
  std::uint32_t measure_begin = 0;
  double measure_seconds = 0.0;

  std::uint64_t migrations = 0;  ///< flowlets whose WCMP pick moved
  std::uint64_t rate_cuts = 0;   ///< multiplicative-decrease events
  /// Ticks on which some link transmitted beyond its timeline capacity
  /// (beyond FP tolerance), split by scheduled-window membership. The
  /// proportional-service discipline makes both 0 by construction; the
  /// oracle *measures* them rather than assuming.
  std::uint64_t capacity_violations = 0;
  std::uint64_t window_violations = 0;

  double injected_bytes = 0.0;
  double delivered_bytes = 0.0;
  double dropped_bytes = 0.0;
  /// Bytes still queued/arriving/deferred at round end (conservation:
  /// cumulative injected == delivered + dropped + inflight).
  double inflight_bytes = 0.0;

  /// Fold of the full post-round flowlet/queue state (bitwise): two runs
  /// agree on a round iff the signatures and the per-OD goodputs agree.
  std::uint64_t signature = 0;
};

class DataplaneSim {
 public:
  /// `ods` fixes the OD-slot count for the simulator's lifetime: round
  /// assignments must carry exactly this many routings (the controller's
  /// TrafficMatrix order). Flowlet state persists across rounds.
  DataplaneSim(const graph::Graph& topology, std::size_t ods,
               DataplaneConfig config);

  /// Installs `assignment` (WCMP re-split; pre-migration paths keep
  /// draining) and runs one round against `timeline`. The timeline must
  /// cover this topology's edges and use the config's tick geometry.
  RoundResult run_round(const te::FlowAssignment& assignment,
                        const CapacityTimeline& timeline);

  /// Wire-encoded evolving state (the kDataplane checkpoint payload).
  std::vector<std::byte> save_state() const;
  /// Restores a save_state() payload; throws util::CheckError on corrupt
  /// or mismatched (topology/OD/config) payloads.
  void restore_state(std::span<const std::byte> payload);

  /// Fold of the live flowlet/queue state — equal iff bitwise-equal.
  std::uint64_t state_signature() const;

  std::uint64_t rounds() const { return round_; }
  const DataplaneConfig& config() const { return config_; }
  std::size_t ods() const { return ods_; }
  std::size_t edge_count() const { return edge_count_; }

 private:
  struct Hop {
    std::int32_t edge = -1;
    double queued = 0.0;    ///< bytes awaiting service
    double arriving = 0.0;  ///< store-and-forward: lands next tick
    double serviced = 0.0;  ///< scratch: bytes serviced this tick
  };

  struct Pipeline {
    std::vector<Hop> hops;
    std::uint64_t path_id = 0;  ///< wcmp::path_identity of the edge seq

    double inflight() const {
      double total = 0.0;
      for (const Hop& hop : hops) total += hop.queued + hop.arriving;
      return total;
    }
  };

  struct Flowlet {
    std::uint32_t od = 0;
    double offered_gbps = 0.0;  ///< allocated share (rate ceiling)
    double rate_gbps = 0.0;     ///< HPCC-controlled current rate
    double inject_scratch = 0.0;
    double deferred_bytes = 0.0;  ///< kDelay faults park bytes here
    std::uint64_t cuts_scratch = 0;
    Pipeline active;
    std::vector<Pipeline> draining;  ///< pre-migration paths, flushing
    double injected_bytes = 0.0;
    double delivered_bytes = 0.0;
    double dropped_bytes = 0.0;
    /// Delivered bytes within the current round's measurement region.
    double measured_bytes = 0.0;
    /// Delivered bytes within the current round (whole-round scratch).
    double round_delivered = 0.0;
  };

  void install(const te::FlowAssignment& assignment, RoundResult& result);
  void encode_pipeline(const Pipeline& pipeline,
                       replay::wire::ByteWriter& writer) const;

  DataplaneConfig config_;
  std::size_t edge_count_ = 0;
  std::size_t ods_ = 0;
  std::uint64_t round_ = 0;
  std::vector<Flowlet> flowlets_;  ///< ods * flowlets_per_od, fixed order
  /// Per link: live queued-byte total (maintained by the serial phases).
  std::vector<double> link_queued_;
  /// Per link: previous tick's utilization signal for rate control.
  std::vector<double> link_util_;
};

}  // namespace rwc::dataplane
