#include "dataplane/counters.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rwc::dataplane {

std::vector<demand::DataplaneLinkObservation> counter_observations(
    const RoundResult& result, const demand::RoutingMatrix& matrix,
    std::span<const double> installed_volumes, double rel_tol) {
  RWC_CHECK_MSG(result.links.size() == matrix.links,
                "counter_observations: result/matrix link count mismatch");
  RWC_CHECK_MSG(installed_volumes.size() == matrix.ods,
                "counter_observations: volume/OD count mismatch");
  RWC_CHECK_MSG(result.measure_seconds > 0.0,
                "counter_observations: empty measurement region");

  const std::size_t ods = matrix.ods;
  std::vector<demand::DataplaneLinkObservation> observations(matrix.links);
  for (std::size_t i = 0; i < matrix.links; ++i) {
    demand::DataplaneLinkObservation& obs = observations[i];
    const LinkRoundStats& link = result.links[i];
    obs.delivered_gbps =
        demand::gbps_of(link.measured_bytes, result.measure_seconds);
    obs.dropped_gbps =
        demand::gbps_of(link.measured_dropped_bytes, result.measure_seconds);

    // Reconciliation: per-OD measured rates against the installed shares,
    // the whole-link rate against the analytic offered load (this catches
    // stray traffic from ODs outside the row, e.g. pre-migration drain),
    // and a drop-free measurement region.
    bool ok = !(link.measured_dropped_bytes > 0.0);
    for (const demand::RoutingMatrix::Entry& entry : matrix.rows[i]) {
      if (!ok) break;
      const double expected = entry.fraction * installed_volumes[entry.od];
      const double measured = demand::gbps_of(
          result.link_od_measured_bytes[i * ods + entry.od],
          result.measure_seconds);
      ok = std::abs(measured - expected) <=
           rel_tol * std::max(1.0, std::abs(expected));
    }
    if (ok) {
      const double analytic =
          demand::offered_load(matrix.rows[i], installed_volumes);
      ok = std::abs(obs.delivered_gbps - analytic) <=
           rel_tol * std::max(1.0, std::abs(analytic));
    }
    obs.reconcilable = ok;
  }
  return observations;
}

}  // namespace rwc::dataplane
