// Per-round capacity timelines (rwc::dataplane) — docs/DATAPLANE.md §4.
//
// A CapacityTimeline is the dataplane's view of what each physical link
// can carry at every tick of a round: piecewise-constant per-edge Gbps
// breakpoints plus the scheduled *update windows* — the tick ranges in
// which the round's consistent-update transition (rwc::update) is still
// executing and the differential oracle tolerates transient gap/drop
// violations. build_timeline maps an UpdateSchedule into the leading
// ticks of the round: each update round gets a tick window proportional
// to its duration, reconfiguring edges sit at their drain limit inside
// their window (0 for the laser-cycling procedure — the link is dark),
// and everything ends at the round's configured capacities. Without a
// schedule (options.update unset, or an infeasible plan) capacity changes
// collapse to a single synthetic window at the head of the round.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "update/schedule.hpp"
#include "util/units.hpp"

namespace rwc::dataplane {

struct CapacityTimeline {
  /// One capacity breakpoint: the edge carries `gbps` from `tick` until
  /// the next breakpoint (or the end of the round).
  struct Event {
    std::uint32_t tick = 0;
    double gbps = 0.0;

    friend bool operator==(const Event&, const Event&) = default;
  };

  std::size_t ticks = 0;
  double tick_seconds = 0.0;
  /// Per edge: breakpoints sorted by tick, the first always at tick 0.
  std::vector<std::vector<Event>> edges;
  /// Scheduled update windows as half-open tick ranges, ascending.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> windows;

  double capacity_gbps(std::size_t edge, std::size_t tick) const;
  bool in_window(std::size_t tick) const;
  /// End of the last scheduled window (0 when none): the earliest tick the
  /// differential oracle may start measuring steady-state goodput.
  std::uint32_t last_window_end() const;

  /// Inserts a breakpoint (test/bench hook for forced mid-round BVT
  /// downshifts outside any scheduled window). Keeps breakpoints sorted;
  /// a breakpoint at an existing tick overwrites it.
  void add_event(std::size_t edge, std::uint32_t tick, double gbps);
};

/// Builds the round's timeline from the previous round's configured
/// capacities (`before`), the new ones (`after`) and the round's update
/// schedule (nullptr or infeasible => a synthetic window of ticks/8 at
/// the head of the round covering the capacity jump, and only when some
/// edge actually changed). The schedule's rounds are compressed into at
/// most `ticks / 2` leading ticks so at least half of every round is
/// steady state for the oracle to measure.
CapacityTimeline build_timeline(std::span<const util::Gbps> before,
                                std::span<const util::Gbps> after,
                                const update::UpdateSchedule* schedule,
                                std::size_t ticks, double tick_seconds);

}  // namespace rwc::dataplane
